# Developer entry points. `make check` is the full gate CI runs:
# tier-1 tests, the domain linter, and (when installed) ruff + mypy.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test lint lint-baseline sarif ruff mypy bench bench-sim bench-fabric bench-all obs-bench obs-profile perf-diff fabric-perf-diff baseline obs-diff fabric-baseline fabric-obs-diff pareto-baseline pareto

check: test lint ruff mypy

test:
	$(PYTHON) -m pytest -x -q

LINT_BASELINE = lint-baseline.json

# gate against the committed baseline: pre-existing findings are
# absorbed, anything new fails the build
lint:
	$(PYTHON) -m repro.cli lint src --baseline $(LINT_BASELINE)

# regenerate the committed baseline (deterministic: sorted findings,
# repo-anchored paths, no line numbers); commit the updated JSON
# together with whatever introduced the findings it absorbs
lint-baseline:
	$(PYTHON) -m repro.cli lint src --write-baseline $(LINT_BASELINE)

# machine-readable findings for code-scanning UIs (also a CI artifact)
sarif:
	$(PYTHON) -m repro.cli lint src --sarif > lint.sarif; test $$? -le 1

# ruff/mypy ship in the `lint` extra (pip install -e .[lint]); skip
# gracefully where they are not installed so `make check` stays usable
# in the dependency-free environment the library itself targets.
ruff:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi

mypy:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping (pip install -e .[lint])"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# how many sweep attempts the BENCH snapshots keep the fastest of;
# min-of-N suppresses scheduler noise in committed numbers
BENCH_BEST_OF ?= 3

# refresh the committed events/sec snapshot (benchmarks/BENCH_sim.json);
# runs the BASELINE_SWEEP scenario set under a recording observer
bench-sim:
	$(PYTHON) benchmarks/bench_sim.py --best-of $(BENCH_BEST_OF)

# refresh the committed 1k-flow fabric snapshot (BENCH_fabric.json);
# runs the FABRIC_SWEEP under a recording observer
bench-fabric:
	$(PYTHON) benchmarks/bench_fabric.py --best-of $(BENCH_BEST_OF)

# refresh both committed perf snapshots in one shot. The workflow after
# an intentional engine change: `make bench-all`, eyeball the deltas,
# commit the updated BENCH_*.json together with the change so the
# perf-diff gate measures the next change against this one.
bench-all: bench-sim bench-fabric

# the observability zero-overhead gate (also a CI step)
obs-bench:
	$(PYTHON) -m pytest -q benchmarks/test_obs_overhead.py

# profile the canonical sweep and export flamegraph/callgrind/chrome
# views (also a CI artifact)
PROFILE_TRACE ?= /tmp/greenenvy-profile-trace
obs-profile:
	rm -rf $(PROFILE_TRACE)
	$(PYTHON) -m repro.cli obs profile $(PROFILE_TRACE)

# re-run the committed perf sweeps and fail on an events/sec regression
# beyond tolerance (the CI perf gate; min-of-N on the fresh side too)
perf-diff:
	$(PYTHON) -m repro.cli obs perf-diff --kind sim --best-of $(BENCH_BEST_OF)

fabric-perf-diff:
	$(PYTHON) -m repro.cli obs perf-diff --kind fabric --best-of $(BENCH_BEST_OF)

# the small traced sweep the committed baseline snapshots; the CI
# obs-diff gate replays exactly this and diffs against it
BASELINE_SWEEP = fig1 --bytes 400000 --reps 2
BASELINE_FILE = benchmarks/baselines/seed.json
BASELINE_TRACE ?= /tmp/greenenvy-baseline-trace

# regenerate the committed baseline (run after an intentional
# behavior change, then commit the updated JSON with the change)
baseline:
	rm -rf $(BASELINE_TRACE)
	$(PYTHON) -m repro.cli $(BASELINE_SWEEP) --trace $(BASELINE_TRACE) >/dev/null
	$(PYTHON) -m repro.cli obs snapshot $(BASELINE_TRACE) -o $(BASELINE_FILE)

# replay the baseline sweep and fail on drift (the CI regression gate)
obs-diff:
	rm -rf $(BASELINE_TRACE)
	$(PYTHON) -m repro.cli $(BASELINE_SWEEP) --trace $(BASELINE_TRACE) >/dev/null
	$(PYTHON) -m repro.cli obs diff $(BASELINE_FILE) $(BASELINE_TRACE)

# the 1k-flow leaf-spine sweep the committed fabric baseline snapshots;
# the CI fabric-obs-diff gate replays exactly this and diffs against it
FABRIC_SWEEP = fabric --flows 1000 --ccas dctcp,dcqcn --mix rpc
FABRIC_BASELINE_FILE = benchmarks/baselines/fabric.json
FABRIC_TRACE ?= /tmp/greenenvy-fabric-trace

# regenerate the committed fabric baseline (run after an intentional
# behavior change, then commit the updated JSON with the change)
fabric-baseline:
	rm -rf $(FABRIC_TRACE)
	$(PYTHON) -m repro.cli $(FABRIC_SWEEP) --trace $(FABRIC_TRACE) >/dev/null
	$(PYTHON) -m repro.cli obs snapshot $(FABRIC_TRACE) -o $(FABRIC_BASELINE_FILE)

# replay the fabric sweep and fail on drift (the CI regression gate)
fabric-obs-diff:
	rm -rf $(FABRIC_TRACE)
	$(PYTHON) -m repro.cli $(FABRIC_SWEEP) --trace $(FABRIC_TRACE) >/dev/null
	$(PYTHON) -m repro.cli obs diff $(FABRIC_BASELINE_FILE) $(FABRIC_TRACE)

# the every-policy FCT-vs-energy sweep (both workloads) the committed
# pareto baseline snapshots; the CI pareto gate replays exactly this
PARETO_SWEEP = pareto
PARETO_BASELINE_FILE = benchmarks/baselines/pareto.json
PARETO_TRACE ?= /tmp/greenenvy-pareto-trace

# regenerate the committed pareto baseline (run after an intentional
# scheduling-policy change, then commit the updated JSON with it)
pareto-baseline:
	rm -rf $(PARETO_TRACE)
	$(PYTHON) -m repro.cli $(PARETO_SWEEP) --trace $(PARETO_TRACE) >/dev/null
	$(PYTHON) -m repro.cli obs snapshot $(PARETO_TRACE) -o $(PARETO_BASELINE_FILE)

# replay the pareto sweep and fail on drift (the CI regression gate)
pareto:
	rm -rf $(PARETO_TRACE)
	$(PYTHON) -m repro.cli $(PARETO_SWEEP) --trace $(PARETO_TRACE) >/dev/null
	$(PYTHON) -m repro.cli obs diff $(PARETO_BASELINE_FILE) $(PARETO_TRACE)
