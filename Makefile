# Developer entry points. `make check` is the full gate CI runs:
# tier-1 tests, the domain linter, and (when installed) ruff + mypy.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test lint ruff mypy bench obs-bench

check: test lint ruff mypy

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.cli lint src

# ruff/mypy ship in the `lint` extra (pip install -e .[lint]); skip
# gracefully where they are not installed so `make check` stays usable
# in the dependency-free environment the library itself targets.
ruff:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi

mypy:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping (pip install -e .[lint])"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# the observability zero-overhead gate (also a CI step)
obs-bench:
	$(PYTHON) -m pytest -q benchmarks/test_obs_overhead.py
