"""Hypothesis property tests at the whole-scenario level.

Random scenarios (sizes, CCAs, MTUs, flow counts) must always complete,
conserve bytes, and produce physical energy readings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.registry import PAPER_ALGORITHMS
from repro.energy import calibration as cal
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once

#: concurrent-safe algorithms (the baseline may not share a bottleneck)
CONCURRENT_CCAS = tuple(c for c in PAPER_ALGORITHMS if c != "baseline")


class TestRandomScenarios:
    @given(
        size_kb=st.integers(min_value=100, max_value=4000),
        cca=st.sampled_from(PAPER_ALGORITHMS),
        mtu=st.sampled_from([1500, 3000, 9000]),
    )
    @settings(max_examples=25, deadline=None)
    def test_single_flow_always_completes(self, size_kb, cca, mtu):
        scenario = Scenario(
            "prop-single",
            flows=[FlowSpec(size_kb * 1000, cca=cca)],
            mtu_bytes=mtu,
            packages=1,
            time_limit_s=120.0,
        )
        m = run_once(scenario, seed=size_kb)
        result = m.flow_results[0]
        assert result.bytes_transferred == size_kb * 1000
        assert m.energy_j > 0
        assert m.average_power_w >= cal.P_IDLE_W * 0.9
        assert m.average_power_w < 150.0

    @given(
        n_flows=st.integers(min_value=2, max_value=4),
        cca=st.sampled_from(CONCURRENT_CCAS),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=12, deadline=None)
    def test_concurrent_flows_all_complete(self, n_flows, cca, seed):
        scenario = Scenario(
            "prop-multi",
            flows=[FlowSpec(1_500_000, cca=cca) for _ in range(n_flows)],
            time_limit_s=120.0,
        )
        m = run_once(scenario, seed=seed)
        assert len(m.flow_results) == n_flows
        for result in m.flow_results:
            assert result.bytes_transferred == 1_500_000

    @given(
        fraction=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_split_cheaper_or_equal_to_fair(self, fraction, seed):
        """The Fig. 1 property holds for arbitrary split fractions."""
        from repro.core.allocation import limited_flow_split
        from repro.harness.experiment import scenario_from_plan
        from repro.units import gbps

        size = 4_000_000
        plan = limited_flow_split(size, gbps(10.0), fraction)
        unfair = run_once(
            scenario_from_plan("prop-unfair", plan), seed=seed
        )
        fair = run_once(
            Scenario(
                "prop-fair",
                flows=[
                    FlowSpec(size, cca="cubic", target_rate_bps=gbps(5.0)),
                    FlowSpec(size, cca="cubic", target_rate_bps=gbps(5.0)),
                ],
            ),
            seed=seed,
        )
        assert unfair.energy_j <= fair.energy_j * 1.02
