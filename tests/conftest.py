"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.topology import TestbedConfig, build_testbed
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def testbed(sim):
    """A default paper-style testbed (MTU 9000, bonded sender)."""
    return build_testbed(sim, TestbedConfig())


@pytest.fixture
def testbed_1500(sim):
    """A testbed at the Internet-standard 1500-byte MTU."""
    return build_testbed(sim, TestbedConfig(mtu_bytes=1500))


def make_testbed(sim, **overrides):
    """Helper for tests that need custom testbed parameters."""
    return build_testbed(sim, TestbedConfig(**overrides))
