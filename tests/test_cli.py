"""Tests for the greenenvy CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.bytes == 12_500_000
        assert args.reps == 3

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig1", "--bytes", "1000", "--reps", "1", "--seed", "9"]
        )
        assert (args.bytes, args.reps, args.seed) == (1000, 1, 9)

    def test_advise_sizes(self):
        args = build_parser().parse_args(["advise", "100", "200"])
        assert args.sizes == ["100", "200"]


class TestCommands:
    def test_theorem_command(self, capsys):
        assert main(["theorem", "--trials", "50"]) == 0
        assert "CONFIRMED" in capsys.readouterr().out

    def test_advise_command(self, capsys):
        assert main(["advise", "10000000", "20000000"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out
        assert "M/year" in out

    def test_fig1_command_tiny(self, capsys):
        code = main(["fig1", "--bytes", "2000000", "--reps", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "full-speed-then-idle" in out
        assert "max savings" in out

    def test_fig3_command_tiny(self, capsys):
        assert main(["fig3", "--bytes", "2000000"]) == 0
        out = capsys.readouterr().out
        assert "fair" in out and "fsti" in out
