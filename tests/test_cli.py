"""Tests for the greenenvy CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

LINT_FIXTURES = Path(__file__).resolve().parent / "lint" / "fixtures"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.bytes == 12_500_000
        assert args.reps == 3

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig1", "--bytes", "1000", "--reps", "1", "--seed", "9"]
        )
        assert (args.bytes, args.reps, args.seed) == (1000, 1, 9)

    def test_advise_sizes(self):
        args = build_parser().parse_args(["advise", "100", "200"])
        assert args.sizes == ["100", "200"]


class TestCommands:
    def test_theorem_command(self, capsys):
        assert main(["theorem", "--trials", "50"]) == 0
        assert "CONFIRMED" in capsys.readouterr().out

    def test_advise_command(self, capsys):
        assert main(["advise", "10000000", "20000000"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out
        assert "M/year" in out

    def test_fig1_command_tiny(self, capsys):
        code = main(["fig1", "--bytes", "2000000", "--reps", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "full-speed-then-idle" in out
        assert "max savings" in out

    def test_fig3_command_tiny(self, capsys):
        assert main(["fig3", "--bytes", "2000000"]) == 0
        out = capsys.readouterr().out
        assert "fair" in out and "fsti" in out


class TestLintCommand:
    """Exit-code contract: 0 clean, 1 findings, 2 usage error."""

    def test_clean_path_exits_zero(self, capsys):
        code = main(["lint", str(LINT_FIXTURES / "units" / "clean_units.py")])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main(["lint", str(LINT_FIXTURES / "units" / "bad_units.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "units-raw-literal" in out
        assert "bad_units.py" in out

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["lint", "--select", "no-such-rule", "src"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        code = main(["lint", "definitely/not/here"])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_json_format_emits_schema(self, capsys):
        code = main(
            ["lint", "--format", "json",
             str(LINT_FIXTURES / "hygiene" / "bad_hygiene.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["finding_count"] == len(payload["findings"]) > 0

    def test_select_restricts_rules(self, capsys):
        code = main(
            ["lint", "--select", "api-bare-except",
             str(LINT_FIXTURES / "hygiene" / "bad_hygiene.py")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "api-bare-except" in out
        assert "api-mutable-default" not in out

    def test_suppression_comments_respected(self, capsys):
        code = main(
            ["lint", str(LINT_FIXTURES / "suppression" / "suppressed.py")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "4e9" in out  # unsuppressed literal still reported
        assert "1e9" not in out  # targeted ignore honored

    def test_list_rules_exits_zero(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("units", "determinism", "cca-contract", "api-hygiene"):
            assert family in out

    def test_default_path_is_src_and_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(Path(__file__).resolve().parents[1])
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out


class TestObsCommands:
    """--trace on figure commands and the obs report reader."""

    def _journal(self, tmp_path, errors=0):
        from repro.obs.journal import JournalWriter

        trace = tmp_path / "trace"
        trace.mkdir()
        with JournalWriter(trace / "journal.jsonl", worker=1) as journal:
            journal.write(
                "run_finished", item=0, scenario="s", seed=0,
                wall_s=0.5, sim_time_s=0.01, energy_j=2.0,
            )
            for i in range(errors):
                journal.write(
                    "worker_error", scenario="s", seed=i,
                    error_type="ExperimentError", error="boom",
                )
        return trace

    def test_trace_flag_writes_journal(self, capsys, tmp_path):
        trace = tmp_path / "t"
        code = main([
            "fig1", "--bytes", "2000000", "--reps", "1",
            "--trace", str(trace),
        ])
        assert code == 0
        assert (trace / "journal.jsonl").exists()
        assert (trace / "metrics.prom").exists()
        assert "trace written to" in capsys.readouterr().out

    def test_report_healthy_journal_exits_zero(self, capsys, tmp_path):
        trace = self._journal(tmp_path)
        assert main(["obs", "report", str(trace)]) == 0
        assert "1 runs finished" in capsys.readouterr().out

    def test_report_worker_errors_exit_one(self, capsys, tmp_path):
        trace = self._journal(tmp_path, errors=2)
        assert main(["obs", "report", str(trace)]) == 1
        assert "UNHEALTHY" in capsys.readouterr().out

    def test_report_json_format(self, capsys, tmp_path):
        trace = self._journal(tmp_path)
        assert main(["obs", "report", "--format", "json", str(trace)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["runs_finished"] == 1

    def test_report_accepts_journal_file_directly(self, tmp_path):
        trace = self._journal(tmp_path)
        assert main(["obs", "report", str(trace / "journal.jsonl")]) == 0

    def test_report_missing_journal_exits_two(self, capsys, tmp_path):
        assert main(["obs", "report", str(tmp_path / "absent")]) == 2
        assert "error:" in capsys.readouterr().err
