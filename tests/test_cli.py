"""Tests for the greenenvy CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

LINT_FIXTURES = Path(__file__).resolve().parent / "lint" / "fixtures"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.bytes == 12_500_000
        assert args.reps == 3

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig1", "--bytes", "1000", "--reps", "1", "--seed", "9"]
        )
        assert (args.bytes, args.reps, args.seed) == (1000, 1, 9)

    def test_advise_sizes(self):
        args = build_parser().parse_args(["advise", "100", "200"])
        assert args.sizes == ["100", "200"]


class TestCommands:
    def test_theorem_command(self, capsys):
        assert main(["theorem", "--trials", "50"]) == 0
        assert "CONFIRMED" in capsys.readouterr().out

    def test_advise_command(self, capsys):
        assert main(["advise", "10000000", "20000000"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out
        assert "M/year" in out

    def test_fig1_command_tiny(self, capsys):
        code = main(["fig1", "--bytes", "2000000", "--reps", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "full-speed-then-idle" in out
        assert "max savings" in out

    def test_fig3_command_tiny(self, capsys):
        assert main(["fig3", "--bytes", "2000000"]) == 0
        out = capsys.readouterr().out
        assert "fair" in out and "fsti" in out


class TestLintCommand:
    """Exit-code contract: 0 clean, 1 findings, 2 usage error."""

    def test_clean_path_exits_zero(self, capsys):
        code = main(["lint", str(LINT_FIXTURES / "units" / "clean_units.py")])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main(["lint", str(LINT_FIXTURES / "units" / "bad_units.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "units-raw-literal" in out
        assert "bad_units.py" in out

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["lint", "--select", "no-such-rule", "src"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        code = main(["lint", "definitely/not/here"])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_json_format_emits_schema(self, capsys):
        code = main(
            ["lint", "--format", "json",
             str(LINT_FIXTURES / "hygiene" / "bad_hygiene.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["finding_count"] == len(payload["findings"]) > 0

    def test_select_restricts_rules(self, capsys):
        code = main(
            ["lint", "--select", "api-bare-except",
             str(LINT_FIXTURES / "hygiene" / "bad_hygiene.py")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "api-bare-except" in out
        assert "api-mutable-default" not in out

    def test_suppression_comments_respected(self, capsys):
        code = main(
            ["lint", str(LINT_FIXTURES / "suppression" / "suppressed.py")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "4e9" in out  # unsuppressed literal still reported
        assert "1e9" not in out  # targeted ignore honored

    def test_list_rules_exits_zero(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("units", "determinism", "cca-contract", "api-hygiene"):
            assert family in out

    def test_default_path_is_src_and_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(Path(__file__).resolve().parents[1])
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out
