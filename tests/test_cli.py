"""Tests for the greenenvy CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

LINT_FIXTURES = Path(__file__).resolve().parent / "lint" / "fixtures"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.bytes == 12_500_000
        assert args.reps == 3

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig1", "--bytes", "1000", "--reps", "1", "--seed", "9"]
        )
        assert (args.bytes, args.reps, args.seed) == (1000, 1, 9)

    def test_advise_sizes(self):
        args = build_parser().parse_args(["advise", "100", "200"])
        assert args.sizes == ["100", "200"]


class TestCommands:
    def test_theorem_command(self, capsys):
        assert main(["theorem", "--trials", "50"]) == 0
        assert "CONFIRMED" in capsys.readouterr().out

    def test_advise_command(self, capsys):
        assert main(["advise", "10000000", "20000000"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out
        assert "M/year" in out

    def test_fig1_command_tiny(self, capsys):
        code = main(["fig1", "--bytes", "2000000", "--reps", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "full-speed-then-idle" in out
        assert "max savings" in out

    def test_fig3_command_tiny(self, capsys):
        assert main(["fig3", "--bytes", "2000000"]) == 0
        out = capsys.readouterr().out
        assert "fair" in out and "serialized" in out

    def test_fig3_policy_flag_selects_panels(self, capsys):
        code = main(["fig3", "--bytes", "2000000", "--policy", "serialized"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== serialized ==" in out
        assert "== fair ==" not in out

    def test_policies_command_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("fair", "serialized", "srpt", "deadline", "load-adaptive"):
            assert name in out
        assert "retired spellings" in out


class TestLintCommand:
    """Exit-code contract: 0 clean, 1 findings, 2 usage error."""

    def test_clean_path_exits_zero(self, capsys):
        code = main(["lint", str(LINT_FIXTURES / "units" / "clean_units.py")])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main(["lint", str(LINT_FIXTURES / "units" / "bad_units.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "units-raw-literal" in out
        assert "bad_units.py" in out

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["lint", "--select", "no-such-rule", "src"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        code = main(["lint", "definitely/not/here"])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_json_format_emits_schema(self, capsys):
        code = main(
            ["lint", "--format", "json",
             str(LINT_FIXTURES / "hygiene" / "bad_hygiene.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["finding_count"] == len(payload["findings"]) > 0

    def test_select_restricts_rules(self, capsys):
        code = main(
            ["lint", "--select", "api-bare-except",
             str(LINT_FIXTURES / "hygiene" / "bad_hygiene.py")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "api-bare-except" in out
        assert "api-mutable-default" not in out

    def test_suppression_comments_respected(self, capsys):
        code = main(
            ["lint", str(LINT_FIXTURES / "suppression" / "suppressed.py")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "4e9" in out  # unsuppressed literal still reported
        assert "1e9" not in out  # targeted ignore honored

    def test_list_rules_exits_zero(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in (
            "units", "units-flow", "determinism", "determinism-flow",
            "cca-contract", "api-hygiene", "perf",
        ):
            assert family in out

    def test_sarif_flag_emits_sarif(self, capsys):
        code = main(
            ["lint", "--sarif",
             str(LINT_FIXTURES / "hygiene" / "bad_hygiene.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["tool"]["driver"]["name"] == "simlint"
        assert payload["runs"][0]["results"]

    def test_ignore_drops_a_rule(self, capsys):
        code = main(
            ["lint", "--ignore", "units-raw-literal",
             str(LINT_FIXTURES / "units" / "bad_units.py")]
        )
        out = capsys.readouterr().out
        assert "units-raw-literal" not in out
        assert code in (0, 1)

    def test_baseline_write_then_gate(self, capsys, tmp_path):
        target = str(LINT_FIXTURES / "units" / "bad_units.py")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--write-baseline", str(baseline), target]) == 0
        assert "wrote baseline" in capsys.readouterr().out
        assert main(["lint", "--baseline", str(baseline), target]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out
        assert "absorbed by the baseline" in out

    def test_default_path_is_src_and_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(Path(__file__).resolve().parents[1])
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out


class TestObsCommands:
    """--trace on figure commands and the obs report reader."""

    def _journal(self, tmp_path, errors=0):
        from repro.obs.journal import JournalWriter

        trace = tmp_path / "trace"
        trace.mkdir()
        with JournalWriter(trace / "journal.jsonl", worker=1) as journal:
            journal.write(
                "run_finished", item=0, scenario="s", seed=0,
                wall_s=0.5, sim_time_s=0.01, energy_j=2.0,
            )
            for i in range(errors):
                journal.write(
                    "worker_error", scenario="s", seed=i,
                    error_type="ExperimentError", error="boom",
                )
        return trace

    def test_trace_flag_writes_journal(self, capsys, tmp_path):
        trace = tmp_path / "t"
        code = main([
            "fig1", "--bytes", "2000000", "--reps", "1",
            "--trace", str(trace),
        ])
        assert code == 0
        assert (trace / "journal.jsonl").exists()
        assert (trace / "metrics.prom").exists()
        assert "trace written to" in capsys.readouterr().out

    def test_report_healthy_journal_exits_zero(self, capsys, tmp_path):
        trace = self._journal(tmp_path)
        assert main(["obs", "report", str(trace)]) == 0
        assert "1 runs finished" in capsys.readouterr().out

    def test_report_worker_errors_exit_one(self, capsys, tmp_path):
        trace = self._journal(tmp_path, errors=2)
        assert main(["obs", "report", str(trace)]) == 1
        assert "UNHEALTHY" in capsys.readouterr().out

    def test_report_json_format(self, capsys, tmp_path):
        trace = self._journal(tmp_path)
        assert main(["obs", "report", "--format", "json", str(trace)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["runs_finished"] == 1

    def test_report_accepts_journal_file_directly(self, tmp_path):
        trace = self._journal(tmp_path)
        assert main(["obs", "report", str(trace / "journal.jsonl")]) == 0

    def test_report_missing_journal_exits_two(self, capsys, tmp_path):
        assert main(["obs", "report", str(tmp_path / "absent")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_empty_journal_exits_two(self, capsys, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        (trace / "journal.jsonl").write_text("")
        assert main(["obs", "report", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "empty" in err
        assert "Traceback" not in err

    def test_report_tolerates_torn_final_line(self, capsys, tmp_path):
        # A journal whose last line was cut mid-write (killed sweep):
        # the unterminated tail is a write in progress, not corruption,
        # so the report still renders from the committed events.
        trace = self._journal(tmp_path)
        with (trace / "journal.jsonl").open("a") as handle:
            handle.write('{"event": "run_fini')
        assert main(["obs", "report", str(trace)]) == 0
        captured = capsys.readouterr()
        assert "1 runs finished" in captured.out
        assert "Traceback" not in captured.err

    def test_report_bad_terminated_line_exits_two(self, capsys, tmp_path):
        # A *terminated* unparseable line is real corruption, not a torn
        # tail — that still fails loudly.
        trace = self._journal(tmp_path)
        with (trace / "journal.jsonl").open("a") as handle:
            handle.write('{"event": "run_fini\n')
        assert main(["obs", "report", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "bad journal line" in err
        assert "Traceback" not in err

    def test_report_flags_killed_sweep_as_incomplete(self, capsys, tmp_path):
        # batch_started without its batch_finished: the coordinator was
        # killed mid-sweep, so the journal must not report healthy.
        from repro.obs.journal import JournalWriter

        trace = tmp_path / "killed"
        trace.mkdir()
        with JournalWriter(trace / "journal.jsonl", worker=1) as journal:
            journal.write("batch_started", items=2, backend="serial", cache=False)
            journal.write("run_started", item=0, scenario="s", seed=0)
            journal.write(
                "run_finished", item=0, scenario="s", seed=0,
                wall_s=0.5, sim_time_s=0.01, energy_j=2.0,
            )
            journal.write("run_started", item=1, scenario="s", seed=1)
        assert main(["obs", "report", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "INCOMPLETE" in out
        assert "1 run(s) still in flight" in out


class TestObsTimeline:
    """The obs timeline telemetry renderer."""

    def _telemetry(self, tmp_path):
        from repro.obs.telemetry import TELEMETRY_FILENAME, TelemetryWriter
        from repro.sim.probe import CWND_CHANNEL, TimeSeriesProbeSink

        trace = tmp_path / "trace"
        trace.mkdir()
        sink = TimeSeriesProbeSink()
        sink.sample(0.0, CWND_CHANNEL, "flow-1", 14600.0)
        sink.sample(0.5, CWND_CHANNEL, "flow-1", 29200.0)
        sink.sample(0.0, CWND_CHANNEL, "flow-2", 14600.0)
        with TelemetryWriter(trace / TELEMETRY_FILENAME) as writer:
            writer.write_sink(sink, "s", 0)
        return trace

    def test_text_format_lists_streams(self, capsys, tmp_path):
        trace = self._telemetry(tmp_path)
        assert main(["obs", "timeline", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "2 streams" in out
        assert "cwnd_bytes" in out
        assert "flow-1" in out

    def test_samples_flag_prints_points(self, capsys, tmp_path):
        trace = self._telemetry(tmp_path)
        assert main(["obs", "timeline", str(trace), "--samples", "2"]) == 0
        assert "14600" in capsys.readouterr().out

    def test_csv_format(self, capsys, tmp_path):
        trace = self._telemetry(tmp_path)
        assert main(["obs", "timeline", str(trace), "--format", "csv"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "scenario,seed,channel,entity,time_s,value"
        assert "s,0,cwnd_bytes,flow-1,0.0,14600.0" in lines

    def test_json_format(self, capsys, tmp_path):
        trace = self._telemetry(tmp_path)
        assert main(["obs", "timeline", str(trace), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert len(payload["streams"]) == 2

    def test_entity_filter_narrows_streams(self, capsys, tmp_path):
        trace = self._telemetry(tmp_path)
        code = main([
            "obs", "timeline", str(trace),
            "--entity", "flow-2", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [s["entity"] for s in payload["streams"]] == ["flow-2"]

    def test_no_match_exits_one(self, capsys, tmp_path):
        trace = self._telemetry(tmp_path)
        assert main([
            "obs", "timeline", str(trace), "--entity", "flow-9",
        ]) == 1
        assert "no telemetry streams match" in capsys.readouterr().err

    def test_missing_telemetry_exits_two(self, capsys, tmp_path):
        assert main(["obs", "timeline", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestObsBaselineCommands:
    """obs snapshot and the CI-gating obs diff."""

    def _trace(self, tmp_path, energy_j=2.0):
        from repro.obs.journal import JournalWriter

        trace = tmp_path / f"trace-{energy_j}"
        trace.mkdir()
        with JournalWriter(trace / "journal.jsonl", worker=1) as journal:
            for seed, scenario in ((0, "fig1-fair"), (1, "fig1-fsti")):
                journal.write(
                    "run_finished", item=seed, scenario=scenario, seed=seed,
                    wall_s=0.5, sim_time_s=0.01,
                    energy_j=energy_j if scenario == "fig1-fair" else 1.0,
                    counters={"retransmissions": 2, "bottleneck_drops": 4},
                )
        return trace

    def test_snapshot_to_stdout(self, capsys, tmp_path):
        trace = self._trace(tmp_path)
        assert main(["obs", "snapshot", str(trace)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["fig1-fair/energy_j"] == 2.0
        assert "fig1-fsti/savings_vs_fair_percent" in payload["metrics"]

    def test_snapshot_writes_baseline_file(self, capsys, tmp_path):
        trace = self._trace(tmp_path)
        out = tmp_path / "base.json"
        assert main(["obs", "snapshot", str(trace), "-o", str(out)]) == 0
        assert "wrote baseline" in capsys.readouterr().out
        assert json.loads(out.read_text())["version"] == 1

    def test_snapshot_empty_journal_exits_two(self, capsys, tmp_path):
        trace = tmp_path / "t"
        trace.mkdir()
        (trace / "journal.jsonl").write_text("")
        assert main(["obs", "snapshot", str(trace)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_against_self_baseline_exits_zero(self, capsys, tmp_path):
        trace = self._trace(tmp_path)
        base = tmp_path / "base.json"
        main(["obs", "snapshot", str(trace), "-o", str(base)])
        capsys.readouterr()
        assert main(["obs", "diff", str(base), str(trace)]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_diff_perturbed_metric_exits_one(self, capsys, tmp_path):
        # The acceptance gate: a metric drifting beyond its tolerance
        # must fail the command.
        base = tmp_path / "base.json"
        main(["obs", "snapshot", str(self._trace(tmp_path)), "-o", str(base)])
        capsys.readouterr()
        drifted = self._trace(tmp_path, energy_j=2.1)  # 5% >> 1e-4
        assert main(["obs", "diff", str(base), str(drifted)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "DRIFT" in out

    def test_diff_tolerance_override_can_absorb_drift(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        main(["obs", "snapshot", str(self._trace(tmp_path)), "-o", str(base)])
        capsys.readouterr()
        drifted = self._trace(tmp_path, energy_j=2.1)
        code = main([
            "obs", "diff", str(base), str(drifted),
            "--tolerance", "energy_j=0.1",
            "--tolerance", "savings_vs_fair_percent=1.0",
        ])
        assert code == 0

    def test_diff_bad_tolerance_exits_two(self, capsys, tmp_path):
        trace = self._trace(tmp_path)
        base = tmp_path / "base.json"
        main(["obs", "snapshot", str(trace), "-o", str(base)])
        capsys.readouterr()
        assert main([
            "obs", "diff", str(base), str(trace),
            "--tolerance", "energy_j",
        ]) == 2
        assert "bad --tolerance" in capsys.readouterr().err

    def test_diff_missing_baseline_exits_two(self, capsys, tmp_path):
        trace = self._trace(tmp_path)
        assert main([
            "obs", "diff", str(tmp_path / "absent.json"), str(trace),
        ]) == 2
        assert "no baseline" in capsys.readouterr().err


class TestObsWatchCommand:
    """greenenvy obs watch: one-shot snapshots of a traced sweep."""

    def _trace(self, tmp_path, aborted=False):
        from repro.obs.journal import JournalWriter

        trace = tmp_path / "trace"
        trace.mkdir()
        with JournalWriter(trace / "journal.jsonl", worker=1) as journal:
            journal.write("batch_started", items=1, backend="serial")
            if aborted:
                journal.write(
                    "batch_aborted", items=1, completed=0,
                    reason="drift vs baseline: s/energy_j",
                )
            else:
                journal.write("run_started", item=0, scenario="s", seed=0)
                journal.write(
                    "run_finished", item=0, scenario="s", seed=0,
                    wall_s=0.5, sim_time_s=0.01, energy_j=2.0,
                )
                journal.write(
                    "batch_finished", items=1, executed=1, cache_hits=0
                )
        return trace

    def test_watch_once_json(self, capsys, tmp_path):
        trace = self._trace(tmp_path)
        assert main(["obs", "watch", "--once", "--json", str(trace)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["items_total"] == 1
        assert payload["complete"] is True

    def test_watch_once_text(self, capsys, tmp_path):
        trace = self._trace(tmp_path)
        assert main(["obs", "watch", "--once", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "1/1 items" in out
        assert "complete" in out

    def test_watch_aborted_trace_exits_one(self, capsys, tmp_path):
        trace = self._trace(tmp_path, aborted=True)
        assert main(["obs", "watch", "--once", "--json", str(trace)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["aborted"] is True
        assert "drift vs baseline" in payload["abort_reason"]

    def test_watch_missing_trace_exits_two(self, capsys, tmp_path):
        code = main(["obs", "watch", "--once", str(tmp_path / "absent")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_abort_on_drift_requires_baseline(self, capsys, tmp_path):
        trace = self._trace(tmp_path)
        code = main(["obs", "watch", "--once", "--abort-on-drift", str(trace)])
        assert code == 2
        assert "--abort-on-drift needs --baseline" in capsys.readouterr().err


class TestAbortOnDrift:
    """--abort-on-drift: mid-run gating with its own exit code."""

    FIG1 = ["fig1", "--bytes", "400000", "--reps", "2"]

    def test_fig1_exits_three_on_injected_regression(self, capsys, tmp_path):
        trace = tmp_path / "trace"
        assert main(self.FIG1 + ["--trace", str(trace)]) == 0
        baseline = tmp_path / "baseline.json"
        assert main([
            "obs", "snapshot", str(trace), "-o", str(baseline),
        ]) == 0
        # Inject a regression: the baseline remembers half the energy
        # every scenario actually burns.
        doc = json.loads(baseline.read_text())
        for key in doc["metrics"]:
            if key.endswith("/energy_j"):
                doc["metrics"][key] /= 2
        baseline.write_text(json.dumps(doc))
        capsys.readouterr()
        code = main(self.FIG1 + ["--abort-on-drift", str(baseline)])
        assert code == 3
        captured = capsys.readouterr()
        assert "sweep aborted after" in captured.err
        assert "drift vs baseline" in captured.err
        assert "REGRESSED" in captured.out

    def test_matching_baseline_runs_to_completion(self, capsys, tmp_path):
        trace = tmp_path / "trace"
        assert main(self.FIG1 + ["--trace", str(trace)]) == 0
        baseline = tmp_path / "baseline.json"
        main(["obs", "snapshot", str(trace), "-o", str(baseline)])
        capsys.readouterr()
        code = main(self.FIG1 + ["--abort-on-drift", str(baseline)])
        assert code == 0
        assert "max savings" in capsys.readouterr().out

    def test_pre_existing_abort_file_stops_a_traced_figure(
        self, capsys, tmp_path
    ):
        # The other half of the dual channel: no drift gate at all, just
        # the flag file an external watcher (or operator) dropped.
        trace = tmp_path / "trace"
        trace.mkdir()
        (trace / "abort.requested").write_text("operator stop\n")
        code = main([
            "fig1", "--bytes", "400000", "--reps", "1",
            "--trace", str(trace),
        ])
        assert code == 3
        assert "operator stop" in capsys.readouterr().err
