"""Tests for the FCT-vs-energy Pareto evaluator."""

import pytest

from repro.errors import ExperimentError
from repro.figures.pareto import WORKLOADS, pareto_scenario_name, run_pareto
from repro.sched import policy_names

LINK_BATCH = (2_000_000, 1_000_000, 500_000)


@pytest.fixture(scope="module")
def pareto():
    return run_pareto(
        link_batch=LINK_BATCH,
        n_flows=40,
        mix="rpc",
        leaves=2,
        spines=1,
        hosts_per_leaf=4,
    )


class TestParetoSweep:
    def test_covers_every_policy_on_both_workloads(self, pareto):
        assert tuple(pareto.policies) == policy_names()
        for workload in WORKLOADS:
            points = pareto.workload_points(workload)
            assert {p.policy for p in points} == set(policy_names())

    def test_scenario_naming_convention(self):
        assert pareto_scenario_name("link", "srpt") == "pareto_link-srpt"

    def test_points_carry_energy_and_fct_percentiles(self, pareto):
        for point in pareto.points:
            assert point.energy_j > 0
            assert 0 < point.fct_p50_s <= point.fct_p99_s

    def test_fair_savings_are_zero_by_definition(self, pareto):
        for workload in WORKLOADS:
            assert pareto.savings_vs_fair_percent(workload, "fair") == 0.0

    def test_link_serialization_saves_energy(self, pareto):
        assert pareto.savings_vs_fair_percent("link", "serialized") > 0

    def test_alias_spelling_resolves_to_srpt_point(self, pareto):
        with pytest.deprecated_call():
            point = pareto.point("link", "pfabric")
        assert point is pareto.point("link", "srpt")

    def test_unknown_workload_rejected(self, pareto):
        with pytest.raises(ExperimentError, match="unknown workload"):
            pareto.workload_points("wan")


class TestFrontier:
    def test_frontier_is_nonempty_and_sorted_by_fct(self, pareto):
        for workload in WORKLOADS:
            front = pareto.frontier(workload)
            assert front
            fcts = [p.fct_p50_s for p in front]
            assert fcts == sorted(fcts)

    def test_frontier_energies_strictly_improve(self, pareto):
        for workload in WORKLOADS:
            energies = [p.energy_j for p in pareto.frontier(workload)]
            assert all(b < a for a, b in zip(energies, energies[1:]))

    def test_frontier_points_are_undominated(self, pareto):
        for workload in WORKLOADS:
            points = pareto.workload_points(workload)
            for front_point in pareto.frontier(workload):
                dominators = [
                    p
                    for p in points
                    if p.fct_p50_s <= front_point.fct_p50_s
                    and p.energy_j <= front_point.energy_j
                    and (
                        p.fct_p50_s < front_point.fct_p50_s
                        or p.energy_j < front_point.energy_j
                    )
                ]
                assert not dominators

    def test_tail_frontier_uses_p99(self, pareto):
        for workload in WORKLOADS:
            front = pareto.frontier(workload, tail=True)
            fcts = [p.fct_p99_s for p in front]
            assert fcts == sorted(fcts)

    def test_table_marks_the_frontier(self, pareto):
        table = pareto.format_table()
        assert "link workload" in table
        assert "fabric workload" in table
        assert "*" in table


class TestValidation:
    def test_fair_is_required(self):
        with pytest.raises(ExperimentError, match="fair"):
            run_pareto(policies=["serialized", "srpt"], link_batch=LINK_BATCH)
