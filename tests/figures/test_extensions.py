"""Tests for the §5 extension experiments: SRPT, incast, load balancing."""

import pytest

from repro.figures.incast import run_incast_sweep
from repro.figures.load_balance import (
    balanced_utilizations,
    consolidated_utilizations,
    run_hardware_comparison,
)
from repro.figures.srpt import run_srpt_comparison

SMALL_BATCH = (8_000_000, 4_000_000, 2_000_000)


@pytest.fixture(scope="module")
def srpt():
    return run_srpt_comparison(batch=SMALL_BATCH)


class TestSrpt:
    def test_fair_is_most_expensive(self, srpt):
        fair = srpt.points["fair"].energy_j
        assert srpt.points["srpt"].energy_j < fair
        assert srpt.points["serialized"].energy_j < fair

    def test_srpt_improves_mean_fct(self, srpt):
        assert srpt.fct_speedup_vs_fair("srpt") > 1.1

    def test_serialized_has_best_mean_fct(self, srpt):
        assert (
            srpt.points["serialized"].mean_fct_s
            < srpt.points["srpt"].mean_fct_s
        )

    def test_deprecated_pfabric_spelling_resolves(self, srpt):
        with pytest.deprecated_call():
            point = srpt.point("pfabric")
        assert point is srpt.points["srpt"]

    def test_makespans_comparable(self, srpt):
        """All three schedules keep the bottleneck busy; makespan is
        roughly the aggregate serialization time."""
        makespans = [p.makespan_s for p in srpt.points.values()]
        assert max(makespans) < 1.5 * min(makespans)

    def test_table_renders(self, srpt):
        table = srpt.format_table()
        assert "srpt" in table and "serialized" in table


class TestIncast:
    def test_energy_grows_with_fan_in(self):
        result = run_incast_sweep(
            fan_ins=(1, 4), aggregate_bytes=8_000_000
        )
        assert result.point(4).energy_j > 2.5 * result.point(1).energy_j

    def test_makespan_stable_at_fixed_aggregate(self):
        result = run_incast_sweep(
            fan_ins=(1, 4), aggregate_bytes=8_000_000
        )
        assert result.point(4).makespan_s == pytest.approx(
            result.point(1).makespan_s, rel=0.3
        )

    def test_table_renders(self):
        result = run_incast_sweep(fan_ins=(1, 2), aggregate_bytes=4_000_000)
        assert "fan-in" in result.format_table()


class TestLoadBalancePlacements:
    def test_balanced_spreads_evenly(self):
        assert balanced_utilizations(0.25, 4) == [0.25] * 4

    def test_consolidated_fills_then_sleeps(self):
        assert consolidated_utilizations(0.25, 4) == [1.0, 0.0, 0.0, 0.0]

    def test_consolidated_partial_fill(self):
        utils = consolidated_utilizations(0.375, 4)
        assert utils == [1.0, 0.5, 0.0, 0.0]

    def test_total_traffic_preserved(self):
        for load in (0.1, 0.33, 0.8):
            assert sum(consolidated_utilizations(load, 8)) == pytest.approx(
                sum(balanced_utilizations(load, 8))
            )


class TestHardwareComparison:
    def test_todays_hardware_indifferent_to_balance(self):
        today, _ = run_hardware_comparison()
        assert today.max_savings() == pytest.approx(0.0, abs=1e-12)

    def test_rate_adaptive_hardware_rewards_consolidation(self):
        _, adaptive = run_hardware_comparison()
        assert adaptive.max_savings() > 0.03

    def test_savings_largest_at_low_load(self):
        _, adaptive = run_hardware_comparison(loads=(0.125, 0.75))
        low, high = adaptive.points
        assert low.savings_fraction > high.savings_fraction
