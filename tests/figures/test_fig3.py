"""Tests for the Figure 3 timeseries pipeline."""

import pytest

from repro.figures.fig3 import run_fig3

TRANSFER = 4_000_000


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(transfer_bytes=TRANSFER, probe_interval_s=5e-4)


class TestFig3:
    def test_two_flows_per_panel(self, fig3):
        assert len(fig3.panel("fair")) == 2
        assert len(fig3.panel("serialized")) == 2

    def test_deprecated_fsti_spelling_resolves(self, fig3):
        with pytest.deprecated_call():
            panel = fig3.panel("fsti")
        assert panel == fig3.panel("serialized")

    def test_fair_flows_hold_half_rate(self, fig3):
        for _flow, series in fig3.panel("fair"):
            busy = [v for v in series.values if v > 1e8]
            assert busy
            mean_busy = sum(busy) / len(busy)
            assert mean_busy == pytest.approx(5e9, rel=0.15)

    def test_serialized_flows_burst_at_line_rate(self, fig3):
        for _flow, series in fig3.panel("serialized"):
            assert max(series.values) > 8e9

    def test_serialized_flows_do_not_overlap(self, fig3):
        """At most one serialized flow is active at a time (the handoff
        sample may see both because a bin straddles the boundary)."""
        series = [s for _f, s in fig3.panel("serialized")]
        times = series[0].times
        overlapping = 0
        for i, _t in enumerate(times):
            active = sum(
                1
                for s in series
                if i < len(s.values) and s.values[i] > 1e9
            )
            if active > 1:
                overlapping += 1
        assert overlapping <= 1

    def test_both_schedules_same_window_average(self, fig3):
        """Every flow averages ~C/2 over its panel's full duration."""
        fair = fig3.mean_throughputs_gbps("fair")
        serialized = fig3.mean_throughputs_gbps("serialized")
        for value in fair + serialized:
            assert value == pytest.approx(5.0, rel=0.2)

    def test_durations_comparable(self, fig3):
        assert fig3.duration_s("serialized") == pytest.approx(
            fig3.duration_s("fair"), rel=0.25
        )
