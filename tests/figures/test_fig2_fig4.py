"""Tests for the Figure 2 and Figure 4 pipelines."""

import pytest

from repro.analysis.concavity import chord_always_below, is_concave, is_increasing
from repro.energy import calibration as cal
from repro.figures.fig2 import run_fig2
from repro.figures.fig4 import run_fig4

THROUGHPUTS = (0.0, 2.0, 5.0, 8.0, 10.0)


@pytest.fixture(scope="module")
def fig2():
    return run_fig2(
        throughputs_gbps=THROUGHPUTS, window_s=5e-3, repetitions=2
    )


class TestFig2:
    def test_idle_point_matches_paper(self, fig2):
        idle = fig2.smooth[0]
        assert idle.mean_power_w == pytest.approx(cal.P_IDLE_W, rel=0.02)

    def test_half_rate_near_anchor(self, fig2):
        half = [p for p in fig2.smooth if p.target_gbps == 5.0][0]
        assert half.mean_power_w == pytest.approx(cal.P_HALF_RATE_W, rel=0.03)

    def test_smooth_curve_concave_increasing(self, fig2):
        points = fig2.smooth_curve()
        assert is_increasing(points, tol=0.3)
        assert is_concave(points, tol=0.3)

    def test_chord_below_curve(self, fig2):
        smooth = {t: p for t, p in fig2.smooth_curve()}
        for t, chord_power in fig2.chord_curve():
            if 0 < t < 10:
                assert chord_power < smooth[t]

    def test_burst_series_roughly_linear(self, fig2):
        pts = fig2.chord_curve()
        (x0, y0), (xn, yn) = pts[0], pts[-1]
        slope = (yn - y0) / (xn - x0)
        for x, y in pts[1:-1]:
            assert y == pytest.approx(y0 + slope * (x - x0), abs=1.5)

    def test_table_renders(self, fig2):
        assert "throughput" in fig2.format_table()


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(
        loads=(0.0, 0.25, 0.75),
        throughputs_gbps=(0.0, 5.0, 10.0),
        window_s=5e-3,
        repetitions=2,
    )


class TestFig4:
    def test_load_shifts_curve_up(self, fig4):
        idle_curve = {p.target_gbps: p.mean_power_w for p in fig4.curves[0.0]}
        loaded_curve = {p.target_gbps: p.mean_power_w for p in fig4.curves[0.75]}
        for t in (0.0, 5.0, 10.0):
            assert loaded_curve[t] > idle_curve[t] + 55

    def test_savings_shrink_with_load(self, fig4):
        s0 = fig4.savings_fsti_vs_fair_percent(0.0)
        s25 = fig4.savings_fsti_vs_fair_percent(0.25)
        s75 = fig4.savings_fsti_vs_fair_percent(0.75)
        assert s0 > s25 > s75 > 0

    def test_savings_match_paper_bands(self, fig4):
        assert fig4.savings_fsti_vs_fair_percent(0.0) == pytest.approx(16.3, abs=1.5)
        assert fig4.savings_fsti_vs_fair_percent(0.25) == pytest.approx(1.0, abs=0.5)
        assert fig4.savings_fsti_vs_fair_percent(0.75) == pytest.approx(0.2, abs=0.2)

    def test_table_renders(self, fig4):
        table = fig4.format_table()
        assert "load 75%" in table
