"""Tests for the subflow-multiplexing (MPTCP) energy experiment."""

import pytest

from repro.figures.mptcp import run_mptcp_comparison


@pytest.fixture(scope="module")
def result():
    return run_mptcp_comparison(total_bytes=8_000_000, subflows=4)


class TestMptcp:
    def test_shared_subflows_cost_like_single(self, result):
        """Multiplexing on one package is nearly free ([59]'s good case)."""
        assert result.energy("subflows-shared") == pytest.approx(
            result.energy("single"), rel=0.1
        )

    def test_spreading_subflows_is_expensive(self, result):
        """One package per subflow keeps k idle floors awake."""
        assert result.spread_penalty() > 1.0

    def test_penalty_at_least_the_idle_floors(self, result):
        """Spreading pays (k-1) extra idle floors plus each package's
        concave ramp for its C/k share — so the extra energy exceeds the
        pure idle-floor estimate but stays the same order of magnitude."""
        single = result.measurements["single"]
        spread = result.measurements["subflows-spread"]
        extra = spread.energy_j - single.energy_j
        from repro.energy import calibration as cal

        idle_floors = (result.subflows - 1) * cal.P_IDLE_W * single.duration_s
        assert idle_floors < extra < 2.5 * idle_floors

    def test_durations_comparable(self, result):
        durations = [m.duration_s for m in result.measurements.values()]
        assert max(durations) < 1.3 * min(durations)

    def test_table_renders(self, result):
        table = result.format_table()
        assert "subflows-spread" in table
