"""Tests for the ablation studies."""

import pytest

from repro.figures.ablation import (
    bbr2_alpha_ablation,
    buffer_ablation,
    concavity_ablation,
    ecn_threshold_ablation,
)


class TestConcavityAblation:
    def test_concave_curve_saves(self):
        result = concavity_ablation()
        assert result.concave_savings_fraction == pytest.approx(0.163, abs=0.01)

    def test_linear_curve_saves_nothing(self):
        result = concavity_ablation()
        assert result.linear_savings_fraction == pytest.approx(0.0, abs=1e-9)


class TestBbr2Ablation:
    def test_alpha_knobs_explain_overhead(self):
        result = bbr2_alpha_ablation(transfer_bytes=6_000_000)
        assert result.alpha_energy_j > result.mature_energy_j
        assert result.alpha_overhead_vs_bbr > result.mature_overhead_vs_bbr
        assert result.alpha_overhead_vs_bbr > 0.05


class TestEcnThresholdAblation:
    def test_reports_every_threshold(self):
        out = ecn_threshold_ablation(
            thresholds_bytes=(50 * 1024, 200 * 1024),
            transfer_bytes=6_000_000,
        )
        assert set(out) == {50 * 1024, 200 * 1024}
        assert all(e > 0 for e in out.values())


class TestBufferAblation:
    def test_reports_energy_and_retx(self):
        out = buffer_ablation(
            buffers_bytes=(256 * 1024, 2 * 1024 * 1024),
            transfer_bytes=6_000_000,
        )
        assert len(out) == 2
        for energy, retx in out.values():
            assert energy > 0
            assert retx >= 0
