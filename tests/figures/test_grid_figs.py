"""Tests for the CCA x MTU grid and the Figure 5-8 views.

Runs a reduced grid once (module-scoped) and checks each figure's
paper-facing claims on it.
"""

import pytest

from repro.figures.fig5 import fig5_from_grid
from repro.figures.fig6 import fig6_from_grid
from repro.figures.fig7 import fig7_from_grid
from repro.figures.fig8 import fig8_from_grid
from repro.figures.grid import run_cca_mtu_grid

CCAS = ("cubic", "reno", "bbr", "bbr2", "dctcp", "baseline")
MTUS = (1500, 9000)
TRANSFER = 8_000_000


@pytest.fixture(scope="module")
def grid():
    return run_cca_mtu_grid(
        transfer_bytes=TRANSFER, mtus=MTUS, ccas=CCAS, repetitions=2
    )


class TestGrid:
    def test_all_cells_present(self, grid):
        assert len(grid.cells) == len(CCAS) * len(MTUS)
        assert grid.cell("cubic", 9000).mean_energy_j > 0

    def test_missing_cell_raises(self, grid):
        with pytest.raises(LookupError):
            grid.cell("cubic", 4000)

    def test_ccas_and_mtus(self, grid):
        assert set(grid.ccas()) == set(CCAS)
        assert grid.mtus() == sorted(MTUS)

    def test_scatter_has_one_point_per_run(self, grid):
        pts = grid.scatter(x="fct")
        assert len(pts) == len(CCAS) * len(MTUS) * 2


class TestFig5View:
    def test_real_ccas_beat_baseline(self, grid):
        fig5 = fig5_from_grid(grid)
        overheads = fig5.baseline_overhead_fraction(9000)
        for cca, saving in overheads.items():
            if cca == "bbr2":
                continue
            assert saving > 0, f"{cca} should use less energy than baseline"

    def test_bbr2_costs_more_than_bbr(self, grid):
        fig5 = fig5_from_grid(grid)
        assert fig5.bbr2_vs_bbr_fraction(9000) > 0.1

    def test_mtu_9000_saves_energy(self, grid):
        fig5 = fig5_from_grid(grid)
        for cca in CCAS:
            assert fig5.mtu_savings_fraction(cca) > 0.05, cca

    def test_table_renders(self, grid):
        assert "cca" in fig5_from_grid(grid).format_table()


class TestFig6View:
    def test_power_spread_across_ccas(self, grid):
        fig6 = fig6_from_grid(grid)
        assert fig6.power_spread_fraction(1500) > 0.03

    def test_small_mtu_draws_more_power(self, grid):
        fig6 = fig6_from_grid(grid)
        for cca in ("cubic", "reno", "bbr"):
            assert fig6.power_w(cca, 1500) > fig6.power_w(cca, 9000)


class TestFig7View:
    def test_energy_fct_strongly_correlated(self, grid):
        fig7 = fig7_from_grid(grid)
        assert fig7.energy_fct_correlation() > 0.7

    def test_mtu_clusters_separate(self, grid):
        fig7 = fig7_from_grid(grid)
        small, large = fig7.cluster_means()
        assert small[0] > large[0]  # 1500 runs slower
        assert small[1] > large[1]  # and costlier


class TestFig8View:
    def test_baseline_most_retransmissions(self, grid):
        fig8 = fig8_from_grid(grid)
        assert fig8.most_retransmitting_cca() == "baseline"

    def test_positive_retx_energy_correlation(self, grid):
        fig8 = fig8_from_grid(grid)
        assert fig8.correlation(exclude=("bbr2",)) > 0

    def test_table_renders(self, grid):
        assert "retransmissions" in fig8_from_grid(grid).format_table()
