"""Tests for convergence analysis and the friendliness matrix."""

import pytest

from repro.analysis.convergence import (
    convergence_time,
    fairness_over_time,
    mean_fairness,
)
from repro.errors import AnalysisError
from repro.figures.friendliness import run_friendliness_matrix, run_pairing
from repro.sim.trace import TimeSeries


def series(name, values, interval=1.0):
    ts = TimeSeries(name)
    for i, v in enumerate(values):
        ts.record(i * interval, v)
    return ts


class TestConvergenceAnalysis:
    def test_fair_series_index_one(self):
        a = series("a", [5.0, 5.0, 5.0])
        b = series("b", [5.0, 5.0, 5.0])
        points = fairness_over_time([a, b])
        assert all(f == pytest.approx(1.0) for _t, f in points)

    def test_skewed_series_low_index(self):
        a = series("a", [9.0, 9.0])
        b = series("b", [1.0, 1.0])
        assert mean_fairness([a, b]) < 0.7

    def test_idle_samples_skipped(self):
        a = series("a", [0.0, 5.0])
        b = series("b", [0.0, 5.0])
        points = fairness_over_time([a, b])
        assert len(points) == 1

    def test_convergence_time_detects_settling(self):
        # Jain(6,4) = 0.962 already clears the 0.95 threshold, so the
        # sustained-fair run starts at t=2.
        a = series("a", [9, 8, 6, 5, 5, 5, 5, 5, 5, 5])
        b = series("b", [1, 2, 4, 5, 5, 5, 5, 5, 5, 5])
        t = convergence_time([a, b], threshold=0.95, hold_samples=3)
        assert t == pytest.approx(2.0)

    def test_never_converges_returns_none(self):
        a = series("a", [9.0] * 6)
        b = series("b", [1.0] * 6)
        assert convergence_time([a, b]) is None

    def test_needs_two_flows(self):
        with pytest.raises(AnalysisError):
            fairness_over_time([series("a", [1.0])])

    def test_two_competing_cubic_flows_converge(self):
        """End to end: real competing flows approach fair sharing."""
        from repro.harness.experiment import FlowSpec, Scenario
        from repro.harness.runner import run_once

        scenario = Scenario(
            "conv",
            flows=[FlowSpec(10_000_000, cca="cubic"), FlowSpec(10_000_000, cca="cubic")],
            probe_interval_s=1e-3,
        )
        m = run_once(scenario, seed=0)
        fairness = mean_fairness(list(m.throughput_series.values()))
        assert fairness > 0.8


class TestFriendliness:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_friendliness_matrix(
            ccas=("cubic", "bbr", "reno"), transfer_bytes=6_000_000
        )

    def test_all_pairings_present(self, matrix):
        assert len(matrix.pairings) == 3  # C(3, 2)

    def test_shares_are_fractions(self, matrix):
        for p in matrix.pairings:
            assert 0.0 <= p.share_a <= 1.0

    def test_fairness_in_bounds(self, matrix):
        for p in matrix.pairings:
            assert 0.5 <= p.mean_fairness <= 1.0 + 1e-9

    def test_energy_positive(self, matrix):
        assert all(p.energy_j > 0 for p in matrix.pairings)

    def test_bully_labels_larger_share(self, matrix):
        for p in matrix.pairings:
            expected = p.cca_a if p.share_a >= 0.5 else p.cca_b
            assert p.bully == expected

    def test_lookup(self, matrix):
        assert matrix.pairing("cubic", "bbr").cca_b == "bbr"
        with pytest.raises(LookupError):
            matrix.pairing("cubic", "vegas")

    def test_same_cca_pairing_roughly_fair(self):
        result = run_pairing("reno", "reno", transfer_bytes=6_000_000)
        assert 0.25 <= result.share_a <= 0.75

    def test_table_renders(self, matrix):
        assert "mean Jain" in matrix.format_table()
