"""Tests for the Figure 1 pipeline (small sizes for speed)."""

import pytest

from repro.figures.fig1 import run_fig1

TRANSFER = 4_000_000  # small but enough for stable shares


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(
        transfer_bytes=TRANSFER,
        fractions=(0.2, 0.5, 0.8),
        repetitions=2,
    )


class TestFig1Shape:
    def test_has_fair_and_fsti_points(self, fig1):
        assert fig1.fair_point.label == "fair"
        assert fig1.fsti_point.label == "full-speed-then-idle"

    def test_fair_is_most_expensive(self, fig1):
        fair_energy = fig1.fair_point.mean_energy_j
        for point in fig1.points:
            if point.label != "fair":
                assert point.mean_energy_j < fair_energy

    def test_fsti_is_cheapest(self, fig1):
        fsti = fig1.fsti_point.mean_energy_j
        for point in fig1.points:
            assert point.mean_energy_j >= fsti * 0.999

    def test_max_savings_near_paper(self, fig1):
        assert 12.0 <= fig1.max_savings_percent <= 20.0

    def test_savings_symmetric(self, fig1):
        by_frac = {p.flow0_fraction: p for p in fig1.points}
        low = fig1.savings_vs_fair_percent(by_frac[0.2])
        high = fig1.savings_vs_fair_percent(by_frac[0.8])
        assert low == pytest.approx(high, abs=1.5)

    def test_table_renders(self, fig1):
        table = fig1.format_table()
        assert "fair" in table
        assert "full-speed-then-idle" in table
