"""The executor layer: backend interchangeability and grid determinism.

The contract under test is the one the paper's methodology depends on:
a measurement is a pure function of (scenario spec, seed), so *how* the
grid executes — serially, across worker processes, via the cache —
must never change a single bit of the results.
"""

import pytest

from repro.errors import ExperimentError
from repro.figures.grid import run_cca_mtu_grid
from repro.harness.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    WorkItem,
    resolve_executor,
    run_work_items,
)
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once, run_repeated
from repro.harness.sweep import Sweep

SIZE = 400_000


def tiny_scenario(name="exec", **overrides):
    defaults = dict(
        name=name, flows=[FlowSpec(SIZE)], packages=1
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestResolve:
    def test_default_is_serial(self):
        assert isinstance(resolve_executor(), SerialExecutor)
        assert isinstance(resolve_executor(jobs=1), SerialExecutor)

    def test_jobs_selects_process_pool(self):
        backend = resolve_executor(jobs=4)
        assert isinstance(backend, ProcessExecutor)
        assert backend.jobs == 4

    def test_names_select_backends(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("process", jobs=2), ProcessExecutor)

    def test_instance_passes_through(self):
        backend = SerialExecutor()
        assert resolve_executor(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError, match="unknown executor"):
            resolve_executor("threads")

    def test_bad_job_count_rejected(self):
        with pytest.raises(ExperimentError, match=">= 1"):
            ProcessExecutor(0)


class TestBackendEquivalence:
    def test_process_pool_matches_serial(self):
        items = [WorkItem(scenario=tiny_scenario(), seed=s) for s in range(4)]
        serial = SerialExecutor().run_items(items)
        parallel = ProcessExecutor(4).run_items(items)
        assert serial == parallel  # full dataclass equality, series included

    def test_order_follows_submission_not_completion(self):
        # A bigger (slower) first item must not let item 2 overtake it.
        items = [
            WorkItem(scenario=tiny_scenario("slow", flows=[FlowSpec(4 * SIZE)]), seed=0),
            WorkItem(scenario=tiny_scenario("fast"), seed=1),
        ]
        results = ProcessExecutor(2).run_items(items)
        assert [r.scenario for r in results] == ["slow", "fast"]
        assert [r.seed for r in results] == [0, 1]

    def test_seed_is_per_item(self):
        items = [WorkItem(scenario=tiny_scenario(), seed=7)]
        (result,) = run_work_items(items, jobs=2)
        assert result == run_once(tiny_scenario(), seed=7)

    def test_run_repeated_jobs_matches_serial(self):
        scenario = tiny_scenario()
        serial = run_repeated(scenario, repetitions=3, base_seed=5)
        parallel = run_repeated(scenario, repetitions=3, base_seed=5, jobs=3)
        assert [r.energy_j for r in serial.runs] == [
            r.energy_j for r in parallel.runs
        ]


class TestGridDeterminism:
    """jobs=1 and jobs=4 runs of the CCA x MTU grid are bit-identical."""

    @pytest.fixture(scope="class")
    def grids(self):
        kwargs = dict(
            transfer_bytes=SIZE,
            mtus=(1500, 9000),
            ccas=("cubic", "bbr"),
            repetitions=2,
            base_seed=3,
        )
        return (
            run_cca_mtu_grid(**kwargs, jobs=1),
            run_cca_mtu_grid(**kwargs, jobs=4),
        )

    def test_mean_energy_identical_per_cell(self, grids):
        serial, parallel = grids
        for cell in serial.cells:
            twin = parallel.cell(cell.cca, cell.mtu_bytes)
            assert cell.mean_energy_j == twin.mean_energy_j

    def test_every_run_identical(self, grids):
        serial, parallel = grids
        for cell in serial.cells:
            twin = parallel.cell(cell.cca, cell.mtu_bytes)
            assert cell.result.runs == twin.result.runs


class TestSweepParallel:
    def test_sweep_rows_identical_across_backends(self):
        sweep = Sweep({"mtu": [1500, 9000]})

        def factory(mtu):
            return tiny_scenario(f"sweep-{mtu}", mtu_bytes=mtu)

        serial = sweep.run(factory, repetitions=2)
        parallel = sweep.run(factory, repetitions=2, jobs=2)
        for a, b in zip(serial.rows, parallel.rows):
            assert a.params == b.params
            assert a.result.runs == b.result.runs

    def test_sweep_rejects_zero_repetitions(self):
        with pytest.raises(ExperimentError, match="repetition"):
            Sweep({"mtu": [1500]}).run(lambda mtu: tiny_scenario(), repetitions=0)

    def test_custom_executor_instance(self):
        class CountingExecutor(Executor):
            name = "counting"

            def __init__(self):
                self.items_seen = 0

            def run_items(self, items):
                self.items_seen += len(items)
                return SerialExecutor().run_items(items)

        backend = CountingExecutor()
        run_repeated(tiny_scenario(), repetitions=2, executor=backend)
        assert backend.items_seen == 2
