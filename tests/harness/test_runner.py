"""Integration tests for the scenario runner."""

import pytest

from repro.energy import calibration as cal
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once, run_repeated
from repro.units import gbps

SIZE = 2_000_000


def single_flow(**kwargs):
    defaults = dict(name="single", flows=[FlowSpec(SIZE)])
    defaults.update(kwargs)
    return Scenario(**defaults)


class TestRunOnce:
    def test_measures_energy_and_duration(self):
        m = run_once(single_flow())
        assert m.energy_j > 0
        assert m.duration_s > 0
        assert m.average_power_w > cal.P_IDLE_W

    def test_flow_results_attached(self):
        m = run_once(single_flow())
        assert len(m.flow_results) == 1
        assert m.flow_results[0].bytes_transferred == SIZE

    def test_deterministic_given_seed(self):
        a = run_once(single_flow(), seed=7)
        b = run_once(single_flow(), seed=7)
        assert a.energy_j == pytest.approx(b.energy_j, rel=1e-12)

    def test_seeds_vary_results(self):
        a = run_once(single_flow(), seed=1)
        b = run_once(single_flow(), seed=2)
        assert a.energy_j != b.energy_j  # power noise differs

    def test_noise_can_be_disabled(self):
        scenario = single_flow(power_noise_sigma=0.0, start_jitter_s=0.0)
        a = run_once(scenario, seed=1)
        b = run_once(scenario, seed=2)
        assert a.energy_j == pytest.approx(b.energy_j, rel=1e-9)

    def test_packages_override(self):
        one = run_once(single_flow(packages=1, power_noise_sigma=0.0))
        two = run_once(single_flow(packages=2, power_noise_sigma=0.0))
        # the second package only adds idle power
        extra = two.energy_j - one.energy_j
        assert extra == pytest.approx(
            cal.P_IDLE_W * two.duration_s, rel=0.05
        )

    def test_background_load_raises_power(self):
        quiet = run_once(single_flow(packages=1))
        loaded = run_once(single_flow(packages=1, background_load=0.5))
        assert loaded.average_power_w > quiet.average_power_w + 35

    def test_chained_flows_serialize(self):
        scenario = Scenario(
            "chain",
            flows=[FlowSpec(SIZE), FlowSpec(SIZE, after_flow=0)],
        )
        m = run_once(scenario)
        first, second = m.flow_results
        assert second.start_time >= first.end_time

    def test_rate_cap_respected(self):
        scenario = Scenario(
            "capped",
            flows=[FlowSpec(SIZE, target_rate_bps=gbps(1.0))],
        )
        m = run_once(scenario)
        assert m.flow_results[0].mean_throughput_bps < gbps(1.5)

    def test_probes_recorded_when_requested(self):
        scenario = single_flow(probe_interval_s=1e-3)
        m = run_once(scenario)
        assert len(m.throughput_series) == 1
        series = next(iter(m.throughput_series.values()))
        assert len(series) > 0

    def test_mtu_override(self):
        fast = run_once(single_flow(mtu_bytes=9000))
        slow = run_once(single_flow(mtu_bytes=1500))
        assert slow.duration_s > fast.duration_s


class TestRunMeasurementEdgeCases:
    def test_empty_flow_results_raise_experiment_error(self):
        from repro.errors import ExperimentError
        from repro.harness.runner import RunMeasurement

        empty = RunMeasurement(
            scenario="empty",
            seed=0,
            energy_j=1.0,
            duration_s=1.0,
            flow_results=[],
            bottleneck_drops=0,
            ecn_marks=0,
        )
        with pytest.raises(ExperimentError, match="no flow results"):
            empty.completion_time_s


class TestCounters:
    def test_enumerates_every_run_counter(self):
        m = run_once(single_flow(), seed=0)
        counters = m.counters()
        assert counters["flows"] == 1.0
        assert counters["bottleneck_drops"] == float(m.bottleneck_drops)
        assert counters["ecn_marks"] == float(m.ecn_marks)
        assert counters["retransmissions"] == float(m.total_retransmissions)
        assert all(isinstance(v, float) for v in counters.values())

    def test_pure_function_of_scenario_and_seed(self):
        assert (
            run_once(single_flow(), seed=5).counters()
            == run_once(single_flow(), seed=5).counters()
        )


class TestRunRepeated:
    def test_aggregates(self):
        result = run_repeated(single_flow(), repetitions=3)
        assert result.n == 3
        assert result.mean_energy_j > 0
        assert result.std_energy_j >= 0
        assert result.mean_power_w > cal.P_IDLE_W

    def test_std_reflects_noise(self):
        result = run_repeated(single_flow(), repetitions=4)
        assert result.std_energy_j > 0

    def test_invalid_repetitions(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_repeated(single_flow(), repetitions=0)
