"""The policy seam's executor contract and API-migration shims.

Three pins: (1) every registered policy is bit-identical between
``jobs=1`` and ``jobs=4`` — measurements *and* telemetry bytes — on
both the single-link and fabric runners; (2) the content-addressed
cache treats the policy as part of the spec (a policy-only change is a
miss, never a stale hit); (3) the deprecated ``mode=`` /
``serialize_extreme=`` spellings warn and reproduce their ``policy=``
replacements bit for bit.
"""

import pytest

from repro.harness.cache import compute_key
from repro.harness.executor import WorkItem, run_work_items
from repro.harness.experiment import (
    FabricScenario,
    FlowSpec,
    Scenario,
    scenario_from_plan,
)
from repro.harness.runner import run_once
from repro.core.allocation import full_speed_then_idle
from repro.sched import policy_names
from repro.units import gbps

SIZES = (2_000_000, 1_000_000, 500_000)


def link_scenario(policy, name=None):
    flows = [
        FlowSpec(size, cca="cubic", deadline_s=0.05 * (i + 1))
        for i, size in enumerate(SIZES)
    ]
    return Scenario(
        name=name or f"pol-link-{policy}",
        flows=flows,
        packages=len(flows),
        policy=policy,
    )


def fabric_scenario(policy):
    return FabricScenario(
        name=f"pol-fabric-{policy}",
        cca="dctcp",
        policy=policy,
        n_flows=60,
        mix="rpc",
        leaves=2,
        spines=1,
        hosts_per_leaf=4,
    )


def all_policy_items():
    return [
        WorkItem(scenario=build(policy), seed=0)
        for build in (link_scenario, fabric_scenario)
        for policy in policy_names()
    ]


class TestPerPolicyDeterminism:
    def test_every_policy_bit_identical_jobs1_vs_jobs4(self):
        items = all_policy_items()
        serial = run_work_items(items, jobs=1)
        pooled = run_work_items(items, jobs=4)
        assert pooled == serial

    def test_every_policy_telemetry_byte_identical(self, tmp_path):
        # Closing the observer (the CLI's `with` idiom) canonicalizes
        # record order, so the comparison is jobs-independent.
        from repro.obs.observer import resolve_observer

        items = all_policy_items()
        with resolve_observer(tmp_path / "serial") as obs:
            run_work_items(items, jobs=1, observer=obs)
        with resolve_observer(tmp_path / "pool") as obs:
            run_work_items(items, jobs=4, observer=obs)
        assert (
            (tmp_path / "serial" / "telemetry.jsonl").read_bytes()
            == (tmp_path / "pool" / "telemetry.jsonl").read_bytes()
        )

    def test_policies_actually_differ(self):
        fair = run_once(link_scenario("fair"), seed=0)
        serialized = run_once(link_scenario("serialized"), seed=0)
        assert serialized.energy_j < fair.energy_j


class TestPolicyInCacheKey:
    def test_policy_only_change_moves_the_key(self):
        base = compute_key(link_scenario("fair", name="k"), 0)
        for policy in ("serialized", "srpt", "deadline", "load-adaptive"):
            assert compute_key(link_scenario(policy, name="k"), 0) != base

    def test_fabric_policy_only_change_moves_the_key(self):
        keys = {
            compute_key(fabric_scenario(policy), 0)
            for policy in policy_names()
        }
        assert len(keys) == len(policy_names())

    def test_alias_spelling_hashes_like_its_canonical_policy(self):
        with pytest.deprecated_call():
            aliased = link_scenario("pfabric", name="k")
        assert compute_key(aliased, 0) == compute_key(
            link_scenario("srpt", name="k"), 0
        )


class TestDeprecatedSpellingShims:
    def test_fabric_mode_kwarg_warns_and_matches_policy(self):
        with pytest.deprecated_call():
            legacy = FabricScenario(
                name="shim", cca="dctcp", mode="serialized",
                n_flows=40, mix="rpc", leaves=2, spines=1, hosts_per_leaf=4,
            )
        modern = FabricScenario(
            name="shim", cca="dctcp", policy="serialized",
            n_flows=40, mix="rpc", leaves=2, spines=1, hosts_per_leaf=4,
        )
        assert legacy == modern
        assert run_once(legacy, seed=0) == run_once(modern, seed=0)

    def test_fabric_mode_and_policy_together_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError), pytest.warns(DeprecationWarning):
            FabricScenario(
                name="shim", cca="dctcp", mode="fair", policy="serialized",
                n_flows=40, leaves=2, spines=1, hosts_per_leaf=4,
            )

    def test_legacy_after_flow_chain_matches_serialized_policy(self):
        # The retired single-link path: explicit completion chaining in
        # the flow declarations, no policy.
        chained = Scenario(
            name="shim-link",
            flows=[
                FlowSpec(size, cca="cubic", after_flow=i - 1 if i else None)
                for i, size in enumerate(SIZES)
            ],
            packages=len(SIZES),
        )
        modern = Scenario(
            name="shim-link",
            flows=[FlowSpec(size, cca="cubic") for size in SIZES],
            packages=len(SIZES),
            policy="serialized",
        )
        assert run_once(chained, seed=3) == run_once(modern, seed=3)

    def test_serialize_extreme_kwarg_warns_and_matches_policy(self):
        plan = full_speed_then_idle(1_000_000, gbps(10.0))
        with pytest.deprecated_call():
            legacy = scenario_from_plan(
                "shim-plan", plan, serialize_extreme=True
            )
        modern = scenario_from_plan("shim-plan", plan, policy="serialized")
        assert run_once(legacy, seed=0) == run_once(modern, seed=0)

    def test_policy_and_serialize_extreme_together_rejected(self):
        from repro.errors import ExperimentError

        plan = full_speed_then_idle(1_000_000, gbps(10.0))
        with pytest.raises(ExperimentError), pytest.warns(DeprecationWarning):
            scenario_from_plan(
                "shim-plan", plan, serialize_extreme=True, policy="serialized"
            )

    def test_policy_rejects_explicit_after_flow_declarations(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            Scenario(
                name="conflict",
                flows=[
                    FlowSpec(SIZES[0], cca="cubic"),
                    FlowSpec(SIZES[1], cca="cubic", after_flow=0),
                ],
                policy="serialized",
            )
