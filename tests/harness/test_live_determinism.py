"""Watching a sweep must not change it: live-tail + HTTP, zero bits moved.

The acceptance bar for ``greenenvy obs watch``: a sweep that is being
tailed (journal partials polled mid-run) *and* scraped over HTTP
produces measurements, journal events, and telemetry records
bit-identical to the same sweep run unwatched — serial and with a
process pool. The watcher only ever reads; the one sanctioned write is
the ``abort.requested`` flag, which is its own test.
"""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import SweepAbortedError
from repro.harness.executor import (
    SweepControl,
    WorkItem,
    run_work_items,
)
from repro.harness.experiment import FlowSpec, Scenario
from repro.obs.journal import VOLATILE_FIELDS, read_journal
from repro.obs.live import LiveSweepView, ProgressServer, request_abort
from repro.obs.telemetry import read_telemetry

SIZE = 400_000


def tiny_scenario(name="live", **overrides):
    defaults = dict(name=name, flows=[FlowSpec(SIZE)], packages=1)
    defaults.update(overrides)
    return Scenario(**defaults)


def items_for(n=4):
    scenario = tiny_scenario()
    return [WorkItem(scenario=scenario, seed=seed) for seed in range(n)]


def stable_events(journal_source):
    """Journal events with the volatile diagnostics stripped."""
    return [
        {k: v for k, v in event.items() if k not in VOLATILE_FIELDS}
        for event in read_journal(journal_source)
    ]


def telemetry_key(record):
    return (
        record["scenario"], record["seed"], record["channel"],
        record["entity"],
    )


class Watcher:
    """A background thread that tails a trace dir and scrapes its server.

    This is ``obs watch`` plus a Prometheus scraper, concentrated: poll
    the journal partials as fast as they appear, keep snapshots, and
    hit ``/progress`` and ``/metrics`` over real HTTP the whole time.
    """

    def __init__(self, trace):
        self.trace = trace
        self.snapshots = []
        self.scrapes = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        view = LiveSweepView(self.trace)
        server = ProgressServer(view, port=0).start()
        try:
            while not self._stop.is_set():
                view.poll()
                self.snapshots.append(view.snapshot())
                try:
                    for path in ("/progress", "/metrics"):
                        with urllib.request.urlopen(
                            f"http://127.0.0.1:{server.port}{path}",
                            timeout=5,
                        ) as response:
                            response.read()
                    self.scrapes += 1
                except urllib.error.URLError:
                    pass
                time.sleep(0.01)
            # One last poll after the sweep finished: the terminal
            # events are committed by then.
            view.poll()
            self.snapshots.append(view.snapshot())
        finally:
            server.stop()

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=30)
        assert not self._thread.is_alive()


class TestWatchedSweepIsBitIdentical:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_watched_equals_unwatched(self, tmp_path, jobs):
        quiet = tmp_path / "quiet"
        watched = tmp_path / "watched"
        watched.mkdir()  # the watcher attaches before the sweep starts
        plain = run_work_items(items_for(), jobs=jobs, observer=quiet)
        with Watcher(watched) as watcher:
            observed = run_work_items(
                items_for(), jobs=jobs, observer=watched
            )
        assert observed == plain
        # Order-normalised journal equality, as in
        # test_trace_determinism: with a pool, item-less span events
        # interleave by worker scheduling even between two unwatched
        # runs; the event *set* is the deterministic contract.
        key = lambda e: sorted(  # noqa: E731
            (k, repr(v)) for k, v in e.items()
        )
        assert sorted(stable_events(watched), key=key) == sorted(
            stable_events(quiet), key=key
        )
        assert sorted(
            read_telemetry(watched), key=telemetry_key
        ) == sorted(read_telemetry(quiet), key=telemetry_key)
        assert watcher.scrapes >= 1

    def test_watcher_converges_on_the_finished_sweep(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        with Watcher(trace) as watcher:
            run_work_items(items_for(), observer=trace)
        final = watcher.snapshots[-1]
        assert final.complete
        assert not final.aborted
        assert final.items_total == 4
        assert final.items_done == 4
        assert final.runs_finished == 4


class TestExternalAbort:
    def test_abort_request_stops_the_sweep_and_the_watch_sees_it(
        self, tmp_path
    ):
        # The flag is dropped deterministically from the completion hook
        # (a real watcher writes the same file from outside); the
        # auto-installed FileCancelToken on the traced run picks it up.
        trace = tmp_path / "trace"
        trace.mkdir()

        def hook(index, item, measurement):
            if index == 1:
                request_abort(trace, "watcher says stop")

        with pytest.raises(SweepAbortedError) as excinfo:
            run_work_items(
                items_for(), observer=trace,
                control=SweepControl(on_result=hook),
            )
        exc = excinfo.value
        assert exc.reason == "watcher says stop"
        assert sorted(exc.partial) == [0, 1]
        assert "batch_aborted" in [
            e["event"] for e in read_journal(trace)
        ]
        view = LiveSweepView(trace)
        view.poll()
        progress = view.snapshot()
        assert progress.aborted
        assert progress.complete  # terminal event did arrive
        assert progress.abort_reason == "watcher says stop"
