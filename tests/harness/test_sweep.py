"""Tests for the generic parameter sweep."""

import pytest

from repro.errors import ExperimentError
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.sweep import Sweep


def tiny_factory(mtu, cca):
    return Scenario(
        f"sweep-{cca}-{mtu}",
        flows=[FlowSpec(1_000_000, cca=cca)],
        mtu_bytes=mtu,
        packages=1,
    )


class TestGrid:
    def test_size_and_points(self):
        sweep = Sweep({"a": [1, 2, 3], "b": ["x", "y"]})
        assert sweep.size == 6
        points = sweep.points()
        assert len(points) == 6
        assert {"a": 1, "b": "x"} in points
        assert {"a": 3, "b": "y"} in points

    def test_empty_axes_rejected(self):
        with pytest.raises(ExperimentError):
            Sweep({})
        with pytest.raises(ExperimentError):
            Sweep({"a": []})


class TestRun:
    @pytest.fixture(scope="class")
    def results(self):
        sweep = Sweep({"mtu": [1500, 9000], "cca": ["cubic", "bbr"]})
        return sweep.run(tiny_factory, repetitions=1)

    def test_one_row_per_point(self, results):
        assert len(results) == 4

    def test_where_filters(self, results):
        cubic_rows = results.where(cca="cubic")
        assert len(cubic_rows) == 2
        assert all(r["cca"] == "cubic" for r in cubic_rows.rows)

    def test_one_selects_unique(self, results):
        row = results.one(mtu=9000, cca="bbr")
        assert row.result.mean_energy_j > 0

    def test_one_rejects_ambiguity(self, results):
        with pytest.raises(ExperimentError):
            results.one(cca="cubic")

    def test_values(self, results):
        assert results.values("mtu") == [1500, 9000]

    def test_series_extraction(self, results):
        series = results.series(
            "mtu", lambda r: r.mean_energy_j, cca="cubic"
        )
        assert [x for x, _y in series] == [1500, 9000]
        # 1500 is pps-bound and slower, so costlier
        assert series[0][1] > series[1][1]

    def test_measurements_sane(self, results):
        for row in results.rows:
            assert row.result.mean_power_w > 20.0
