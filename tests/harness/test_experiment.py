"""Unit tests for scenario descriptions and validation."""

import json
import warnings

import pytest

from repro.core.allocation import fig1_allocations, full_speed_then_idle
from repro.errors import ExperimentError
from repro.harness.experiment import FlowSpec, Scenario, scenario_from_plan
from repro.units import gbps


class TestFlowSpec:
    def test_defaults(self):
        flow = FlowSpec(1000)
        assert flow.cca == "cubic"
        assert flow.target_rate_bps is None
        assert flow.after_flow is None

    def test_size_validation(self):
        with pytest.raises(ExperimentError):
            FlowSpec(0)


class TestKeywordOnlyDeprecation:
    """Fields beyond the first are keyword-only after one release."""

    def test_positional_flowspec_warns(self):
        with pytest.warns(DeprecationWarning, match="total_bytes"):
            flow = FlowSpec(1000, "bbr")
        assert flow.cca == "bbr"  # still honored during the deprecation

    def test_positional_scenario_warns(self):
        with pytest.warns(DeprecationWarning, match="name"):
            Scenario("x", [FlowSpec(1000)])

    def test_keyword_construction_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            FlowSpec(1000, cca="bbr", after_flow=None)
            Scenario("x", flows=[FlowSpec(1000)], mtu_bytes=1500)


class TestCacheKey:
    def test_equal_scenarios_serialize_identically(self):
        a = Scenario("k", flows=[FlowSpec(1000)], mtu_bytes=1500)
        b = Scenario("k", flows=[FlowSpec(1000)], mtu_bytes=1500)
        assert a.cache_key() == b.cache_key()

    def test_every_field_is_present(self):
        key = json.loads(Scenario("k", flows=[FlowSpec(1000)]).cache_key())
        assert set(key) == set(Scenario.__dataclass_fields__)
        assert key["flows"][0]["total_bytes"] == 1000

    def test_flow_changes_change_the_key(self):
        base = Scenario("k", flows=[FlowSpec(1000)])
        other = Scenario("k", flows=[FlowSpec(1000, cca="bbr")])
        assert base.cache_key() != other.cache_key()

    def test_key_is_json_canonical(self):
        key = Scenario("k", flows=[FlowSpec(1000)]).cache_key()
        parsed = json.loads(key)
        assert key == json.dumps(
            parsed, sort_keys=True, separators=(",", ":")
        )


class TestScenarioValidation:
    def test_needs_flows(self):
        with pytest.raises(ExperimentError):
            Scenario("empty", flows=[])

    def test_load_bounds(self):
        with pytest.raises(ExperimentError):
            Scenario("x", flows=[FlowSpec(1000)], background_load=1.5)

    def test_baseline_cannot_share_bottleneck(self):
        """Paper footnote 2: the no-CC module would cause collapse."""
        with pytest.raises(ExperimentError, match="footnote 2"):
            Scenario(
                "bad",
                flows=[FlowSpec(1000, cca="baseline"), FlowSpec(1000, cca="cubic")],
            )

    def test_baseline_alone_allowed(self):
        Scenario("ok", flows=[FlowSpec(1000, cca="baseline")])

    def test_baseline_serialized_allowed(self):
        """Chained flows never share the link, so baseline is fine."""
        Scenario(
            "ok",
            flows=[
                FlowSpec(1000, cca="baseline"),
                FlowSpec(1000, cca="cubic", after_flow=0),
            ],
        )

    def test_chain_bounds_checked(self):
        with pytest.raises(ExperimentError):
            Scenario("bad", flows=[FlowSpec(1000, after_flow=5)])

    def test_self_chain_rejected(self):
        with pytest.raises(ExperimentError):
            Scenario("bad", flows=[FlowSpec(1000, after_flow=0)])

    def test_with_name(self):
        s = Scenario("a", flows=[FlowSpec(1000)])
        assert s.with_name("b").name == "b"
        assert s.name == "a"


class TestScenarioFromPlan:
    def test_fsti_plan_chains(self):
        plan = full_speed_then_idle(1000, gbps(10.0))
        scenario = scenario_from_plan("x", plan)
        assert scenario.flows[0].after_flow is None
        assert scenario.flows[1].after_flow == 0

    def test_limited_plan_keeps_caps_and_uncap(self):
        plans = fig1_allocations(1000, gbps(10.0), fractions=(0.8,))
        scenario = scenario_from_plan("x", plans[0])
        capped = scenario.flows[1]
        assert capped.target_rate_bps == pytest.approx(0.2 * gbps(10))
        assert capped.uncap_after == 0

    def test_kwargs_forwarded(self):
        plan = full_speed_then_idle(1000, gbps(10.0))
        scenario = scenario_from_plan("x", plan, mtu_bytes=1500)
        assert scenario.mtu_bytes == 1500
