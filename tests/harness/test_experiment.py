"""Unit tests for scenario descriptions and validation."""

import pytest

from repro.core.allocation import fig1_allocations, full_speed_then_idle
from repro.errors import ExperimentError
from repro.harness.experiment import FlowSpec, Scenario, scenario_from_plan
from repro.units import gbps


class TestFlowSpec:
    def test_defaults(self):
        flow = FlowSpec(1000)
        assert flow.cca == "cubic"
        assert flow.target_rate_bps is None
        assert flow.after_flow is None

    def test_size_validation(self):
        with pytest.raises(ExperimentError):
            FlowSpec(0)


class TestScenarioValidation:
    def test_needs_flows(self):
        with pytest.raises(ExperimentError):
            Scenario("empty", flows=[])

    def test_load_bounds(self):
        with pytest.raises(ExperimentError):
            Scenario("x", flows=[FlowSpec(1000)], background_load=1.5)

    def test_baseline_cannot_share_bottleneck(self):
        """Paper footnote 2: the no-CC module would cause collapse."""
        with pytest.raises(ExperimentError, match="footnote 2"):
            Scenario(
                "bad",
                flows=[FlowSpec(1000, "baseline"), FlowSpec(1000, "cubic")],
            )

    def test_baseline_alone_allowed(self):
        Scenario("ok", flows=[FlowSpec(1000, "baseline")])

    def test_baseline_serialized_allowed(self):
        """Chained flows never share the link, so baseline is fine."""
        Scenario(
            "ok",
            flows=[
                FlowSpec(1000, "baseline"),
                FlowSpec(1000, "cubic", after_flow=0),
            ],
        )

    def test_chain_bounds_checked(self):
        with pytest.raises(ExperimentError):
            Scenario("bad", flows=[FlowSpec(1000, after_flow=5)])

    def test_self_chain_rejected(self):
        with pytest.raises(ExperimentError):
            Scenario("bad", flows=[FlowSpec(1000, after_flow=0)])

    def test_with_name(self):
        s = Scenario("a", flows=[FlowSpec(1000)])
        assert s.with_name("b").name == "b"
        assert s.name == "a"


class TestScenarioFromPlan:
    def test_fsti_plan_chains(self):
        plan = full_speed_then_idle(1000, gbps(10.0))
        scenario = scenario_from_plan("x", plan)
        assert scenario.flows[0].after_flow is None
        assert scenario.flows[1].after_flow == 0

    def test_limited_plan_keeps_caps_and_uncap(self):
        plans = fig1_allocations(1000, gbps(10.0), fractions=(0.8,))
        scenario = scenario_from_plan("x", plans[0])
        capped = scenario.flows[1]
        assert capped.target_rate_bps == pytest.approx(0.2 * gbps(10))
        assert capped.uncap_after == 0

    def test_kwargs_forwarded(self):
        plan = full_speed_then_idle(1000, gbps(10.0))
        scenario = scenario_from_plan("x", plan, mtu_bytes=1500)
        assert scenario.mtu_bytes == 1500
