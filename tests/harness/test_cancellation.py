"""Cooperative cancellation: tokens, mid-batch aborts, partial salvage.

The contract: a cancelled sweep is not a crashed sweep. Every finished
measurement survives (on the exception, in the cache, in the journal),
the abort is journaled with its reason, and a control that never fires
changes nothing — bit-for-bit.
"""

import pytest

from repro.errors import SweepAbortedError
from repro.harness.cache import ResultCache
from repro.harness.executor import (
    CancelToken,
    FileCancelToken,
    ProcessExecutor,
    SerialExecutor,
    SweepControl,
    WorkItem,
    run_work_items,
)
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.sweep import Sweep
from repro.obs.journal import ABORT_FILENAME, read_journal

SIZE = 400_000


def tiny_scenario(name="cancel", **overrides):
    defaults = dict(name=name, flows=[FlowSpec(SIZE)], packages=1)
    defaults.update(overrides)
    return Scenario(**defaults)


def items_for(n=4):
    return [WorkItem(scenario=tiny_scenario(), seed=seed) for seed in range(n)]


def cancel_after(token, count, reason="enough"):
    """An on_result hook that pulls the cord after ``count`` results."""
    seen = []

    def hook(index, item, measurement):
        seen.append(index)
        if len(seen) >= count:
            token.cancel(reason)

    return hook, seen


class TestCancelToken:
    def test_latches_the_first_reason(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"

    def test_file_token_is_a_cross_process_channel(self, tmp_path):
        flag = tmp_path / ABORT_FILENAME
        token = FileCancelToken(flag)
        assert not token.cancelled
        token.cancel("stop now")
        assert flag.read_text().startswith("stop now")
        # A second token on the same path (another process) observes it.
        other = FileCancelToken(flag)
        assert other.cancelled
        assert other.reason == "stop now"

    def test_plain_touch_counts_as_abort(self, tmp_path):
        flag = tmp_path / ABORT_FILENAME
        flag.write_text("")
        token = FileCancelToken(flag)
        assert token.cancelled
        assert token.reason == "abort file present"


class TestMidBatchAbort:
    def test_serial_abort_keeps_finished_items(self):
        token = CancelToken()
        hook, seen = cancel_after(token, 2, reason="two is plenty")
        control = SweepControl(on_result=hook, cancel=token)
        with pytest.raises(SweepAbortedError) as excinfo:
            SerialExecutor().run_items(items_for(4), control=control)
        exc = excinfo.value
        assert sorted(exc.partial) == [0, 1]
        assert seen == [0, 1]
        assert exc.reason == "two is plenty"
        assert "2/4" in str(exc)

    def test_process_abort_keeps_finished_items(self):
        token = CancelToken()
        hook, seen = cancel_after(token, 1)
        control = SweepControl(on_result=hook, cancel=token)
        with pytest.raises(SweepAbortedError) as excinfo:
            ProcessExecutor(2).run_items(items_for(4), control=control)
        exc = excinfo.value
        # In-flight items may still drain, but the batch stopped early
        # and everything reported finished carries a real measurement.
        assert 1 <= len(exc.partial) < 4
        assert 0 in exc.partial
        for index, measurement in exc.partial.items():
            assert measurement.energy_j > 0.0

    def test_pre_cancelled_token_dispatches_nothing(self):
        token = CancelToken()
        token.cancel("never started")
        control = SweepControl(cancel=token)
        with pytest.raises(SweepAbortedError) as excinfo:
            run_work_items(items_for(3), control=control)
        assert excinfo.value.partial == {}
        assert "0/3" in str(excinfo.value)

    def test_idle_control_changes_no_bits(self):
        # A control with hooks that never cancel must not perturb the
        # measurements: same results as the zero-overhead path.
        seen = []
        control = SweepControl(on_result=lambda i, item, m: seen.append(i))
        plain = run_work_items(items_for(4))
        watched = run_work_items(items_for(4), control=control)
        assert watched == plain
        assert seen == [0, 1, 2, 3]


class TestAbortSalvage:
    def test_partial_is_stored_to_cache_and_replayable(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        token = CancelToken()
        hook, _ = cancel_after(token, 2)
        control = SweepControl(on_result=hook, cancel=token)
        with pytest.raises(SweepAbortedError) as excinfo:
            run_work_items(items_for(4), cache=cache, control=control)
        aborted = excinfo.value
        assert sorted(aborted.partial) == [0, 1]
        # The rerun replays the salvaged items as cache hits (notified
        # first, in submission order) and computes only the rest.
        seen = []
        replay = SweepControl(on_result=lambda i, item, m: seen.append(i))
        results = run_work_items(items_for(4), cache=cache, control=replay)
        assert len(results) == 4
        assert seen == [0, 1, 2, 3]
        assert results[0] == aborted.partial[0]
        assert results[1] == aborted.partial[1]

    def test_abort_file_in_trace_dir_stops_traced_run(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        (trace / ABORT_FILENAME).write_text("external stop\n")
        with pytest.raises(SweepAbortedError, match="external stop"):
            run_work_items(items_for(2), observer=trace)
        events = read_journal(trace)
        aborts = [e for e in events if e["event"] == "batch_aborted"]
        assert len(aborts) == 1
        assert aborts[0]["reason"] == "external stop"
        assert aborts[0]["completed"] == 0

    def test_sweep_salvages_complete_grid_points(self):
        sweep = Sweep({"mtu": [1500, 9000]})
        token = CancelToken()
        # Cancel mid-way through the second grid point: reps=2, so
        # after 3 results grid point 0 is whole and point 1 is not.
        hook, _ = cancel_after(token, 3, reason="mid grid point")
        control = SweepControl(on_result=hook, cancel=token)
        with pytest.raises(SweepAbortedError) as excinfo:
            sweep.run(
                lambda mtu: tiny_scenario(f"sweep-{mtu}", mtu_bytes=mtu),
                repetitions=2,
                control=control,
            )
        partial = excinfo.value.partial_sweep
        assert [row.params["mtu"] for row in partial.rows] == [1500]
        assert len(partial.rows[0].result.runs) == 2
