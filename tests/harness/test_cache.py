"""The content-addressed result cache: hits, misses, invalidation.

A cache hit must be indistinguishable from re-running the simulation —
full dataclass equality, power/throughput series included — and the key
must move when (and only when) the scenario spec, seed, or schema
version does.
"""

import pytest

from repro.errors import ExperimentError
from repro.harness.cache import (
    SCHEMA_VERSION,
    ResultCache,
    compute_key,
    ensure_cache,
    measurement_from_dict,
    measurement_to_dict,
)
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once, run_repeated
from repro.units import msec

SIZE = 400_000


def scenario(name="cache", **overrides):
    defaults = dict(name=name, flows=[FlowSpec(SIZE)], packages=1)
    defaults.update(overrides)
    return Scenario(**defaults)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeys:
    def test_equal_specs_share_a_key(self):
        assert compute_key(scenario(), 3) == compute_key(scenario(), 3)

    def test_seed_changes_key(self):
        assert compute_key(scenario(), 0) != compute_key(scenario(), 1)

    def test_any_field_change_moves_key(self):
        base = compute_key(scenario(), 0)
        assert compute_key(scenario(mtu_bytes=1500), 0) != base
        assert compute_key(scenario(background_load=0.5), 0) != base
        assert (
            compute_key(scenario(flows=[FlowSpec(SIZE, cca="bbr")]), 0) != base
        )

    def test_schema_version_moves_key(self):
        assert compute_key(scenario(), 0, schema_version=1) != compute_key(
            scenario(), 0, schema_version=2
        )

    def test_cache_key_is_order_stable(self):
        # json with sort_keys: field declaration order cannot leak in.
        s = scenario()
        assert s.cache_key() == scenario().cache_key()
        assert '"mtu_bytes"' in s.cache_key()


class TestRoundTrip:
    def test_measurement_survives_json_exactly(self):
        # probes on, multi-flow: exercises every serialized field
        m = run_once(
            scenario(
                flows=[FlowSpec(SIZE), FlowSpec(SIZE)],
                probe_interval_s=msec(5.0),
                packages=2,
            ),
            seed=11,
        )
        assert measurement_from_dict(measurement_to_dict(m)) == m

    def test_get_returns_equal_measurement(self, cache):
        s = scenario()
        m = run_once(s, seed=2)
        cache.put(s, 2, m)
        assert cache.get(s, 2) == m

    def test_counters_survive_the_round_trip_losslessly(self, cache):
        # The journal's run_finished events read counters(); a cached
        # replay must export the exact same values.
        s = scenario()
        m = run_once(s, seed=4)
        cache.put(s, 4, m)
        replayed = cache.get(s, 4)
        assert replayed.counters() == m.counters()


class TestHitMiss:
    def test_empty_cache_misses(self, cache):
        assert cache.get(scenario(), 0) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_put_then_hit(self, cache):
        s = scenario()
        cache.put(s, 0, run_once(s, seed=0))
        assert cache.get(s, 0) is not None
        assert cache.hits == 1
        assert len(cache) == 1

    def test_run_repeated_warm_rerun_never_simulates(self, cache, monkeypatch):
        s = scenario()
        cold = run_repeated(s, repetitions=2, base_seed=0, cache=cache)
        assert cache.misses == 2

        # Any simulation attempt on the warm rerun is a test failure.
        import repro.harness.executor as executor_module

        def boom(item):
            raise AssertionError("warm rerun hit the simulator")

        monkeypatch.setattr(executor_module, "execute_item", boom)
        warm = run_repeated(s, repetitions=2, base_seed=0, cache=cache)
        assert warm.runs == cold.runs

    def test_schema_bump_invalidates(self, cache, tmp_path):
        s = scenario()
        cache.put(s, 0, run_once(s, seed=0))
        bumped = ResultCache(tmp_path / "cache", schema_version=SCHEMA_VERSION + 1)
        assert bumped.get(s, 0) is None

    def test_corrupt_entry_is_a_miss(self, cache):
        s = scenario()
        path = cache.put(s, 0, run_once(s, seed=0))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(s, 0) is None

    def test_clear_removes_entries(self, cache):
        s = scenario()
        cache.put(s, 0, run_once(s, seed=0))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestEnsureCache:
    def test_path_string_coerces(self, tmp_path):
        store = ensure_cache(str(tmp_path / "c"))
        assert isinstance(store, ResultCache)

    def test_none_passes_through(self):
        assert ensure_cache(None) is None

    def test_instance_passes_through(self, cache):
        assert ensure_cache(cache) is cache

    def test_garbage_rejected(self):
        with pytest.raises(ExperimentError, match="cache must be"):
            ensure_cache(42)


class TestCacheWithParallelism:
    def test_cache_and_jobs_compose_bit_identically(self, tmp_path):
        s = scenario()
        plain = run_repeated(s, repetitions=3, base_seed=1)
        cached_parallel = run_repeated(
            s, repetitions=3, base_seed=1, jobs=3, cache=tmp_path / "c"
        )
        rehydrated = run_repeated(
            s, repetitions=3, base_seed=1, cache=tmp_path / "c"
        )
        assert plain.runs == cached_parallel.runs == rehydrated.runs

    def test_partial_warm_cache_fills_only_misses(self, tmp_path):
        s = scenario()
        cache = ResultCache(tmp_path / "c")
        run_repeated(s, repetitions=1, base_seed=0, cache=cache)
        assert len(cache) == 1
        result = run_repeated(s, repetitions=3, base_seed=0, cache=cache)
        assert len(cache) == 3
        assert [r.seed for r in result.runs] == [0, 1, 2]
