"""Tracing must be a pure spectator: same results, same events, any jobs.

Three contracts from the observability design:

* measurements are bit-identical with tracing on or off, serial or
  process-pool — the observer only ever receives copies,
* the *deterministic* journal fields (everything except the volatile
  wall-clock/worker set) are the same whether one worker or four
  produced them, once the merge has put events back in submission
  order, and
* telemetry collection (the in-sim probe sinks behind telemetry.jsonl)
  perturbs nothing: traced-with-telemetry runs equal untraced ones, and
  the telemetry records themselves are identical between jobs=1 and
  jobs=4 once merged.
"""

import pytest

from repro.errors import ExperimentError
from repro.harness.cache import ResultCache
from repro.harness.executor import WorkItem, run_work_items
from repro.harness.experiment import FlowSpec, Scenario
from repro.obs.journal import VOLATILE_FIELDS, read_journal
from repro.obs.telemetry import read_telemetry

SIZE = 400_000


def tiny_scenario(name="trace", **overrides):
    defaults = dict(name=name, flows=[FlowSpec(SIZE)], packages=1)
    defaults.update(overrides)
    return Scenario(**defaults)


def items_for(n=4):
    scenario = tiny_scenario()
    return [WorkItem(scenario=scenario, seed=seed) for seed in range(n)]


def stable_events(journal_source):
    """Journal events with the volatile diagnostics stripped."""
    return [
        {k: v for k, v in event.items() if k not in VOLATILE_FIELDS}
        for event in read_journal(journal_source)
    ]


class TestTracedResultsAreUntouched:
    def test_traced_serial_equals_untraced(self, tmp_path):
        plain = run_work_items(items_for())
        traced = run_work_items(items_for(), observer=tmp_path / "t")
        assert traced == plain

    def test_traced_jobs4_equals_untraced_serial(self, tmp_path):
        plain = run_work_items(items_for())
        traced = run_work_items(
            items_for(), jobs=4, observer=tmp_path / "t"
        )
        assert traced == plain


def telemetry_key(record):
    return (record["scenario"], record["seed"], record["channel"], record["entity"])


class TestTelemetryDeterminism:
    """telemetry.jsonl: same records any jobs, and never a perturbation."""

    def test_traced_telemetry_jobs4_equals_untraced_serial(self, tmp_path):
        # The acceptance bar: running with telemetry collection on and a
        # process pool must reproduce the untraced serial measurements
        # bit for bit.
        plain = run_work_items(items_for())
        traced = run_work_items(items_for(), jobs=4, observer=tmp_path / "t")
        assert traced == plain

    def test_jobs1_and_jobs4_write_identical_records(self, tmp_path):
        run_work_items(items_for(), jobs=1, observer=tmp_path / "serial")
        run_work_items(items_for(), jobs=4, observer=tmp_path / "pool")
        serial = sorted(read_telemetry(tmp_path / "serial"), key=telemetry_key)
        pool = sorted(read_telemetry(tmp_path / "pool"), key=telemetry_key)
        assert serial == pool
        # Stronger: the closed files are canonicalized into key order,
        # so the traces are byte-identical, not just record-identical.
        assert (
            (tmp_path / "serial" / "telemetry.jsonl").read_bytes()
            == (tmp_path / "pool" / "telemetry.jsonl").read_bytes()
        )

    def test_expected_channels_are_recorded(self, tmp_path):
        run_work_items(items_for(1), observer=tmp_path / "t")
        records = read_telemetry(tmp_path / "t")
        channels = {r["channel"] for r in records}
        assert {
            "cwnd_bytes",
            "srtt_s",
            "retransmits",
            "queue_depth_bytes",
            "power_w",
            "energy_j",
        } <= channels
        entities = {r["entity"] for r in records}
        assert "flow-1" in entities
        assert "bottleneck" in entities
        for record in records:
            assert record["scenario"] == "trace"
            assert len(record["times"]) == len(record["values"])

    def test_telemetry_partials_are_merged_away(self, tmp_path):
        run_work_items(items_for(), jobs=4, observer=tmp_path / "t")
        trace = tmp_path / "t"
        assert list(trace.glob("telemetry-worker-*.jsonl")) == []
        assert (trace / "telemetry.jsonl").exists()

    def test_cache_hits_skip_telemetry(self, tmp_path):
        # A replayed measurement never re-simulates, so it contributes
        # no telemetry — documented behavior, pinned here.
        cache = ResultCache(tmp_path / "cache")
        run_work_items(items_for(), cache=cache)
        run_work_items(items_for(), cache=cache, observer=tmp_path / "t")
        assert read_telemetry(tmp_path / "t") == []


class TestJournalDeterminism:
    def test_jobs1_and_jobs4_produce_the_same_event_set(self, tmp_path):
        run_work_items(items_for(), jobs=1, observer=tmp_path / "serial")
        run_work_items(items_for(), jobs=4, observer=tmp_path / "pool")
        # The backend name on batch_started is execution config, the
        # one field that legitimately differs between the two runs.
        serial = [
            {k: v for k, v in e.items() if k != "backend"}
            for e in stable_events(tmp_path / "serial")
        ]
        pool = [
            {k: v for k, v in e.items() if k != "backend"}
            for e in stable_events(tmp_path / "pool")
        ]
        assert len(serial) == len(pool)
        # Order-normalised equality: the merge restores submission
        # order, but batch-level events may interleave differently.
        key = lambda e: sorted((k, repr(v)) for k, v in e.items())  # noqa: E731
        assert sorted(serial, key=key) == sorted(pool, key=key)

    def test_run_events_carry_deterministic_payload(self, tmp_path):
        run_work_items(items_for(2), observer=tmp_path / "t")
        finished = [
            e for e in stable_events(tmp_path / "t")
            if e["event"] == "run_finished"
        ]
        assert [e["item"] for e in finished] == [0, 1]
        for event in finished:
            assert event["scenario"] == "trace"
            assert isinstance(event["cache_key"], str)
            assert event["energy_j"] > 0
            assert "bottleneck_drops" in event["counters"]

    def test_worker_partials_are_merged_away(self, tmp_path):
        run_work_items(items_for(), jobs=4, observer=tmp_path / "t")
        trace = tmp_path / "t"
        assert list(trace.glob("worker-*.jsonl")) == []
        assert (trace / "journal.jsonl").exists()


class TestCacheEvents:
    def test_hits_and_misses_are_journaled(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_work_items(items_for(), cache=cache)
        run_work_items(items_for(), cache=cache, observer=tmp_path / "t")
        events = stable_events(tmp_path / "t")
        hits = [e for e in events if e["event"] == "cache_hit"]
        assert len(hits) == 4
        assert not any(e["event"] == "cache_miss" for e in events)
        batch = next(e for e in events if e["event"] == "batch_finished")
        assert batch["cache_hits"] == 4
        assert batch["executed"] == 0


class TestWorkerErrorEvents:
    def test_failure_is_journaled_then_raised_with_context(self, tmp_path):
        # An impossible time limit makes the run abort mid-simulation.
        bad = Scenario(
            name="doomed",
            flows=[FlowSpec(SIZE)],
            packages=1,
            time_limit_s=1e-6,
        )
        items = [WorkItem(scenario=bad, seed=3)]
        with pytest.raises(ExperimentError) as excinfo:
            run_work_items(items, observer=tmp_path / "t")
        message = str(excinfo.value)
        assert "doomed" in message
        assert "seed=3" in message
        assert "worker pid=" in message
        errors = [
            e for e in stable_events(tmp_path / "t")
            if e["event"] == "worker_error"
        ]
        assert len(errors) == 1
        assert errors[0]["scenario"] == "doomed"
        assert errors[0]["seed"] == 3

    def test_pool_failure_still_merges_worker_journals(self, tmp_path):
        bad = Scenario(
            name="doomed",
            flows=[FlowSpec(SIZE)],
            packages=1,
            time_limit_s=1e-6,
        )
        items = [WorkItem(scenario=tiny_scenario(), seed=0),
                 WorkItem(scenario=bad, seed=1)]
        with pytest.raises(ExperimentError):
            run_work_items(items, jobs=2, observer=tmp_path / "t")
        events = stable_events(tmp_path / "t")
        assert any(e["event"] == "worker_error" for e in events)
        assert list((tmp_path / "t").glob("worker-*.jsonl")) == []
