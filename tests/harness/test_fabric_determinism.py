"""Determinism at fleet scale: 1k-flow fabric sweeps, any backend.

The executor contract — results are a pure function of (scenario,
seed), bit-identical between ``jobs=1`` and ``jobs=4`` — was pinned for
dumbbell scenarios in ``test_trace_determinism.py``. This suite pins it
at the scale the fabric work targets: a 1000-flow leaf-spine sweep over
both classic scheduling policies, including byte-identical telemetry traces and
cache round trips.

The rpc mix keeps each 1k-flow run sub-second (tiny flows, few events)
without reducing the flow count the contract is asserted at.
"""

from repro.harness.cache import ResultCache
from repro.harness.executor import WorkItem, run_work_items
from repro.harness.experiment import FabricScenario
from repro.obs.telemetry import read_telemetry


def fabric_scenario(policy, **overrides):
    defaults = dict(
        name=f"det-{policy}",
        cca="dctcp",
        policy=policy,
        n_flows=1000,
        mix="rpc",
        leaves=8,
        spines=2,
        hosts_per_leaf=8,
    )
    defaults.update(overrides)
    return FabricScenario(**defaults)


def sweep_items():
    """Both arms of a 1k-flow sweep, two seeds each."""
    return [
        WorkItem(scenario=fabric_scenario(policy), seed=seed)
        for policy in ("fair", "serialized")
        for seed in (0, 1)
    ]


class TestFabricSweepDeterminism:
    def test_jobs4_bit_identical_to_serial(self):
        serial = run_work_items(sweep_items(), jobs=1)
        pooled = run_work_items(sweep_items(), jobs=4)
        # Dataclass equality covers every field: energy, duration,
        # per-flow results, counters, extras — bit for bit.
        assert pooled == serial

    def test_repeat_runs_are_reproducible(self):
        first = run_work_items(sweep_items()[:1])
        second = run_work_items(sweep_items()[:1])
        assert first == second

    def test_seeds_change_the_measurement(self):
        scenario = fabric_scenario("fair")
        runs = run_work_items(
            [WorkItem(scenario=scenario, seed=s) for s in (0, 1)]
        )
        assert runs[0].energy_j != runs[1].energy_j

    def test_cache_round_trip_preserves_fabric_extras(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        items = sweep_items()[:1]
        fresh = run_work_items(items, cache=cache)
        replayed = run_work_items(items, cache=cache)
        assert replayed == fresh
        assert replayed[0].extras["host_energy_j"] > 0
        assert replayed[0].extras["switch_energy_j"] > 0
        assert replayed[0].extras["fct_p99_s"] > 0


class TestFabricTelemetryDeterminism:
    def test_jobs1_and_jobs4_traces_byte_identical(self, tmp_path):
        run_work_items(sweep_items(), jobs=1, observer=tmp_path / "serial")
        run_work_items(sweep_items(), jobs=4, observer=tmp_path / "pool")
        assert (
            (tmp_path / "serial" / "telemetry.jsonl").read_bytes()
            == (tmp_path / "pool" / "telemetry.jsonl").read_bytes()
        )

    def test_traced_pool_run_equals_untraced_serial(self, tmp_path):
        plain = run_work_items(sweep_items())
        traced = run_work_items(
            sweep_items(), jobs=4, observer=tmp_path / "t"
        )
        assert traced == plain

    def test_fabric_telemetry_has_fleet_channels(self, tmp_path):
        run_work_items(sweep_items()[:1], observer=tmp_path / "t")
        records = read_telemetry(tmp_path / "t")
        assert records, "fabric runs must emit telemetry when traced"
        channels = {r["channel"] for r in records}
        assert "power_w" in channels or "queue_depth_bytes" in channels
