"""Unit + property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    geometric_mean,
    linear_fit,
    mean,
    pearson,
    sample_std,
)
from repro.errors import AnalysisError

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestMeanStd:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        with pytest.raises(AnalysisError):
            mean([])

    def test_std_known_value(self):
        assert sample_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == (
            pytest.approx(2.138, abs=1e-3)
        )

    def test_std_single_sample_zero(self):
        assert sample_std([5.0]) == 0.0

    def test_std_constant_zero(self):
        assert sample_std([3.0, 3.0, 3.0]) == 0.0


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated(self):
        r = pearson([1, 2, 3, 4], [1, -1, 1, -1])
        assert abs(r) < 0.5

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            pearson([1, 2], [1, 2, 3])

    def test_constant_rejected(self):
        with pytest.raises(AnalysisError):
            pearson([1, 1, 1], [1, 2, 3])

    @given(
        xs=st.lists(floats, min_size=3, max_size=20),
        a=st.floats(min_value=0.1, max_value=10),
        b=floats,
    )
    @settings(max_examples=100, deadline=None)
    def test_linear_transform_preserves_correlation(self, xs, a, b):
        if max(xs) - min(xs) < 1e-6:  # degenerate spread underflows
            return
        ys = [a * x + b for x in xs]
        assert pearson(xs, ys) == pytest.approx(1.0, abs=1e-6)

    @given(xs=st.lists(floats, min_size=3, max_size=20), ys=st.lists(floats, min_size=3, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, xs, ys):
        n = min(len(xs), len(ys))
        xs, ys = xs[:n], ys[:n]
        if max(xs) - min(xs) < 1e-6 or max(ys) - min(ys) < 1e-6:
            return  # degenerate spread can underflow the variance
        r = pearson(xs, ys)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept = linear_fit([0, 1, 2], [1, 3, 5])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_constant_x_rejected(self):
        with pytest.raises(AnalysisError):
            linear_fit([1, 1], [1, 2])


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_positive_only(self):
        with pytest.raises(AnalysisError):
            geometric_mean([1.0, 0.0])

    @given(xs=st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_arithmetic_mean(self, xs):
        assert geometric_mean(xs) <= mean(xs) + 1e-9
