"""Unit tests for table rendering."""

import pytest

from repro.analysis.tables import format_series, format_table
from repro.errors import AnalysisError


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [("a", 1.0), ("longer", 2.5)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer" in lines[3]

    def test_floats_formatted(self):
        out = format_table(["x"], [(1.23456,)], float_fmt="{:.2f}")
        assert "1.23" in out

    def test_non_floats_stringified(self):
        out = format_table(["x", "n"], [("abc", 42)])
        assert "abc" in out and "42" in out

    def test_width_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            format_table(["a", "b"], [(1,)])

    def test_empty_headers_rejected(self):
        with pytest.raises(AnalysisError):
            format_table([], [])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_two_columns(self):
        out = format_series([1.0, 2.0], [10.0, 20.0], "t", "v")
        assert "t" in out and "v" in out
        assert "10.0000" in out

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            format_series([1.0], [1.0, 2.0])
