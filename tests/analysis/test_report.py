"""Tests for the report generator and bootstrap CI."""

import pytest

from repro.analysis.report import ClaimRow, Report, format_mean_ci
from repro.analysis.stats import bootstrap_ci, mean
from repro.errors import AnalysisError


class TestBootstrapCi:
    def test_interval_contains_mean_for_tight_data(self):
        values = [10.0, 10.1, 9.9, 10.05, 9.95]
        lo, hi = bootstrap_ci(values)
        assert lo <= mean(values) <= hi

    def test_interval_narrows_with_less_variance(self):
        tight = bootstrap_ci([10.0, 10.01, 9.99, 10.0])
        wide = bootstrap_ci([5.0, 15.0, 8.0, 12.0])
        assert (tight[1] - tight[0]) < (wide[1] - wide[0])

    def test_single_value_degenerate(self):
        assert bootstrap_ci([7.0]) == (7.0, 7.0)

    def test_deterministic_given_seed(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(values, seed=5) == bootstrap_ci(values, seed=5)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_format_mean_ci(self):
        text = format_mean_ci([1.0, 2.0, 3.0], unit="J")
        assert "2.000" in text and "J" in text


class TestReportStructure:
    def make_report(self):
        report = Report("test report")
        sec = report.section("section one")
        sec.add("claim a", "10", "11", True)
        sec.add("claim b", "20", "5", False)
        sec.preformatted = "raw table"
        return report

    def test_counts(self):
        report = self.make_report()
        assert report.claims_total == 2
        assert report.claims_ok == 1

    def test_render_contains_everything(self):
        text = self.make_report().render()
        assert "# test report" in text
        assert "1/2 paper claims" in text
        assert "claim a" in text and "✓" in text
        assert "claim b" in text and "✗" in text
        assert "raw table" in text

    def test_claim_row_marks(self):
        assert "✓" in ClaimRow("c", "p", "m", True).render()
        assert "✗" in ClaimRow("c", "p", "m", False).render()

    def test_section_all_ok(self):
        report = Report("r")
        sec = report.section("s")
        sec.add("x", "1", "1", True)
        assert sec.all_ok
        sec.add("y", "1", "2", False)
        assert not sec.all_ok


class TestQuickReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.analysis.report import quick_report

        # 8 MB is the smallest size at which the baseline's loss churn is
        # in steady state (below that its energy penalty hasn't built up)
        return quick_report(transfer_bytes=8_000_000, repetitions=1)

    def test_all_claims_reproduce(self, report):
        assert report.claims_ok == report.claims_total

    def test_covers_the_headline_sections(self, report):
        titles = " ".join(s.title for s in report.sections)
        assert "Theorem 1" in titles
        assert "Figure 1" in titles
        assert "SRPT" in titles

    def test_renders_markdown(self, report):
        text = report.render()
        assert text.startswith("# ")
        assert "claims reproduced" in text
