"""Unit tests for measured-curve concavity diagnostics."""

import math

import pytest

from repro.analysis.concavity import (
    chord_always_below,
    chord_gap,
    has_decreasing_marginals,
    is_concave,
    is_increasing,
    marginal_powers,
)
from repro.errors import AnalysisError


def curve(f, xs):
    return [(x, f(x)) for x in xs]


XS = [0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
CONCAVE = curve(lambda x: 20 + 10 * math.sqrt(x), XS)
LINEAR = curve(lambda x: 20 + 2 * x, XS)
CONVEX = curve(lambda x: 20 + x * x, XS)


class TestIncreasing:
    def test_concave_increasing(self):
        assert is_increasing(CONCAVE)

    def test_decreasing_detected(self):
        assert not is_increasing(curve(lambda x: -x, XS))

    def test_too_few_points(self):
        with pytest.raises(AnalysisError):
            is_increasing([(0, 0), (1, 1)])

    def test_duplicate_x_rejected(self):
        with pytest.raises(AnalysisError):
            is_increasing([(0, 0), (0, 1), (1, 2)])


class TestMarginals:
    def test_marginal_values(self):
        margins = marginal_powers(LINEAR)
        assert all(m == pytest.approx(2.0) for m in margins)

    def test_decreasing_marginals_concave(self):
        assert has_decreasing_marginals(CONCAVE)
        assert is_concave(CONCAVE)

    def test_convex_fails(self):
        assert not has_decreasing_marginals(CONVEX)
        assert not is_concave(CONVEX)

    def test_linear_passes_with_tolerance(self):
        assert is_concave(LINEAR, tol=1e-9)


class TestChord:
    def test_chord_below_concave_curve(self):
        gaps = chord_gap(CONCAVE)
        assert all(g > 0 for g in gaps)
        assert chord_always_below(CONCAVE)

    def test_chord_above_convex_curve(self):
        assert not chord_always_below(CONVEX)

    def test_chord_zero_for_linear(self):
        gaps = chord_gap(LINEAR)
        assert all(abs(g) < 1e-9 for g in gaps)

    def test_unsorted_input_handled(self):
        shuffled = [CONCAVE[3], CONCAVE[0], CONCAVE[5], CONCAVE[1], CONCAVE[6]]
        assert chord_always_below(shuffled)

    def test_measured_fig2_curve_is_concave(self):
        """The calibrated model's curve passes the checks the paper's
        measured curve passes."""
        from repro.energy.power_model import PowerModel

        model = PowerModel()
        points = [(t / 2, model.smooth_sending_power_w(t / 2)) for t in range(21)]
        assert is_increasing(points)
        assert is_concave(points, tol=1e-9)
        assert chord_always_below(points)
