"""Tests for result export."""

import json

import pytest

from repro.analysis.export import (
    run_to_dict,
    repeated_to_dict,
    runs_to_csv,
    save_csv,
    save_json,
    to_json,
)
from repro.errors import AnalysisError
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once, run_repeated


@pytest.fixture(scope="module")
def repeated():
    return run_repeated(
        Scenario("export", flows=[FlowSpec(1_000_000)], packages=1),
        repetitions=2,
    )


class TestDictExport:
    def test_run_record_fields(self, repeated):
        record = run_to_dict(repeated.runs[0])
        assert record["scenario"] == "export"
        assert record["energy_j"] > 0
        assert len(record["flows"]) == 1
        assert record["flows"][0]["bytes"] == 1_000_000

    def test_repeated_record_includes_stats_and_runs(self, repeated):
        record = repeated_to_dict(repeated)
        assert record["repetitions"] == 2
        assert len(record["runs"]) == 2
        assert record["mean_energy_j"] == pytest.approx(
            repeated.mean_energy_j
        )

    def test_json_round_trips(self, repeated):
        parsed = json.loads(to_json([repeated]))
        assert parsed[0]["scenario"] == "export"


class TestCsvExport:
    def test_header_and_rows(self, repeated):
        text = runs_to_csv(repeated.runs)
        lines = text.strip().splitlines()
        assert lines[0].startswith("scenario,seed,energy_j")
        assert len(lines) == 3  # header + 2 runs

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            runs_to_csv([])


class TestFileExport:
    def test_save_json(self, repeated, tmp_path):
        target = tmp_path / "results.json"
        save_json([repeated], str(target))
        assert json.loads(target.read_text())[0]["repetitions"] == 2

    def test_save_csv(self, repeated, tmp_path):
        target = tmp_path / "runs.csv"
        save_csv(repeated.runs, str(target))
        assert target.read_text().count("\n") >= 3
