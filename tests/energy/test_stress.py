"""Unit tests for the stress (background load) tool."""

import pytest

from repro.energy.cpu import CpuModel
from repro.energy.stress import StressLoad
from repro.errors import EnergyModelError
from repro.net.host import Host


@pytest.fixture
def cpu(sim):
    return CpuModel(sim, Host(sim, "h"), packages=2)


class TestStressLoad:
    def test_start_applies_load(self, sim, cpu):
        stress = StressLoad(sim, cpu, load=0.5)
        stress.start()
        assert stress.active
        assert all(p.background_load == 0.5 for p in cpu.packages)

    def test_stop_clears_load(self, sim, cpu):
        stress = StressLoad(sim, cpu, load=0.5)
        stress.start()
        stress.stop()
        assert not stress.active
        assert all(p.background_load == 0.0 for p in cpu.packages)

    def test_run_for_schedules_stop(self, sim, cpu):
        stress = StressLoad(sim, cpu, load=0.25)
        stress.run_for(1.0)
        assert cpu.packages[0].background_load == 0.25
        sim.run()
        assert cpu.packages[0].background_load == 0.0

    def test_invalid_load_rejected(self, sim, cpu):
        with pytest.raises(EnergyModelError):
            StressLoad(sim, cpu, load=1.1)

    def test_from_cores(self, sim, cpu):
        stress = StressLoad.from_cores(sim, cpu, busy_cores=8, total_cores=32)
        assert stress.load == pytest.approx(0.25)

    def test_from_cores_validation(self, sim, cpu):
        with pytest.raises(EnergyModelError):
            StressLoad.from_cores(sim, cpu, busy_cores=33, total_cores=32)

    def test_loaded_power_higher(self, sim, cpu):
        from repro.energy.meter import EnergyMeter

        meter = EnergyMeter(sim, [cpu])
        StressLoad(sim, cpu, load=0.75).start()
        meter.start()
        sim.run(until=1.0)
        energy = meter.stop()
        # 2 packages x (21.49 idle + 73.5 load)
        assert energy == pytest.approx(2 * (21.49 + 73.5), rel=0.02)
