"""Unit tests for the before/after energy meter."""

import pytest

from repro.energy import calibration as cal
from repro.energy.cpu import CpuModel
from repro.energy.meter import EnergyMeter
from repro.errors import EnergyModelError
from repro.net.host import Host


@pytest.fixture
def cpu(sim):
    return CpuModel(sim, Host(sim, "h"), packages=1)


class TestMeasurementWindow:
    def test_idle_window(self, sim, cpu):
        meter = EnergyMeter(sim, [cpu])
        meter.start()
        sim.run(until=2.0)
        energy = meter.stop()
        assert energy == pytest.approx(2 * cal.P_IDLE_W, rel=0.01)
        assert meter.duration_s == pytest.approx(2.0)
        assert meter.average_power_w == pytest.approx(cal.P_IDLE_W, rel=0.01)

    def test_stop_before_start_rejected(self, sim, cpu):
        with pytest.raises(EnergyModelError):
            EnergyMeter(sim, [cpu]).stop()

    def test_energy_before_stop_rejected(self, sim, cpu):
        meter = EnergyMeter(sim, [cpu])
        meter.start()
        with pytest.raises(EnergyModelError):
            _ = meter.energy_j

    def test_window_excludes_prior_energy(self, sim, cpu):
        # burn a second before the window opens
        cpu.start()
        sim.run(until=1.0)
        cpu.stop()
        meter = EnergyMeter(sim, [cpu])
        meter.start()
        sim.run(until=1.5)
        assert meter.stop() == pytest.approx(0.5 * cal.P_IDLE_W, rel=0.01)

    def test_restartable(self, sim, cpu):
        meter = EnergyMeter(sim, [cpu])
        meter.start()
        sim.run(until=1.0)
        first = meter.stop()
        meter.start()
        sim.run(until=3.0)
        second = meter.stop()
        assert second == pytest.approx(2 * first, rel=0.02)

    def test_power_series_exposed(self, sim, cpu):
        meter = EnergyMeter(sim, [cpu])
        meter.start()
        sim.run(until=1.0)
        meter.stop()
        series = meter.power_series()
        assert len(series) == 1
        assert len(series[0]) > 0

    def test_needs_cpu_models(self, sim):
        with pytest.raises(EnergyModelError):
            EnergyMeter(sim, [])
