"""Unit tests for the calibration constants and the fitted curve."""

import pytest

from repro.energy import calibration as cal


class TestAnchors:
    def test_paper_anchor_values(self):
        """These come verbatim from §4.1 of the paper."""
        assert cal.P_IDLE_W == 21.49
        assert cal.P_HALF_RATE_W == 34.23
        assert cal.P_LINE_RATE_W == 35.82

    def test_curve_passes_through_anchors(self):
        assert cal.network_power_w(0) == 0.0
        assert cal.P_IDLE_W + cal.network_power_w(5.0) == pytest.approx(
            cal.P_HALF_RATE_W
        )
        assert cal.P_IDLE_W + cal.network_power_w(10.0) == pytest.approx(
            cal.P_LINE_RATE_W
        )

    def test_gamma_is_strongly_concave(self):
        """The fitted exponent must be far below 1 (power nearly
        saturates by half rate — the paper's core observation)."""
        assert 0.0 < cal.GAMMA_NET < 0.3

    def test_marginal_power_decreasing(self):
        """§4.1: +5 Gb/s from idle costs ~60%, from 5 Gb/s only ~5%."""
        first_half = cal.network_power_w(5.0) - cal.network_power_w(0.0)
        second_half = cal.network_power_w(10.0) - cal.network_power_w(5.0)
        assert first_half > 5 * second_half


class TestInterpolation:
    def test_exact_knots(self):
        assert cal.interpolate(cal.C_LOAD_TABLE, 0.25) == 33.5

    def test_midpoint(self):
        mid = cal.interpolate(cal.C_LOAD_TABLE, 0.375)
        assert 33.5 < mid < 53.5

    def test_clamps_below_and_above(self):
        assert cal.interpolate(cal.C_LOAD_TABLE, -1.0) == 0.0
        assert cal.interpolate(cal.C_LOAD_TABLE, 2.0) == 95.0

    def test_attenuation_monotone_decreasing(self):
        values = [
            cal.interpolate(cal.S_ATTENUATION_TABLE, x / 10)
            for x in range(11)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[0] == 1.0


class TestReferenceRates:
    def test_reference_packet_rate(self):
        # 10 Gb/s at 9000-byte packets ~ 139 kpps
        assert cal.reference_packet_rate(10.0) == pytest.approx(
            10e9 / (9000 * 8)
        )

    def test_dollar_constants(self):
        assert cal.RACK_COST_USD_PER_YEAR == 10_000
        assert cal.RACKS_PER_DATACENTER == 100_000
