"""Unit tests for CPU package accounting and flow pinning."""

import random

import pytest

from repro.energy import calibration as cal
from repro.energy.cpu import CpuModel, CpuPackage
from repro.energy.power_model import PowerModel
from repro.errors import EnergyModelError
from repro.net.host import Host
from repro.net.packet import Packet


@pytest.fixture
def host(sim):
    return Host(sim, "h")


@pytest.fixture
def cpu(sim, host):
    return CpuModel(sim, host, packages=2)


def packet(flow, payload=1000, retransmitted=False):
    return Packet(
        flow_id=flow, src="a", dst="b", payload_bytes=payload,
        retransmitted=retransmitted,
    )


class TestPackageIntegration:
    def test_idle_energy_is_idle_power_times_time(self, sim):
        pkg = CpuPackage("p", PowerModel(), sim)
        sim.schedule(1.0, lambda: None)
        sim.run()
        pkg.flush()
        assert pkg.energy_j == pytest.approx(cal.P_IDLE_W * 1.0)

    def test_flush_without_time_is_noop(self, sim):
        pkg = CpuPackage("p", PowerModel(), sim)
        pkg.flush()
        assert pkg.energy_j == 0.0

    def test_activity_raises_power(self, sim):
        pkg = CpuPackage("p", PowerModel(), sim)
        # 5 Gb/s worth of bytes over 1 virtual second
        pkg._wire_bytes = int(5e9 / 8)
        sim.schedule(1.0, lambda: None)
        sim.run()
        pkg.flush()
        assert pkg.energy_j > cal.P_HALF_RATE_W * 0.9

    def test_background_load_change_flushes(self, sim):
        pkg = CpuPackage("p", PowerModel(), sim)
        sim.schedule(1.0, lambda: None)
        sim.run()
        pkg.set_background_load(0.5)
        # first second accounted at idle
        assert pkg.energy_j == pytest.approx(cal.P_IDLE_W, rel=0.01)

    def test_invalid_load_rejected(self, sim):
        pkg = CpuPackage("p", PowerModel(), sim)
        with pytest.raises(EnergyModelError):
            pkg.set_background_load(1.5)

    def test_noise_perturbs_energy(self, sim):
        energies = []
        for seed in (1, 2):
            from repro.sim.engine import Simulator

            local = Simulator()
            pkg = CpuPackage("p", PowerModel(), local)
            pkg.noise_rng = random.Random(seed)
            pkg.noise_sigma = 0.01
            local.schedule(1.0, lambda: None)
            local.run()
            pkg.flush()
            energies.append(pkg.energy_j)
        assert energies[0] != energies[1]


class TestFlowPinning:
    def test_explicit_pin(self, sim, host, cpu):
        cpu.pin_flow(7, 1)
        assert cpu.package_for(7) is cpu.packages[1]

    def test_auto_pin_round_robin(self, sim, host, cpu):
        first = cpu.package_for(100)
        second = cpu.package_for(200)
        assert first is not second
        assert cpu.package_for(100) is first  # stable

    def test_events_charge_pinned_package(self, sim, host, cpu):
        cpu.pin_flow(1, 0)
        cpu.pin_flow(2, 1)
        host.send = lambda p: True  # not used; we drive listeners directly
        cpu.on_packet_sent(host, packet(1))
        cpu.on_packet_sent(host, packet(2))
        cpu.on_packet_sent(host, packet(2))
        assert cpu.packages[0]._packet_events == 1
        assert cpu.packages[1]._packet_events == 2

    def test_cc_ops_follow_flow(self, sim, host, cpu):
        cpu.pin_flow(5, 1)
        cpu.on_cc_op(host, "cubic", 2.0, flow_id=5)
        assert cpu.packages[1]._cc_units == 2.0

    def test_retransmissions_counted(self, sim, host, cpu):
        cpu.pin_flow(5, 0)
        cpu.on_retransmit(host, packet(5, retransmitted=True))
        assert cpu.packages[0]._retransmissions == 1


class TestLifecycle:
    def test_total_energy_sums_packages(self, sim, host, cpu):
        cpu.start()
        sim.schedule(0.5, lambda: None)
        sim.run(until=0.5)
        cpu.stop()
        assert cpu.total_energy_j == pytest.approx(
            2 * cal.P_IDLE_W * 0.5, rel=0.01
        )

    def test_sampler_records_power_series(self, sim, host):
        cpu = CpuModel(sim, host, packages=1, sample_interval_s=0.1)
        cpu.start()
        sim.run(until=1.0)
        cpu.stop()
        series = cpu.packages[0].power_series
        assert len(series) >= 9
        assert series.values[0] == pytest.approx(cal.P_IDLE_W, rel=0.01)

    def test_needs_at_least_one_package(self, sim, host):
        with pytest.raises(EnergyModelError):
            CpuModel(sim, host, packages=0)

    def test_listener_attached_to_host(self, sim):
        host = Host(sim, "x")
        cpu = CpuModel(sim, host, packages=1)
        assert cpu in host._listeners
