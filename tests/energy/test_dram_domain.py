"""Tests for the DRAM RAPL domain."""

import pytest

from repro.energy import calibration as cal
from repro.energy.cpu import CpuModel, CpuPackage
from repro.energy.power_model import IntervalActivity, PowerModel
from repro.energy.rapl import RaplDomain, RaplReader
from repro.errors import EnergyModelError
from repro.net.host import Host


class TestDramPowerModel:
    def test_idle_dram_power(self):
        model = PowerModel()
        activity = IntervalActivity(duration_s=1.0)
        assert model.dram_power_w(activity) == pytest.approx(cal.DRAM_IDLE_W)

    def test_throughput_adds_dram_power(self):
        model = PowerModel()
        busy = IntervalActivity(duration_s=1.0, wire_bytes=int(10e9 / 8))
        assert model.dram_power_w(busy) == pytest.approx(
            cal.DRAM_IDLE_W + 10 * cal.BETA_DRAM_W_PER_GBPS
        )

    def test_retransmissions_add_dram_power(self):
        model = PowerModel()
        lossy = IntervalActivity(duration_s=1.0, retransmissions=100_000)
        clean = IntervalActivity(duration_s=1.0)
        assert model.dram_power_w(lossy) > model.dram_power_w(clean) + 1.0

    def test_zero_duration_rejected(self):
        with pytest.raises(EnergyModelError):
            PowerModel().dram_power_w(IntervalActivity(duration_s=0.0))


class TestDramAccounting:
    def test_dram_energy_integrates(self, sim):
        pkg = CpuPackage("p", PowerModel(), sim)
        sim.schedule(1.0, lambda: None)
        sim.run()
        pkg.flush()
        assert pkg.dram_energy_j == pytest.approx(cal.DRAM_IDLE_W, rel=0.01)

    def test_dram_domain_reads_dram_counter(self, sim):
        pkg = CpuPackage("p", PowerModel(), sim)
        pkg.energy_j = 100.0
        pkg.dram_energy_j = 7.0
        dram = RaplDomain(pkg, domain="dram")
        package = RaplDomain(pkg, domain="package")
        assert dram.read_counter() == int(7.0 / cal.RAPL_ENERGY_UNIT_J)
        assert package.read_counter() == int(100.0 / cal.RAPL_ENERGY_UNIT_J)

    def test_dram_domain_name_suffix(self, sim):
        pkg = CpuPackage("host-pkg0", PowerModel(), sim)
        assert RaplDomain(pkg, domain="dram").name == "host-pkg0-dram"

    def test_unknown_domain_rejected(self, sim):
        pkg = CpuPackage("p", PowerModel(), sim)
        with pytest.raises(EnergyModelError):
            RaplDomain(pkg, domain="uncore")

    def test_reader_includes_dram_when_asked(self, sim):
        cpu = CpuModel(sim, Host(sim, "h"), packages=1)
        reader = RaplReader.for_cpu_models([cpu], include_dram=True)
        names = set(reader.read_all())
        assert names == {"h-pkg0", "h-pkg0-dram"}

    def test_reader_package_only_by_default(self, sim):
        cpu = CpuModel(sim, Host(sim, "h"), packages=1)
        reader = RaplReader.for_cpu_models([cpu])
        assert set(reader.read_all()) == {"h-pkg0"}

    def test_paper_measurement_unaffected(self, sim):
        """Adding the DRAM domain must not shift the package anchors."""
        from repro.harness.experiment import FlowSpec, Scenario
        from repro.harness.runner import run_once

        m = run_once(
            Scenario(
                "anchor",
                flows=[FlowSpec(5_000_000, cca="cubic", target_rate_bps=5e9)],
                packages=1,
                power_noise_sigma=0.0,
            )
        )
        assert m.average_power_w == pytest.approx(cal.P_HALF_RATE_W, rel=0.03)
