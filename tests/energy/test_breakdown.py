"""Tests for per-mechanism energy attribution."""

import pytest

from repro.energy import calibration as cal
from repro.energy.power_model import IntervalActivity, PowerModel


def reference_activity(throughput_gbps, duration=1.0, retx=0):
    wire_bytes = int(throughput_gbps * 1e9 * duration / 8)
    data_pkts = cal.reference_packet_rate(throughput_gbps) * duration
    return IntervalActivity(
        duration_s=duration,
        wire_bytes=wire_bytes,
        packet_events=int(data_pkts * cal.REF_EVENTS_PER_DATA_PACKET),
        cc_cost_units=data_pkts
        * cal.REF_ACKS_PER_PACKET
        * cal.REF_CC_UNITS_PER_ACK,
        retransmissions=retx,
    )


class TestComponents:
    def test_components_sum_to_power(self):
        model = PowerModel()
        activity = reference_activity(5.0, retx=1000)
        components = model.power_components(activity)
        assert sum(components.values()) == pytest.approx(
            model.power_w(activity)
        )

    def test_reference_config_has_zero_excess(self):
        model = PowerModel()
        components = model.power_components(reference_activity(5.0))
        assert components["packet_excess"] == pytest.approx(0.0, abs=0.05)
        assert components["cc_compute"] == pytest.approx(0.0, abs=0.05)
        assert components["retransmissions"] == 0.0

    def test_idle_component_constant(self):
        model = PowerModel()
        for t in (0.0, 5.0, 10.0):
            components = model.power_components(reference_activity(t))
            assert components["idle"] == cal.P_IDLE_W

    def test_retransmissions_attributed(self):
        model = PowerModel()
        components = model.power_components(
            reference_activity(5.0, retx=100_000)
        )
        assert components["retransmissions"] == pytest.approx(
            cal.BETA_RETX_W_PER_RPS * 100_000
        )

    def test_component_keys_stable(self):
        model = PowerModel()
        components = model.power_components(reference_activity(1.0))
        assert tuple(components) == PowerModel.COMPONENT_KEYS

    def test_floor_adjustment_activates(self):
        model = PowerModel()
        credit = IntervalActivity(duration_s=1.0, cc_cost_units=-1e9)
        components = model.power_components(credit)
        assert components["floor_adjustment"] > 0
        assert sum(components.values()) == pytest.approx(cal.P_IDLE_W)


class TestMechanismExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.figures.mechanisms import run_mechanism_breakdown

        return run_mechanism_breakdown(
            ccas=("cubic", "baseline", "bbr2"), transfer_bytes=8_000_000
        )

    def test_components_account_for_totals(self, result):
        for row in result.rows:
            assert sum(row.components_j.values()) == pytest.approx(
                row.total_j, rel=0.02
            )

    def test_baseline_pays_for_retransmissions(self, result):
        baseline = result.row("baseline")
        cubic = result.row("cubic")
        assert (
            baseline.components_j["retransmissions"]
            > cubic.components_j["retransmissions"]
        )
        assert baseline.components_j["retransmissions"] > 0.01

    def test_bbr2_pays_in_idle_time(self, result):
        """BBR2's overhead is the *duration* of its transfer: the idle
        floor and network terms grow, not a single hot component."""
        bbr2 = result.row("bbr2")
        cubic = result.row("cubic")
        assert bbr2.components_j["idle"] > 1.2 * cubic.components_j["idle"]

    def test_table_renders(self, result):
        table = result.format_table()
        assert "cc_compute" in table and "baseline" in table
