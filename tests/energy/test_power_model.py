"""Unit tests for the package power model."""

import pytest

from repro.energy import calibration as cal
from repro.energy.power_model import IntervalActivity, PowerModel
from repro.errors import EnergyModelError


def reference_activity(throughput_gbps, duration=1.0, load=0.0):
    """Activity exactly matching the calibration reference (CUBIC@9000)."""
    wire_bytes = int(throughput_gbps * 1e9 * duration / 8)
    data_pkts = cal.reference_packet_rate(throughput_gbps) * duration
    return IntervalActivity(
        duration_s=duration,
        wire_bytes=wire_bytes,
        packet_events=int(data_pkts * cal.REF_EVENTS_PER_DATA_PACKET),
        cc_cost_units=data_pkts
        * cal.REF_ACKS_PER_PACKET
        * cal.REF_CC_UNITS_PER_ACK,
        retransmissions=0,
        background_load=load,
    )


class TestReferenceConfiguration:
    def test_idle_power(self):
        model = PowerModel()
        assert model.power_w(reference_activity(0.0)) == pytest.approx(
            cal.P_IDLE_W, rel=1e-6
        )

    def test_half_rate_anchor(self):
        model = PowerModel()
        assert model.power_w(reference_activity(5.0)) == pytest.approx(
            cal.P_HALF_RATE_W, rel=0.01
        )

    def test_line_rate_anchor(self):
        model = PowerModel()
        assert model.power_w(reference_activity(10.0)) == pytest.approx(
            cal.P_LINE_RATE_W, rel=0.01
        )

    def test_smooth_curve_strictly_increasing(self):
        model = PowerModel()
        samples = [model.smooth_sending_power_w(t / 2) for t in range(21)]
        assert all(b > a for a, b in zip(samples, samples[1:]))

    def test_smooth_curve_strictly_concave(self):
        model = PowerModel()
        p = model.smooth_sending_power_w
        for t in (1.0, 3.0, 5.0, 7.0, 9.0):
            assert p(t) > (p(t - 1) + p(t + 1)) / 2


class TestExcessTerms:
    def test_small_mtu_costs_more_at_same_throughput(self):
        model = PowerModel()
        ref = reference_activity(5.0)
        small_mtu = IntervalActivity(
            duration_s=ref.duration_s,
            wire_bytes=ref.wire_bytes,
            packet_events=ref.packet_events * 6,  # 1500 vs 9000
            cc_cost_units=ref.cc_cost_units * 6,
            background_load=0.0,
        )
        assert model.power_w(small_mtu) > model.power_w(ref) + 3.0

    def test_expensive_cca_draws_more(self):
        model = PowerModel()
        ref = reference_activity(5.0)
        pricey = IntervalActivity(
            duration_s=ref.duration_s,
            wire_bytes=ref.wire_bytes,
            packet_events=ref.packet_events,
            cc_cost_units=ref.cc_cost_units * 2,
            background_load=0.0,
        )
        assert model.power_w(pricey) > model.power_w(ref)

    def test_retransmissions_cost_power(self):
        model = PowerModel()
        ref = reference_activity(5.0)
        lossy = IntervalActivity(
            duration_s=ref.duration_s,
            wire_bytes=ref.wire_bytes,
            packet_events=ref.packet_events,
            cc_cost_units=ref.cc_cost_units,
            retransmissions=50_000,
            background_load=0.0,
        )
        assert model.power_w(lossy) > model.power_w(ref) + 0.5

    def test_cheap_cca_floor_at_idle(self):
        """Micro-work credits can't push below idle + load power."""
        model = PowerModel()
        credit = IntervalActivity(
            duration_s=1.0,
            wire_bytes=0,
            packet_events=0,
            cc_cost_units=-1e9,  # absurd credit
            background_load=0.0,
        )
        assert model.power_w(credit) == pytest.approx(cal.P_IDLE_W)


class TestLoadBehaviour:
    def test_load_adds_power(self):
        model = PowerModel()
        idle = model.smooth_sending_power_w(0.0, load=0.0)
        loaded = model.smooth_sending_power_w(0.0, load=0.5)
        assert loaded == pytest.approx(idle + 53.5)

    def test_load_attenuates_network_marginal(self):
        model = PowerModel()
        marginal_idle = model.smooth_sending_power_w(
            10.0, 0.0
        ) - model.smooth_sending_power_w(0.0, 0.0)
        marginal_loaded = model.smooth_sending_power_w(
            10.0, 0.75
        ) - model.smooth_sending_power_w(0.0, 0.75)
        assert marginal_loaded < 0.1 * marginal_idle


class TestChord:
    def test_chord_below_curve_interior(self):
        model = PowerModel()
        for t in (1.0, 2.5, 5.0, 7.5, 9.0):
            assert model.full_speed_then_idle_power_w(
                t
            ) < model.smooth_sending_power_w(t)

    def test_chord_matches_at_endpoints(self):
        model = PowerModel()
        assert model.full_speed_then_idle_power_w(0.0) == pytest.approx(
            model.smooth_sending_power_w(0.0)
        )
        assert model.full_speed_then_idle_power_w(10.0) == pytest.approx(
            model.smooth_sending_power_w(10.0)
        )

    def test_chord_out_of_range_rejected(self):
        with pytest.raises(EnergyModelError):
            PowerModel().full_speed_then_idle_power_w(11.0)


class TestValidation:
    def test_zero_duration_rejected(self):
        with pytest.raises(EnergyModelError):
            PowerModel().power_w(IntervalActivity(duration_s=0.0))

    def test_bad_gamma_rejected(self):
        with pytest.raises(EnergyModelError):
            PowerModel(gamma_net=1.5)

    def test_negative_idle_rejected(self):
        with pytest.raises(EnergyModelError):
            PowerModel(p_idle_w=-1.0)

    def test_paper_fsti_savings_from_anchors(self):
        """The §4.1 arithmetic: 2x34.23 vs (35.82 + 21.49) => ~16.3%."""
        model = PowerModel()
        fair = 2 * model.smooth_sending_power_w(5.0)
        fsti = model.smooth_sending_power_w(10.0) + model.smooth_sending_power_w(0.0)
        savings = (fair - fsti) / fair
        assert savings == pytest.approx(0.163, abs=0.005)
