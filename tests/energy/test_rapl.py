"""Unit tests for the RAPL counter emulation (wrap-around included)."""

import pytest

from repro.energy import calibration as cal
from repro.energy.cpu import CpuModel, CpuPackage
from repro.energy.power_model import PowerModel
from repro.energy.rapl import RaplDomain, RaplReader, energy_delta_j
from repro.errors import EnergyModelError
from repro.net.host import Host


@pytest.fixture
def package(sim):
    return CpuPackage("pkg0", PowerModel(), sim)


class TestRaplDomain:
    def test_counter_quantized_to_unit(self, sim, package):
        package.energy_j = 10.0
        domain = RaplDomain(package)
        expected_units = int(10.0 / cal.RAPL_ENERGY_UNIT_J)
        assert domain.read_counter() == expected_units

    def test_read_energy_uj(self, sim, package):
        package.energy_j = 1.0
        domain = RaplDomain(package)
        assert domain.read_energy_uj() == pytest.approx(1e6, rel=1e-4)

    def test_counter_wraps_at_32_bits(self, sim, package):
        domain = RaplDomain(package)
        package.energy_j = domain.wrap_joules + 5.0
        counter = domain.read_counter()
        assert counter == int(5.0 / cal.RAPL_ENERGY_UNIT_J)

    def test_wrap_joules_magnitude(self, sim, package):
        """2^32 * 2^-16 J = 65536 J — about half an hour at full load."""
        domain = RaplDomain(package)
        assert domain.wrap_joules == pytest.approx(65536.0)

    def test_read_flushes_accounting(self, sim, package):
        domain = RaplDomain(package)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert domain.read_counter() > 0  # idle power integrated on read

    def test_invalid_unit_rejected(self, sim, package):
        with pytest.raises(EnergyModelError):
            RaplDomain(package, energy_unit_j=0.0)


class TestWrapCorrection:
    def test_simple_delta(self, sim, package):
        domain = RaplDomain(package)
        assert energy_delta_j(100, 300, domain) == pytest.approx(
            200 * cal.RAPL_ENERGY_UNIT_J
        )

    def test_single_wrap_corrected(self, sim, package):
        domain = RaplDomain(package)
        near_top = domain.counter_mask - 10
        delta = energy_delta_j(near_top, 20, domain)
        assert delta == pytest.approx(31 * cal.RAPL_ENERGY_UNIT_J)

    def test_measurement_across_wrap(self, sim, package):
        """A before/after measurement spanning one wrap stays correct."""
        domain = RaplDomain(package)
        package.energy_j = domain.wrap_joules - 1.0
        before = domain.read_counter()
        package.energy_j = domain.wrap_joules + 1.0
        after = domain.read_counter()
        assert energy_delta_j(before, after, domain) == pytest.approx(
            2.0, rel=1e-3
        )


class TestRaplReader:
    def test_reader_covers_all_packages(self, sim):
        host = Host(sim, "h")
        cpu = CpuModel(sim, host, packages=2)
        reader = RaplReader.for_cpu_models([cpu])
        snapshot = reader.read_all()
        assert set(snapshot) == {"h-pkg0", "h-pkg1"}

    def test_joules_since(self, sim):
        host = Host(sim, "h")
        cpu = CpuModel(sim, host, packages=2)
        reader = RaplReader.for_cpu_models([cpu])
        before = reader.read_all()
        sim.schedule(1.0, lambda: None)
        sim.run()
        joules = reader.joules_since(before)
        assert joules == pytest.approx(2 * cal.P_IDLE_W, rel=0.01)

    def test_empty_reader_rejected(self):
        with pytest.raises(EnergyModelError):
            RaplReader([])
