"""Unit tests for the RFC 6298 RTT estimator."""

import pytest

from repro.errors import TcpStateError
from repro.tcp.rtt import RttEstimator


class TestSampling:
    def test_first_sample_initializes(self):
        est = RttEstimator()
        est.on_sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)

    def test_ewma_smoothing(self):
        est = RttEstimator()
        est.on_sample(0.1)
        est.on_sample(0.2)
        # srtt = 7/8*0.1 + 1/8*0.2
        assert est.srtt == pytest.approx(0.1125)

    def test_min_rtt_tracked(self):
        est = RttEstimator()
        for rtt in (0.10, 0.05, 0.20):
            est.on_sample(rtt)
        assert est.min_rtt == pytest.approx(0.05)

    def test_latest_rtt(self):
        est = RttEstimator()
        est.on_sample(0.1)
        est.on_sample(0.3)
        assert est.latest_rtt == pytest.approx(0.3)

    def test_non_positive_sample_rejected(self):
        with pytest.raises(TcpStateError):
            RttEstimator().on_sample(0.0)

    def test_sample_count(self):
        est = RttEstimator()
        for _ in range(3):
            est.on_sample(0.1)
        assert est.samples == 3


class TestRto:
    def test_initial_rto_before_samples(self):
        est = RttEstimator(initial_rto=0.25)
        assert est.rto == pytest.approx(0.25)

    def test_rto_formula(self):
        est = RttEstimator(min_rto=1e-4)
        est.on_sample(0.1)
        # rto = srtt + 4*rttvar = 0.1 + 4*0.05
        assert est.rto == pytest.approx(0.3)

    def test_min_rto_floor(self):
        est = RttEstimator(min_rto=0.5)
        est.on_sample(0.001)
        assert est.rto >= 0.5

    def test_max_rto_ceiling(self):
        est = RttEstimator(max_rto=1.0)
        est.on_sample(10.0)
        assert est.rto == 1.0

    def test_backoff_doubles(self):
        est = RttEstimator(min_rto=1e-4, max_rto=100.0)
        est.on_sample(0.1)
        base = est.rto
        est.backoff()
        assert est.rto == pytest.approx(2 * base)
        est.backoff()
        assert est.rto == pytest.approx(4 * base)

    def test_backoff_capped(self):
        est = RttEstimator()
        for _ in range(20):
            est.backoff()
        assert est.backoff_factor == 64

    def test_sample_clears_backoff(self):
        est = RttEstimator(min_rto=1e-4)
        est.on_sample(0.1)
        est.backoff()
        est.on_sample(0.1)
        assert est.backoff_factor == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(TcpStateError):
            RttEstimator(min_rto=2.0, max_rto=1.0)
