"""TCP corner cases: reordering, tiny transfers, odd MTUs, stale ACKs."""

import pytest

from repro.apps.iperf import IperfSession, run_until_complete
from repro.cc.registry import factory
from repro.net.packet import Packet
from repro.net.topology import TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


def ack(ack_seq, flow=1, sacks=()):
    return Packet(
        flow_id=flow, src="receiver", dst="stub", is_ack=True,
        ack_seq=ack_seq, sacks=tuple(sacks),
    )


class TestTinyTransfers:
    @pytest.mark.parametrize("size", [1, 100, 1460, 1461, 2920])
    def test_sub_window_transfers_complete(self, size):
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig())
        session = IperfSession(testbed, total_bytes=size)
        result = run_until_complete(testbed, [session], time_limit_s=10)[0]
        assert result.bytes_transferred == size
        assert session.receiver.bytes_received == size

    def test_one_byte_flow_fct_is_about_one_rtt(self):
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig())
        session = IperfSession(testbed, total_bytes=1)
        result = run_until_complete(testbed, [session], time_limit_s=10)[0]
        # 4 propagation legs + serialization + delack; well under 1 ms
        assert result.duration_s < 1e-3


class TestOddMtus:
    @pytest.mark.parametrize("mtu", [576, 1280, 4000, 8999])
    def test_non_standard_mtus_work(self, mtu):
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig(mtu_bytes=mtu))
        session = IperfSession(testbed, total_bytes=500_000)
        result = run_until_complete(testbed, [session], time_limit_s=30)[0]
        assert result.bytes_transferred == 500_000


class TestStaleAndDuplicateAcks:
    def make_sender(self, sim, stub_host, total=100_000):
        return TcpSender(
            sim, stub_host, flow_id=1, dst="r",
            cca_factory=factory("reno"), total_bytes=total,
        )

    def test_old_ack_after_progress_is_ignored(self, sim, stub_host):
        sender = self.make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        sender.handle_packet(ack(2920))
        snd_una = sender.snd_una
        # a reordered, stale cumulative ACK arrives late
        sender.handle_packet(ack(1460))
        assert sender.snd_una == snd_una
        assert not sender.in_recovery

    def test_duplicate_final_ack_harmless(self, sim, stub_host):
        sender = self.make_sender(sim, stub_host, total=1460)
        sender.start()
        sender.handle_packet(ack(1460))
        assert sender.complete
        sender.handle_packet(ack(1460))  # dup of the final ACK
        assert sender.complete

    def test_sack_below_snd_una_ignored(self, sim, stub_host):
        sender = self.make_sender(sim, stub_host)
        sender.start()
        sender.handle_packet(ack(5840))
        sender.handle_packet(ack(5840, sacks=[(0, 1460)]))  # ancient sack
        assert sender.bytes_in_flight >= 0

    def test_empty_sack_block_ignored(self, sim, stub_host):
        sender = self.make_sender(sim, stub_host)
        sender.start()
        sender.handle_packet(ack(1460, sacks=[(5000, 5000)]))
        assert sender.snd_una == 1460


class TestReordering:
    def test_mild_reordering_no_spurious_retransmit(self):
        """Out-of-order delivery within the dupack threshold must not
        trigger fast retransmit."""
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig())
        receiver_host = testbed.receiver
        # Deliver segments 0,2,1 by hand through a receiver.
        receiver = TcpReceiver(
            sim, receiver_host, flow_id=77, peer="sender",
            expected_bytes=3 * 1000,
        )

        def seg(seq):
            return Packet(
                flow_id=77, src="sender", dst="receiver", seq=seq,
                payload_bytes=1000,
            )

        receiver.handle_packet(seg(0))
        receiver.handle_packet(seg(2000))  # one-packet reorder
        receiver.handle_packet(seg(1000))
        assert receiver.rcv_nxt == 3000
        assert receiver.complete

    def test_receiver_tolerates_duplicate_flood(self, sim, stub_host):
        receiver = TcpReceiver(
            sim, stub_host, flow_id=1, peer="sender", expected_bytes=2000
        )
        packet = Packet(
            flow_id=1, src="sender", dst="stub", seq=0, payload_bytes=1000
        )
        for _ in range(50):
            receiver.handle_packet(packet)
        assert receiver.bytes_received == 1000
        assert receiver.counters.get("duplicate_segments") == 49


class TestWriteAfterStart:
    def test_streaming_writes(self, sim, stub_host):
        sender = TcpSender(
            sim, stub_host, flow_id=1, dst="r",
            cca_factory=factory("reno"), total_bytes=4380,
        )
        sender.app_bytes = 0  # nothing staged yet
        sender.start()
        assert stub_host.pop_all() == []
        sender.write(1460)
        assert len(stub_host.pop_all()) == 1
        sender.write(2920)
        assert len(stub_host.pop_all()) == 2

    def test_negative_write_rejected(self, sim, stub_host):
        from repro.errors import TcpStateError

        sender = TcpSender(
            sim, stub_host, flow_id=1, dst="r",
            cca_factory=factory("reno"), total_bytes=None,
        )
        with pytest.raises(TcpStateError):
            sender.write(-1)
