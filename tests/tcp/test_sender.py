"""Unit tests for the TCP sender: windowing, ACK processing, completion."""

import pytest

from repro.cc.registry import factory
from repro.errors import TcpStateError
from repro.net.packet import Packet
from repro.tcp.sender import TcpSender


def make_sender(sim, host, total=100_000, cca="reno", **kwargs):
    sender = TcpSender(
        sim, host, flow_id=1, dst="receiver",
        cca_factory=factory(cca), total_bytes=total, **kwargs
    )
    return sender


def ack(ack_seq, flow=1, sacks=(), echo=None, ece=False, marked=0):
    return Packet(
        flow_id=flow, src="receiver", dst="stub", is_ack=True,
        ack_seq=ack_seq, sacks=tuple(sacks), echo_time=echo,
        ecn_echo=ece, ecn_marked_bytes=marked,
    )


class TestInitialSend:
    def test_sends_initial_window(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        sent = stub_host.pop_all()
        # IW10 at MSS 1460 = 14600 bytes
        assert len(sent) == 10
        assert sent[0].seq == 0
        assert all(p.payload_bytes == 1460 for p in sent)

    def test_does_not_send_before_start(self, sim, stub_host):
        make_sender(sim, stub_host)
        assert stub_host.outbox == []

    def test_short_transfer_partial_segment(self, sim, stub_host):
        sender = make_sender(sim, stub_host, total=2000)
        sender.start()
        sent = stub_host.pop_all()
        assert [p.payload_bytes for p in sent] == [1460, 540]

    def test_mss_from_host_mtu(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        assert sender.mss == 1460

    def test_write_extends_stream(self, sim, stub_host):
        sender = TcpSender(
            sim, stub_host, flow_id=1, dst="r",
            cca_factory=factory("reno"), total_bytes=None,
        )
        sender.start()
        assert stub_host.pop_all() == []
        sender.write(1460)
        assert len(stub_host.pop_all()) == 1


class TestAckProcessing:
    def test_ack_advances_window(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        sender.handle_packet(ack(2920))
        assert sender.snd_una == 2920
        assert sender.delivered_bytes == 2920
        # slow start grows cwnd, so new segments flow
        assert len(stub_host.pop_all()) >= 2

    def test_ack_beyond_snd_nxt_rejected(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        with pytest.raises(TcpStateError):
            sender.handle_packet(ack(10**9))

    def test_rtt_sample_from_echo(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        sim.schedule(0.05, lambda: sender.handle_packet(ack(1460, echo=0.0)))
        sim.run(until=0.06)
        assert sender.rtt.srtt == pytest.approx(0.05)

    def test_bytes_in_flight_accounting(self, sim, stub_host):
        sender = make_sender(sim, stub_host, total=14600)
        sender.start()
        assert sender.bytes_in_flight == 14600
        sender.handle_packet(ack(7300))
        assert sender.bytes_in_flight == 14600 - 7300

    def test_data_packet_ignored(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        sender.handle_packet(
            Packet(flow_id=1, src="x", dst="stub", seq=0, payload_bytes=10)
        )
        assert sender.counters.get("unexpected_data") == 1


class TestCompletion:
    def test_completion_on_final_ack(self, sim, stub_host):
        done = []
        sender = make_sender(sim, stub_host, total=2920)
        sender.on_complete(done.append)
        sender.start()
        sender.handle_packet(ack(2920))
        assert sender.complete
        assert done == [sim.now]
        assert sender.flow_completion_time == sim.now

    def test_no_send_after_complete(self, sim, stub_host):
        sender = make_sender(sim, stub_host, total=1460)
        sender.start()
        stub_host.pop_all()
        sender.handle_packet(ack(1460))
        sender.write(1000)
        assert stub_host.pop_all() == []

    def test_rto_timer_stopped_on_completion(self, sim, stub_host):
        sender = make_sender(sim, stub_host, total=1460)
        sender.start()
        sender.handle_packet(ack(1460))
        sim.run()  # no timers should fire / hang
        assert sender.counters.get("rtos") == 0


class TestEcnHandling:
    def test_ece_triggers_single_reduction_per_rtt(self, sim, stub_host):
        sender = make_sender(sim, stub_host, cca="reno")
        sender.start()
        stub_host.pop_all()
        sender.rtt.on_sample(0.1)
        cwnd_before = sender.cca.cwnd
        sender.handle_packet(ack(1460, ece=True))
        after_first = sender.cca.cwnd
        assert after_first < cwnd_before
        # second ECE within the same RTT: no further cut
        sender.handle_packet(ack(2920, ece=True))
        assert sender.cca.cwnd >= after_first
        assert sender.counters.get("ecn_reductions") == 1

    def test_ecn_capable_flag_on_segments(self, sim, stub_host):
        sender = make_sender(sim, stub_host, cca="dctcp", ecn_capable=True)
        sender.start()
        assert all(p.ecn_capable for p in stub_host.pop_all())
