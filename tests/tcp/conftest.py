"""TCP-layer test helpers: a stub host capturing outbound packets."""

from __future__ import annotations

import pytest

from repro.net.host import Host


class StubHost(Host):
    """A Host that records sends instead of using a NIC."""

    def __init__(self, sim, name="stub"):
        super().__init__(sim, name)
        self.outbox = []

    def send(self, packet):
        packet.sent_time = self.sim.now
        self.counters.add("tx_packets")
        if packet.retransmitted:
            self.counters.add("retransmissions")
            for listener in self._listeners:
                listener.on_retransmit(self, packet)
        for listener in self._listeners:
            listener.on_packet_sent(self, packet)
        self.outbox.append(packet)
        return True

    def pop_all(self):
        out, self.outbox = self.outbox, []
        return out

    @property
    def mtu_bytes(self):
        return 1500


@pytest.fixture
def stub_host(sim):
    return StubHost(sim)
