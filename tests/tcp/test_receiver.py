"""Unit tests for the TCP receiver: ACK generation, SACK, ECN echo."""

import pytest

from repro.net.packet import Packet
from repro.tcp.receiver import TcpReceiver


def data(seq, length, flow=1, marked=False, sent_time=0.0):
    return Packet(
        flow_id=flow,
        src="sender",
        dst="stub",
        seq=seq,
        payload_bytes=length,
        ecn_marked=marked,
        sent_time=sent_time,
    )


@pytest.fixture
def receiver(sim, stub_host):
    return TcpReceiver(
        sim, stub_host, flow_id=1, peer="sender", expected_bytes=10_000,
        delack_segments=2,
    )


class TestCumulativeAck:
    def test_in_order_delayed_ack(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000))
        assert stub_host.outbox == []  # first segment: delayed
        receiver.handle_packet(data(1000, 1000))
        acks = stub_host.pop_all()
        assert len(acks) == 1
        assert acks[0].ack_seq == 2000

    def test_delack_timer_flushes_single_segment(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000))
        sim.run()  # let the delack timer fire
        acks = stub_host.pop_all()
        assert len(acks) == 1
        assert acks[0].ack_seq == 1000

    def test_bytes_received_counts_once(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000))
        receiver.handle_packet(data(0, 1000))  # duplicate
        assert receiver.bytes_received == 1000
        assert receiver.counters.get("duplicate_segments") == 1


class TestOutOfOrder:
    def test_gap_triggers_immediate_dupack_with_sack(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000))
        receiver.handle_packet(data(1000, 1000))
        stub_host.pop_all()
        receiver.handle_packet(data(3000, 1000))  # hole at 2000
        acks = stub_host.pop_all()
        assert len(acks) == 1
        assert acks[0].ack_seq == 2000
        assert acks[0].sacks == ((3000, 4000),)

    def test_hole_fill_advances_cumulative(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000))
        receiver.handle_packet(data(2000, 1000))
        stub_host.pop_all()
        receiver.handle_packet(data(1000, 1000))  # fills hole
        acks = stub_host.pop_all()
        assert acks[-1].ack_seq == 3000
        assert acks[-1].sacks == ()

    def test_duplicate_triggers_immediate_ack(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000))
        receiver.handle_packet(data(1000, 1000))
        stub_host.pop_all()
        receiver.handle_packet(data(0, 1000))  # spurious retransmit
        acks = stub_host.pop_all()
        assert len(acks) == 1
        assert acks[0].ack_seq == 2000


class TestEcn:
    def test_ce_state_change_forces_ack(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000, marked=True))
        acks = stub_host.pop_all()
        assert len(acks) == 1
        assert acks[0].ecn_echo

    def test_marked_bytes_reported(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000, marked=True))
        acks = stub_host.pop_all()
        assert acks[0].ecn_marked_bytes == 1000

    def test_marked_bytes_reset_after_ack(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000, marked=True))
        stub_host.pop_all()
        receiver.handle_packet(data(1000, 1000, marked=True))
        receiver.handle_packet(data(2000, 1000, marked=True))
        acks = stub_host.pop_all()
        total = sum(a.ecn_marked_bytes for a in acks)
        assert total == 2000  # only the bytes since the previous ACK

    def test_ce_clear_also_forces_ack(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000, marked=True))
        stub_host.pop_all()
        receiver.handle_packet(data(1000, 1000, marked=False))
        acks = stub_host.pop_all()
        assert len(acks) == 1
        assert not acks[0].ecn_echo


class TestCompletion:
    def test_completion_callback_fires_once(self, sim, stub_host, receiver):
        done = []
        receiver.on_complete(done.append)
        for seq in range(0, 10_000, 1000):
            receiver.handle_packet(data(seq, 1000))
        assert len(done) == 1
        assert receiver.complete
        assert receiver.completed_at == sim.now

    def test_echo_time_reflected(self, sim, stub_host, receiver):
        receiver.handle_packet(data(0, 1000, sent_time=1.25))
        receiver.handle_packet(data(1000, 1000, sent_time=1.5))
        acks = stub_host.pop_all()
        assert acks[0].echo_time == 1.5

    def test_stray_ack_ignored(self, sim, stub_host, receiver):
        receiver.handle_packet(
            Packet(flow_id=1, src="x", dst="stub", is_ack=True, ack_seq=5)
        )
        assert receiver.counters.get("stray_acks") == 1
