"""Unit tests for sender loss recovery: dupacks, SACK scoreboard, RTO."""

import pytest

from repro.cc.registry import factory
from repro.net.packet import Packet
from repro.tcp.sender import DUPACK_THRESHOLD, TcpSender


def make_sender(sim, host, total=100_000, cca="reno"):
    return TcpSender(
        sim, host, flow_id=1, dst="receiver",
        cca_factory=factory(cca), total_bytes=total,
    )


def ack(ack_seq, sacks=(), flow=1):
    return Packet(
        flow_id=flow, src="receiver", dst="stub", is_ack=True,
        ack_seq=ack_seq, sacks=tuple(sacks),
    )


class TestFastRetransmit:
    def test_three_dupacks_trigger_retransmit(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        for _ in range(DUPACK_THRESHOLD):
            sender.handle_packet(ack(0))
        retx = [p for p in stub_host.pop_all() if p.retransmitted]
        assert len(retx) >= 1
        assert retx[0].seq == 0
        assert sender.in_recovery
        assert sender.counters.get("fast_recoveries") == 1

    def test_two_dupacks_do_not_trigger(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        for _ in range(2):
            sender.handle_packet(ack(0))
        assert not sender.in_recovery
        assert all(not p.retransmitted for p in stub_host.pop_all())

    def test_sack_bytes_trigger_early(self, sim, stub_host):
        """3 MSS of SACKed data infers loss before 3 pure dupacks."""
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        sender.handle_packet(ack(0, sacks=[(1460, 1460 + 3 * 1460)]))
        assert sender.in_recovery

    def test_cwnd_reduced_on_recovery_entry(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        before = sender.cca.cwnd
        for _ in range(DUPACK_THRESHOLD):
            sender.handle_packet(ack(0))
        assert sender.cca.ssthresh < before

    def test_recovery_exit_on_full_ack(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        recovery_point = sender.snd_nxt
        for _ in range(DUPACK_THRESHOLD):
            sender.handle_packet(ack(0))
        sender.handle_packet(ack(recovery_point))
        assert not sender.in_recovery
        assert sender.counters.get("recovery_exits") == 1

    def test_partial_ack_retransmits_next_hole(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        for _ in range(DUPACK_THRESHOLD):
            sender.handle_packet(ack(0))
        stub_host.pop_all()
        sender.handle_packet(ack(1460))  # partial: hole at 1460
        retx = [p for p in stub_host.pop_all() if p.retransmitted]
        assert any(p.seq == 1460 for p in retx)
        assert sender.counters.get("partial_acks") == 1

    def test_sack_scoreboard_queues_all_holes(self, sim, stub_host):
        """Holes below the highest SACK are retransmitted together."""
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        mss = sender.mss
        # SACK everything except segments 0 and 2 (holes at 0, 2*mss).
        sacks = [(mss, 2 * mss), (3 * mss, 10 * mss)]
        for _ in range(DUPACK_THRESHOLD):
            sender.handle_packet(ack(0, sacks=sacks))
        retx_seqs = {p.seq for p in stub_host.pop_all() if p.retransmitted}
        assert 0 in retx_seqs
        assert 2 * mss in retx_seqs

    def test_sacked_segments_not_retransmitted(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        mss = sender.mss
        sacks = [(mss, 10 * mss)]
        for _ in range(DUPACK_THRESHOLD):
            sender.handle_packet(ack(0, sacks=sacks))
        retx_seqs = {p.seq for p in stub_host.pop_all() if p.retransmitted}
        assert retx_seqs == {0}

    def test_dupacks_without_outstanding_ignored(self, sim, stub_host):
        sender = make_sender(sim, stub_host, total=1460)
        sender.start()
        sender.handle_packet(ack(1460))
        for _ in range(5):
            sender.handle_packet(ack(1460))
        assert not sender.in_recovery


class TestRto:
    def test_rto_fires_and_retransmits(self, sim, stub_host):
        sender = make_sender(sim, stub_host, total=2920)
        sender.start()
        stub_host.pop_all()
        sim.run(until=sender.rtt.rto * 1.5)  # nothing ACKs; RTO must fire
        retx = [p for p in stub_host.outbox if p.retransmitted]
        assert sender.counters.get("rtos") >= 1
        assert any(p.seq == 0 for p in retx)

    def test_rto_collapses_cwnd(self, sim, stub_host):
        sender = make_sender(sim, stub_host)
        sender.start()
        first_rto = sender.rtt.rto
        sim.run(until=first_rto * 1.5)
        assert sender.cca.cwnd == sender.cca.min_cwnd

    def test_rto_backoff_applied(self, sim, stub_host):
        sender = make_sender(sim, stub_host, total=1460)
        sender.start()
        sim.run(until=2.0)
        assert sender.rtt.backoff_factor > 1
        assert sender.counters.get("rtos") >= 2

    def test_ack_rearms_rto(self, sim, stub_host):
        """Dupacks carrying SACKs keep the RTO pushed out."""
        sender = make_sender(sim, stub_host)
        sender.start()
        stub_host.pop_all()
        rto = sender.rtt.rto
        mss = sender.mss

        def dupack():
            sender.handle_packet(ack(0, sacks=[(mss, 2 * mss)]))

        sim.schedule(rto * 0.9, dupack)
        sim.run(until=rto * 1.05)
        assert sender.counters.get("rtos") == 0


class TestLocalDrops:
    def test_local_drop_requeues_without_loss_event(self, sim):
        """A host-qdisc rejection retries on drain; no dupack needed."""
        from tests.tcp.conftest import StubHost

        class DroppyHost(StubHost):
            def __init__(self, sim):
                super().__init__(sim)
                self.drop_next = 0

            def send(self, packet):
                if self.drop_next > 0:
                    self.drop_next -= 1
                    return False
                return super().send(packet)

        from repro.sim.engine import Simulator

        host = DroppyHost(sim)
        sender = make_sender(sim, host, total=14600)
        host.drop_next = 1
        sender.start()
        assert sender.counters.get("local_drops") == 1
        # the drop pauses sending until a drain event; simulate one
        sender._on_qdisc_drain()
        retx = [p for p in host.pop_all() if p.retransmitted]
        assert len(retx) == 1
        assert sender.counters.get("fast_recoveries") == 0
