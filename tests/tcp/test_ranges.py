"""Unit tests for the RangeSet interval bookkeeping."""

import pytest

from repro.tcp.ranges import RangeSet


class TestAdd:
    def test_disjoint_ranges(self):
        rs = RangeSet()
        assert rs.add(0, 10) == 10
        assert rs.add(20, 30) == 10
        assert list(rs) == [(0, 10), (20, 30)]

    def test_merge_overlapping(self):
        rs = RangeSet()
        rs.add(0, 10)
        assert rs.add(5, 15) == 5
        assert list(rs) == [(0, 15)]

    def test_merge_adjacent(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.add(10, 20)
        assert list(rs) == [(0, 20)]

    def test_duplicate_adds_zero_new_bytes(self):
        rs = RangeSet()
        rs.add(0, 10)
        assert rs.add(0, 10) == 0
        assert rs.add(2, 8) == 0

    def test_bridging_merge(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.add(20, 30)
        assert rs.add(5, 25) == 10
        assert list(rs) == [(0, 30)]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RangeSet().add(5, 5)

    def test_total_bytes(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.add(20, 25)
        assert rs.total_bytes == 15


class TestQueries:
    def test_contains(self):
        rs = RangeSet()
        rs.add(10, 20)
        assert rs.contains(10, 20)
        assert rs.contains(12, 18)
        assert not rs.contains(5, 15)
        assert not rs.contains(15, 25)

    def test_contains_empty_set(self):
        assert not RangeSet().contains(0, 1)

    def test_covers_point(self):
        rs = RangeSet()
        rs.add(10, 20)
        assert rs.covers_point(10)
        assert rs.covers_point(19)
        assert not rs.covers_point(20)  # half-open

    def test_first_missing_after(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.add(20, 30)
        assert rs.first_missing_after(0) == 10
        assert rs.first_missing_after(10) == 10
        assert rs.first_missing_after(25) == 30
        assert rs.first_missing_after(50) == 50

    def test_first_missing_chains_through_contiguous(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.add(10, 20)
        assert rs.first_missing_after(0) == 20


class TestMaintenance:
    def test_trim_below(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.add(20, 30)
        rs.trim_below(25)
        assert list(rs) == [(25, 30)]

    def test_trim_below_everything(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.trim_below(100)
        assert not rs

    def test_blocks_above_returns_highest(self):
        """SACK blocks report the most recent (highest) ranges first-hand."""
        rs = RangeSet()
        for start in (10, 30, 50, 70, 90):
            rs.add(start, start + 5)
        blocks = rs.blocks_above(0, limit=3)
        assert blocks == ((50, 55), (70, 75), (90, 95))

    def test_blocks_above_excludes_cumulative(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.add(20, 30)
        assert rs.blocks_above(0) == ((20, 30),)

    def test_bool(self):
        rs = RangeSet()
        assert not rs
        rs.add(0, 1)
        assert rs
