"""Unit tests for Reno, Scalable, HighSpeed, Westwood and Vegas."""

import pytest

from repro.cc.highspeed import HS_W_LOW, HighSpeed, hstcp_a, hstcp_b
from repro.cc.reno import Reno
from repro.cc.scalable import Scalable
from repro.cc.vegas import VEGAS_ALPHA, VEGAS_BETA, Vegas
from repro.cc.westwood import Westwood
from repro.units import BITS_PER_BYTE
from tests.cc.conftest import make_event


class TestReno:
    def test_name_and_cost(self, ctx):
        cc = Reno(ctx)
        assert cc.name == "reno"
        assert cc.ack_cost_units > 0

    def test_halving(self, ctx):
        cc = Reno(ctx)
        cc.cwnd = 80_000
        cc.ssthresh = 80_000
        cc.on_congestion_event(make_event())
        assert cc.cwnd == pytest.approx(40_000)


class TestScalable:
    def test_mimd_increase_proportional(self, ctx):
        cc = Scalable(ctx)
        cc.ssthresh = cc.cwnd  # exit slow start
        before = cc.cwnd
        cc.on_ack(make_event(acked=10_000))
        assert cc.cwnd - before == pytest.approx(100, abs=2)  # 0.01/byte

    def test_gentle_decrease(self, ctx):
        cc = Scalable(ctx)
        cc.cwnd = 80_000
        cc.ssthresh = 80_000
        cc.on_congestion_event(make_event())
        assert cc.cwnd == pytest.approx(70_000)  # 1/8 cut


class TestHighSpeedFunctions:
    def test_reno_region(self):
        assert hstcp_b(10) == 0.5
        assert hstcp_a(10) == 1.0

    def test_b_decreases_with_window(self):
        assert hstcp_b(1000) < hstcp_b(100)
        assert hstcp_b(83000) == pytest.approx(0.1, abs=0.01)

    def test_a_increases_with_window(self):
        assert hstcp_a(1000) > hstcp_a(100) > hstcp_a(HS_W_LOW)

    def test_aggressive_growth_at_large_window(self, ctx):
        cc = HighSpeed(ctx)
        cc.ssthresh = 1  # force congestion avoidance
        cc.cwnd = 1000 * ctx.mss
        before = cc.cwnd
        acked = 0
        while acked < before:  # one window of ACKs
            cc.on_ack(make_event(acked=10 * ctx.mss))
            acked += 10 * ctx.mss
        grown = (cc.cwnd - before) / ctx.mss
        assert grown > 5  # far faster than Reno's 1 segment/RTT

    def test_gentle_decrease_at_large_window(self, ctx):
        cc = HighSpeed(ctx)
        cc.cwnd = 1000 * ctx.mss
        cc.ssthresh = cc.cwnd
        cc.on_congestion_event(make_event())
        assert cc.cwnd > 1000 * ctx.mss * 0.5  # cuts less than half


class TestWestwood:
    def test_bandwidth_estimate_from_acks(self, ctx):
        cc = Westwood(ctx)
        for _ in range(20):
            ctx.advance(1e-3)
            cc.on_ack(make_event(acked=12_500))  # 12.5 KB per ms = 100 Mb/s
        assert cc.bandwidth_estimate_bps == pytest.approx(100e6, rel=0.2)

    def test_loss_sets_window_from_bwe(self, ctx):
        cc = Westwood(ctx)
        ctx.set_rtt(10e-3, min_rtt=10e-3)
        for _ in range(50):
            ctx.advance(1e-3)
            cc.on_ack(make_event(acked=12_500))
        cc.on_congestion_event(make_event())
        expected = cc.bandwidth_estimate_bps * 10e-3 / BITS_PER_BYTE
        assert cc.cwnd == pytest.approx(expected, rel=0.05)

    def test_falls_back_to_reno_without_estimate(self, ctx):
        cc = Westwood(ctx)
        cc.cwnd = 80_000
        cc.ssthresh = 80_000
        cc.on_congestion_event(make_event())
        assert cc.cwnd == pytest.approx(40_000)

    def test_rto_uses_estimate_for_ssthresh(self, ctx):
        cc = Westwood(ctx)
        ctx.set_rtt(10e-3, min_rtt=10e-3)
        for _ in range(50):
            ctx.advance(1e-3)
            cc.on_ack(make_event(acked=12_500))
        cc.on_rto()
        assert cc.cwnd == cc.min_cwnd
        assert cc.ssthresh > cc.min_cwnd


class TestVegas:
    def prime(self, ctx):
        cc = Vegas(ctx)
        cc.ssthresh = cc.cwnd  # exit slow start
        ctx.set_rtt(1e-3, min_rtt=1e-3)
        return cc

    def test_grows_when_queue_small(self, ctx):
        cc = self.prime(ctx)
        before = cc.cwnd
        ctx.advance(10e-3)
        cc.on_ack(make_event(acked=1460, rtt=1.01e-3))  # diff ~ 0 < alpha
        assert cc.cwnd == before + ctx.mss

    def test_shrinks_when_queue_large(self, ctx):
        cc = self.prime(ctx)
        cc.cwnd = 100 * ctx.mss
        before = cc.cwnd
        ctx.advance(10e-3)
        # rtt 2x base => diff = cwnd/2 segments >> beta
        cc.on_ack(make_event(acked=1460, rtt=2e-3))
        assert cc.cwnd == before - ctx.mss

    def test_holds_between_alpha_and_beta(self, ctx):
        cc = self.prime(ctx)
        cwnd_seg = 100.0
        cc.cwnd = int(cwnd_seg * ctx.mss)
        # choose rtt so diff = 3 segments (between alpha=2 and beta=4)
        target_diff = (VEGAS_ALPHA + VEGAS_BETA) / 2
        rtt = 1e-3 / (1 - target_diff / cwnd_seg)
        before = cc.cwnd
        ctx.advance(10e-3)
        cc.on_ack(make_event(acked=1460, rtt=rtt))
        assert cc.cwnd == before

    def test_adjusts_at_most_once_per_rtt(self, ctx):
        cc = self.prime(ctx)
        before = cc.cwnd
        ctx.advance(10e-3)
        cc.on_ack(make_event(acked=1460, rtt=1.01e-3))
        cc.on_ack(make_event(acked=1460, rtt=1.01e-3))  # same instant
        assert cc.cwnd == before + ctx.mss  # only one adjustment
