"""Unit + integration tests for Swift, DCQCN and HPCC (paper §5's
production-algorithm wish list)."""

import pytest

from repro.apps.iperf import IperfSession, run_until_complete
from repro.cc.dcqcn import DCQCN_START_RATE_BPS, DCQCN_UPDATE_PERIOD_S, Dcqcn
from repro.cc.hpcc import HPCC_ETA, Hpcc
from repro.cc.swift import SWIFT_BASE_TARGET_S, Swift
from repro.net.topology import TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from tests.cc.conftest import make_event


class TestSwiftUnit:
    def test_target_includes_flow_scaling(self, ctx):
        cc = Swift(ctx)
        cc.cwnd = 4 * ctx.mss
        small_target = cc.target_delay()
        cc.cwnd = 400 * ctx.mss
        large_target = cc.target_delay()
        assert small_target > large_target >= SWIFT_BASE_TARGET_S

    def test_grows_below_target(self, ctx):
        cc = Swift(ctx)
        ctx.set_rtt(50e-6, min_rtt=50e-6)
        before = cc.cwnd
        cc.on_ack(make_event(acked=1460, rtt=40e-6))
        assert cc.cwnd > before

    def test_shrinks_above_target(self, ctx):
        cc = Swift(ctx)
        ctx.set_rtt(50e-6, min_rtt=50e-6)
        cc.cwnd = 100 * ctx.mss
        before = cc.cwnd
        cc.on_ack(make_event(acked=1460, rtt=10e-3))  # way over target
        assert cc.cwnd < before

    def test_decrease_at_most_once_per_rtt(self, ctx):
        cc = Swift(ctx)
        ctx.set_rtt(50e-6, min_rtt=50e-6)
        cc.cwnd = 100 * ctx.mss
        cc.on_ack(make_event(acked=1460, rtt=10e-3))
        after_first = cc.cwnd
        cc.on_ack(make_event(acked=1460, rtt=10e-3))  # same instant
        assert cc.cwnd == after_first

    def test_loss_bounded_decrease(self, ctx):
        cc = Swift(ctx)
        cc.cwnd = 100_000
        cc.on_congestion_event(make_event())
        assert cc.cwnd == pytest.approx(50_000)


class TestDcqcnUnit:
    def test_starts_at_line_rate(self, ctx):
        assert Dcqcn(ctx).rc_bps == DCQCN_START_RATE_BPS

    def test_cnp_cuts_rate(self, ctx):
        cc = Dcqcn(ctx)
        cc.on_ack(make_event(ece=True, marked=1000))
        assert cc.rc_bps < DCQCN_START_RATE_BPS
        assert cc.rt_bps == DCQCN_START_RATE_BPS

    def test_cnp_reaction_rate_limited(self, ctx):
        cc = Dcqcn(ctx)
        cc.on_ack(make_event(ece=True))
        rate_after_first = cc.rc_bps
        cc.on_ack(make_event(ece=True))  # same instant: ignored
        assert cc.rc_bps == rate_after_first

    def test_recovers_toward_target(self, ctx):
        cc = Dcqcn(ctx)
        cc.on_ack(make_event(ece=True))
        cut = cc.rc_bps
        for _ in range(50):
            ctx.advance(2 * DCQCN_UPDATE_PERIOD_S)
            cc.on_ack(make_event())
        assert cc.rc_bps > cut
        assert cc.rc_bps <= DCQCN_START_RATE_BPS

    def test_alpha_decays_when_quiet(self, ctx):
        cc = Dcqcn(ctx)
        cc.alpha = 1.0
        for _ in range(50):
            ctx.advance(2 * DCQCN_UPDATE_PERIOD_S)
            cc.on_ack(make_event())
        assert cc.alpha < 0.1

    def test_paces_at_rc(self, ctx):
        cc = Dcqcn(ctx)
        assert cc.pacing_rate_bps() == cc.rc_bps


class TestHpccUnit:
    def int_event(self, qlen=0, tx_bytes=1e6, ts=1e-3, rate=10e9, **kw):
        return make_event(
            acked=1460,
            rtt=50e-6,
            **kw,
        ), dict(
            int_qlen_bytes=qlen,
            int_tx_bytes=tx_bytes,
            int_timestamp=ts,
            int_link_rate_bps=rate,
        )

    def ack_with_int(self, cc, ctx, qlen, tx_bytes, ts):
        event = make_event(acked=1460, rtt=50e-6)
        event.int_qlen_bytes = qlen
        event.int_tx_bytes = tx_bytes
        event.int_timestamp = ts
        event.int_link_rate_bps = 10e9
        cc.on_ack(event)

    def test_holds_window_without_int(self, ctx):
        cc = Hpcc(ctx)
        before = cc.cwnd
        cc.on_ack(make_event(acked=1460, rtt=50e-6))
        assert cc.cwnd == before

    def test_underutilized_link_grows_window(self, ctx):
        cc = Hpcc(ctx)
        ctx.set_rtt(50e-6, min_rtt=40e-6)
        before = cc.cwnd
        # empty queue, low tx rate -> U << eta -> multiplicative growth
        self.ack_with_int(cc, ctx, qlen=0, tx_bytes=1_000, ts=1e-3)
        ctx.advance(1e-3)
        self.ack_with_int(cc, ctx, qlen=0, tx_bytes=2_000, ts=2e-3)
        assert cc.cwnd > before

    def test_congested_link_shrinks_window(self, ctx):
        cc = Hpcc(ctx)
        ctx.set_rtt(50e-6, min_rtt=40e-6)
        cc.cwnd = 200 * ctx.mss
        cc.w_c = float(cc.cwnd)
        # deep queue + full-rate transmission -> U >> eta
        self.ack_with_int(cc, ctx, qlen=500_000, tx_bytes=1e6, ts=1e-3)
        ctx.advance(1e-3)
        self.ack_with_int(cc, ctx, qlen=500_000, tx_bytes=1e6 + 1.25e6, ts=2e-3)
        assert cc.cwnd < 200 * ctx.mss
        assert cc.last_utilization > HPCC_ETA

    def test_loss_halves_reference(self, ctx):
        cc = Hpcc(ctx)
        cc.w_c = 100_000.0
        cc.on_congestion_event(make_event())
        assert cc.w_c == pytest.approx(50_000.0)


@pytest.mark.parametrize("cca", ["swift", "dcqcn", "hpcc"])
def test_production_cca_completes_at_high_rate(cca):
    sim = Simulator()
    testbed = build_testbed(
        sim, TestbedConfig(int_telemetry=(cca == "hpcc"))
    )
    session = IperfSession(testbed, total_bytes=10_000_000, cca=cca)
    result = run_until_complete(testbed, [session], time_limit_s=30.0)[0]
    assert result.mean_throughput_bps > 7e9
    assert result.retransmissions == 0  # their design goal


def test_hpcc_receives_int_telemetry():
    sim = Simulator()
    testbed = build_testbed(sim, TestbedConfig(int_telemetry=True))
    session = IperfSession(testbed, total_bytes=5_000_000, cca="hpcc")
    run_until_complete(testbed, [session], time_limit_s=30.0)
    assert session.sender.cca.last_utilization is not None


def test_production_algorithms_registered():
    from repro.cc.registry import PRODUCTION_ALGORITHMS, get_class

    assert PRODUCTION_ALGORITHMS == ("swift", "dcqcn", "hpcc")
    for name in PRODUCTION_ALGORITHMS:
        assert get_class(name).name == name
