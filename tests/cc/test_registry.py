"""Unit tests for the CCA registry."""

import pytest

from repro.cc.base import CongestionControl
from repro.cc.registry import (
    PAPER_ALGORITHMS,
    algorithm_names,
    create,
    factory,
    get_class,
    register,
)
from repro.errors import ReproError


class TestLookup:
    def test_all_paper_algorithms_registered(self):
        for name in PAPER_ALGORITHMS:
            assert get_class(name).name == name

    def test_paper_set_is_ten_algorithms(self):
        assert len(PAPER_ALGORITHMS) == 10

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ReproError, match="cubic"):
            get_class("not-a-cca")

    def test_algorithm_names_sorted(self):
        names = algorithm_names()
        assert names == sorted(names)
        assert "cubic" in names

    def test_create_instantiates(self, ctx):
        cc = create("reno", ctx)
        assert cc.name == "reno"
        assert isinstance(cc, CongestionControl)

    def test_factory_closure(self, ctx):
        make = factory("cubic")
        assert make(ctx).name == "cubic"

    def test_factory_kwargs(self, ctx):
        make = factory("baseline", window_segments=42)
        assert make(ctx).cwnd == 42 * ctx.mss


class TestRegistration:
    def test_duplicate_name_rejected(self):
        class Dup(CongestionControl):
            name = "cubic"

        with pytest.raises(ReproError):
            register(Dup)

    def test_unnamed_class_rejected(self):
        class NoName(CongestionControl):
            name = "base"

        with pytest.raises(ReproError):
            register(NoName)

    def test_new_algorithm_registers_and_cleans_up(self, ctx):
        class Custom(CongestionControl):
            name = "custom-test-cca"

        register(Custom)
        try:
            assert create("custom-test-cca", ctx).name == "custom-test-cca"
        finally:
            from repro.cc import registry

            del registry._REGISTRY["custom-test-cca"]
