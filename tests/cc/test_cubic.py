"""Unit tests for CUBIC (RFC 8312)."""

import pytest

from repro.cc.cubic import CUBIC_BETA, Cubic
from tests.cc.conftest import make_event


class TestReduction:
    def test_beta_reduction(self, ctx):
        cc = Cubic(ctx)
        cc.cwnd = 100_000
        cc.ssthresh = 100_000
        cc.on_congestion_event(make_event())
        assert cc.cwnd == pytest.approx(100_000 * CUBIC_BETA)

    def test_fast_convergence_lowers_wmax(self, ctx):
        cc = Cubic(ctx)
        cc.cwnd = 100_000
        cc.ssthresh = 100_000
        cc.on_congestion_event(make_event())
        wmax_first = cc._w_max
        # Second loss at a smaller window: fast convergence shrinks w_max
        cc.on_congestion_event(make_event())
        assert cc._w_max < wmax_first


class TestCubicGrowth:
    def prime(self, ctx, cwnd=100_000):
        """A CUBIC instance out of slow start with an epoch started."""
        cc = Cubic(ctx)
        ctx.set_rtt(100e-6)
        cc.cwnd = cwnd
        cc.ssthresh = cwnd
        cc.on_congestion_event(make_event())  # sets w_max, resets epoch
        return cc

    def test_concave_growth_toward_wmax(self, ctx):
        cc = self.prime(ctx)
        below = cc.cwnd
        for _ in range(50):
            ctx.advance(1e-3)
            cc.on_ack(make_event(acked=1460))
        assert cc.cwnd > below  # grows back toward w_max

    def test_growth_accelerates_past_plateau(self, ctx):
        """Far beyond K, one RTT's worth of ACKs grows far beyond Reno's
        one-segment-per-RTT."""
        cc = self.prime(ctx)
        cc.on_ack(make_event(acked=1460))  # first ACK opens the epoch
        ctx.advance(5.0)  # deep into the convex region
        before = cc.cwnd
        acked = 0
        while acked < before:  # one full window of ACKs
            cc.on_ack(make_event(acked=1460))
            acked += 1460
        assert cc.cwnd - before > 5 * 1460

    def test_slow_start_before_first_loss(self, ctx):
        cc = Cubic(ctx)
        before = cc.cwnd
        cc.on_ack(make_event(acked=before))
        assert cc.cwnd == 2 * before


class TestHystart:
    def test_exits_slow_start_on_rtt_growth(self, ctx):
        cc = Cubic(ctx)
        ctx.set_rtt(100e-6, min_rtt=100e-6)
        cc.cwnd = 32 * ctx.mss  # above HYSTART_LOW_WINDOW
        cc.on_ack(make_event(acked=1460, rtt=300e-6))  # RTT tripled
        assert not cc.in_slow_start

    def test_no_exit_below_low_window(self, ctx):
        cc = Cubic(ctx)
        ctx.set_rtt(100e-6, min_rtt=100e-6)
        cc.cwnd = 4 * ctx.mss
        cc.on_ack(make_event(acked=1460, rtt=500e-6))
        assert cc.in_slow_start

    def test_no_exit_on_flat_rtt(self, ctx):
        cc = Cubic(ctx)
        ctx.set_rtt(100e-6, min_rtt=100e-6)
        cc.cwnd = 32 * ctx.mss
        cc.on_ack(make_event(acked=1460, rtt=110e-6))
        assert cc.in_slow_start

    def test_rto_resets_epoch(self, ctx):
        cc = Cubic(ctx)
        cc.cwnd = 100_000
        cc.on_rto()
        assert cc._epoch_start < 0
        assert cc.cwnd == cc.min_cwnd
