"""CC-layer helpers: a scripted CcContext and AckEvent factory."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.cc.base import AckEvent


class FakeContext:
    """A hand-driven CcContext for unit-testing algorithms."""

    def __init__(self, mss: int = 1460):
        self._mss = mss
        self._now = 0.0
        self._srtt: Optional[float] = None
        self._min_rtt: Optional[float] = None
        self.charged = 0.0

    @property
    def mss(self) -> int:
        return self._mss

    @property
    def now(self) -> float:
        return self._now

    @property
    def srtt(self) -> Optional[float]:
        return self._srtt

    @property
    def min_rtt(self) -> Optional[float]:
        return self._min_rtt

    def charge(self, cost_units: float) -> None:
        self.charged += cost_units

    # -- script controls ---------------------------------------------------

    def advance(self, dt: float) -> None:
        self._now += dt

    def set_rtt(self, srtt: float, min_rtt: Optional[float] = None) -> None:
        self._srtt = srtt
        self._min_rtt = min_rtt if min_rtt is not None else srtt


def make_event(
    acked=1460,
    rtt=None,
    flight=14600,
    recovery=False,
    ece=False,
    marked=0,
    rate=None,
    app_limited=False,
    cumulative=0,
):
    return AckEvent(
        newly_acked_bytes=acked,
        cumulative_ack=cumulative,
        rtt_sample=rtt,
        flight_bytes=flight,
        in_recovery=recovery,
        ecn_echo=ece,
        ecn_marked_bytes=marked,
        delivery_rate_bps=rate,
        is_app_limited=app_limited,
    )


@pytest.fixture
def ctx():
    return FakeContext()
