"""Unit tests for the CCA base class (Reno-style slow start + AIMD)."""

import math

import pytest

from repro.cc.base import INITIAL_WINDOW_SEGMENTS, CongestionControl
from tests.cc.conftest import make_event


class TestInitialState:
    def test_initial_window(self, ctx):
        cc = CongestionControl(ctx)
        assert cc.cwnd == INITIAL_WINDOW_SEGMENTS * ctx.mss

    def test_ssthresh_starts_at_cached_metric(self, ctx):
        """Linux tcp_metrics caching: slow start has a sane exit point."""
        from repro.cc.base import INITIAL_SSTHRESH_SEGMENTS

        cc = CongestionControl(ctx)
        assert cc.ssthresh == INITIAL_SSTHRESH_SEGMENTS * ctx.mss
        assert math.isfinite(cc.ssthresh)
        assert cc.in_slow_start

    def test_cwnd_segments_property(self, ctx):
        cc = CongestionControl(ctx)
        assert cc.cwnd_segments == pytest.approx(INITIAL_WINDOW_SEGMENTS)


class TestSlowStart:
    def test_exponential_growth(self, ctx):
        cc = CongestionControl(ctx)
        before = cc.cwnd
        cc.on_ack(make_event(acked=before))  # a full window of ACKs
        assert cc.cwnd == 2 * before

    def test_slow_start_stops_at_ssthresh(self, ctx):
        cc = CongestionControl(ctx)
        cc.ssthresh = cc.cwnd + 100
        cc.on_ack(make_event(acked=1460))
        # 100 bytes of slow start + remainder in congestion avoidance
        assert cc.cwnd >= cc.ssthresh
        assert not cc.in_slow_start

    def test_charge_accounted(self, ctx):
        cc = CongestionControl(ctx)
        cc.on_ack(make_event())
        assert ctx.charged == pytest.approx(cc.ack_cost_units)


class TestCongestionAvoidance:
    def test_linear_growth_rate(self, ctx):
        cc = CongestionControl(ctx)
        cc.ssthresh = cc.cwnd  # leave slow start
        start = cc.cwnd
        # One full window of ACKs should add about one MSS.
        acked = 0
        while acked < start:
            cc.on_ack(make_event(acked=1460))
            acked += 1460
        assert start + 0.5 * ctx.mss <= cc.cwnd <= start + 2.5 * ctx.mss


class TestLossResponse:
    def test_halving_on_congestion_event(self, ctx):
        cc = CongestionControl(ctx)
        cc.cwnd = 100_000
        cc.ssthresh = 100_000
        cc.on_congestion_event(make_event())
        assert cc.cwnd == pytest.approx(50_000)
        assert cc.ssthresh == pytest.approx(50_000)

    def test_rto_collapses_to_min(self, ctx):
        cc = CongestionControl(ctx)
        cc.cwnd = 100_000
        cc.on_rto()
        assert cc.cwnd == cc.min_cwnd
        assert cc.ssthresh == pytest.approx(50_000)

    def test_cwnd_never_below_min(self, ctx):
        cc = CongestionControl(ctx)
        cc.cwnd = cc.min_cwnd
        for _ in range(5):
            cc.on_congestion_event(make_event())
        assert cc.cwnd >= cc.min_cwnd

    def test_recovery_exit_sets_ssthresh(self, ctx):
        cc = CongestionControl(ctx)
        cc.cwnd = 100_000
        cc.on_congestion_event(make_event())
        cc.cwnd = 80_000  # inflated during recovery
        cc.on_recovery_exit()
        assert cc.cwnd == pytest.approx(cc.ssthresh)

    def test_default_ecn_behaves_like_loss(self, ctx):
        cc = CongestionControl(ctx)
        cc.cwnd = 100_000
        cc.ssthresh = 100_000
        cc.on_ecn(make_event(ece=True))
        assert cc.cwnd == pytest.approx(50_000)
