"""Calibration contract: the per-CCA ACK-cost table.

The cost table is calibrated so that, at the pps-bound MTU 1500 where
every algorithm achieves the same FCT, the energy ordering reproduces
the paper's Fig. 5 bar order. These tests pin that contract so a future
cost tweak cannot silently reorder the figure.
"""

import pytest

from repro.cc.registry import PAPER_ALGORITHMS, get_class

#: the paper's Fig. 5 energy order at MTU 1500 (ascending)
PAPER_FIG5_ORDER = (
    "bbr",
    "westwood",
    "highspeed",
    "scalable",
    "reno",
    "vegas",
    "dctcp",
    "cubic",
)


class TestCostTable:
    def test_real_cca_costs_follow_fig5_order(self):
        costs = [get_class(name).ack_cost_units for name in PAPER_FIG5_ORDER]
        assert costs == sorted(costs), (
            "ack-cost table no longer matches the paper's Fig. 5 ordering"
        )

    def test_costs_strictly_increasing(self):
        costs = [get_class(name).ack_cost_units for name in PAPER_FIG5_ORDER]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    def test_baseline_cheapest(self):
        baseline = get_class("baseline").ack_cost_units
        for name in PAPER_ALGORITHMS:
            if name != "baseline":
                assert get_class(name).ack_cost_units > baseline

    def test_bbr2_most_expensive(self):
        bbr2 = get_class("bbr2").ack_cost_units
        for name in PAPER_ALGORITHMS:
            if name != "bbr2":
                assert get_class(name).ack_cost_units < bbr2

    def test_all_costs_positive_and_sane(self):
        for name in PAPER_ALGORITHMS:
            cost = get_class(name).ack_cost_units
            assert 0.1 <= cost <= 5.0, name

    def test_production_ccas_in_efficient_band(self):
        """Swift/DCQCN/HPCC are optimized production code, not outliers."""
        for name in ("swift", "dcqcn", "hpcc"):
            cost = get_class(name).ack_cost_units
            assert 0.5 <= cost <= 1.5, name
