"""Unit tests for the windowed max/min filter."""

import pytest

from repro.cc.filters import WindowedFilter


class TestMaxFilter:
    def test_tracks_max(self):
        f = WindowedFilter(window_s=10.0, mode="max")
        for t, v in [(0, 5), (1, 3), (2, 8), (3, 2)]:
            f.update(float(t), float(v))
        assert f.get(3.0) == 8.0

    def test_expires_old_samples(self):
        f = WindowedFilter(window_s=2.0, mode="max")
        f.update(0.0, 100.0)
        f.update(1.0, 5.0)
        assert f.get(2.5) == 5.0  # the 100 at t=0 aged out, the 5 remains

    def test_empty_returns_none(self):
        f = WindowedFilter(window_s=1.0)
        assert f.get(0.0) is None

    def test_reset(self):
        f = WindowedFilter(window_s=1.0)
        f.update(0.0, 1.0)
        f.reset()
        assert f.get(0.0) is None

    def test_all_samples_expired(self):
        f = WindowedFilter(window_s=1.0)
        f.update(0.0, 1.0)
        assert f.get(10.0) is None


class TestMinFilter:
    def test_tracks_min(self):
        f = WindowedFilter(window_s=10.0, mode="min")
        for t, v in [(0, 5), (1, 3), (2, 8)]:
            f.update(float(t), float(v))
        assert f.get(2.0) == 3.0

    def test_min_expiry(self):
        f = WindowedFilter(window_s=2.0, mode="min")
        f.update(0.0, 1.0)
        f.update(1.5, 7.0)
        assert f.get(3.0) == 7.0


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            WindowedFilter(window_s=0.0)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            WindowedFilter(window_s=1.0, mode="median")
