"""Unit tests for DCTCP's alpha estimator and proportional reduction."""

import pytest

from repro.cc.dctcp import DCTCP_GAIN, Dctcp
from tests.cc.conftest import make_event


def prime(ctx):
    """DCTCP instance out of slow start with RTT established."""
    cc = Dctcp(ctx)
    cc.ssthresh = cc.cwnd
    ctx.set_rtt(1e-3, min_rtt=1e-3)
    return cc


class TestAlphaEstimator:
    def test_alpha_starts_at_one(self, ctx):
        assert Dctcp(ctx).alpha == 1.0

    def test_alpha_decays_without_marks(self, ctx):
        cc = prime(ctx)
        for _ in range(20):
            ctx.advance(2e-3)  # past each observation window
            cc.on_ack(make_event(acked=14_600, marked=0))
        assert cc.alpha < (1 - DCTCP_GAIN) ** 10

    def test_alpha_rises_with_full_marking(self, ctx):
        cc = prime(ctx)
        cc.alpha = 0.0
        for _ in range(20):
            ctx.advance(2e-3)
            cc.on_ack(make_event(acked=14_600, marked=14_600))
        assert cc.alpha > 0.5

    def test_fractional_marking_converges_to_fraction(self, ctx):
        cc = prime(ctx)
        for _ in range(200):
            ctx.advance(2e-3)
            cc.on_ack(make_event(acked=10_000, marked=2_500))
        assert cc.alpha == pytest.approx(0.25, abs=0.05)


class TestReduction:
    def test_cut_proportional_to_alpha(self, ctx):
        cc = prime(ctx)
        cc.alpha = 0.5
        cc.cwnd = 100_000
        # One marked window: cut by alpha/2 (~25%); alpha also updates.
        ctx.advance(2e-3)
        cc.on_ack(make_event(acked=100_000, marked=100_000))
        assert 60_000 < cc.cwnd < 90_000

    def test_no_cut_without_marks(self, ctx):
        cc = prime(ctx)
        cc.cwnd = 100_000
        ctx.advance(2e-3)
        cc.on_ack(make_event(acked=14_600, marked=0))
        assert cc.cwnd >= 100_000  # grew, never cut

    def test_loss_still_halves(self, ctx):
        cc = prime(ctx)
        cc.cwnd = 100_000
        cc.ssthresh = 100_000
        cc.on_congestion_event(make_event())
        assert cc.cwnd == pytest.approx(50_000)

    def test_reacts_per_ack_flag(self, ctx):
        assert Dctcp(ctx).reacts_per_ack_to_ecn is True

    def test_tiny_alpha_gives_gentle_cut(self, ctx):
        cc = prime(ctx)
        cc.alpha = 0.05
        cc.cwnd = 100_000
        ctx.advance(2e-3)
        cc.on_ack(make_event(acked=100_000, marked=5_000))
        assert cc.cwnd > 95_000  # barely touched
