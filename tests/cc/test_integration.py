"""Integration: every registered CCA completes a transfer on the testbed."""

import pytest

from repro.apps.iperf import IperfSession, run_until_complete
from repro.cc.registry import PAPER_ALGORITHMS
from repro.net.topology import TestbedConfig, build_testbed
from repro.sim.engine import Simulator

TRANSFER = 5_000_000  # 5 MB keeps each case fast


@pytest.mark.parametrize("cca", PAPER_ALGORITHMS)
def test_cca_completes_transfer(cca):
    sim = Simulator()
    testbed = build_testbed(sim, TestbedConfig())
    session = IperfSession(testbed, total_bytes=TRANSFER, cca=cca)
    result = run_until_complete(testbed, [session], time_limit_s=30.0)[0]
    assert result.bytes_transferred == TRANSFER
    assert result.duration_s > 0
    # even the baseline should beat 1 Gb/s on a 10 Gb/s path
    assert result.mean_throughput_bps > 1e9


@pytest.mark.parametrize("cca", ["cubic", "bbr", "dctcp"])
def test_fast_ccas_approach_line_rate(cca):
    sim = Simulator()
    testbed = build_testbed(sim, TestbedConfig())
    session = IperfSession(testbed, total_bytes=20_000_000, cca=cca)
    result = run_until_complete(testbed, [session], time_limit_s=30.0)[0]
    assert result.mean_throughput_bps > 6e9


def test_dctcp_uses_ecn_not_loss():
    sim = Simulator()
    testbed = build_testbed(sim, TestbedConfig())
    session = IperfSession(testbed, total_bytes=20_000_000, cca="dctcp")
    run_until_complete(testbed, [session], time_limit_s=30.0)
    assert testbed.bottleneck.queue.counters.get("ecn_marks") > 0
    assert session.sender.counters.get("retransmits") == 0


def test_baseline_is_lossy():
    sim = Simulator()
    testbed = build_testbed(sim, TestbedConfig())
    session = IperfSession(testbed, total_bytes=20_000_000, cca="baseline")
    result = run_until_complete(testbed, [session], time_limit_s=60.0)[0]
    assert result.retransmissions > 100


def test_two_cubic_flows_share_fairly():
    """Competing CUBIC flows split the bottleneck roughly evenly."""
    sim = Simulator()
    testbed = build_testbed(sim, TestbedConfig())
    a = IperfSession(testbed, total_bytes=20_000_000, cca="cubic")
    b = IperfSession(testbed, total_bytes=20_000_000, cca="cubic")
    results = run_until_complete(testbed, [a, b], time_limit_s=60.0)
    rates = sorted(r.mean_throughput_bps for r in results)
    assert rates[0] > 0.25 * rates[1]  # no starvation

    from repro.core.fairness import jain_index

    assert jain_index(rates) > 0.8


def test_mtu_1500_is_pps_bound():
    sim = Simulator()
    testbed = build_testbed(sim, TestbedConfig(mtu_bytes=1500))
    session = IperfSession(testbed, total_bytes=10_000_000, cca="cubic")
    result = run_until_complete(testbed, [session], time_limit_s=30.0)[0]
    assert result.mean_throughput_bps < 6e9  # well below line rate


def test_bbr2_slower_than_bbr():
    """The alpha release's conservatism shows up as a longer FCT."""
    durations = {}
    for cca in ("bbr", "bbr2"):
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig())
        session = IperfSession(testbed, total_bytes=20_000_000, cca=cca)
        durations[cca] = run_until_complete(
            testbed, [session], time_limit_s=30.0
        )[0].duration_s
    assert durations["bbr2"] > durations["bbr"]
