"""Unit tests for BBR v1 and the BBR2-alpha variant."""

import pytest

from repro.cc.bbr import PROBE_BW_GAINS, Bbr
from repro.cc.bbr2 import BBR2_BETA, Bbr2
from repro.units import BITS_PER_BYTE
from tests.cc.conftest import make_event


def drive_to_steady(ctx, cc, rate_bps=10e9, rtt=100e-6, rounds=200):
    """Feed consistent delivery-rate samples until BBR settles."""
    ctx.set_rtt(rtt, min_rtt=rtt)
    for _ in range(rounds):
        ctx.advance(rtt)
        cc.on_ack(
            make_event(
                acked=14_600,
                rtt=rtt,
                rate=rate_bps,
                flight=int(rate_bps * rtt / BITS_PER_BYTE),
            )
        )


class TestBbrStateMachine:
    def test_starts_in_startup(self, ctx):
        assert Bbr(ctx).state == "STARTUP"

    def test_reaches_probe_bw(self, ctx):
        cc = Bbr(ctx)
        drive_to_steady(ctx, cc)
        assert cc.state == "PROBE_BW"

    def test_model_tracks_bandwidth(self, ctx):
        cc = Bbr(ctx)
        drive_to_steady(ctx, cc, rate_bps=5e9)
        assert cc.bw_bps == pytest.approx(5e9, rel=0.01)

    def test_bdp_from_model(self, ctx):
        cc = Bbr(ctx)
        drive_to_steady(ctx, cc, rate_bps=10e9, rtt=100e-6)
        assert cc.bdp_bytes == pytest.approx(10e9 * 100e-6 / 8, rel=0.01)

    def test_cwnd_is_two_bdp_in_probe_bw(self, ctx):
        cc = Bbr(ctx)
        drive_to_steady(ctx, cc)
        assert cc.cwnd == pytest.approx(2 * cc.bdp_bytes, rel=0.05)

    def test_pacing_rate_follows_gain_cycle(self, ctx):
        cc = Bbr(ctx)
        drive_to_steady(ctx, cc)
        rates = set()
        for _ in range(20):
            ctx.advance(100e-6)
            cc.on_ack(make_event(acked=14_600, rtt=100e-6, rate=10e9))
            rates.add(round(cc.pacing_rate_bps() / 1e9, 2))
        # the cycle should visit the probe (1.25) and drain (0.75) gains
        assert len(rates) >= 2

    def test_app_limited_samples_ignored(self, ctx):
        cc = Bbr(ctx)
        drive_to_steady(ctx, cc, rate_bps=10e9)
        before = cc.bw_bps
        ctx.advance(100e-6)
        cc.on_ack(make_event(acked=1460, rtt=100e-6, rate=50e9, app_limited=True))
        assert cc.bw_bps == pytest.approx(before, rel=0.01)


class TestBbrLossBehaviour:
    def test_v1_ignores_loss(self, ctx):
        cc = Bbr(ctx)
        drive_to_steady(ctx, cc)
        before = cc.cwnd
        cc.on_congestion_event(make_event())
        assert cc.cwnd == before

    def test_recovery_exit_restores_model_cwnd(self, ctx):
        cc = Bbr(ctx)
        drive_to_steady(ctx, cc)
        model_cwnd = cc.cwnd
        cc.cwnd = cc.min_cwnd
        cc.on_recovery_exit()
        assert cc.cwnd == pytest.approx(model_cwnd, rel=0.05)

    def test_rto_collapses(self, ctx):
        cc = Bbr(ctx)
        drive_to_steady(ctx, cc)
        cc.on_rto()
        assert cc.cwnd == cc.min_cwnd


class TestBbr2:
    def test_loss_cuts_inflight_ceiling(self, ctx):
        cc = Bbr2(ctx)
        drive_to_steady(ctx, cc)
        cc.on_congestion_event(make_event(flight=200_000))
        assert cc.inflight_hi == pytest.approx(200_000 * BBR2_BETA, rel=0.01)

    def test_ceiling_caps_cwnd(self, ctx):
        cc = Bbr2(ctx)
        drive_to_steady(ctx, cc)
        cc.on_congestion_event(make_event(flight=50_000))
        ctx.advance(100e-6)
        cc.on_ack(make_event(acked=14_600, rtt=100e-6, rate=10e9))
        assert cc.cwnd <= 50_000 * BBR2_BETA + cc.ctx.mss

    def test_ecn_trims_ceiling(self, ctx):
        cc = Bbr2(ctx)
        cc.inflight_hi = 100_000.0
        cc.on_ecn(make_event(ece=True))
        assert cc.inflight_hi == pytest.approx(90_000, rel=0.01)

    def test_alpha_knobs_active_by_default(self, ctx):
        cc = Bbr2(ctx)
        assert cc.alpha_quality
        assert cc.startup_gain < 2.885

    def test_alpha_stalls_periodically(self, ctx):
        from repro.cc.bbr2 import STALL_CYCLE_ROUNDS

        cc = Bbr2(ctx)
        drive_to_steady(ctx, cc)
        stalled = 0
        rates = []
        for _ in range(2 * STALL_CYCLE_ROUNDS):
            ctx.advance(100e-6)
            cc.on_ack(make_event(acked=14_600, rtt=100e-6, rate=10e9))
            rates.append(cc.pacing_rate_bps())
            if cc.in_probe_stall:
                stalled += 1
        assert stalled > 0
        assert min(rates) < 0.5 * max(rates)  # the stall trickle

    def test_mature_variant_never_stalls(self, ctx):
        from repro.cc.bbr2 import STALL_CYCLE_ROUNDS

        cc = Bbr2(ctx, alpha_quality=False)
        drive_to_steady(ctx, cc)
        for _ in range(2 * STALL_CYCLE_ROUNDS):
            ctx.advance(100e-6)
            cc.on_ack(make_event(acked=14_600, rtt=100e-6, rate=10e9))
            assert not cc.in_probe_stall

    def test_mature_variant_disables_knobs(self, ctx):
        cc = Bbr2(ctx, alpha_quality=False)
        assert cc.startup_gain == pytest.approx(2.885)

    def test_alpha_costs_more_per_ack(self, ctx):
        assert Bbr2.ack_cost_units > Bbr.ack_cost_units
