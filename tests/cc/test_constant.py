"""Unit tests for the constant-cwnd no-CC baseline."""

import pytest

from repro.cc.constant import ConstantCwnd
from tests.cc.conftest import make_event


class TestConstantWindow:
    def test_window_fixed_by_constructor(self, ctx):
        cc = ConstantCwnd(ctx, window_segments=100)
        assert cc.cwnd == 100 * ctx.mss

    def test_default_window_large(self, ctx):
        cc = ConstantCwnd(ctx)
        assert cc.cwnd == ConstantCwnd.DEFAULT_WINDOW_SEGMENTS * ctx.mss

    def test_never_grows(self, ctx):
        cc = ConstantCwnd(ctx, window_segments=100)
        for _ in range(50):
            cc.on_ack(make_event(acked=14_600))
        assert cc.cwnd == 100 * ctx.mss

    def test_never_shrinks_on_loss(self, ctx):
        cc = ConstantCwnd(ctx, window_segments=100)
        cc.on_congestion_event(make_event())
        cc.on_ecn(make_event(ece=True))
        cc.on_rto()
        cc.on_recovery_exit()
        assert cc.cwnd == 100 * ctx.mss

    def test_bypasses_tsq(self, ctx):
        assert ConstantCwnd(ctx).respects_tsq is False

    def test_cheapest_ack_cost(self, ctx):
        from repro.cc.registry import PAPER_ALGORITHMS, get_class

        baseline_cost = ConstantCwnd.ack_cost_units
        for name in PAPER_ALGORITHMS:
            if name == "baseline":
                continue
            assert get_class(name).ack_cost_units > baseline_cost

    def test_charges_for_acks(self, ctx):
        cc = ConstantCwnd(ctx)
        cc.on_ack(make_event())
        assert ctx.charged == pytest.approx(cc.ack_cost_units)
