"""The api-hygiene family: mutable defaults, bare excepts, future import."""

from collections import Counter

HYGIENE = ["api-mutable-default", "api-bare-except", "api-missing-future"]


class TestBadFixture:
    def test_counts(self, lint):
        result = lint("hygiene/bad_hygiene.py", select=HYGIENE)
        counts = Counter(f.rule for f in result.findings)
        assert counts["api-mutable-default"] == 3  # [], {}, set()
        assert counts["api-bare-except"] == 1
        assert counts["api-missing-future"] == 1

    def test_mutable_default_names_the_function(self, lint):
        result = lint("hygiene/bad_hygiene.py", select=["api-mutable-default"])
        assert any("`collect`" in f.message for f in result.findings)
        assert any("`tally`" in f.message for f in result.findings)


class TestSchedModeLiterals:
    RULE = ["sched-no-mode-literals"]

    def test_bad_fixture_counts(self, lint):
        result = lint("hygiene/bad_sched_literals.py", select=self.RULE)
        assert len(result.findings) == 4
        assert all(f.rule == "sched-no-mode-literals" for f in result.findings)

    def test_messages_name_the_literal(self, lint):
        result = lint("hygiene/bad_sched_literals.py", select=self.RULE)
        assert any("'fair'" in f.message for f in result.findings)
        assert any("'srpt'" in f.message for f in result.findings)

    def test_allowed_spellings_clean(self, lint):
        assert lint("hygiene/sched_literals_ok.py", select=self.RULE).clean

    def test_sched_package_exempt(self, lint):
        assert lint("hygiene/sched/in_package.py", select=self.RULE).clean


class TestCleanFixture:
    def test_clean(self, lint):
        assert lint("hygiene/clean_hygiene.py", select=HYGIENE).clean

    def test_docstring_only_modules_need_no_future_import(self, tmp_path):
        from repro.lint import run_lint

        stub = tmp_path / "doc_only.py"
        stub.write_text('"""Docstring only."""\n')
        assert run_lint([str(stub)], select=["api-missing-future"]).clean
