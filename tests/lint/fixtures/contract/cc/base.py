"""Stand-in CongestionControl base class (lint fixture, never run)."""

from __future__ import annotations


class CongestionControl:
    name = "base"

    def on_ack(self, acked_bytes, rtt_s):
        return None

    def on_loss(self):
        return None
