"""A contract-abiding CCA subclass (lint fixture, never run)."""

from __future__ import annotations

from base import CongestionControl


class GoodCca(CongestionControl):
    name = "good"

    def on_ack(self, acked_bytes, rtt_s):
        self.cwnd = max(1, self.cwnd + acked_bytes)
