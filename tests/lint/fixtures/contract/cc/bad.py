"""A CCA subclass breaking every leg of the contract (lint fixture)."""

from __future__ import annotations

from base import CongestionControl


class BadCca(CongestionControl):
    # cca-missing-name: no `name` ClassVar
    # cca-unregistered: never referenced from registry.py
    # cca-override-on-ack: relies on the base-class on_ack

    def on_loss(self):
        self.cwnd = -1000  # cca-negative-cwnd
