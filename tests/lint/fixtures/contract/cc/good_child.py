"""Transitive subclass: inherits ``on_ack`` from GoodCca, not the base
(lint fixture, never run)."""

from __future__ import annotations

from good import GoodCca


class GoodChild(GoodCca):
    name = "good-child"
