"""Registry referencing the compliant CCAs only (lint fixture)."""

from __future__ import annotations

from good import GoodCca
from good_child import GoodChild

REGISTRY = {
    GoodCca.name: GoodCca,
    GoodChild.name: GoodChild,
}
