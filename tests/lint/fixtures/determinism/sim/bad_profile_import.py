"""Simulator module importing the obs-side profiler (lint fixture)."""

from __future__ import annotations

import repro.obs.profile
from repro.obs import attrib
from repro.obs.profile import ProfileCollector


def self_profile() -> object:
    # The forbidden shortcut: a hot path constructing its own collector
    # instead of talking to the repro.sim.profile protocol.
    collector = ProfileCollector()
    collector.enter("sim.dispatch.self")
    collector.exit("sim.dispatch.self")
    return (collector, attrib, repro.obs.profile)
