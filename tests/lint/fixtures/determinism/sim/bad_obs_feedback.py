"""Simulator module reading the observability layer (lint fixture)."""

from __future__ import annotations

import repro.obs
from repro.obs import observer
from repro.obs.journal import read_journal


def react_to_tracing() -> bool:
    # The forbidden direction: simulation behaviour branching on
    # whether a trace exists.
    events = read_journal("trace/journal.jsonl")
    return observer.NULL_OBSERVER.enabled or bool(events) or bool(repro.obs)
