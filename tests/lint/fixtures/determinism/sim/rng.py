"""The one module allowed to import ``random`` (lint fixture).

Mirrors ``src/repro/sim/rng.py``: the path suffix ``sim/rng.py`` is the
det-import-random exemption.
"""

from __future__ import annotations

import random


def make_stream(seed: int) -> random.Random:
    return random.Random(seed)
