"""Hash-order-dependent iteration in a sim/ package (lint fixture)."""

from __future__ import annotations


def drain(events):
    for event in {1, 2, 3}:  # det-set-iteration: set literal
        events.append(event)
    order = list(set(events))  # det-set-iteration: laundered set order
    doubled = [e * 2 for e in {e for e in events}]  # det-set-iteration
    return order, doubled
