"""Order-stable counterpart of ``bad_sets.py`` (lint fixture)."""

from __future__ import annotations


def drain(events):
    order = sorted(set(events))
    for event in order:
        events.append(event)
    return [e * 2 for e in order]
