"""Simulator module using the neutral profiler protocol (lint fixture)."""

from __future__ import annotations

from repro.sim.profile import NULL_PROFILER, HotPathProfiler


class Component:
    """Instruments against the protocol; never sees the collector."""

    def __init__(self) -> None:
        self.profiler: HotPathProfiler = NULL_PROFILER

    def work(self) -> None:
        if self.profiler.enabled:
            self.profiler.count("component_work")
