"""Deterministic counterpart of ``bad_entropy.py`` (lint fixture).

The blessed pattern: accept a seeded stream as a parameter and keep the
``random`` import annotation-only under ``TYPE_CHECKING``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import random


def draw(rng: "random.Random") -> float:
    return rng.random()


def flow_id(rng: "random.Random") -> int:
    return rng.getrandbits(32)
