"""Set iteration outside sim/net/cc/tcp is allowed (lint fixture)."""

from __future__ import annotations


def dedupe(names):
    # fine here: this module is not in a simulator package
    return list(set(names))
