"""Fixture: a probe sink stamped with virtual time only (clean)."""

from __future__ import annotations


class CollectingProbeSink:
    enabled = True

    def __init__(self):
        self.samples = []

    def sample(self, time_s, channel, entity, value):
        self.samples.append((time_s, channel, entity, value))


def emit(sim, sink):
    # virtual-time stamping is the blessed pattern
    sink.sample(sim.now, "cwnd_bytes", "flow-1", 1.0)
