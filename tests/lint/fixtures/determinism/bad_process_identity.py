"""Seeded violations for det-process-identity (lint fixture, never run)."""

from __future__ import annotations

import os
import threading
from os import getpid  # det-process-identity: worker-identity import


def cache_key_from_pid():
    return f"cell-{os.getpid()}"  # det-process-identity


def worker_seed(base: int) -> int:
    return base + threading.get_ident()  # det-process-identity


_ = getpid
