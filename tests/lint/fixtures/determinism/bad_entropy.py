"""Seeded violations for the determinism family (lint fixture, never run)."""

from __future__ import annotations

import os
import random
import time
import uuid
from time import monotonic  # det-wall-clock: wall-clock import


def draw():
    return random.random()  # det-global-rng


def stamp():
    return time.time()  # det-wall-clock


def token():
    return os.urandom(8)  # det-entropy


def flow_id():
    return uuid.uuid4()  # det-entropy


_ = monotonic
