"""Fixture: a probe sink using wall clocks (every form the rule flags)."""

from repro.obs.journal import perf_clock, wall_clock  # both flagged


class LeakyProbeSink:
    enabled = True

    def sample(self, time_s, channel, entity, value):
        self.last = (time_s, channel, entity, value)


def emit(sink):
    # sample() stamped with the blessed helpers and a raw wall clock
    sink.sample(wall_clock(), "cwnd_bytes", "flow-1", 1.0)
    sink.sample(perf_clock(), "power_w", "pkg0", 2.0)
    import time

    sink.sample(time.time(), "queue_depth_bytes", "bottleneck", 3.0)
