"""Harness-side obs import is the blessed direction (lint fixture)."""

from __future__ import annotations

from repro.obs.observer import NULL_OBSERVER


def run_traced() -> None:
    # fine here: this module is not in a simulator package
    NULL_OBSERVER.emit("run_started")
