"""Fixture: mode-literal comparisons that belong in repro/sched."""

from __future__ import annotations


def branch(policy: str) -> int:
    if policy == "fair":
        return 1
    if "serialized" != policy:
        return 2
    if policy in ("srpt", "deadline"):
        return 3
    if policy not in ["fair", "serialized"]:
        return 4
    return 0
