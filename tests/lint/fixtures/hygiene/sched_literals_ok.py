"""Fixture: allowed spellings around scheduling-policy names."""

from __future__ import annotations

FAIR = "fair"


def ok(policy: str, names: list, points: dict) -> bool:
    if policy == FAIR:  # named constant, not a literal
        return True
    if "fair" in names:  # validating a dynamic container
        return True
    if policy in names:  # dynamic container
        return True
    return bool(points.get("srpt"))  # lookup, not a comparison
