"""Hygienic counterpart of ``bad_hygiene.py`` (lint fixture)."""

from __future__ import annotations


def collect(samples=None):
    if samples is None:
        samples = []
    try:
        samples.append(1)
    except AttributeError:
        pass
    return samples


def tally(counts=None, *, labels=None):
    return counts or {}, labels or set()
