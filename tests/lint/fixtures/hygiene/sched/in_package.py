"""Fixture: inside a sched/ directory the rule stays silent."""

from __future__ import annotations


def dispatch(policy: str) -> bool:
    return policy == "fair" or policy in ("serialized", "srpt")
