"""Seeded violations for the api-hygiene family (lint fixture).

Deliberately missing ``from __future__ import annotations``
(api-missing-future).
"""


def collect(samples=[]):  # api-mutable-default
    try:
        samples.append(1)
    except:  # api-bare-except
        pass
    return samples


def tally(counts={}, *, labels=set()):  # api-mutable-default (twice)
    return counts, labels
