"""Unparseable fixture: the engine must report parse-error, not crash."""

def broken(:
    pass
