"""Suppression-comment semantics (lint fixture, never run)."""

from __future__ import annotations

RATE_BPS = 1e9  # simlint: ignore[units-raw-literal] -- calibration constant
SIZE_BYTES = 1024 ** 3  # simlint: ignore
WINDOW_BPS = 2e9  # simlint: ignore[det-import-random] -- wrong rule, no effect
LEFTOVER_BPS = 4e9
