"""Dead and misspelled ignore comments (lint fixture, never run)."""

from __future__ import annotations

GOOD_BPS = 1e9  # simlint: ignore[units-raw-literal]
CLEAN = 42  # simlint: ignore[units-raw-literal] -- nothing to suppress here
TYPO_BPS = 2e9  # simlint: ignore[units-raw-litteral]
