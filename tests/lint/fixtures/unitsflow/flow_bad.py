"""Unit flows only whole-program analysis can see (lint fixture, never
run).

Every violation here routes a unit through an unsuffixed local or a
helper's return value, so the per-file suffix comparison is blind to
all of them.
"""

from __future__ import annotations


def make_delay_ms():
    return 12.0


def consume(delay_s):
    return delay_s


def bad_assign():
    raw = make_delay_ms()
    delay_s = raw
    return delay_s


def speed_bps():
    packet_bytes = 1500.0
    return packet_bytes


def bad_call():
    raw = make_delay_ms()
    return consume(raw)
