"""Unit flows that agree end to end (lint fixture, never run)."""

from __future__ import annotations


def make_delay_s():
    return 0.5


def wait(delay_s):
    return delay_s


def relay():
    pause = make_delay_s()
    return wait(pause)


def total_delay_s():
    pause = make_delay_s()
    return pause + make_delay_s()
