"""Scheduled-callback hotness (lint fixture, never run).

``_tick`` is never called syntactically — only its *reference* is
passed to ``schedule``. The event loop runs it per event through
``event.callback(*event.args)``, so the call graph must treat it as a
hot root.
"""

from __future__ import annotations


class Pump:
    def __init__(self, sim) -> None:
        self.sim = sim
        self.count = 0

    def start(self) -> None:
        self.sim.schedule(0.1, self._tick)

    def _tick(self) -> None:
        payload = {"count": self.count}
        self.count = len(payload)
        self.sim.schedule(0.1, self._tick)
