"""Pre-fix hot path (lint fixture, never run).

A miniature event loop exhibiting every perf-family violation at once:
the demonstration that the call graph finds hot-path waste without any
hardcoded file list.
"""

from __future__ import annotations


class Telemetry:
    """Instantiated per event in run() but defines no __slots__."""

    def __init__(self, label):
        self.label = label


class Simulator:
    def __init__(self) -> None:
        self._queue = [3, 2, 1]
        self.seen = 0
        self.state = 0

    def run(self) -> None:
        while self._queue:
            item = self._queue[0]
            self._queue.remove(item)
            total = self.seen + self.seen + self.seen
            record = {"item": item, "total": total}
            tag = f"evt-{item}"
            sample = Telemetry(tag)
            if isinstance(item, int):
                self.state = item
            try:
                self.state = record["total"]
            except KeyError:
                self.state = 0
            self.state = total if sample.label else item
