"""Seeded violations for the units rule family (lint fixture, never run)."""

from __future__ import annotations

LINK_RATE_BPS = 1e9  # units-raw-literal: large exponent literal
BUFFER_BYTES = 1024 ** 3  # units-raw-literal: raw power literal
POLL_INTERVAL = 1e-3  # units-raw-literal: small literal, not a tolerance


def send(rate_bps, duration_s):
    return rate_bps * duration_s / 8.0


def mixed_arithmetic(delay_ms, timeout_s):
    return delay_ms + timeout_s  # units-suffix-mismatch


def mixed_compare(rate_gbps, floor_bps):
    return rate_gbps < floor_bps  # units-suffix-mismatch


def keyword_mismatch(link_gbps):
    return send(rate_bps=link_gbps, duration_s=1.0)  # units-call-mismatch


def positional_mismatch(link_gbps, window_ms):
    return send(link_gbps, window_ms)  # units-call-mismatch (twice)
