"""Unit-respecting counterpart of ``bad_units.py`` (lint fixture)."""

from __future__ import annotations

import math


def send(rate_bps, duration_s):
    return rate_bps * duration_s / 8.0


def consistent_arithmetic(delay_s, timeout_s):
    return delay_s + timeout_s


def explicit_conversion(delay_ms, timeout_s):
    delay_s = delay_ms / 1000.0
    return delay_s + timeout_s


def matched_call(link_bps, window_s):
    return send(rate_bps=link_bps, duration_s=window_s)


def tolerant(value, expected, rel_tol=1e-9):
    if abs(value - expected) < 1e-6:
        return True
    return math.isclose(value, expected, rel_tol=rel_tol, abs_tol=1e-12)


eps = 1e-9
