"""Cold path (lint fixture, never run).

The same allocation-heavy shapes as ``perf/sim/hotpath.py`` — dict
literal, f-string, isinstance, a slot-less class — but with no hot root
and no schedule() call anywhere, so the call graph proves none of it is
reachable from an event loop and the perf family stays silent.
"""

from __future__ import annotations


class Report:
    def __init__(self, label):
        self.label = label


class Analyzer:
    def __init__(self) -> None:
        self.seen = 0

    def summarize(self):
        total = self.seen + self.seen + self.seen
        record = {"total": total}
        tag = f"report-{total}"
        if isinstance(total, int):
            return Report(tag)
        return record
