"""Sanitized flows the determinism-flow family must accept (lint
fixture, never run).

Sorting a set before iterating removes the order dependence, and a
value derived only from parameters carries no entropy.
"""

from __future__ import annotations


def doubled(value):
    return value * 2.0


class Ledger:
    def __init__(self) -> None:
        self.first = ""
        self.total = 0.0

    def rebuild(self, names) -> None:
        for name in sorted({name for name in names}):
            self.first = name

    def accumulate(self, amount) -> None:
        self.total = doubled(amount)
