"""Cross-function entropy and set-order flows (lint fixture, never run).

``jitter`` touches the global RNG; ``adjust`` stores its return value
into simulation state two calls away. ``rebuild`` iterates a set and
lets the visitation order decide what lands in state. Neither flow is
visible to a single-function check.
"""

from __future__ import annotations

import random


def jitter():
    return random.random()


def wobble():
    return jitter() * 2.0


class Clock:
    def __init__(self) -> None:
        self.offset = 0.0

    def adjust(self) -> None:
        shift = wobble()
        self.offset = shift


class Registry:
    def __init__(self) -> None:
        self.first = ""

    def rebuild(self, names) -> None:
        pool = {name for name in names}
        for name in pool:
            self.first = name
