"""cc/ directory without a registry.py: registration is not checkable,
so cca-unregistered must stay silent (lint fixture, never run)."""

from __future__ import annotations


class CongestionControl:
    name = "base"

    def on_ack(self, acked_bytes, rtt_s):
        return None


class Orphan(CongestionControl):
    name = "orphan"

    def on_ack(self, acked_bytes, rtt_s):
        self.cwnd = max(1, self.cwnd + acked_bytes)
