"""Engine behavior: discovery, selection, suppression, the src/ gate."""

from pathlib import Path

import pytest

from repro.lint import LintUsageError, all_rule_names, run_lint
from repro.lint.engine import (
    PARSE_ERROR_RULE,
    UNKNOWN_SUPPRESSION_RULE,
    UNUSED_SUPPRESSION_RULE,
    iter_rules,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRuleRegistry:
    def test_twentynine_rules_in_seven_families(self):
        rules = iter_rules()
        assert len(rules) == 29
        assert {r.family for r in rules} == {
            "units", "units-flow", "determinism", "determinism-flow",
            "cca-contract", "api-hygiene", "perf",
        }

    def test_rules_have_names_and_descriptions(self):
        for rule in iter_rules():
            assert rule.name and rule.family and rule.description

    def test_stable_order(self):
        keys = [(r.family, r.name) for r in iter_rules()]
        assert keys == sorted(keys)


class TestSelection:
    def test_unknown_rule_is_usage_error(self, fixtures_dir):
        with pytest.raises(LintUsageError, match="unknown rule"):
            run_lint([str(fixtures_dir)], select=["no-such-rule"])

    def test_empty_selection_is_usage_error(self, fixtures_dir):
        with pytest.raises(LintUsageError, match="empty"):
            run_lint([str(fixtures_dir)], select=["  "])

    def test_missing_path_is_usage_error(self):
        with pytest.raises(LintUsageError, match="no such file"):
            run_lint(["definitely/not/here"])

    def test_select_restricts_rules_run(self, lint):
        result = lint("units/clean_units.py", select=["units-raw-literal"])
        assert result.rules_run == ["units-raw-literal"]


class TestSuppression:
    def test_matching_and_blanket_comments_suppress(self, lint):
        result = lint("suppression/suppressed.py", select=["units-raw-literal"])
        lines = sorted(f.line for f in result.findings)
        # 1e9 (targeted ignore) and 1024**3 (blanket ignore) are silenced;
        # the wrong-rule ignore and the bare literal are not
        assert len(lines) == 2
        messages = " ".join(f.message for f in result.findings)
        assert "2e9" in messages and "4e9" in messages

    def test_suppression_is_per_rule(self, lint):
        # an ignore[det-import-random] comment must not silence units rules
        result = lint("suppression/suppressed.py", select=["units-raw-literal"])
        assert any("2e9" in f.message for f in result.findings)


class TestIgnore:
    def test_ignore_drops_named_rules(self, lint):
        full = lint("units/bad_units.py")
        trimmed = lint("units/bad_units.py", ignore=["units-raw-literal"])
        assert "units-raw-literal" not in trimmed.rules_run
        assert all(f.rule != "units-raw-literal" for f in trimmed.findings)
        assert len(trimmed.rules_run) == len(full.rules_run) - 1

    def test_unknown_ignore_is_usage_error(self, fixtures_dir):
        with pytest.raises(LintUsageError, match="unknown rule"):
            run_lint([str(fixtures_dir)], ignore=["no-such-rule"])

    def test_select_minus_ignore_can_empty_out(self, fixtures_dir):
        with pytest.raises(LintUsageError, match="excludes every rule"):
            run_lint(
                [str(fixtures_dir)],
                select=["units-raw-literal"],
                ignore=["units-raw-literal"],
            )


class TestSuppressionHygiene:
    """Full runs audit the ignore comments themselves."""

    def test_dead_comment_is_unused_suppression(self, lint):
        result = lint("suppression/stale.py")
        unused = [
            f for f in result.findings if f.rule == UNUSED_SUPPRESSION_RULE
        ]
        assert [f.line for f in unused] == [6]
        assert unused[0].family == "engine"
        assert "suppresses nothing" in unused[0].message

    def test_misspelled_rule_is_unknown_suppression(self, lint):
        result = lint("suppression/stale.py")
        unknown = [
            f for f in result.findings if f.rule == UNKNOWN_SUPPRESSION_RULE
        ]
        assert [f.line for f in unknown] == [7]
        assert "units-raw-litteral" in unknown[0].message
        # and the misspelled comment suppresses nothing: 2e9 still fires
        assert any("2e9" in f.message for f in result.findings)

    def test_working_comment_is_not_flagged(self, lint):
        result = lint("suppression/stale.py")
        assert not any(f.line == 5 for f in result.findings)

    def test_partial_runs_skip_the_audit(self, lint):
        for kwargs in (
            {"select": ["units-raw-literal"]},
            {"ignore": ["det-import-random"]},
        ):
            result = lint("suppression/stale.py", **kwargs)
            assert not any(
                f.rule
                in (UNUSED_SUPPRESSION_RULE, UNKNOWN_SUPPRESSION_RULE)
                for f in result.findings
            )


class TestDisplayPaths:
    """Finding paths anchor at the project root, not the CWD."""

    EXPECTED = "tests/lint/fixtures/engine/broken.py"

    def _parse_error_path(self, fixtures_dir):
        result = run_lint([str(fixtures_dir / "engine" / "broken.py")])
        assert len(result.findings) == 1
        return result.findings[0].path

    def test_path_from_repo_root(self, fixtures_dir, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert self._parse_error_path(fixtures_dir) == self.EXPECTED

    def test_path_is_cwd_independent(self, fixtures_dir, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        assert self._parse_error_path(fixtures_dir) == self.EXPECTED


class TestParseErrors:
    def test_broken_file_yields_parse_error_finding(self, lint):
        result = lint("engine/broken.py")
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == PARSE_ERROR_RULE
        assert finding.family == "engine"
        assert "does not parse" in finding.message

    def test_broken_file_does_not_abort_the_run(self, lint):
        result = lint("engine/broken.py", "units/clean_units.py")
        assert result.files_checked == 2
        assert [f.rule for f in result.findings] == [PARSE_ERROR_RULE]


class TestCleanFixtures:
    def test_clean_fixtures_pass_every_rule(self, lint, clean_fixture_names):
        result = lint(*clean_fixture_names)
        assert result.clean, "\n".join(f.format() for f in result.findings)


class TestSourceTreeGate:
    """The tier-1 gate: the shipped source must lint clean."""

    def test_src_lints_clean(self):
        result = run_lint([str(REPO_ROOT / "src")])
        assert result.clean, "\n".join(f.format() for f in result.findings)
        assert result.files_checked > 90
        assert result.rules_run == all_rule_names()
