"""Shared helpers for the simlint test suite.

Fixture sources live under ``fixtures/``; they are lint *inputs*, not
importable code, so several deliberately contain violations (one does
not even parse). The ``lint`` fixture runs the engine over named
fixture paths, optionally restricted to a rule subset.
"""

from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: every fixture file expected to pass the full rule set
CLEAN_FIXTURES = (
    "units/clean_units.py",
    "determinism/clean_entropy.py",
    "determinism/outside_scope.py",
    "determinism/obs_outside_scope.py",
    "determinism/sim/clean_sets.py",
    "determinism/sim/clean_profile.py",
    "determinism/sim/rng.py",
    "determinism/clean_probe.py",
    "contract/cc/base.py",
    "contract/cc/good.py",
    "contract/cc/good_child.py",
    "contract/cc/registry.py",
    "contract_noreg/cc/orphan.py",
    "hygiene/clean_hygiene.py",
    "hygiene/sched_literals_ok.py",
    "hygiene/sched/in_package.py",
    "perf_cold/sim/coldpath.py",
    "detflow/sim/clean_flow.py",
    "unitsflow/flow_clean.py",
)


@pytest.fixture
def lint():
    def _lint(*rel, select=None, ignore=None):
        return run_lint(
            [str(FIXTURES / r) for r in rel], select=select, ignore=ignore
        )

    return _lint


@pytest.fixture
def fixtures_dir():
    return FIXTURES


@pytest.fixture
def clean_fixture_names():
    return CLEAN_FIXTURES
