"""Baseline ratchet: known findings pass, new ones fail."""

import json

import pytest

from repro.lint import (
    Finding,
    LintUsageError,
    load_baseline,
    make_baseline,
    new_findings,
    render_baseline,
)
from repro.lint.baseline import BASELINE_VERSION


def _finding(path="src/a.py", line=1, rule="units-raw-literal", message="m"):
    return Finding(
        path=path, line=line, col=1, rule=rule, family="units", message=message
    )


class TestFormat:
    def test_round_trip(self, tmp_path):
        findings = [_finding(), _finding(line=9), _finding(rule="other")]
        out = tmp_path / "baseline.json"
        out.write_text(render_baseline(findings), encoding="utf-8")
        loaded = load_baseline(out)
        assert loaded[("src/a.py", "units-raw-literal", "m")] == 2
        assert loaded[("src/a.py", "other", "m")] == 1

    def test_stable_and_sorted(self):
        findings = [_finding(path="src/b.py"), _finding(path="src/a.py")]
        text = render_baseline(findings)
        assert text == render_baseline(list(reversed(findings)))
        paths = [e["path"] for e in json.loads(text)["findings"]]
        assert paths == sorted(paths)

    def test_line_numbers_are_not_recorded(self):
        payload = make_baseline([_finding(line=7)])
        assert "line" not in payload["findings"][0]

    def test_missing_file_is_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError, match="no such baseline"):
            load_baseline(tmp_path / "nope.json")

    def test_wrong_version_is_usage_error(self, tmp_path):
        out = tmp_path / "baseline.json"
        out.write_text(
            json.dumps({"version": BASELINE_VERSION + 1, "findings": []})
        )
        with pytest.raises(LintUsageError, match="version"):
            load_baseline(out)


class TestGating:
    def test_baseline_absorbs_known_findings(self, tmp_path):
        findings = [_finding(), _finding(rule="other")]
        out = tmp_path / "baseline.json"
        out.write_text(render_baseline(findings), encoding="utf-8")
        assert new_findings(findings, load_baseline(out)) == []

    def test_new_finding_escapes_the_baseline(self, tmp_path):
        out = tmp_path / "baseline.json"
        out.write_text(render_baseline([_finding()]), encoding="utf-8")
        fresh = _finding(message="something new")
        escaped = new_findings([_finding(), fresh], load_baseline(out))
        assert escaped == [fresh]

    def test_count_overflow_is_new(self, tmp_path):
        out = tmp_path / "baseline.json"
        out.write_text(render_baseline([_finding()]), encoding="utf-8")
        duplicated = [_finding(line=1), _finding(line=50)]
        escaped = new_findings(duplicated, load_baseline(out))
        assert len(escaped) == 1

    def test_line_motion_does_not_escape(self, tmp_path):
        out = tmp_path / "baseline.json"
        out.write_text(render_baseline([_finding(line=10)]), encoding="utf-8")
        assert new_findings([_finding(line=99)], load_baseline(out)) == []


class TestEndToEnd:
    def test_write_then_gate_a_dirty_fixture(self, tmp_path, lint, fixtures_dir):
        result = lint("units/bad_units.py")
        assert not result.clean
        out = tmp_path / "baseline.json"
        out.write_text(render_baseline(result.findings), encoding="utf-8")
        again = lint("units/bad_units.py")
        assert new_findings(again.findings, load_baseline(out)) == []
