"""The cca-contract family: name, registration, on_ack, cwnd sign."""

from collections import Counter

CONTRACT = [
    "cca-missing-name",
    "cca-unregistered",
    "cca-override-on-ack",
    "cca-negative-cwnd",
]


def _by_rule(result):
    return Counter(f.rule for f in result.findings)


class TestBadSubclass:
    def test_every_contract_rule_fires_on_bad_cca(self, lint):
        # lint the whole cc/ dir so registry.py is in the module set
        counts = _by_rule(lint("contract", select=CONTRACT))
        assert counts == {
            "cca-missing-name": 1,
            "cca-unregistered": 1,
            "cca-override-on-ack": 1,
            "cca-negative-cwnd": 1,
        }

    def test_findings_point_at_bad_module_only(self, lint):
        result = lint("contract", select=CONTRACT)
        assert all(f.path.endswith("cc/bad.py") for f in result.findings)


class TestCompliantSubclasses:
    def test_good_ccas_are_clean(self, lint):
        assert lint(
            "contract/cc/base.py",
            "contract/cc/good.py",
            "contract/cc/good_child.py",
            "contract/cc/registry.py",
            select=CONTRACT,
        ).clean

    def test_on_ack_inherited_below_base_counts(self, lint):
        # GoodChild(GoodCca) has no on_ack of its own; the override on
        # GoodCca (an ancestor *below* the base class) satisfies the rule
        result = lint("contract", select=["cca-override-on-ack"])
        assert not any("GoodChild" in f.message for f in result.findings)


class TestRegistryScope:
    def test_unregistered_skipped_without_registry_module(self, lint):
        assert lint("contract_noreg", select=["cca-unregistered"]).clean

    def test_base_class_itself_is_never_flagged(self, lint):
        result = lint("contract", select=CONTRACT)
        assert not any(
            "CongestionControl " in f.message for f in result.findings
        )
