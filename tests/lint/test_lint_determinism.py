"""The determinism family: entropy escapes and hash-order iteration."""

from collections import Counter

DET = [
    "det-import-random",
    "det-global-rng",
    "det-wall-clock",
    "det-entropy",
    "det-process-identity",
    "det-set-iteration",
    "obs-no-feedback",
    "obs-profile-no-sim-import",
    "obs-probe-wall-clock",
]


def _by_rule(result):
    return Counter(f.rule for f in result.findings)


class TestEntropyRules:
    def test_bad_fixture_trips_each_entropy_rule(self, lint):
        counts = _by_rule(lint("determinism/bad_entropy.py", select=DET))
        assert counts["det-import-random"] == 1
        assert counts["det-global-rng"] == 1
        assert counts["det-wall-clock"] == 2  # time.time() + from-import
        assert counts["det-entropy"] == 2  # os.urandom + uuid.uuid4

    def test_type_checking_import_is_allowed(self, lint):
        assert lint("determinism/clean_entropy.py", select=DET).clean

    def test_sim_rng_module_is_exempt(self, lint):
        assert lint("determinism/sim/rng.py", select=DET).clean


class TestProcessIdentity:
    """The executor-era rule: pids/thread ids must never feed cache
    keys or worker seed derivation."""

    def test_bad_fixture_trips_call_and_import_forms(self, lint):
        result = lint(
            "determinism/bad_process_identity.py",
            select=["det-process-identity"],
        )
        # os.getpid() call + threading.get_ident() call + from-import
        assert _by_rule(result)["det-process-identity"] == 3

    def test_clean_fixture_untouched(self, lint):
        assert lint(
            "determinism/clean_entropy.py", select=["det-process-identity"]
        ).clean

    def test_harness_sources_are_clean(self, lint):
        """The executor/cache layer itself must honor the rule."""
        from pathlib import Path

        repo_src = Path(__file__).resolve().parents[2] / "src" / "repro"
        from repro.lint import run_lint

        result = run_lint(
            [str(repo_src / "harness")], select=["det-process-identity"]
        )
        assert result.clean


class TestSetIteration:
    def test_fires_inside_sim_directory(self, lint):
        result = lint(
            "determinism/sim/bad_sets.py", select=["det-set-iteration"]
        )
        assert _by_rule(result)["det-set-iteration"] == 3

    def test_sorted_iteration_is_clean(self, lint):
        assert lint(
            "determinism/sim/clean_sets.py", select=["det-set-iteration"]
        ).clean

    def test_silent_outside_simulator_packages(self, lint):
        assert lint(
            "determinism/outside_scope.py", select=["det-set-iteration"]
        ).clean


class TestObsFeedback:
    """Observability is write-only: sim code must never import repro.obs."""

    def test_fires_on_every_import_form_inside_sim(self, lint):
        result = lint(
            "determinism/sim/bad_obs_feedback.py", select=["obs-no-feedback"]
        )
        # import repro.obs + from repro.obs import + from repro.obs.journal
        assert _by_rule(result)["obs-no-feedback"] == 3

    def test_harness_side_import_is_the_blessed_direction(self, lint):
        assert lint(
            "determinism/obs_outside_scope.py", select=["obs-no-feedback"]
        ).clean

    def test_simulator_sources_honor_the_rule(self):
        """The shipped sim/net/cc/tcp packages must themselves be clean."""
        from pathlib import Path

        from repro.lint import run_lint

        repo_src = Path(__file__).resolve().parents[2] / "src" / "repro"
        paths = [
            str(repo_src / d) for d in ("sim", "net", "cc", "tcp")
        ]
        result = run_lint(paths, select=["obs-no-feedback"])
        assert result.clean


class TestObsProfileSimImport:
    """Profiling's sharper edge of the write-only contract: sim code
    talks to repro.sim.profile, never to the obs-side collector."""

    def test_fires_on_every_import_form_inside_sim(self, lint):
        result = lint(
            "determinism/sim/bad_profile_import.py",
            select=["obs-profile-no-sim-import"],
        )
        # import repro.obs.profile + from repro.obs import attrib +
        # from repro.obs.profile import ProfileCollector
        assert _by_rule(result)["obs-profile-no-sim-import"] == 3

    def test_generic_feedback_rule_also_fires(self, lint):
        """Defense in depth: the broad rule still covers these imports."""
        result = lint(
            "determinism/sim/bad_profile_import.py",
            select=["obs-no-feedback"],
        )
        assert _by_rule(result)["obs-no-feedback"] == 3

    def test_protocol_import_is_the_blessed_direction(self, lint):
        assert lint(
            "determinism/sim/clean_profile.py",
            select=["obs-profile-no-sim-import"],
        ).clean

    def test_silent_outside_simulator_packages(self, lint):
        # the obs layer itself imports these modules freely
        assert lint(
            "determinism/obs_outside_scope.py",
            select=["obs-profile-no-sim-import"],
        ).clean

    def test_simulator_sources_honor_the_rule(self):
        from pathlib import Path

        from repro.lint import run_lint

        repo_src = Path(__file__).resolve().parents[2] / "src" / "repro"
        paths = [str(repo_src / d) for d in ("sim", "net", "cc", "tcp")]
        result = run_lint(paths, select=["obs-profile-no-sim-import"])
        assert result.clean


class TestProbeWallClock:
    """Telemetry samples must be stamped with virtual time only."""

    def test_bad_fixture_trips_import_and_sample_forms(self, lint):
        result = lint(
            "determinism/bad_probe_clock.py", select=["obs-probe-wall-clock"]
        )
        # wall_clock + perf_clock imports in a sink-defining module, plus
        # three sample(<clock>(), ...) calls
        assert _by_rule(result)["obs-probe-wall-clock"] == 5

    def test_virtual_time_sink_is_clean(self, lint):
        assert lint(
            "determinism/clean_probe.py", select=["obs-probe-wall-clock"]
        ).clean

    def test_clock_helpers_fine_outside_sink_modules(self, lint):
        # obs_outside_scope-style code may use the journal's helpers as
        # long as it defines no probe sink
        assert lint(
            "determinism/obs_outside_scope.py",
            select=["obs-probe-wall-clock"],
        ).clean

    def test_shipped_probe_sources_honor_the_rule(self):
        from pathlib import Path

        from repro.lint import run_lint

        repo_src = Path(__file__).resolve().parents[2] / "src" / "repro"
        result = run_lint(
            [str(repo_src)], select=["obs-probe-wall-clock"]
        )
        assert result.clean
