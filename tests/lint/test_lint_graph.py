"""Whole-program graph: call resolution, reachability, hot roots.

Unit tests build tiny module sets in ``tmp_path`` and interrogate
:class:`~repro.lint.graph.ProjectGraph` directly; the fixture-driven
tests check the property the perf family rests on — the *same* code is
flagged when an event loop reaches it and silent when nothing does.
"""

from repro.lint.core import ModuleInfo
from repro.lint.graph import ProjectGraph


def _modules(tmp_path, sources):
    out = []
    for rel, src in sources.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src, encoding="utf-8")
        out.append(ModuleInfo.parse(path, rel))
    return out


class TestCallResolution:
    def test_helper_called_from_run_is_reachable(self, tmp_path):
        graph = ProjectGraph(
            _modules(
                tmp_path,
                {
                    "sim/engine.py": (
                        "class Simulator:\n"
                        "    def run(self):\n"
                        "        self._drain()\n"
                        "    def _drain(self):\n"
                        "        helper()\n"
                        "def helper():\n"
                        "    pass\n"
                    )
                },
            )
        )
        roots = graph.find_methods("Simulator", ("run",))
        reachable = graph.reachable(roots)
        assert "sim.engine.Simulator.run" in reachable
        assert "sim.engine.Simulator._drain" in reachable
        assert "sim.engine.helper" in reachable

    def test_uncalled_helper_is_not_reachable(self, tmp_path):
        graph = ProjectGraph(
            _modules(
                tmp_path,
                {
                    "sim/engine.py": (
                        "class Simulator:\n"
                        "    def run(self):\n"
                        "        pass\n"
                        "def helper():\n"
                        "    pass\n"
                    )
                },
            )
        )
        reachable = graph.reachable(graph.find_methods("Simulator", ("run",)))
        assert "sim.engine.helper" not in reachable

    def test_reachability_crosses_modules(self, tmp_path):
        graph = ProjectGraph(
            _modules(
                tmp_path,
                {
                    "sim/engine.py": (
                        "from sim.util import tally\n"
                        "class Simulator:\n"
                        "    def run(self):\n"
                        "        tally()\n"
                    ),
                    "sim/util.py": "def tally():\n    pass\n",
                },
            )
        )
        reachable = graph.reachable(graph.find_methods("Simulator", ("run",)))
        assert "sim.util.tally" in reachable

    def test_instantiation_reaches_init_and_records_class(self, tmp_path):
        graph = ProjectGraph(
            _modules(
                tmp_path,
                {
                    "sim/engine.py": (
                        "class Event:\n"
                        "    def __init__(self):\n"
                        "        self.t = 0\n"
                        "class Simulator:\n"
                        "    def run(self):\n"
                        "        Event()\n"
                    )
                },
            )
        )
        roots = graph.find_methods("Simulator", ("run",))
        assert "sim.engine.Event.__init__" in graph.reachable(roots)
        assert "sim.engine.Event" in graph.classes_instantiated_by(
            graph.reachable(roots)
        )


class TestScheduledCallbacks:
    def test_callback_reference_is_a_hot_root(self, tmp_path):
        graph = ProjectGraph(
            _modules(
                tmp_path,
                {
                    "sim/pump.py": (
                        "class Pump:\n"
                        "    def start(self):\n"
                        "        self.sim.schedule(0.1, self._tick)\n"
                        "    def _tick(self):\n"
                        "        self._leaf()\n"
                        "    def _leaf(self):\n"
                        "        pass\n"
                    )
                },
            )
        )
        assert "sim.pump.Pump._tick" in graph.scheduled_callbacks
        assert "sim.pump.Pump._leaf" in graph.reachable(
            graph.scheduled_callbacks
        )


class TestHotPathRulesUseTheGraph:
    """The acceptance property: hotness comes from reachability."""

    def test_hot_fixture_reports_at_least_five_perf_findings(self, lint):
        result = lint("perf/sim/hotpath.py")
        perf = [f for f in result.findings if f.family == "perf"]
        assert len(perf) >= 5
        assert {f.rule for f in perf} == {
            "perf-alloc-in-hot-path",
            "perf-attr-in-loop",
            "perf-hot-dispatch",
            "perf-missing-slots",
        }

    def test_same_shapes_unreachable_stay_silent(self, lint):
        result = lint("perf_cold/sim/coldpath.py")
        assert not [f for f in result.findings if f.family == "perf"]
        assert result.clean

    def test_scheduled_callback_is_hot(self, lint):
        result = lint(
            "perf/sim/scheduled.py", select=["perf-alloc-in-hot-path"]
        )
        assert [f.rule for f in result.findings] == ["perf-alloc-in-hot-path"]
        assert "_tick" in result.findings[0].message
