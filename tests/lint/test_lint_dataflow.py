"""The dataflow rule families: determinism-flow and units-flow.

Both depend on inter-procedural summaries — the fixtures deliberately
route every violation through at least one function boundary so a
per-file check could never see it.
"""


class TestDeterminismFlow:
    def test_entropy_reaches_state_two_calls_away(self, lint):
        result = lint(
            "detflow/sim/tainted.py", select=["detflow-entropy-to-state"]
        )
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.family == "determinism-flow"
        assert "self.offset" in finding.message
        assert "Clock.adjust" in finding.message

    def test_set_order_reaches_state(self, lint):
        result = lint("detflow/sim/tainted.py", select=["detflow-set-order"])
        assert len(result.findings) == 1
        assert "self.first" in result.findings[0].message
        assert "Registry.rebuild" in result.findings[0].message

    def test_sorted_sanitizes_and_params_carry_no_entropy(self, lint):
        result = lint(
            "detflow/sim/clean_flow.py",
            select=["detflow-entropy-to-state", "detflow-set-order"],
        )
        assert result.clean


class TestUnitsFlow:
    def test_assign_mismatch_through_helper_return(self, lint):
        result = lint("unitsflow/flow_bad.py", select=["unitsflow-assign"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert "delay_s" in finding.message
        assert "[s]" in finding.message and "[ms]" in finding.message

    def test_return_mismatch_against_function_suffix(self, lint):
        result = lint("unitsflow/flow_bad.py", select=["unitsflow-return"])
        assert len(result.findings) == 1
        assert "speed_bps" in result.findings[0].message
        assert "[bytes]" in result.findings[0].message

    def test_call_mismatch_with_unsuffixed_argument(self, lint):
        result = lint("unitsflow/flow_bad.py", select=["unitsflow-call"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert "`raw`" in finding.message
        assert "consume" in finding.message

    def test_agreeing_flows_are_clean(self, lint):
        result = lint("unitsflow/flow_clean.py")
        assert result.clean
