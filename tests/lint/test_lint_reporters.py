"""Reporter contracts: text rendering and the versioned JSON schema."""

import json

from repro.lint import render_json, render_text
from repro.lint.reporters import SCHEMA_VERSION, to_json_dict


class TestText:
    def test_clean_summary(self, lint):
        result = lint("units/clean_units.py")
        text = render_text(result)
        assert "clean: 1 files, 0 findings" in text

    def test_findings_render_one_per_line_with_summary(self, lint):
        result = lint("hygiene/bad_hygiene.py", select=["api-bare-except"])
        text = render_text(result)
        lines = text.splitlines()
        assert lines[0].count(":") >= 3  # path:line:col: rule: message
        assert "api-bare-except: 1" in lines[-1]
        assert "1 finding in 1 files" in lines[-1]


class TestJson:
    def test_schema_fields(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        payload = json.loads(render_json(result))
        assert payload["version"] == SCHEMA_VERSION
        assert set(payload) == {
            "version",
            "files_checked",
            "finding_count",
            "rules_run",
            "counts_by_rule",
            "findings",
        }
        assert payload["files_checked"] == 1
        assert payload["finding_count"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert set(finding) == {
                "path", "line", "col", "rule", "family", "message",
            }
            assert isinstance(finding["line"], int)
            assert isinstance(finding["col"], int)

    def test_counts_by_rule_sum_matches(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        payload = to_json_dict(result)
        assert sum(payload["counts_by_rule"].values()) == payload[
            "finding_count"
        ]

    def test_clean_run_payload(self, lint):
        payload = to_json_dict(lint("units/clean_units.py"))
        assert payload["finding_count"] == 0
        assert payload["findings"] == []
        assert payload["counts_by_rule"] == {}

    def test_json_is_stable(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        assert render_json(result) == render_json(result)
