"""Reporter contracts: text, the versioned JSON schema, and SARIF."""

import json

from repro.lint import render_json, render_sarif, render_text, to_sarif_dict
from repro.lint.reporters import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    SCHEMA_VERSION,
    to_json_dict,
)


class TestText:
    def test_clean_summary(self, lint):
        result = lint("units/clean_units.py")
        text = render_text(result)
        assert "clean: 1 files, 0 findings" in text

    def test_findings_render_one_per_line_with_summary(self, lint):
        result = lint("hygiene/bad_hygiene.py", select=["api-bare-except"])
        text = render_text(result)
        lines = text.splitlines()
        assert lines[0].count(":") >= 3  # path:line:col: rule: message
        assert "api-bare-except: 1" in lines[-1]
        assert "1 finding in 1 files" in lines[-1]


class TestJson:
    def test_schema_fields(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        payload = json.loads(render_json(result))
        assert payload["version"] == SCHEMA_VERSION
        assert set(payload) == {
            "version",
            "files_checked",
            "finding_count",
            "rules_run",
            "counts_by_rule",
            "findings",
        }
        assert payload["files_checked"] == 1
        assert payload["finding_count"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert set(finding) == {
                "path", "line", "col", "rule", "family", "message",
            }
            assert isinstance(finding["line"], int)
            assert isinstance(finding["col"], int)

    def test_counts_by_rule_sum_matches(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        payload = to_json_dict(result)
        assert sum(payload["counts_by_rule"].values()) == payload[
            "finding_count"
        ]

    def test_clean_run_payload(self, lint):
        payload = to_json_dict(lint("units/clean_units.py"))
        assert payload["finding_count"] == 0
        assert payload["findings"] == []
        assert payload["counts_by_rule"] == {}

    def test_json_is_stable(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        assert render_json(result) == render_json(result)


class TestSarif:
    def test_log_shape(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        payload = json.loads(render_sarif(result))
        assert payload["$schema"] == SARIF_SCHEMA
        assert payload["version"] == SARIF_VERSION
        assert len(payload["runs"]) == 1
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "simlint"
        assert driver["rules"], "driver must carry rule metadata"

    def test_every_result_round_trips_to_a_finding(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        run = to_sarif_dict(result)["runs"][0]
        assert len(run["results"]) == len(result.findings)
        for entry, finding in zip(run["results"], result.findings):
            assert entry["ruleId"] == finding.rule
            assert entry["message"]["text"] == finding.message
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == finding.path
            assert location["region"]["startLine"] == finding.line
            assert location["region"]["startColumn"] == finding.col

    def test_rule_index_resolves_rule_id(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        run = to_sarif_dict(result)["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for entry in run["results"]:
            assert rules[entry["ruleIndex"]]["id"] == entry["ruleId"]

    def test_pseudo_rules_get_driver_entries(self, lint):
        result = lint("engine/broken.py")
        run = to_sarif_dict(result)["runs"][0]
        ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert "parse-error" in ids

    def test_clean_run_has_empty_results(self, lint):
        run = to_sarif_dict(lint("units/clean_units.py"))["runs"][0]
        assert run["results"] == []

    def test_sarif_is_stable(self, lint):
        result = lint("hygiene/bad_hygiene.py")
        assert render_sarif(result) == render_sarif(result)
