"""The units family: suffix mismatches, raw literals, call mismatches."""

from collections import Counter

UNITS = ["units-suffix-mismatch", "units-raw-literal", "units-call-mismatch"]


def _by_rule(result):
    return Counter(f.rule for f in result.findings)


class TestBadFixture:
    def test_all_three_rules_fire(self, lint):
        counts = _by_rule(lint("units/bad_units.py", select=UNITS))
        assert counts["units-raw-literal"] == 3
        assert counts["units-suffix-mismatch"] == 2
        assert counts["units-call-mismatch"] == 3

    def test_messages_name_both_units(self, lint):
        result = lint("units/bad_units.py", select=["units-suffix-mismatch"])
        messages = [f.message for f in result.findings]
        assert any("time [ms]" in m and "time [s]" in m for m in messages)
        assert any("rate [gbps]" in m and "rate [bps]" in m for m in messages)

    def test_positional_args_checked_via_signature_table(self, lint):
        result = lint("units/bad_units.py", select=["units-call-mismatch"])
        keyword = [f for f in result.findings if "rate_bps" in f.message]
        assert keyword, "keyword mismatch f(rate_bps=link_gbps) not caught"
        assert len(result.findings) == 3

    def test_findings_carry_family_and_location(self, lint):
        result = lint("units/bad_units.py", select=["units-raw-literal"])
        for finding in result.findings:
            assert finding.family == "units"
            assert finding.path.endswith("bad_units.py")
            assert finding.line > 0 and finding.col > 0


class TestCleanFixture:
    def test_clean_under_units_rules(self, lint):
        assert lint("units/clean_units.py", select=UNITS).clean

    def test_tolerance_contexts_exempt_small_literals(self, lint):
        # rel_tol default, compare subtree, isclose args, eps assignment:
        # all carry small exponent literals yet none may be flagged
        assert lint("units/clean_units.py", select=["units-raw-literal"]).clean
