"""Unit tests for the pFabric-style priority queue."""

import pytest

from repro.net.packet import Packet
from repro.net.queue import PriorityQueue


def pkt(flow, priority, payload=1000, seq=0):
    return Packet(
        flow_id=flow, src="a", dst="b", seq=seq,
        payload_bytes=payload, priority=priority,
    )


class TestScheduling:
    def test_most_urgent_flow_first(self):
        q = PriorityQueue(100_000)
        q.enqueue(pkt(flow=1, priority=10_000))
        q.enqueue(pkt(flow=2, priority=500))
        q.enqueue(pkt(flow=3, priority=2_000))
        assert q.dequeue().flow_id == 2
        assert q.dequeue().flow_id == 3
        assert q.dequeue().flow_id == 1

    def test_fifo_within_flow(self):
        """Never reorder a flow against itself (spurious-SACK hazard)."""
        q = PriorityQueue(100_000)
        # Later packets of a flow carry *lower* remaining-bytes priority.
        q.enqueue(pkt(flow=1, priority=3000, seq=0))
        q.enqueue(pkt(flow=1, priority=2000, seq=1000))
        q.enqueue(pkt(flow=1, priority=1000, seq=2000))
        seqs = [q.dequeue().seq for _ in range(3)]
        assert seqs == [0, 1000, 2000]

    def test_flow_priority_tracks_most_recent(self):
        q = PriorityQueue(100_000)
        q.enqueue(pkt(flow=1, priority=10_000))
        q.enqueue(pkt(flow=2, priority=5_000))
        # flow 1 is nearly done now: its priority drops below flow 2's
        q.enqueue(pkt(flow=1, priority=100))
        assert q.dequeue().flow_id == 1

    def test_unprioritized_served_last(self):
        q = PriorityQueue(100_000)
        q.enqueue(pkt(flow=1, priority=None))
        q.enqueue(pkt(flow=2, priority=999_999))
        assert q.dequeue().flow_id == 2

    def test_empty_dequeue(self):
        assert PriorityQueue(1000).dequeue() is None


class TestEviction:
    def test_evicts_least_urgent_for_urgent_arrival(self):
        q = PriorityQueue(2 * 1040)  # fits two 1000B-payload packets
        q.enqueue(pkt(flow=1, priority=10_000))
        q.enqueue(pkt(flow=2, priority=5_000))
        accepted = q.enqueue(pkt(flow=3, priority=100))
        assert accepted
        assert q.counters.get("evictions") == 1
        flows = {q.dequeue().flow_id, q.dequeue().flow_id}
        assert flows == {2, 3}  # flow 1 (least urgent) was evicted

    def test_drops_arrival_when_least_urgent(self):
        q = PriorityQueue(2 * 1040)
        q.enqueue(pkt(flow=1, priority=100))
        q.enqueue(pkt(flow=2, priority=200))
        accepted = q.enqueue(pkt(flow=3, priority=999_999))
        assert not accepted
        assert q.counters.get("evictions") == 0
        assert q.counters.get("drops") == 1

    def test_eviction_takes_newest_of_worst_flow(self):
        q = PriorityQueue(3 * 1040)
        q.enqueue(pkt(flow=1, priority=10_000, seq=0))
        q.enqueue(pkt(flow=1, priority=9_000, seq=1000))
        q.enqueue(pkt(flow=2, priority=5_000, seq=0))
        q.enqueue(pkt(flow=3, priority=100, seq=0))  # evicts flow 1's tail
        remaining = []
        while True:
            packet = q.dequeue()
            if packet is None:
                break
            remaining.append((packet.flow_id, packet.seq))
        assert (1, 0) in remaining        # head survived
        assert (1, 1000) not in remaining  # tail evicted

    def test_occupancy_consistent_after_eviction(self):
        q = PriorityQueue(2 * 1040)
        q.enqueue(pkt(flow=1, priority=10_000))
        q.enqueue(pkt(flow=2, priority=5_000))
        q.enqueue(pkt(flow=3, priority=100))
        total = 0
        while True:
            packet = q.dequeue()
            if packet is None:
                break
            total += packet.size_bytes
        assert q.occupancy_bytes == 0
        assert total <= 2 * 1040

    def test_len_and_empty(self):
        q = PriorityQueue(100_000)
        assert q.empty and len(q) == 0
        q.enqueue(pkt(flow=1, priority=1))
        assert not q.empty and len(q) == 1
        q.dequeue()
        assert q.empty
