"""Failure injection: TCP robustness over randomly lossy links."""

import random

import pytest

from repro.apps.iperf import IperfSession, run_until_complete
from repro.errors import NetworkConfigError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.topology import TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from repro.units import gbps


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


class TestLossyLinkUnit:
    def test_loss_rate_validation(self, sim):
        with pytest.raises(NetworkConfigError):
            Link(sim, gbps(10), 0.0, loss_rate=1.0, loss_rng=random.Random(0))

    def test_needs_rng(self, sim):
        with pytest.raises(NetworkConfigError):
            Link(sim, gbps(10), 0.0, loss_rate=0.1)

    def test_drops_roughly_at_rate(self, sim):
        link = Link(
            sim, gbps(10), 0.0, loss_rate=0.3, loss_rng=random.Random(42)
        )
        sink = Sink()
        link.connect(sink)
        for i in range(1000):
            link.deliver_after_serialization(
                Packet(flow_id=1, src="a", dst="b", payload_bytes=100)
            )
        sim.run()
        delivered = len(sink.received)
        assert 600 <= delivered <= 800  # ~70% of 1000
        assert link.counters.get("corrupted") == 1000 - delivered

    def test_zero_loss_by_default(self, sim):
        link = Link(sim, gbps(10), 0.0)
        sink = Sink()
        link.connect(sink)
        for _ in range(100):
            link.deliver_after_serialization(
                Packet(flow_id=1, src="a", dst="b", payload_bytes=100)
            )
        sim.run()
        assert len(sink.received) == 100


def lossy_testbed(loss_rate, seed=0):
    """A testbed whose bottleneck link randomly corrupts frames."""
    sim = Simulator()
    testbed = build_testbed(sim, TestbedConfig())
    testbed.bottleneck.link.loss_rate = loss_rate
    testbed.bottleneck.link.loss_rng = random.Random(seed)
    return sim, testbed


class TestTcpUnderRandomLoss:
    @pytest.mark.parametrize("loss_rate", [0.001, 0.01])
    def test_cubic_completes_despite_corruption(self, loss_rate):
        sim, testbed = lossy_testbed(loss_rate)
        session = IperfSession(testbed, total_bytes=5_000_000, cca="cubic")
        result = run_until_complete(testbed, [session], time_limit_s=120)[0]
        assert result.bytes_transferred == 5_000_000
        assert session.receiver.bytes_received == 5_000_000
        assert result.retransmissions > 0

    def test_heavier_loss_hurts_throughput(self):
        rates = {}
        for loss in (0.0, 0.02):
            sim, testbed = lossy_testbed(loss, seed=3)
            session = IperfSession(testbed, total_bytes=5_000_000, cca="cubic")
            result = run_until_complete(
                testbed, [session], time_limit_s=120
            )[0]
            rates[loss] = result.mean_throughput_bps
        assert rates[0.02] < rates[0.0]

    def test_loss_costs_energy(self):
        """Random corruption lengthens the transfer and burns energy."""
        from repro.energy.cpu import CpuModel
        from repro.energy.meter import EnergyMeter

        energies = {}
        for loss in (0.0, 0.02):
            sim, testbed = lossy_testbed(loss, seed=5)
            cpu = CpuModel(sim, testbed.sender, packages=1)
            meter = EnergyMeter(sim, [cpu])
            session = IperfSession(testbed, total_bytes=5_000_000, cca="cubic")
            meter.start()
            run_until_complete(testbed, [session], time_limit_s=120)
            energies[loss] = meter.stop()
        assert energies[0.02] > energies[0.0]

    def test_bbr_tolerates_random_loss_better_than_reno(self):
        """BBR's loss-blindness is an advantage under corruption."""
        durations = {}
        for cca in ("bbr", "reno"):
            sim, testbed = lossy_testbed(0.01, seed=7)
            session = IperfSession(testbed, total_bytes=5_000_000, cca=cca)
            durations[cca] = run_until_complete(
                testbed, [session], time_limit_s=120
            )[0].duration_s
        assert durations["bbr"] <= durations["reno"] * 1.05
