"""Fleet-level invariants over multi-switch fabrics.

Three families the 1k-flow experiments rest on:

* **packet conservation** — every packet a host sent is, at drain,
  either delivered, dropped by a queue/qdisc, or corrupted on a wire;
  nothing is silently created or destroyed anywhere in the fabric;
* **ECMP stability** — a fixed (src, dst, flow) 5-tuple maps to one
  egress port forever (no path flaps: reordering would wreck TCP), and
  the mapping actually spreads distinct flows across the group;
* **energy additivity** — the fleet energy report is exactly the sum of
  its per-switch readings plus the host term, under both switch power
  models.
"""

import pytest

from repro.apps.iperf import IperfSession
from repro.energy.fleet import fleet_energy_report
from repro.energy.switch_power import rate_adaptive_switch, todays_switch
from repro.net.packet import Packet
from repro.net.topology import (
    FabricConfig,
    build_fat_tree,
    build_leaf_spine,
)
from repro.sim.engine import Simulator


def small_fabric(sim, **overrides):
    defaults = dict(leaves=3, spines=2, hosts_per_leaf=2)
    defaults.update(overrides)
    return build_leaf_spine(sim, FabricConfig(**defaults))


def run_sessions(sim, fabric, pairs, size=200_000, cca="dctcp"):
    sessions = [
        IperfSession(
            fabric,
            total_bytes=size,
            cca=cca,
            flow_id=i + 1,
            src_host=fabric.host(src),
            dst_host=fabric.host(dst),
        )
        for i, (src, dst) in enumerate(pairs)
    ]
    sim.run()
    assert all(s.complete for s in sessions)
    return sessions


class TestPacketConservation:
    def test_cross_rack_flows_conserve_packets(self):
        sim = Simulator()
        fabric = small_fabric(sim)
        run_sessions(
            sim, fabric, [("h0-0", "h1-0"), ("h1-1", "h2-0"), ("h2-1", "h0-1")]
        )
        ledger = fabric.conservation()
        assert ledger.sent > 0
        assert ledger.residual == 0

    def test_conservation_under_drops(self):
        # Shallow buffers force queue drops; the ledger must still
        # balance — drops are accounted, not lost.
        sim = Simulator()
        fabric = small_fabric(
            sim, buffer_bytes=40_000, ecn_threshold_bytes=20_000
        )
        run_sessions(
            sim,
            fabric,
            [("h0-0", "h2-0"), ("h0-1", "h2-0"), ("h1-0", "h2-0")],
            size=800_000,
            cca="cubic",
        )
        ledger = fabric.conservation()
        assert ledger.queue_drops > 0
        assert ledger.residual == 0

    def test_conservation_on_fat_tree(self):
        sim = Simulator()
        fabric = build_fat_tree(sim, k=4)
        pairs = [("h0-0-0", "h3-1-1"), ("h1-0-1", "h2-1-0")]
        run_sessions(sim, fabric, pairs)
        assert fabric.conservation().residual == 0

    def test_incast_fan_in_conserves_packets(self):
        sim = Simulator()
        fabric = small_fabric(sim)
        victim = "h0-0"
        senders = ["h1-0", "h1-1", "h2-0", "h2-1"]
        run_sessions(sim, fabric, [(s, victim) for s in senders], size=300_000)
        assert fabric.conservation().residual == 0


class TestEcmpStability:
    def packet(self, src, dst, flow_id, seq=0):
        return Packet(
            flow_id=flow_id, src=src, dst=dst, seq=seq, payload_bytes=1448
        )

    def test_fixed_tuple_never_flaps(self):
        sim = Simulator()
        fabric = small_fabric(sim, spines=4)
        leaf = fabric.tiers["leaf"][0]
        first = leaf.port_for_packet(self.packet("h0-0", "h2-1", 7))
        for seq in range(1, 500):
            port = leaf.port_for_packet(self.packet("h0-0", "h2-1", 7, seq))
            assert port is first  # same object, every single packet

    def test_distinct_flows_spread_across_group(self):
        sim = Simulator()
        fabric = small_fabric(sim, spines=4)
        leaf = fabric.tiers["leaf"][0]
        ports = {
            id(leaf.port_for_packet(self.packet("h0-0", "h2-1", fid)))
            for fid in range(64)
        }
        assert len(ports) == 4  # all four uplinks carry some flow

    def test_switches_hash_independently(self):
        # Same 5-tuple, different switch: the per-switch salt must keep
        # leaf choices decorrelated, or every flow that hashed onto
        # spine k at leaf 0 would hash onto spine k everywhere
        # (the classic hash-polarization failure).
        sim = Simulator()
        fabric = small_fabric(sim, leaves=2, spines=4)
        choices_a, choices_b = [], []
        for fid in range(128):
            pkt = self.packet("x", "y", fid)
            a = fabric.tiers["leaf"][0].port_for_packet(pkt)
            b = fabric.tiers["leaf"][1].port_for_packet(pkt)
            choices_a.append(a.link.name)
            choices_b.append(b.link.name)
        # Positions (spine index) must differ for a healthy fraction.
        differing = sum(
            1
            for a, b in zip(choices_a, choices_b)
            if a.split("-to-")[-1] != b.split("-to-")[-1]
        )
        assert differing > 32

    def test_no_flaps_under_live_traffic(self):
        # End to end: after a real multi-flow run, every (src, dst,
        # flow) key in every switch's cache still maps to one port.
        sim = Simulator()
        fabric = small_fabric(sim)
        run_sessions(
            sim, fabric, [("h0-0", "h1-0"), ("h0-1", "h2-1")], size=400_000
        )
        for switch in fabric.switches:
            cache = switch._flow_port_cache
            for key, port in cache.items():
                assert switch.port_for_packet(
                    self.packet(key[0], key[1], key[2], seq=10**6)
                ) is port


class TestFleetEnergyAdditivity:
    @pytest.mark.parametrize(
        "model_factory", [todays_switch, rate_adaptive_switch]
    )
    def test_per_switch_readings_sum_to_fleet_total(self, model_factory):
        sim = Simulator()
        fabric = small_fabric(sim)
        run_sessions(sim, fabric, [("h0-0", "h1-0"), ("h2-0", "h0-1")])
        report = fleet_energy_report(
            fabric.switches,
            duration_s=sim.now,
            host_energy_j=12.5,
            model=model_factory(),
        )
        assert len(report.switch_readings) == len(fabric.switches)
        assert report.switch_energy_j == pytest.approx(
            sum(r.energy_j for r in report.switch_readings)
        )
        assert report.total_energy_j == pytest.approx(
            12.5 + report.switch_energy_j
        )
        assert all(r.energy_j > 0 for r in report.switch_readings)

    def test_busier_fabric_costs_more_with_adaptive_switches(self):
        def fleet_joules(pairs):
            sim = Simulator()
            fabric = small_fabric(sim)
            run_sessions(sim, fabric, pairs, size=500_000)
            # Fixed window, not sim.now: equal idle tails, so the
            # difference is purely traffic.
            return fleet_energy_report(
                fabric.switches,
                duration_s=0.01,
                host_energy_j=0.0,
                model=rate_adaptive_switch(),
            ).switch_energy_j

        light = fleet_joules([("h0-0", "h1-0")])
        heavy = fleet_joules(
            [("h0-0", "h1-0"), ("h0-1", "h2-0"), ("h1-1", "h2-1")]
        )
        assert heavy > light
