"""Tests for the N-to-1 incast topology."""

import pytest

from repro.net.packet import Packet
from repro.net.topology import TestbedConfig, build_incast_testbed


class TestBuild:
    def test_fan_in_count(self, sim):
        testbed = build_incast_testbed(sim, 4)
        assert testbed.fan_in == 4
        assert len(testbed.senders) == 4

    def test_needs_at_least_one_sender(self, sim):
        with pytest.raises(ValueError):
            build_incast_testbed(sim, 0)

    def test_unique_sender_names(self, sim):
        testbed = build_incast_testbed(sim, 8)
        names = {h.name for h in testbed.senders}
        assert len(names) == 8

    def test_every_sender_reaches_receiver(self, sim):
        testbed = build_incast_testbed(sim, 3)
        got = []

        class Probe:
            def handle_packet(self, packet):
                got.append(packet.src)

        for i in range(3):
            testbed.receiver.register_flow(i, Probe())
        for i, host in enumerate(testbed.senders):
            host.send(
                Packet(flow_id=i, src=host.name, dst="receiver", payload_bytes=100)
            )
        sim.run()
        assert sorted(got) == ["sender-0", "sender-1", "sender-2"]

    def test_ack_path_back_to_each_sender(self, sim):
        testbed = build_incast_testbed(sim, 2)
        got = []

        class Probe:
            def __init__(self, name):
                self.name = name

            def handle_packet(self, packet):
                got.append(self.name)

        for i, host in enumerate(testbed.senders):
            host.register_flow(i, Probe(host.name))
            testbed.receiver.send(
                Packet(flow_id=i, src="receiver", dst=host.name, is_ack=True)
            )
        sim.run()
        assert sorted(got) == ["sender-0", "sender-1"]

    def test_shared_bottleneck(self, sim):
        """All senders funnel through one switch->receiver interface."""
        testbed = build_incast_testbed(sim, 4)
        assert testbed.switch.port_for("receiver") is testbed.bottleneck

    def test_config_respected(self, sim):
        config = TestbedConfig(mtu_bytes=1500)
        testbed = build_incast_testbed(sim, 2, config)
        assert all(h.mtu_bytes == 1500 for h in testbed.senders)
        assert testbed.receiver.mtu_bytes == 1500
