"""Tests for the in-band network telemetry (INT) path HPCC relies on."""

import pytest

from repro.apps.iperf import IperfSession, run_until_complete
from repro.net.link import Interface, Link
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.net.topology import TestbedConfig, build_testbed
from repro.units import gbps


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def make_interface(sim, int_telemetry):
    link = Link(sim, gbps(10), 10e-6)
    sink = Sink()
    link.connect(sink)
    iface = Interface(
        sim, DropTailQueue(1_000_000), link, int_telemetry=int_telemetry
    )
    return iface, sink


def data_packet(payload=1000):
    return Packet(flow_id=1, src="a", dst="b", payload_bytes=payload)


class TestStamping:
    def test_int_fields_stamped_when_enabled(self, sim):
        iface, sink = make_interface(sim, int_telemetry=True)
        iface.enqueue(data_packet())
        sim.run()
        packet = sink.received[0]
        assert packet.int_qlen_bytes is not None
        assert packet.int_tx_bytes > 0
        assert packet.int_link_rate_bps == pytest.approx(gbps(10))

    def test_no_stamping_when_disabled(self, sim):
        iface, sink = make_interface(sim, int_telemetry=False)
        iface.enqueue(data_packet())
        sim.run()
        assert sink.received[0].int_qlen_bytes is None

    def test_acks_not_stamped(self, sim):
        iface, sink = make_interface(sim, int_telemetry=True)
        iface.enqueue(
            Packet(flow_id=1, src="a", dst="b", is_ack=True, ack_seq=1)
        )
        sim.run()
        assert sink.received[0].int_qlen_bytes is None

    def test_queue_depth_visible_in_stamp(self, sim):
        iface, sink = make_interface(sim, int_telemetry=True)
        for _ in range(5):
            iface.enqueue(data_packet())
        sim.run()
        # the first packet left an empty queue; later ones saw backlog
        assert sink.received[0].int_qlen_bytes == 0
        assert sink.received[1].int_qlen_bytes > 0

    def test_tx_bytes_cumulative(self, sim):
        iface, sink = make_interface(sim, int_telemetry=True)
        for _ in range(3):
            iface.enqueue(data_packet())
        sim.run()
        tx = [p.int_tx_bytes for p in sink.received]
        assert tx == sorted(tx)
        assert tx[0] < tx[2]


class TestEndToEndEcho:
    def test_receiver_echoes_int_to_sender(self, sim):
        testbed = build_testbed(sim, TestbedConfig(int_telemetry=True))
        session = IperfSession(testbed, total_bytes=1_000_000, cca="hpcc")
        run_until_complete(testbed, [session], time_limit_s=30)
        # the HPCC controller consumed utilization samples from ACKs
        assert session.sender.cca.last_utilization is not None
        assert session.sender.cca.last_utilization > 0

    def test_classic_cca_unaffected_by_int(self, sim):
        testbed = build_testbed(sim, TestbedConfig(int_telemetry=True))
        session = IperfSession(testbed, total_bytes=1_000_000, cca="cubic")
        result = run_until_complete(testbed, [session], time_limit_s=30)[0]
        assert result.bytes_transferred == 1_000_000
