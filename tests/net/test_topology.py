"""Unit tests for the paper-testbed topology builder."""

import pytest

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue, EcnQueue
from repro.net.topology import TestbedConfig, build_testbed
from repro.units import gbps


class TestConfig:
    def test_defaults_match_paper(self):
        config = TestbedConfig()
        assert config.link_rate_bps == gbps(10)
        assert config.mtu_bytes == 9000
        assert config.sender_bonded_links == 2

    def test_base_rtt(self):
        config = TestbedConfig(link_delay_s=10e-6)
        assert config.base_rtt_s == pytest.approx(40e-6)

    def test_needs_at_least_one_link(self):
        with pytest.raises(ValueError):
            TestbedConfig(sender_bonded_links=0)


class TestBuild:
    def test_sender_has_bonded_nic(self, testbed):
        assert testbed.sender.nic.bonded
        assert len(testbed.sender_interfaces) == 2

    def test_bottleneck_is_ecn_capable_by_default(self, testbed):
        assert isinstance(testbed.bottleneck.queue, EcnQueue)

    def test_ecn_disabled_when_threshold_none(self, sim):
        tb = build_testbed(sim, TestbedConfig(ecn_threshold_bytes=None))
        assert isinstance(tb.bottleneck.queue, DropTailQueue)
        assert not isinstance(tb.bottleneck.queue, EcnQueue)

    def test_bottleneck_rate(self, testbed):
        assert testbed.bottleneck_rate_bps == gbps(10)

    def test_data_path_sender_to_receiver(self, sim, testbed):
        """A raw packet injected at the sender reaches the receiver."""
        received = []

        class Probe:
            def handle_packet(self, packet):
                received.append(packet)

        testbed.receiver.register_flow(5, Probe())
        testbed.sender.send(
            Packet(flow_id=5, src="sender", dst="receiver", payload_bytes=100)
        )
        sim.run()
        assert len(received) == 1

    def test_ack_path_receiver_to_sender(self, sim, testbed):
        received = []

        class Probe:
            def handle_packet(self, packet):
                received.append(packet)

        testbed.sender.register_flow(5, Probe())
        testbed.receiver.send(
            Packet(flow_id=5, src="receiver", dst="sender", is_ack=True)
        )
        sim.run()
        assert len(received) == 1

    def test_host_gap_applied_to_nics(self, sim):
        tb = build_testbed(sim, TestbedConfig(host_packet_gap_s=3e-6))
        assert tb.sender.nic.tx_packet_gap_s == 3e-6
        assert tb.receiver.nic.tx_packet_gap_s == 3e-6

    def test_mtu_propagates(self, sim):
        tb = build_testbed(sim, TestbedConfig(mtu_bytes=1500))
        assert tb.sender.mtu_bytes == 1500
        assert tb.receiver.mtu_bytes == 1500
