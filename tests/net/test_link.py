"""Unit tests for links and egress interfaces."""

import pytest

from repro.errors import NetworkConfigError
from repro.net.link import Interface, Link
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.units import BITS_PER_BYTE, gbps


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def make_packet(payload=1000):
    return Packet(flow_id=1, src="a", dst="b", payload_bytes=payload)


class TestLink:
    def test_serialization_time(self, sim):
        link = Link(sim, rate_bps=gbps(10), delay_s=0.0)
        p = make_packet(1000)
        expected = p.wire_bytes * BITS_PER_BYTE / gbps(10)
        assert link.serialization_time(p) == pytest.approx(expected)

    def test_invalid_rate_and_delay(self, sim):
        with pytest.raises(NetworkConfigError):
            Link(sim, rate_bps=0, delay_s=0.0)
        with pytest.raises(NetworkConfigError):
            Link(sim, rate_bps=1e9, delay_s=-1.0)

    def test_no_sink_raises(self, sim):
        link = Link(sim, rate_bps=1e9, delay_s=0.0)
        with pytest.raises(NetworkConfigError):
            link.deliver_after_serialization(make_packet())


class TestInterface:
    def make(self, sim, rate=gbps(10), delay=10e-6, capacity=100_000, gap=0.0):
        link = Link(sim, rate, delay)
        sink = Sink()
        link.connect(sink)
        iface = Interface(
            sim, DropTailQueue(capacity), link, min_packet_gap_s=gap
        )
        return iface, sink

    def test_single_packet_delivery_time(self, sim):
        iface, sink = self.make(sim)
        p = make_packet(1000)
        iface.enqueue(p)
        sim.run()
        ser = iface.link.serialization_time(p)
        assert sim.now == pytest.approx(ser + 10e-6)
        assert sink.received == [p]

    def test_back_to_back_serialization(self, sim):
        iface, sink = self.make(sim)
        a, b = make_packet(1000), make_packet(1000)
        iface.enqueue(a)
        iface.enqueue(b)
        sim.run()
        assert sink.received == [a, b]
        ser = iface.link.serialization_time(a)
        # second packet waits for the first to finish serializing
        assert sim.now == pytest.approx(2 * ser + 10e-6)

    def test_queue_overflow_drops(self, sim):
        iface, sink = self.make(sim, capacity=1100)
        sent = [iface.enqueue(make_packet(1000)) for _ in range(4)]
        sim.run()
        # one in flight + one queued; the rest dropped
        assert sent.count(True) == 2
        assert len(sink.received) == 2

    def test_on_drop_hook(self, sim):
        dropped = []
        link = Link(sim, gbps(10), 0.0)
        link.connect(Sink())
        iface = Interface(
            sim,
            DropTailQueue(1100),
            link,
            on_drop=dropped.append,
        )
        for _ in range(4):
            iface.enqueue(make_packet(1000))
        assert len(dropped) == 2

    def test_on_dequeue_hook_fires_per_transmission(self, sim):
        seen = []
        link = Link(sim, gbps(10), 0.0)
        link.connect(Sink())
        iface = Interface(
            sim, DropTailQueue(100_000), link, on_dequeue=seen.append
        )
        for _ in range(3):
            iface.enqueue(make_packet())
        sim.run()
        assert len(seen) == 3

    def test_min_packet_gap_paces_small_packets(self, sim):
        """With a gap larger than serialization, the gap dominates."""
        gap = 5e-6
        iface, sink = self.make(sim, delay=0.0, gap=gap)
        for _ in range(3):
            iface.enqueue(make_packet(100))  # tiny: ser << gap
        sim.run()
        assert sim.now == pytest.approx(3 * gap)

    def test_busy_flag(self, sim):
        iface, _sink = self.make(sim)
        assert not iface.busy
        iface.enqueue(make_packet())
        assert iface.busy
        sim.run()
        assert not iface.busy
