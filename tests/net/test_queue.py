"""Unit tests for DropTail and ECN-marking queues."""

import pytest

from repro.errors import NetworkConfigError
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue, EcnQueue


def make_packet(payload=1000, ecn=False, flow=1):
    return Packet(
        flow_id=flow, src="a", dst="b", payload_bytes=payload, ecn_capable=ecn
    )


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        first, second = make_packet(), make_packet()
        assert q.enqueue(first) and q.enqueue(second)
        assert q.dequeue() is first
        assert q.dequeue() is second
        assert q.dequeue() is None

    def test_occupancy_tracks_bytes(self):
        q = DropTailQueue(10_000)
        p = make_packet(500)
        q.enqueue(p)
        assert q.occupancy_bytes == p.size_bytes
        q.dequeue()
        assert q.occupancy_bytes == 0

    def test_drop_when_full(self):
        q = DropTailQueue(capacity_bytes=1500)
        assert q.enqueue(make_packet(1000))       # 1040 bytes
        assert not q.enqueue(make_packet(1000))   # would exceed 1500
        assert q.counters.get("drops") == 1

    def test_small_packet_fits_after_big_drop(self):
        """Byte-based DropTail: a smaller packet can still fit."""
        q = DropTailQueue(capacity_bytes=1500)
        q.enqueue(make_packet(1000))
        assert not q.enqueue(make_packet(1000))
        assert q.enqueue(make_packet(100))

    def test_invalid_capacity(self):
        with pytest.raises(NetworkConfigError):
            DropTailQueue(0)

    def test_len_and_empty(self):
        q = DropTailQueue(10_000)
        assert q.empty and len(q) == 0
        q.enqueue(make_packet())
        assert not q.empty and len(q) == 1


class TestEcnQueue:
    def test_marks_above_threshold(self):
        q = EcnQueue(capacity_bytes=10_000, mark_threshold_bytes=1000)
        q.enqueue(make_packet(1000, ecn=True))  # occupancy 0 -> no mark
        p2 = make_packet(1000, ecn=True)
        q.enqueue(p2)  # occupancy 1040 >= 1000 -> mark
        assert not q.dequeue().ecn_marked
        assert q.dequeue().ecn_marked
        assert q.counters.get("ecn_marks") == 1

    def test_non_ecn_packets_never_marked(self):
        q = EcnQueue(capacity_bytes=10_000, mark_threshold_bytes=100)
        q.enqueue(make_packet(1000, ecn=False))
        q.enqueue(make_packet(1000, ecn=False))
        assert not q.dequeue().ecn_marked
        assert not q.dequeue().ecn_marked

    def test_still_drops_when_full(self):
        q = EcnQueue(capacity_bytes=1100, mark_threshold_bytes=100)
        q.enqueue(make_packet(1000, ecn=True))
        assert not q.enqueue(make_packet(1000, ecn=True))
        assert q.counters.get("drops") == 1

    def test_invalid_threshold(self):
        with pytest.raises(NetworkConfigError):
            EcnQueue(capacity_bytes=1000, mark_threshold_bytes=0)
        with pytest.raises(NetworkConfigError):
            EcnQueue(capacity_bytes=1000, mark_threshold_bytes=2000)
