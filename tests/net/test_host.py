"""Unit tests for hosts: demux, listeners, counters."""

import pytest

from repro.errors import NetworkConfigError
from repro.net.host import Host, HostListener
from repro.net.link import Interface, Link
from repro.net.nic import Nic
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.units import gbps


class Endpoint:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet)

    def receive(self, packet):  # also usable as a link sink
        self.packets.append(packet)


class Recorder(HostListener):
    def __init__(self):
        self.sent = []
        self.received = []
        self.retransmits = []
        self.cc_ops = []

    def on_packet_sent(self, host, packet):
        self.sent.append(packet)

    def on_packet_received(self, host, packet):
        self.received.append(packet)

    def on_retransmit(self, host, packet):
        self.retransmits.append(packet)

    def on_cc_op(self, host, algorithm, cost_units, flow_id):
        self.cc_ops.append((algorithm, cost_units, flow_id))


def make_host(sim, name="h"):
    host = Host(sim, name)
    link = Link(sim, gbps(10), 0.0)
    link.connect(Endpoint())  # discard
    nic = Nic([Interface(sim, DropTailQueue(1_000_000), link)], mtu_bytes=9000)
    host.attach_nic(nic)
    return host


def make_packet(flow=1, retransmitted=False):
    return Packet(
        flow_id=flow, src="a", dst="b", payload_bytes=100,
        retransmitted=retransmitted,
    )


class TestDemux:
    def test_receive_dispatches_by_flow(self, sim):
        host = make_host(sim)
        ep1, ep2 = Endpoint(), Endpoint()
        host.register_flow(1, ep1)
        host.register_flow(2, ep2)
        host.receive(make_packet(flow=2))
        assert ep1.packets == []
        assert len(ep2.packets) == 1

    def test_unroutable_counted_not_raised(self, sim):
        host = make_host(sim)
        host.receive(make_packet(flow=99))
        assert host.counters.get("rx_unroutable") == 1

    def test_duplicate_flow_rejected(self, sim):
        host = make_host(sim)
        host.register_flow(1, Endpoint())
        with pytest.raises(NetworkConfigError):
            host.register_flow(1, Endpoint())

    def test_unregister_idempotent(self, sim):
        host = make_host(sim)
        host.register_flow(1, Endpoint())
        host.unregister_flow(1)
        host.unregister_flow(1)
        host.receive(make_packet(flow=1))
        assert host.counters.get("rx_unroutable") == 1


class TestListeners:
    def test_send_event_published(self, sim):
        host = make_host(sim)
        rec = Recorder()
        host.add_listener(rec)
        host.send(make_packet())
        assert len(rec.sent) == 1

    def test_retransmit_event_published(self, sim):
        host = make_host(sim)
        rec = Recorder()
        host.add_listener(rec)
        host.send(make_packet(retransmitted=True))
        assert len(rec.retransmits) == 1
        assert host.counters.get("retransmissions") == 1

    def test_cc_op_event_carries_flow(self, sim):
        host = make_host(sim)
        rec = Recorder()
        host.add_listener(rec)
        host.notify_cc_op("cubic", 1.35, flow_id=7)
        assert rec.cc_ops == [("cubic", 1.35, 7)]

    def test_send_stamps_time(self, sim):
        host = make_host(sim)
        sim.schedule(1.0, lambda: host.send(make_packet()))
        p = make_packet()
        sim.schedule(2.0, lambda: host.send(p))
        sim.run()
        assert p.sent_time == 2.0


class TestWiring:
    def test_send_without_nic_raises(self, sim):
        host = Host(sim, "bare")
        with pytest.raises(NetworkConfigError):
            host.send(make_packet())

    def test_mtu_without_nic_raises(self, sim):
        host = Host(sim, "bare")
        with pytest.raises(NetworkConfigError):
            _ = host.mtu_bytes

    def test_mtu_reflects_nic(self, sim):
        host = make_host(sim)
        assert host.mtu_bytes == 9000
