"""Unit tests for the NIC: bonding, MTU policing, qdisc pacing and TSQ hooks."""

import pytest

from repro.errors import NetworkConfigError
from repro.net.link import Interface, Link
from repro.net.nic import Nic
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.units import gbps


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def make_iface(sim, sink):
    link = Link(sim, gbps(10), 0.0)
    link.connect(sink)
    return Interface(sim, DropTailQueue(10_000_000), link)


def make_packet(payload=1000, flow=1):
    return Packet(flow_id=flow, src="a", dst="b", payload_bytes=payload)


class TestBonding:
    def test_round_robin_across_interfaces(self, sim):
        sink_a, sink_b = Sink(), Sink()
        nic = Nic([make_iface(sim, sink_a), make_iface(sim, sink_b)], mtu_bytes=9000)
        for _ in range(4):
            nic.send(make_packet())
        sim.run()
        assert len(sink_a.received) == 2
        assert len(sink_b.received) == 2

    def test_bonded_property(self, sim):
        single = Nic([make_iface(sim, Sink())], mtu_bytes=1500)
        double = Nic([make_iface(sim, Sink()), make_iface(sim, Sink())])
        assert not single.bonded
        assert double.bonded

    def test_aggregate_rate(self, sim):
        nic = Nic([make_iface(sim, Sink()), make_iface(sim, Sink())])
        assert nic.aggregate_rate_bps == pytest.approx(2 * gbps(10))


class TestMtuPolicing:
    def test_oversized_packet_rejected(self, sim):
        nic = Nic([make_iface(sim, Sink())], mtu_bytes=1500)
        with pytest.raises(NetworkConfigError):
            nic.send(make_packet(payload=2000))

    def test_mtu_below_ipv4_minimum_rejected(self, sim):
        with pytest.raises(NetworkConfigError):
            Nic([make_iface(sim, Sink())], mtu_bytes=500)

    def test_needs_interface(self):
        with pytest.raises(NetworkConfigError):
            Nic([], mtu_bytes=1500)


class TestPacedTransmitPath:
    def test_gap_requires_sim(self, sim):
        with pytest.raises(NetworkConfigError):
            Nic([make_iface(sim, Sink())], tx_packet_gap_s=1e-6)

    def test_gap_limits_packet_rate(self, sim):
        sink = Sink()
        gap = 10e-6
        nic = Nic(
            [make_iface(sim, sink)], mtu_bytes=9000, sim=sim, tx_packet_gap_s=gap
        )
        for _ in range(5):
            nic.send(make_packet(100))
        sim.run()
        assert len(sink.received) == 5
        # last dispatch happens after 4 gaps (first goes immediately)
        assert sim.now >= 4 * gap

    def test_qdisc_overflow_drops_and_counts(self, sim):
        sink = Sink()
        nic = Nic(
            [make_iface(sim, sink)],
            mtu_bytes=9000,
            sim=sim,
            tx_packet_gap_s=1.0,  # effectively frozen qdisc
            tx_queue_packets=2,
        )
        results = [nic.send(make_packet()) for _ in range(5)]
        # first dispatches immediately, two queue, the rest drop
        assert results == [True, True, True, False, False]
        assert nic.counters.get("qdisc_drops") == 2

    def test_flow_backlog_accounting(self, sim):
        nic = Nic(
            [make_iface(sim, Sink())],
            mtu_bytes=9000,
            sim=sim,
            tx_packet_gap_s=1.0,
        )
        p1 = make_packet(1000, flow=7)
        p2 = make_packet(1000, flow=7)
        nic.send(p1)  # dispatched immediately (queue empty)
        nic.send(p2)  # queued
        assert nic.flow_backlog_bytes(7) == p2.size_bytes
        assert nic.flow_backlog_bytes(99) == 0

    def test_drain_listener_called(self, sim):
        calls = []
        nic = Nic(
            [make_iface(sim, Sink())],
            mtu_bytes=9000,
            sim=sim,
            tx_packet_gap_s=1e-6,
        )
        nic.add_drain_listener(lambda: calls.append(sim.now))
        nic.send(make_packet())
        nic.send(make_packet())
        sim.run()
        assert len(calls) >= 1

    def test_unpaced_path_bypasses_qdisc(self, sim):
        sink = Sink()
        nic = Nic([make_iface(sim, sink)], mtu_bytes=9000)
        assert nic.send(make_packet())
        assert nic.tx_backlog_packets == 0
        sim.run()
        assert len(sink.received) == 1
