"""Unit tests for the packet model."""

import pytest

from repro.net.packet import (
    ETHERNET_OVERHEAD_BYTES,
    TCP_IP_HEADER_BYTES,
    Packet,
    mss_for_mtu,
)


class TestPacketSizes:
    def test_data_packet_size_includes_headers(self):
        p = Packet(flow_id=1, src="a", dst="b", seq=0, payload_bytes=1460)
        assert p.size_bytes == 1460 + TCP_IP_HEADER_BYTES

    def test_wire_bytes_add_ethernet_overhead(self):
        p = Packet(flow_id=1, src="a", dst="b", payload_bytes=100)
        assert p.wire_bytes == p.size_bytes + ETHERNET_OVERHEAD_BYTES

    def test_pure_ack_is_headers_only(self):
        ack = Packet(flow_id=1, src="b", dst="a", is_ack=True, ack_seq=100)
        assert ack.payload_bytes == 0
        assert ack.size_bytes == TCP_IP_HEADER_BYTES

    def test_end_seq(self):
        p = Packet(flow_id=1, src="a", dst="b", seq=1000, payload_bytes=500)
        assert p.end_seq == 1500

    def test_packet_ids_unique(self):
        a = Packet(flow_id=1, src="a", dst="b")
        b = Packet(flow_id=1, src="a", dst="b")
        assert a.packet_id != b.packet_id


class TestDescribe:
    def test_data_description(self):
        p = Packet(flow_id=3, src="a", dst="b", seq=0, payload_bytes=100)
        text = p.describe()
        assert "DATA" in text and "flow=3" in text

    def test_retransmit_flag_shown(self):
        p = Packet(
            flow_id=3, src="a", dst="b", payload_bytes=10, retransmitted=True
        )
        assert "RETX" in p.describe()

    def test_ack_description(self):
        p = Packet(flow_id=3, src="b", dst="a", is_ack=True, ack_seq=42)
        assert "ACK 42" in p.describe()

    def test_sack_and_ece_shown(self):
        p = Packet(
            flow_id=3,
            src="b",
            dst="a",
            is_ack=True,
            ack_seq=42,
            sacks=((100, 200),),
            ecn_echo=True,
        )
        text = p.describe()
        assert "SACK" in text and "ECE" in text


class TestMssForMtu:
    @pytest.mark.parametrize(
        "mtu,expected",
        [(1500, 1460), (3000, 2960), (6000, 5960), (9000, 8960)],
    )
    def test_paper_mtus(self, mtu, expected):
        assert mss_for_mtu(mtu) == expected

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            mss_for_mtu(TCP_IP_HEADER_BYTES)
