"""Unit tests for the output-queued switch."""

import pytest

from repro.errors import NetworkConfigError
from repro.net.link import Interface, Link
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.net.switch import Switch
from repro.units import gbps


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def make_port(sim, sink, capacity=1_000_000):
    link = Link(sim, gbps(10), 0.0)
    link.connect(sink)
    return Interface(sim, DropTailQueue(capacity), link)


def make_packet(dst, payload=1000):
    return Packet(flow_id=1, src="src", dst=dst, payload_bytes=payload)


class TestForwarding:
    def test_routes_by_destination(self, sim):
        switch = Switch()
        sink_a, sink_b = Sink(), Sink()
        switch.add_port("hostA", make_port(sim, sink_a))
        switch.add_port("hostB", make_port(sim, sink_b))
        switch.receive(make_packet("hostA"))
        switch.receive(make_packet("hostB"))
        switch.receive(make_packet("hostB"))
        sim.run()
        assert len(sink_a.received) == 1
        assert len(sink_b.received) == 2

    def test_unknown_destination_raises(self, sim):
        switch = Switch()
        with pytest.raises(NetworkConfigError):
            switch.receive(make_packet("nowhere"))

    def test_duplicate_route_rejected(self, sim):
        switch = Switch()
        switch.add_port("hostA", make_port(sim, Sink()))
        with pytest.raises(NetworkConfigError):
            switch.add_port("hostA", make_port(sim, Sink()))

    def test_port_for_lookup(self, sim):
        switch = Switch()
        port = make_port(sim, Sink())
        switch.add_port("hostA", port)
        assert switch.port_for("hostA") is port

    def test_forward_drop_counted(self, sim):
        switch = Switch()
        switch.add_port("hostA", make_port(sim, Sink(), capacity=1100))
        for _ in range(4):
            switch.receive(make_packet("hostA"))
        assert switch.counters.get("forward_drops") == 2
        assert switch.counters.get("rx_packets") == 4
