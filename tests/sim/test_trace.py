"""Unit tests for time series and counters."""

import pytest

from repro.sim.trace import CounterSet, TimeSeries


class TestTimeSeries:
    def test_record_and_len(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries("x")
        ts.record(1.0, 0.0)
        with pytest.raises(ValueError):
            ts.record(0.5, 0.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries("x")
        ts.record(1.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_mean(self):
        ts = TimeSeries("x")
        for i, v in enumerate((2.0, 4.0, 6.0)):
            ts.record(float(i), v)
        assert ts.mean() == pytest.approx(4.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("x").mean()

    def test_last(self):
        ts = TimeSeries("x")
        ts.record(0.0, 5.0)
        ts.record(1.0, 7.0)
        assert ts.last == 7.0

    def test_window(self):
        ts = TimeSeries("x")
        for i in range(5):
            ts.record(float(i), float(i * 10))
        w = ts.window(1.0, 3.0)
        assert list(w) == [(1.0, 10.0), (2.0, 20.0)]

    def test_integrate_constant(self):
        """Integrating constant power gives power x time (RAPL semantics)."""
        ts = TimeSeries("power")
        for i in range(11):
            ts.record(i * 0.1, 30.0)
        assert ts.integrate() == pytest.approx(30.0 * 1.0)

    def test_integrate_linear_ramp(self):
        ts = TimeSeries("power")
        ts.record(0.0, 0.0)
        ts.record(2.0, 10.0)
        assert ts.integrate() == pytest.approx(10.0)  # triangle area

    def test_value_at_step_semantics(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(2.0, 5.0)
        assert ts.value_at(1.0) == 1.0
        assert ts.value_at(2.0) == 5.0
        with pytest.raises(ValueError):
            ts.value_at(-0.5)

    def test_resample_bins(self):
        ts = TimeSeries("x")
        for i in range(10):
            ts.record(i * 0.1, float(i))
        binned = ts.resample(0.5)
        assert len(binned) == 2
        assert binned.values[0] == pytest.approx((0 + 1 + 2 + 3 + 4) / 5)

    def test_resample_invalid_interval(self):
        with pytest.raises(ValueError):
            TimeSeries("x").resample(0.0)


class TestCounterSet:
    def test_default_zero(self):
        counters = CounterSet()
        assert counters.get("never") == 0.0
        assert "never" not in counters

    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("drops")
        counters.add("drops", 2)
        assert counters.get("drops") == 3.0
        assert "drops" in counters

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1)

    def test_snapshot_is_copy(self):
        counters = CounterSet()
        counters.add("a", 1)
        snap = counters.snapshot()
        counters.add("a", 1)
        assert snap["a"] == 1.0
