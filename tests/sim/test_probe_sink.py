"""The telemetry probe-sink protocol: collection, downsampling, fanout."""

import pytest

from repro.sim.probe import (
    CWND_CHANNEL,
    NULL_PROBE_SINK,
    QUEUE_DEPTH_CHANNEL,
    FanoutProbeSink,
    ProbeSink,
    TimeSeriesProbeSink,
)


class TestNullSink:
    def test_disabled_and_swallows_samples(self):
        assert NULL_PROBE_SINK.enabled is False
        NULL_PROBE_SINK.sample(0.0, CWND_CHANNEL, "flow-1", 1.0)  # no-op

    def test_base_class_is_the_noop(self):
        assert isinstance(NULL_PROBE_SINK, ProbeSink)
        assert type(NULL_PROBE_SINK) is ProbeSink


class TestTimeSeriesSink:
    def test_collects_per_channel_entity_streams(self):
        sink = TimeSeriesProbeSink()
        sink.sample(0.0, CWND_CHANNEL, "flow-1", 10.0)
        sink.sample(1.0, CWND_CHANNEL, "flow-1", 20.0)
        sink.sample(0.5, CWND_CHANNEL, "flow-2", 5.0)
        sink.sample(0.5, QUEUE_DEPTH_CHANNEL, "bottleneck", 9000.0)
        assert len(sink) == 3
        series = sink.series(CWND_CHANNEL, "flow-1")
        assert series.times == [0.0, 1.0]
        assert series.values == [10.0, 20.0]
        assert series.name == "flow-1:cwnd_bytes"

    def test_enabled_by_construction(self):
        assert TimeSeriesProbeSink().enabled is True

    def test_unknown_stream_reads_empty(self):
        sink = TimeSeriesProbeSink()
        assert len(sink.series(CWND_CHANNEL, "flow-9")) == 0

    def test_channels_sorted_distinct(self):
        sink = TimeSeriesProbeSink()
        sink.sample(0.0, QUEUE_DEPTH_CHANNEL, "bottleneck", 1.0)
        sink.sample(0.0, CWND_CHANNEL, "flow-1", 1.0)
        sink.sample(1.0, CWND_CHANNEL, "flow-2", 1.0)
        assert sink.channels() == [CWND_CHANNEL, QUEUE_DEPTH_CHANNEL]

    def test_items_in_key_order(self):
        sink = TimeSeriesProbeSink()
        sink.sample(0.0, QUEUE_DEPTH_CHANNEL, "bottleneck", 1.0)
        sink.sample(0.0, CWND_CHANNEL, "flow-2", 1.0)
        sink.sample(0.0, CWND_CHANNEL, "flow-1", 1.0)
        keys = [key for key, _series in sink.items()]
        assert keys == sorted(keys)

    def test_downsampling_keeps_interval_spaced_samples(self):
        sink = TimeSeriesProbeSink(min_interval_s=1.0)
        for i in range(10):
            sink.sample(i * 0.25, CWND_CHANNEL, "flow-1", float(i))
        series = sink.series(CWND_CHANNEL, "flow-1")
        # t=0.0 kept, then every >= 1.0s later: 1.0, 2.0
        assert series.times == [0.0, 1.0, 2.0]

    def test_downsampling_is_per_stream(self):
        sink = TimeSeriesProbeSink(min_interval_s=1.0)
        sink.sample(0.0, CWND_CHANNEL, "flow-1", 1.0)
        # a different stream keeps its own clock
        sink.sample(0.1, CWND_CHANNEL, "flow-2", 2.0)
        assert len(sink.series(CWND_CHANNEL, "flow-2")) == 1

    def test_zero_interval_keeps_everything(self):
        sink = TimeSeriesProbeSink(min_interval_s=0.0)
        sink.sample(0.0, CWND_CHANNEL, "flow-1", 1.0)
        sink.sample(0.0, CWND_CHANNEL, "flow-1", 2.0)
        assert len(sink.series(CWND_CHANNEL, "flow-1")) == 2

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="min_interval_s"):
            TimeSeriesProbeSink(min_interval_s=-1.0)


class TestFanoutSink:
    def test_duplicates_to_all_enabled_sinks(self):
        a, b = TimeSeriesProbeSink(), TimeSeriesProbeSink()
        fan = FanoutProbeSink(a, b)
        fan.sample(0.0, CWND_CHANNEL, "flow-1", 7.0)
        assert a.series(CWND_CHANNEL, "flow-1").values == [7.0]
        assert b.series(CWND_CHANNEL, "flow-1").values == [7.0]

    def test_drops_disabled_sinks(self):
        collecting = TimeSeriesProbeSink()
        fan = FanoutProbeSink(NULL_PROBE_SINK, collecting)
        assert fan.sinks == [collecting]
