"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "link") == derive_seed(42, "link")

    def test_name_sensitivity(self):
        assert derive_seed(42, "link") != derive_seed(42, "cpu")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "link") != derive_seed(2, "link")

    def test_64_bit_range(self):
        seed = derive_seed(0, "x")
        assert 0 <= seed < 2**64


class TestRngRegistry:
    def test_same_name_same_stream(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("jitter")
        b = RngRegistry(7).stream("jitter")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent(self):
        """Consuming one stream must not perturb another."""
        reg1 = RngRegistry(7)
        s_then = [reg1.stream("b").random() for _ in range(3)]

        reg2 = RngRegistry(7)
        for _ in range(100):
            reg2.stream("a").random()  # heavy use of an unrelated stream
        s_now = [reg2.stream("b").random() for _ in range(3)]
        assert s_then == s_now

    def test_child_registries_differ(self):
        root = RngRegistry(7)
        r1 = root.child("rep-1").stream("x").random()
        r2 = root.child("rep-2").stream("x").random()
        assert r1 != r2

    def test_child_reproducible(self):
        a = RngRegistry(7).child("rep-1").stream("x").random()
        b = RngRegistry(7).child("rep-1").stream("x").random()
        assert a == b
