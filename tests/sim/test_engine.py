"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_and_run_advances_clock(self, sim):
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]
        assert sim.now == 1.5

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self, sim):
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_schedule_in_past_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.001, lambda: None)

    def test_schedule_at_before_now_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_callback_args_passed(self, sim):
        got = []
        sim.schedule(0.1, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]

    def test_events_scheduled_during_run_execute(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_alive_reflects_state(self, sim):
        event = sim.schedule(1.0, lambda: None)
        assert event.alive
        event.cancel()
        assert not event.alive

    def test_executed_event_not_alive(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert not event.alive


class TestRunBounds:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0  # clock advanced to the window edge

    def test_run_until_then_resume(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        sim.run()
        assert fired == ["late"]

    def test_max_events_bound(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_run_not_reentrant(self, sim):
        def recurse():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, recurse)
        sim.run()

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek_time(self, sim):
        assert sim.peek_time() is None
        event = sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 2.0
        event.cancel()
        assert sim.peek_time() is None

    def test_events_executed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestPendingEventAccounting:
    """pending_events counts live events only; cancellations never inflate it.

    The heap uses lazy deletion, so cancelled events stay resident until
    popped — the old ``len(self._queue)`` overcounted them, which broke
    drain checks ("is anything still scheduled?") at fabric scale where
    TCP timers are cancelled by the thousand.
    """

    def test_cancel_decrements_pending_immediately(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        events[2].cancel()
        assert sim.pending_events == 4
        # ...while the dead entry genuinely still sits in the heap.
        assert sim.queued_events == 5

    def test_double_cancel_counts_once(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events == 0
        assert sim.queued_events == 1

    def test_pop_of_cancelled_event_rebalances_tally(self, sim):
        keep = []
        sim.schedule(1.0, lambda: keep.append("a"))
        sim.schedule(2.0, lambda: keep.append("b")).cancel()
        sim.run()
        assert keep == ["a"]
        assert sim.pending_events == 0
        assert sim.queued_events == 0

    def test_executed_events_do_not_count_as_cancelled(self, sim):
        # step() marks consumed events cancelled (so re-cancel is a
        # no-op); that must not drive the live count negative.
        for i in range(3):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.pending_events == 0
        extra = sim.schedule(10.0, lambda: None)
        assert sim.pending_events == 1
        extra.cancel()
        assert sim.pending_events == 0

    def test_cancel_after_execution_is_inert(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()  # late cancel of a consumed event
        assert sim.pending_events == 0
        assert sim.queued_events == 0

    def test_mass_cancellation_keeps_exact_count(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for event in events[::2]:
            event.cancel()
        assert sim.pending_events == 50
        sim.run()
        assert sim.pending_events == 0

    def test_peek_time_compaction_updates_tally(self, sim):
        sim.schedule(1.0, lambda: None).cancel()
        later = sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 2.0  # compacts the dead head entry
        assert sim.pending_events == 1
        assert sim.queued_events == 1
        later.cancel()
        assert sim.pending_events == 0
