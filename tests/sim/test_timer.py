"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.errors import SimulationError
from repro.sim.timer import PeriodicTimer, Timer


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_pushes_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.start(2.0))  # re-arm at t=1
        sim.run()
        assert fired == [3.0]

    def test_stop_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_stop_unarmed_is_noop(self, sim):
        Timer(sim, lambda: None).stop()

    def test_pending_and_expiry(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.pending
        assert timer.expiry is None
        timer.start(3.0)
        assert timer.pending
        assert timer.expiry == 3.0
        sim.run()
        assert not timer.pending

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            Timer(sim, lambda: None).start(-1.0)

    def test_callback_args(self, sim):
        got = []
        timer = Timer(sim, lambda x: got.append(x), 42)
        timer.start(0.5)
        sim.run()
        assert got == [42]

    def test_fires_at_most_once_per_start(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert fired == [1.0]


class TestPeriodicTimer:
    def test_fires_every_interval(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(3.5, timer.stop)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_initial_delay(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start(initial_delay=0.25)
        sim.schedule(2.5, timer.stop)
        sim.run()
        assert fired == [0.25, 1.25, 2.25]

    def test_stop_inside_callback(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, tick)
        timer.start()
        sim.run()
        assert fired == [1.0, 2.0]

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_restart_resets_phase(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(1.5, lambda: timer.start())  # restart mid-period
        sim.schedule(3.7, timer.stop)
        sim.run()
        assert fired == [1.0, 2.5, 3.5]

    def test_running_property(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
