"""Tests for the calibration self-check."""

import pytest

from repro.validation import Check, run_validation, validation_passed


class TestValidation:
    def test_all_checks_pass_on_shipped_calibration(self):
        checks = run_validation()
        failing = [c.name for c in checks if not c.ok]
        assert not failing, f"calibration broken: {failing}"

    def test_covers_the_anchor_trio(self):
        names = " | ".join(c.name for c in run_validation())
        assert "idle power" in names
        assert "half-rate" in names
        assert "line-rate" in names

    def test_covers_theorem_premise_and_savings(self):
        names = " | ".join(c.name for c in run_validation())
        assert "concavity" in names
        assert "full-speed-then-idle" in names
        assert "datacenter scale" in names

    def test_validation_passed_helper(self):
        good = [Check("a", "1", "1", True)]
        bad = good + [Check("b", "1", "2", False)]
        assert validation_passed(good)
        assert not validation_passed(bad)

    def test_check_count_stable(self):
        """Adding checks is fine; silently losing them is not."""
        assert len(run_validation()) >= 10


class TestCliCommands:
    def test_validate_command(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_loadbalance_command(self, capsys):
        from repro.cli import main

        assert main(["loadbalance"]) == 0
        out = capsys.readouterr().out
        assert "rate-adaptive" in out

    def test_report_command_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "report.md"
        code = main(
            ["report", "--bytes", "8000000", "--reps", "1",
             "-o", str(target)]
        )
        assert code == 0
        text = target.read_text()
        assert text.startswith("# Green With Envy")
        assert "claims reproduced" in text
