"""Unit tests for the repro.sched subsystem: datatypes, registry, policies."""

import pytest

from repro.errors import ExperimentError
from repro.sched import (
    POLICY_ALIASES,
    FlowRequest,
    FlowSchedule,
    SchedulePlan,
    SchedulingContext,
    SchedulingPolicy,
    get_policy,
    policy_names,
    register_policy,
    resolve_policy_name,
)

#: capacity 8 bps makes a flow's line-rate duration equal its byte count
CTX = SchedulingContext(capacity_bps=8.0)


def reqs(sizes, srcs=None, arrivals=None, deadlines=None):
    srcs = srcs or ["h0"] * len(sizes)
    arrivals = arrivals or [0.0] * len(sizes)
    deadlines = deadlines or [None] * len(sizes)
    return [
        FlowRequest(
            index=i, size_bytes=s, arrival_s=a, src=src, deadline_s=d
        )
        for i, (s, src, a, d) in enumerate(
            zip(sizes, srcs, arrivals, deadlines)
        )
    ]


def after_indices(plan):
    return [decision.after_index for decision in plan.flows]


class TestDatatypes:
    def test_flow_request_rejects_nonpositive_size(self):
        with pytest.raises(ExperimentError, match="size"):
            FlowRequest(index=0, size_bytes=0)

    def test_flow_request_rejects_negative_arrival(self):
        with pytest.raises(ExperimentError, match="arrival"):
            FlowRequest(index=0, size_bytes=1, arrival_s=-1.0)

    def test_line_rate_duration(self):
        assert FlowRequest(index=0, size_bytes=5).line_rate_duration_s(
            8.0
        ) == pytest.approx(5.0)

    def test_plan_rejects_out_of_order_flows(self):
        with pytest.raises(ExperimentError, match="batch order"):
            SchedulePlan(policy="x", flows=(FlowSchedule(index=1),))

    def test_plan_rejects_self_deferral(self):
        with pytest.raises(ExperimentError, match="itself"):
            SchedulePlan(
                policy="x", flows=(FlowSchedule(index=0, after_index=0),)
            )

    def test_plan_rejects_dangling_deferral(self):
        with pytest.raises(ExperimentError, match="nonexistent"):
            SchedulePlan(
                policy="x", flows=(FlowSchedule(index=0, after_index=7),)
            )

    def test_context_rejects_nonpositive_capacity(self):
        with pytest.raises(ExperimentError, match="capacity"):
            SchedulingContext(capacity_bps=0.0)


class TestRegistry:
    def test_default_policies_registered(self):
        names = policy_names()
        for expected in (
            "deadline", "fair", "load-adaptive", "serialized", "srpt",
        ):
            assert expected in names
        assert list(names) == sorted(names)

    def test_resolve_is_case_and_space_insensitive(self):
        assert resolve_policy_name("  Fair ") == "fair"

    def test_aliases_resolve_with_deprecation_warning(self):
        for old, new in POLICY_ALIASES.items():
            with pytest.deprecated_call():
                assert resolve_policy_name(old) == new

    def test_unknown_name_lists_known_policies(self):
        with pytest.raises(ExperimentError, match="fair"):
            resolve_policy_name("round-robin")

    def test_get_policy_returns_named_instance(self):
        assert get_policy("serialized").name == "serialized"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError, match="registered"):
            register_policy(get_policy("fair"))

    def test_alias_names_are_reserved(self):
        class Impostor(SchedulingPolicy):
            name = "pfabric"
            description = "takes a retired spelling"

            def plan(self, requests, ctx):
                return self._plan(requests, [None] * len(requests))

        with pytest.raises(ExperimentError):
            register_policy(Impostor())

    def test_custom_policy_registers_and_resolves(self, monkeypatch):
        from repro.sched import registry

        monkeypatch.setattr(registry, "_REGISTRY", dict(registry._REGISTRY))

        class Reverse(SchedulingPolicy):
            name = "reverse"
            description = "chain the batch back to front"

            def plan(self, requests, ctx):
                after = [i + 1 if i + 1 < len(requests) else None
                         for i in range(len(requests))]
                return self._plan(requests, after)

        register_policy(Reverse())
        assert registry.resolve_policy_name("reverse") == "reverse"
        plan = registry.get_policy("reverse").plan(reqs([1, 1]), CTX)
        assert after_indices(plan) == [1, None]


class TestFairAndSerialized:
    def test_fair_admits_everything(self):
        plan = get_policy("fair").plan(reqs([3, 2, 1]), CTX)
        assert after_indices(plan) == [None, None, None]
        assert plan.bottleneck_discipline == "fifo"
        assert plan.sender_cca is None

    def test_serialized_chains_one_source_in_batch_order(self):
        plan = get_policy("serialized").plan(reqs([3, 2, 1]), CTX)
        assert after_indices(plan) == [None, 0, 1]

    def test_serialized_chains_per_source(self):
        plan = get_policy("serialized").plan(
            reqs([1, 1, 1, 1], srcs=["h0", "h1", "h0", "h1"]), CTX
        )
        assert after_indices(plan) == [None, None, 0, 1]


class TestSrpt:
    def test_priority_testbed_gets_network_hints(self):
        ctx = SchedulingContext(capacity_bps=8.0, supports_priority=True)
        plan = get_policy("srpt").plan(reqs([3, 1, 2]), ctx)
        assert after_indices(plan) == [None, None, None]
        assert plan.bottleneck_discipline == "priority"
        assert plan.sender_cca == "baseline"
        assert plan.sender_cca_kwargs["window_segments"] == 14

    def test_fabric_testbed_gets_sjf_chains(self):
        plan = get_policy("srpt").plan(reqs([3, 1, 2]), CTX)
        # shortest-first order is flow 1 -> 2 -> 0
        assert after_indices(plan) == [2, None, 1]
        assert plan.bottleneck_discipline == "fifo"

    def test_sjf_chains_stay_within_a_source(self):
        plan = get_policy("srpt").plan(
            reqs([4, 3, 2, 1], srcs=["h0", "h1", "h0", "h1"]), CTX
        )
        assert after_indices(plan) == [2, 3, None, None]


class TestLoadAdaptive:
    def test_closed_batch_serializes(self):
        plan = get_policy("load-adaptive").plan(reqs([1, 1]), CTX)
        assert after_indices(plan) == [None, 0]

    def test_light_load_serializes(self):
        ctx = SchedulingContext(capacity_bps=8.0, offered_load=0.2)
        plan = get_policy("load-adaptive").plan(reqs([1, 1]), ctx)
        assert after_indices(plan) == [None, 0]

    def test_heavy_load_shares(self):
        ctx = SchedulingContext(capacity_bps=8.0, offered_load=0.4)
        plan = get_policy("load-adaptive").plan(reqs([1, 1]), ctx)
        assert after_indices(plan) == [None, None]

    def test_threshold_validated(self):
        from repro.sched import LoadAdaptivePolicy

        with pytest.raises(ExperimentError, match="threshold"):
            LoadAdaptivePolicy(threshold=1.5)


class TestDeadline:
    def test_unconstrained_batch_fully_serializes(self):
        plan = get_policy("deadline").plan(reqs([2, 1, 1]), CTX)
        assert after_indices(plan) == [None, 0, 1]

    def test_deferral_that_would_break_a_fair_met_deadline_is_rejected(self):
        # Fair sharing: A (2 B) done at t=3, B (1 B) done at t=2. B's
        # deadline of 2 s is fair-met; serializing B behind A would
        # finish it at 3 s — the policy must keep B admitted.
        requests = reqs([2, 1], deadlines=[None, 2.0])
        plan = get_policy("deadline").plan(requests, CTX)
        assert after_indices(plan) == [None, None]

    def test_deferral_within_slack_is_accepted(self):
        requests = reqs([2, 1], deadlines=[None, 3.5])
        plan = get_policy("deadline").plan(requests, CTX)
        assert after_indices(plan) == [None, 0]

    def test_large_batches_use_the_heuristic(self):
        from repro.sched.policies import DEADLINE_EXACT_MAX_FLOWS

        n = DEADLINE_EXACT_MAX_FLOWS + 1
        plan = get_policy("deadline").plan(reqs([1] * n), CTX)
        # no deadlines: the heuristic serializes the whole chain too
        assert after_indices(plan) == [None] + list(range(n - 1))
