"""The fluid processor-sharing evaluator: shares, chains, deadlocks."""

import pytest

from repro.errors import ExperimentError
from repro.sched import (
    FlowRequest,
    FlowSchedule,
    SchedulePlan,
    SchedulingContext,
    fluid_completions,
    get_policy,
)

#: 8 bps: one byte of payload takes one second at line rate
CAPACITY = 8.0
CTX_CAPACITY = CAPACITY


def reqs(sizes, arrivals=None):
    arrivals = arrivals or [0.0] * len(sizes)
    return [
        FlowRequest(index=i, size_bytes=s, arrival_s=a)
        for i, (s, a) in enumerate(zip(sizes, arrivals))
    ]


def plan_with(after):
    return SchedulePlan(
        policy="test",
        flows=tuple(
            FlowSchedule(index=i, after_index=a) for i, a in enumerate(after)
        ),
    )


class TestFluidCompletions:
    def test_single_flow_finishes_at_line_rate(self):
        done = fluid_completions(reqs([5]), plan_with([None]), CAPACITY)
        assert done == [pytest.approx(5.0)]

    def test_two_equal_flows_share_and_finish_together(self):
        done = fluid_completions(reqs([2, 2]), plan_with([None, None]), CAPACITY)
        assert done == [pytest.approx(4.0), pytest.approx(4.0)]

    def test_unequal_flows_release_capacity_as_they_finish(self):
        # A=2 B, B=1 B sharing: B done at t=2 (half rate), A's last byte
        # then runs alone and completes at t=3.
        done = fluid_completions(reqs([2, 1]), plan_with([None, None]), CAPACITY)
        assert done == [pytest.approx(3.0), pytest.approx(2.0)]

    def test_serialized_chain_runs_back_to_back(self):
        done = fluid_completions(reqs([2, 3]), plan_with([None, 0]), CAPACITY)
        assert done == [pytest.approx(2.0), pytest.approx(5.0)]

    def test_deferred_flow_waits_for_its_own_arrival(self):
        # predecessor completes at t=2 but the successor only arrives
        # at t=5: the chained start is max(completion, arrival).
        done = fluid_completions(
            reqs([2, 1], arrivals=[0.0, 5.0]), plan_with([None, 0]), CAPACITY
        )
        assert done == [pytest.approx(2.0), pytest.approx(6.0)]

    def test_late_arrival_splits_the_link_midway(self):
        # A=4 B alone for 2 s (2 B left), then shares with B=1 B: B
        # finishes at t=4, A's last byte completes at t=5.
        done = fluid_completions(
            reqs([4, 1], arrivals=[0.0, 2.0]), plan_with([None, None]), CAPACITY
        )
        assert done == [pytest.approx(5.0), pytest.approx(4.0)]

    def test_empty_batch(self):
        assert fluid_completions([], plan_with([]), CAPACITY) == []

    def test_plan_size_mismatch_rejected(self):
        with pytest.raises(ExperimentError, match="plan covers"):
            fluid_completions(reqs([1, 1]), plan_with([None]), CAPACITY)

    def test_deferral_cycle_deadlocks_loudly(self):
        with pytest.raises(ExperimentError, match="deadlock"):
            fluid_completions(reqs([1, 1]), plan_with([1, 0]), CAPACITY)

    def test_matches_policy_plans(self):
        # The evaluator and the serialized policy agree on chain shape.
        requests = reqs([2, 1, 1])
        plan = get_policy("serialized").plan(
            requests, SchedulingContext(capacity_bps=CAPACITY)
        )
        done = fluid_completions(requests, plan, CAPACITY)
        assert done == [pytest.approx(2.0), pytest.approx(3.0), pytest.approx(4.0)]
