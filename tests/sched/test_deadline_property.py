"""Property: ``deadline`` never misses a deadline fair sharing meets.

The policy's docstring makes this a construction guarantee for batches
up to DEADLINE_EXACT_MAX_FLOWS (each candidate deferral is re-checked
against a full fluid evaluation). Hypothesis drives random batches —
sizes, staggered arrivals, multiple sources, mixed deadline slacks —
through both plans and compares fluid completions flow by flow.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import FlowRequest, SchedulingContext, fluid_completions, get_policy
from repro.sched.policies import _meets

CAPACITY_BPS = 1e6


@st.composite
def batches(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    requests = []
    for i in range(n):
        size = draw(st.integers(min_value=1, max_value=50)) * 1_000
        arrival = draw(st.integers(min_value=0, max_value=100)) / 100.0
        src = draw(st.sampled_from(["h0", "h1", "h2"]))
        duration = size * 8 / CAPACITY_BPS
        deadline = None
        if draw(st.booleans()):
            slack = draw(
                st.floats(
                    min_value=1.0,
                    max_value=8.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            deadline = arrival + slack * duration
        requests.append(
            FlowRequest(
                index=i,
                size_bytes=size,
                arrival_s=arrival,
                src=src,
                deadline_s=deadline,
            )
        )
    return requests


@given(batches())
@settings(max_examples=80, deadline=None)
def test_fair_feasible_deadlines_stay_met(requests):
    ctx = SchedulingContext(capacity_bps=CAPACITY_BPS)
    fair_done = fluid_completions(
        requests, get_policy("fair").plan(requests, ctx), CAPACITY_BPS
    )
    policy_done = fluid_completions(
        requests, get_policy("deadline").plan(requests, ctx), CAPACITY_BPS
    )
    for request, fair_t, policy_t in zip(requests, fair_done, policy_done):
        if request.deadline_s is None:
            continue
        if _meets(fair_t, request.deadline_s):
            assert _meets(policy_t, request.deadline_s), (
                f"flow {request.index}: fair met {request.deadline_s:.4f}s "
                f"(done {fair_t:.4f}s) but deadline policy finished at "
                f"{policy_t:.4f}s"
            )


@given(batches())
@settings(max_examples=20, deadline=None)
def test_planning_is_deterministic(requests):
    ctx = SchedulingContext(capacity_bps=CAPACITY_BPS)
    policy = get_policy("deadline")
    assert policy.plan(requests, ctx) == policy.plan(requests, ctx)
