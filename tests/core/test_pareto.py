"""Tests for the fairness-energy Pareto curve."""

import pytest

from repro.core.pareto import fairness_energy_curve
from repro.energy.power_model import PowerModel
from repro.errors import AnalysisError


class TestCurveShape:
    @pytest.fixture(scope="class")
    def curve(self):
        return fairness_energy_curve()

    def test_power_monotone_in_fairness(self, curve):
        assert curve.is_monotone()

    def test_fair_point_most_expensive(self, curve):
        fairest = max(curve.points, key=lambda p: p.fairness)
        assert fairest.flow0_fraction == pytest.approx(0.5)
        assert fairest.power_w == max(p.power_w for p in curve.points)

    def test_price_of_fairness_positive(self, curve):
        """Static (always-on) unfairness buys a few percent; the paper's
        16% additionally needs the time-domain idle phase."""
        assert 0.02 < curve.price_of_fairness() < 0.10

    def test_symmetric_fractions_equal_power(self, curve):
        by_fraction = {round(p.flow0_fraction, 3): p for p in curve.points}
        assert by_fraction[0.25].power_w == pytest.approx(
            by_fraction[0.75].power_w
        )

    def test_table_renders(self, curve):
        assert "Jain index" in curve.format_table()


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(AnalysisError):
            fairness_energy_curve(capacity_gbps=0)

    def test_bad_fraction(self):
        with pytest.raises(AnalysisError):
            fairness_energy_curve(fractions=(0.0, 0.5))

    def test_linear_model_flat_curve(self):
        """Without concavity there is no price of fairness."""
        model = PowerModel(gamma_net=1.0)
        curve = fairness_energy_curve(model=model)
        assert curve.price_of_fairness() == pytest.approx(0.0, abs=1e-9)

    def test_loaded_host_flattens_curve(self):
        idle = fairness_energy_curve(load=0.0)
        loaded = fairness_energy_curve(load=0.75)
        assert loaded.price_of_fairness() < idle.price_of_fairness()
