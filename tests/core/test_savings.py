"""Unit tests for savings arithmetic and the $-extrapolation."""

import pytest

from repro.core.savings import (
    DatacenterCostModel,
    paper_headline_savings,
    savings_fraction,
    savings_percent,
)
from repro.errors import AnalysisError


class TestSavingsFraction:
    def test_positive_saving(self):
        assert savings_fraction(100.0, 84.0) == pytest.approx(0.16)

    def test_negative_saving(self):
        assert savings_fraction(100.0, 120.0) == pytest.approx(-0.2)

    def test_percent(self):
        assert savings_percent(100.0, 84.0) == pytest.approx(16.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(AnalysisError):
            savings_fraction(0.0, 10.0)


class TestDollarExtrapolation:
    def test_paper_headline_is_ten_million(self):
        """§4.2: 1% of (10k $/rack x 100k racks) = $10M/year."""
        assert paper_headline_savings() == pytest.approx(10e6)

    def test_total_bill(self):
        model = DatacenterCostModel()
        assert model.total_energy_cost_usd_per_year == pytest.approx(1e9)

    def test_custom_scale(self):
        model = DatacenterCostModel(rack_cost_usd_per_year=5000, racks=1000)
        assert model.annual_savings_usd(0.1) == pytest.approx(500_000)

    def test_fraction_bounds(self):
        with pytest.raises(AnalysisError):
            DatacenterCostModel().annual_savings_usd(1.5)

    def test_sixteen_percent_at_scale(self):
        """The headline 16% saving, if it held fleet-wide, is $160M/yr."""
        assert DatacenterCostModel().annual_savings_usd(0.16) == pytest.approx(
            160e6
        )
