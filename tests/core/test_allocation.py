"""Unit tests for allocation plans."""

import pytest

from repro.core.allocation import (
    fair_split,
    fig1_allocations,
    full_speed_then_idle,
    limited_flow_split,
)
from repro.errors import ExperimentError
from repro.units import gbps

SIZE = 1_000_000
CAP = gbps(10.0)


class TestFairSplit:
    def test_equal_shares(self):
        plan = fair_split(SIZE, CAP, n_flows=2)
        assert all(f.target_rate_bps == pytest.approx(CAP / 2) for f in plan.flows)
        assert plan.flow0_fraction == pytest.approx(0.5)

    def test_n_flows(self):
        plan = fair_split(SIZE, CAP, n_flows=4)
        assert plan.n_flows == 4
        assert plan.flows[0].target_rate_bps == pytest.approx(CAP / 4)


class TestLimitedSplit:
    def test_majority_fraction_caps_minority(self):
        plan = limited_flow_split(SIZE, CAP, fraction=0.8)
        # flow 0 holds 80%: it is uncapped; flow 1 capped at 20%
        assert plan.flows[0].target_rate_bps is None
        assert plan.flows[1].target_rate_bps == pytest.approx(0.2 * CAP)
        assert plan.flows[1].uncap_after == 0

    def test_minority_fraction_mirrors(self):
        plan = limited_flow_split(SIZE, CAP, fraction=0.2)
        # flow 0 holds 20%: capped; flow 1 uncapped
        assert plan.flows[0].target_rate_bps == pytest.approx(0.2 * CAP)
        assert plan.flows[0].uncap_after == 1
        assert plan.flows[1].target_rate_bps is None

    def test_fraction_bounds(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ExperimentError):
                limited_flow_split(SIZE, CAP, fraction=bad)

    def test_symmetry(self):
        lo = limited_flow_split(SIZE, CAP, fraction=0.3)
        hi = limited_flow_split(SIZE, CAP, fraction=0.7)
        lo_rates = sorted(
            (f.target_rate_bps or 0.0) for f in lo.flows
        )
        hi_rates = sorted(
            (f.target_rate_bps or 0.0) for f in hi.flows
        )
        assert lo_rates == pytest.approx(hi_rates)


class TestFullSpeedThenIdle:
    def test_staggered_starts(self):
        plan = full_speed_then_idle(SIZE, CAP, n_flows=3)
        starts = [f.start_time_s for f in plan.flows]
        assert starts[0] == 0.0
        assert starts[1] == pytest.approx(SIZE * 8 / CAP)
        assert starts[2] == pytest.approx(2 * SIZE * 8 / CAP)

    def test_no_rate_caps(self):
        plan = full_speed_then_idle(SIZE, CAP)
        assert all(f.target_rate_bps is None for f in plan.flows)


class TestFig1Sweep:
    def test_sweep_composition(self):
        plans = fig1_allocations(SIZE, CAP)
        names = [p.name for p in plans]
        assert "fair" in names
        assert names[-1] == "full-speed-then-idle"
        assert len(plans) == 10  # 9 fractions + serialized extreme

    def test_fractions_recorded(self):
        plans = fig1_allocations(SIZE, CAP, fractions=(0.25, 0.5, 0.75))
        fractions = [p.flow0_fraction for p in plans[:-1]]
        assert fractions == [0.25, 0.5, 0.75]
