"""Tests for Theorem 1 — including hypothesis property tests.

The theorem: for strictly concave p, the fair share maximizes total
power among all allocations of the capacity.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theorem import (
    check_theorem1,
    fair_allocation,
    is_strictly_concave_on,
    random_allocation,
    theorem1_savings,
    total_power,
    worst_allocation_is_fair,
)
from repro.errors import AnalysisError


def concave_sqrt(x):
    return math.sqrt(x)


def concave_log(x):
    return math.log1p(x)


def linear(x):
    return 2.0 * x + 1.0


class TestBasics:
    def test_total_power_sums(self):
        assert total_power(linear, [1.0, 2.0]) == pytest.approx(
            linear(1) + linear(2)
        )

    def test_total_power_empty_rejected(self):
        with pytest.raises(AnalysisError):
            total_power(linear, [])

    def test_fair_allocation(self):
        assert fair_allocation(10.0, 4) == [2.5] * 4

    def test_fair_allocation_validation(self):
        with pytest.raises(AnalysisError):
            fair_allocation(0.0, 2)
        with pytest.raises(AnalysisError):
            fair_allocation(10.0, 0)


class TestTheoremHolds:
    @pytest.mark.parametrize("p", [concave_sqrt, concave_log])
    def test_unfair_beats_fair(self, p):
        assert check_theorem1(p, 10.0, [8.0, 2.0])
        assert check_theorem1(p, 10.0, [9.9, 0.1])

    def test_fair_vs_itself_not_strict(self):
        # theorem conclusion is strict only for y != x*
        assert check_theorem1(concave_sqrt, 10.0, [5.0, 5.0], tol=1e-9)

    def test_linear_curve_gives_equality(self):
        savings = theorem1_savings(linear, 10.0, [9.0, 1.0])
        assert savings == pytest.approx(0.0, abs=1e-12)

    def test_allocation_must_sum_to_capacity(self):
        with pytest.raises(AnalysisError):
            check_theorem1(concave_sqrt, 10.0, [1.0, 1.0])

    def test_monte_carlo_search(self):
        assert worst_allocation_is_fair(concave_sqrt, 10.0, n=3, trials=500)

    def test_savings_positive_for_unfair(self):
        assert theorem1_savings(concave_sqrt, 10.0, [9.0, 1.0]) > 0

    def test_calibrated_model_curve(self):
        """The paper's calibrated curve satisfies the premise and yields
        the headline ~16% at the extreme."""
        from repro.energy.power_model import PowerModel

        model = PowerModel()
        p = model.smooth_sending_power_w
        assert is_strictly_concave_on(p, 0.0, 10.0)
        # The time-shared full-speed-then-idle schedule corresponds to
        # the static allocation (C, 0): one flow's package busy at line
        # rate, the other fully idle.
        extreme = [10.0, 0.0]
        assert theorem1_savings(p, 10.0, extreme) == pytest.approx(
            0.163, abs=0.01
        )


class TestConcavityChecker:
    def test_detects_concave(self):
        assert is_strictly_concave_on(concave_sqrt, 0.1, 10.0)

    def test_rejects_linear(self):
        assert not is_strictly_concave_on(linear, 0.0, 10.0)

    def test_rejects_convex(self):
        assert not is_strictly_concave_on(lambda x: x * x, 0.0, 10.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(AnalysisError):
            is_strictly_concave_on(concave_sqrt, 1.0, 1.0)


class TestPropertyBased:
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=6
        ),
        gamma=st.floats(min_value=0.1, max_value=0.9),
        capacity=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_power_law_curves_always_prefer_unfair(
        self, weights, gamma, capacity
    ):
        """For any p(x)=x^gamma (0<gamma<1) and any allocation, the fair
        share draws at least as much power."""
        p = lambda x: x**gamma  # noqa: E731
        total = sum(weights)
        allocation = [w / total * capacity for w in weights]
        n = len(allocation)
        fair = total_power(p, fair_allocation(capacity, n))
        other = total_power(p, allocation)
        assert fair >= other - 1e-9 * max(1.0, fair)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_random_allocation_sums_to_capacity(self, seed):
        import random

        alloc = random_allocation(10.0, 4, random.Random(seed))
        assert sum(alloc) == pytest.approx(10.0, rel=1e-6)
        assert all(a > 0 for a in alloc)

    @given(
        n=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_theorem_on_calibrated_curve_random_allocations(self, n, seed):
        import random

        from repro.energy.power_model import PowerModel

        p = PowerModel().smooth_sending_power_w
        alloc = random_allocation(10.0, n, random.Random(seed))
        fair = total_power(p, fair_allocation(10.0, n))
        assert fair >= total_power(p, alloc) - 1e-9
