"""Unit + property tests for fairness metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import (
    bandwidth_fraction,
    jain_index,
    throughput_imbalance,
)
from repro.errors import AnalysisError


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_intermediate(self):
        idx = jain_index([8.0, 2.0])
        assert 0.5 < idx < 1.0

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            jain_index([1.0, -1.0])

    def test_all_zero_rejected(self):
        with pytest.raises(AnalysisError):
            jain_index([0.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            jain_index([])

    @given(
        xs=st.lists(
            st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=10
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_property(self, xs):
        idx = jain_index(xs)
        assert 1.0 / len(xs) - 1e-9 <= idx <= 1.0 + 1e-9

    @given(
        xs=st.lists(
            st.floats(min_value=0.001, max_value=1e3), min_size=2, max_size=6
        ),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_scale_invariance(self, xs, scale):
        assert jain_index(xs) == pytest.approx(
            jain_index([x * scale for x in xs]), rel=1e-6
        )


class TestImbalance:
    def test_fair_is_zero(self):
        assert throughput_imbalance([5.0, 5.0]) == 0.0

    def test_total_hog_is_one(self):
        assert throughput_imbalance([10.0, 0.0]) == pytest.approx(1.0)

    def test_needs_two_flows(self):
        with pytest.raises(AnalysisError):
            throughput_imbalance([1.0])


class TestBandwidthFraction:
    def test_basic(self):
        assert bandwidth_fraction([2.0, 8.0], flow=0) == pytest.approx(0.2)
        assert bandwidth_fraction([2.0, 8.0], flow=1) == pytest.approx(0.8)

    def test_bad_index(self):
        with pytest.raises(AnalysisError):
            bandwidth_fraction([1.0], flow=3)

    def test_zero_total_rejected(self):
        with pytest.raises(AnalysisError):
            bandwidth_fraction([0.0, 0.0])
