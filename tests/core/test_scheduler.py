"""Unit tests for the green (serialize-at-line-rate) scheduler."""

import pytest

from repro.core.scheduler import GreenScheduler, TransferRequest
from repro.errors import AnalysisError
from repro.units import gbps


def requests(*sizes):
    return [TransferRequest(f"t{i}", s) for i, s in enumerate(sizes)]


@pytest.fixture
def scheduler():
    return GreenScheduler(capacity_bps=gbps(10.0))


class TestScheduleOrdering:
    def test_srpt_orders_by_size(self, scheduler):
        schedule = scheduler.schedule(requests(3_000_000, 1_000_000, 2_000_000))
        names = [s.request.name for s in schedule]
        assert names == ["t1", "t2", "t0"]

    def test_fifo_when_srpt_disabled(self, scheduler):
        schedule = scheduler.schedule(
            requests(3_000_000, 1_000_000), srpt=False
        )
        assert [s.request.name for s in schedule] == ["t0", "t1"]

    def test_back_to_back_times(self, scheduler):
        schedule = scheduler.schedule(requests(1_000_000, 1_000_000))
        assert schedule[0].start_time_s == 0.0
        assert schedule[1].start_time_s == pytest.approx(
            schedule[0].end_time_s
        )

    def test_empty_rejected(self, scheduler):
        with pytest.raises(AnalysisError):
            scheduler.schedule([])

    def test_invalid_capacity(self):
        with pytest.raises(AnalysisError):
            GreenScheduler(capacity_bps=0)


class TestEnergyPredictions:
    def test_serialized_cheaper_for_equal_flows(self, scheduler):
        reqs = requests(10_000_000, 10_000_000)
        fair = scheduler.predicted_fair_energy_j(reqs)
        serialized = scheduler.predicted_serialized_energy_j(reqs)
        assert serialized < fair

    def test_equal_two_flow_savings_match_paper(self, scheduler):
        """Two equal flows: the analytic saving is the paper's ~16.3%."""
        reqs = requests(10_000_000, 10_000_000)
        saving = scheduler.predicted_savings_fraction(reqs)
        assert saving == pytest.approx(0.163, abs=0.01)

    def test_more_flows_save_more(self, scheduler):
        two = scheduler.predicted_savings_fraction(
            requests(10_000_000, 10_000_000)
        )
        four = scheduler.predicted_savings_fraction(
            requests(*([10_000_000] * 4))
        )
        assert four > two

    def test_single_flow_no_savings(self, scheduler):
        saving = scheduler.predicted_savings_fraction(requests(10_000_000))
        assert saving == pytest.approx(0.0, abs=1e-9)

    def test_unequal_sizes_still_save(self, scheduler):
        saving = scheduler.predicted_savings_fraction(
            requests(5_000_000, 20_000_000)
        )
        assert saving > 0
