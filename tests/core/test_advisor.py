"""Unit tests for the EnergyAdvisor facade."""

import pytest

from repro.core.advisor import EnergyAdvisor
from repro.errors import AnalysisError


@pytest.fixture
def advisor():
    return EnergyAdvisor(capacity_gbps=10.0)


class TestConcavityPremise:
    def test_calibrated_model_is_concave(self, advisor):
        assert advisor.concavity_holds()


class TestCompareAllocations:
    def test_fair_vs_unfair(self, advisor):
        cmp = advisor.compare_allocations([9.0, 1.0])
        assert cmp.alternative_power_w < cmp.fair_power_w
        assert cmp.savings_fraction > 0

    def test_fair_allocation_zero_savings(self, advisor):
        cmp = advisor.compare_allocations([5.0, 5.0])
        assert cmp.savings_fraction == pytest.approx(0.0, abs=1e-12)

    def test_over_capacity_rejected(self, advisor):
        with pytest.raises(AnalysisError):
            advisor.compare_allocations([8.0, 8.0])

    def test_empty_rejected(self, advisor):
        with pytest.raises(AnalysisError):
            advisor.compare_allocations([])


class TestRecommend:
    def test_recommendation_saves_energy(self, advisor):
        rec = advisor.recommend([10_000_000, 10_000_000, 10_000_000])
        assert rec.serialized_energy_j < rec.fair_energy_j
        assert 0 < rec.savings_fraction < 0.5

    def test_schedule_is_srpt(self, advisor):
        rec = advisor.recommend([30_000_000, 10_000_000, 20_000_000])
        assert rec.schedule == ["xfer-1", "xfer-2", "xfer-0"]


class TestAnnualizedValue:
    def test_default_cost_model(self, advisor):
        assert advisor.annualized_value(0.01) == pytest.approx(10e6)

    def test_loaded_advisor_saves_less(self):
        idle = EnergyAdvisor(load=0.0).compare_allocations([9.9, 0.1])
        loaded = EnergyAdvisor(load=0.5).compare_allocations([9.9, 0.1])
        assert loaded.savings_fraction < idle.savings_fraction
