"""Tests for the iperf3-style interval reports."""

import pytest

from repro.apps.iperf import IperfSession, run_until_complete
from repro.errors import ExperimentError


class TestIntervalReports:
    def run_session(self, sim, testbed, **kwargs):
        session = IperfSession(
            testbed, total_bytes=5_000_000, cca="cubic",
            report_interval_s=1e-3, **kwargs,
        )
        run_until_complete(testbed, [session])
        return session

    def test_reports_cover_the_transfer(self, sim, testbed):
        session = self.run_session(sim, testbed)
        assert session.interval_reports
        total = sum(r.bytes_acked for r in session.interval_reports)
        assert total == 5_000_000

    def test_intervals_contiguous(self, sim, testbed):
        session = self.run_session(sim, testbed)
        reports = session.interval_reports
        for a, b in zip(reports, reports[1:]):
            assert b.start_s == pytest.approx(a.end_s)

    def test_bandwidth_sane(self, sim, testbed):
        session = self.run_session(sim, testbed)
        for report in session.interval_reports:
            assert 0 <= report.bandwidth_bps < 25e9

    def test_cwnd_positive(self, sim, testbed):
        session = self.run_session(sim, testbed)
        assert all(r.cwnd_bytes > 0 for r in session.interval_reports)

    def test_final_partial_interval_emitted(self, sim, testbed):
        session = self.run_session(sim, testbed)
        last = session.interval_reports[-1]
        assert last.end_s == pytest.approx(session.sender.completed_at)

    def test_retransmissions_per_interval_sum(self, sim, testbed):
        session = IperfSession(
            testbed, total_bytes=5_000_000, cca="baseline",
            report_interval_s=1e-3,
        )
        run_until_complete(testbed, [session], time_limit_s=60)
        per_interval = sum(
            r.retransmissions for r in session.interval_reports
        )
        assert per_interval == int(
            session.sender.counters.get("retransmits")
        )

    def test_no_reports_without_interval(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=1_000_000)
        run_until_complete(testbed, [session])
        assert session.interval_reports == []

    def test_invalid_interval_rejected(self, sim, testbed):
        with pytest.raises(ExperimentError):
            IperfSession(testbed, total_bytes=1000, report_interval_s=0.0)
