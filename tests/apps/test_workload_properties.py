"""Property-based tests for the fabric workload generator.

Three contracts the fleet experiments lean on, checked over wide
randomized input ranges rather than a handful of examples:

* the open-loop arrival process *converges*: averaged over seeds, the
  realized offered load tracks the target (incast fan-in included —
  each incast event injects many flows, which the event rate must
  compensate for);
* :func:`sample_flow_size` respects its CDF: every sample inside the
  distribution's support, and stochastically monotone in the CDF (a
  heavier distribution yields larger quantiles);
* generation is a pure function of its arguments: identical seeds give
  byte-identical workloads, different seeds give different ones.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.workload import (
    DISTRIBUTIONS,
    MIXES,
    generate_fabric_workload,
    mean_mix_flow_size,
    sample_flow_size,
)
from repro.errors import ExperimentError
from repro.units import gbps

HOSTS = [f"h{r}-{i}" for r in range(4) for i in range(4)]
RACK_OF = {f"h{r}-{i}": r for r in range(4) for i in range(4)}


def tiny_workload(**overrides):
    defaults = dict(
        hosts=HOSTS,
        rack_of=RACK_OF,
        mix="rpc",
        n_flows=200,
        target_load=0.3,
        host_capacity_bps=gbps(10.0),
        seed=0,
    )
    defaults.update(overrides)
    return generate_fabric_workload(**defaults)


class TestOfferedLoadConvergence:
    @given(
        target=st.floats(min_value=0.1, max_value=0.6),
        base_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_mean_offered_load_tracks_target(self, target, base_seed):
        # One seed's realized load is noisy (heavy-tailed sizes); the
        # contract is about the *process*: the mean over seeds converges
        # on the target within a loose band.
        loads = [
            tiny_workload(
                mix="datacenter",
                n_flows=400,
                target_load=target,
                seed=base_seed + k,
            ).offered_load
            for k in range(6)
        ]
        mean_load = sum(loads) / len(loads)
        assert mean_load == pytest.approx(target, rel=0.5)

    @given(
        fan_in=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_incast_fan_in_does_not_inflate_load(self, fan_in, seed):
        # Each incast event injects fan_in flows at once; the arrival
        # rate must thin accordingly or load overshoots by ~fan_in x.
        loads = [
            tiny_workload(
                n_flows=400,
                incast_fraction=0.2,
                incast_fan_in=fan_in,
                seed=seed + k,
            ).offered_load
            for k in range(6)
        ]
        mean_load = sum(loads) / len(loads)
        assert mean_load == pytest.approx(0.3, rel=0.5)

    def test_exact_flow_count(self):
        for n in (1, 7, 200):
            assert len(tiny_workload(n_flows=n).flows) == n

    def test_arrivals_sorted_nonnegative(self):
        workload = tiny_workload(n_flows=300, incast_fraction=0.1)
        times = [f.start_time_s for f in workload.flows]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)


class TestSampleFlowSizeCdfContract:
    @given(
        name=st.sampled_from(sorted(DISTRIBUTIONS)),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_samples_within_support(self, name, seed):
        cdf = DISTRIBUTIONS[name]
        rng = random.Random(seed)
        for _ in range(200):
            size = sample_flow_size(cdf, rng)
            assert 1 <= size <= cdf[-1][0]

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_quantiles_monotone_in_cdf(self, seed):
        # The elephant CDF dominates the rpc CDF above its low quantiles
        # — its mass sits at strictly larger sizes — so upper empirical
        # quantiles must come out larger under the same draw sequence.
        # (At the very bottom both CDFs log-interpolate down toward
        # 1 byte and rpc's steeper first segment actually sits *above*
        # elephant's until ~the 8% rank; comparison starts at the 40%
        # rank, far past that crossover plus sampling noise.)
        rng = random.Random(seed)
        rpc = sorted(
            sample_flow_size(DISTRIBUTIONS["rpc"], rng) for _ in range(300)
        )
        rng = random.Random(seed)
        elephant = sorted(
            sample_flow_size(DISTRIBUTIONS["elephant"], rng)
            for _ in range(300)
        )
        for small, big in zip(rpc[120:], elephant[120:]):
            assert small <= big

    @given(name=st.sampled_from(sorted(MIXES)))
    @settings(max_examples=10, deadline=None)
    def test_mix_mean_within_component_bounds(self, name):
        components = MIXES[name]
        mean = mean_mix_flow_size(name)
        maxima = [DISTRIBUTIONS[cls][-1][0] for cls, _w in components]
        assert 1 <= mean <= max(maxima)


class TestGenerationDeterminism:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_identical_seeds_identical_workloads(self, seed):
        a = tiny_workload(mix="datacenter", incast_fraction=0.1, seed=seed)
        b = tiny_workload(mix="datacenter", incast_fraction=0.1, seed=seed)
        assert a.flows == b.flows  # field-for-field, every flow

    def test_different_seeds_differ(self):
        a = tiny_workload(seed=1)
        b = tiny_workload(seed=2)
        assert a.flows != b.flows

    def test_placement_respects_host_set(self):
        workload = tiny_workload(n_flows=300, incast_fraction=0.1)
        for flow in workload.flows:
            assert flow.src in RACK_OF
            assert flow.dst in RACK_OF
            assert flow.src != flow.dst

    def test_rack_locality_steers_placement(self):
        local = tiny_workload(n_flows=500, rack_local_fraction=0.9, seed=5)
        remote = tiny_workload(n_flows=500, rack_local_fraction=0.05, seed=5)
        assert local.cross_rack_fraction < remote.cross_rack_fraction

    def test_incast_groups_share_destination_and_start(self):
        workload = tiny_workload(
            n_flows=400, incast_fraction=0.2, incast_fan_in=6, seed=3
        )
        assert workload.incast_groups > 0
        by_group = {}
        for flow in workload.flows:
            if flow.incast_group >= 0:
                by_group.setdefault(flow.incast_group, []).append(flow)
        for flows in by_group.values():
            assert len({f.dst for f in flows}) == 1
            assert len({f.start_time_s for f in flows}) == 1
            assert len({f.src for f in flows}) == len(flows)  # distinct senders

    def test_unknown_mix_rejected(self):
        with pytest.raises(ExperimentError):
            tiny_workload(mix="voip")

    def test_bad_load_rejected(self):
        with pytest.raises(ExperimentError):
            tiny_workload(target_load=0.0)
