"""Tests for the production-workload generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.workload import (
    DATA_MINING_CDF,
    WEB_SEARCH_CDF,
    generate_workload,
    mean_flow_size,
    sample_flow_size,
)
from repro.errors import ExperimentError


class TestSampling:
    def test_sizes_within_distribution_range(self):
        rng = random.Random(1)
        for _ in range(500):
            size = sample_flow_size(WEB_SEARCH_CDF, rng)
            assert 1 <= size <= WEB_SEARCH_CDF[-1][0]

    def test_deterministic_given_rng(self):
        a = [sample_flow_size(WEB_SEARCH_CDF, random.Random(7)) for _ in range(10)]
        b = [sample_flow_size(WEB_SEARCH_CDF, random.Random(7)) for _ in range(10)]
        assert a == b

    def test_data_mining_heavier_tail(self):
        """Data mining has more tiny flows AND a bigger max than web search."""
        rng = random.Random(3)
        mining = sorted(
            sample_flow_size(DATA_MINING_CDF, rng) for _ in range(2000)
        )
        rng = random.Random(3)
        search = sorted(
            sample_flow_size(WEB_SEARCH_CDF, rng) for _ in range(2000)
        )
        assert mining[len(mining) // 2] < search[len(search) // 2]  # median
        assert max(mining) > max(search) * 0.5

    def test_mean_flow_size_positive(self):
        assert mean_flow_size(WEB_SEARCH_CDF) > 100_000

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_median_between_knots(self, seed):
        rng = random.Random(seed)
        sizes = sorted(sample_flow_size(WEB_SEARCH_CDF, rng) for _ in range(200))
        median = sizes[100]
        # CDF says p(13k)=0.3, p(53k)=0.6: the median sits in that band
        assert 10_000 <= median <= 80_000


class TestGeneration:
    def test_offered_load_near_target(self):
        workload = generate_workload(
            "web-search", target_load=0.5, duration_s=0.5, seed=1
        )
        assert workload.offered_load == pytest.approx(0.5, abs=0.3)

    def test_arrivals_sorted_and_within_window(self):
        workload = generate_workload("data-mining", duration_s=0.05, seed=2)
        times = [f.start_time_s for f in workload.flows]
        assert times == sorted(times)
        assert all(0 < t < 0.05 for t in times)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ExperimentError):
            generate_workload("voip")

    def test_invalid_load_rejected(self):
        with pytest.raises(ExperimentError):
            generate_workload("web-search", target_load=1.5)

    def test_max_flows_respected(self):
        workload = generate_workload(
            "data-mining", target_load=0.9, duration_s=10.0, max_flows=50, seed=3
        )
        assert len(workload.flows) <= 50

    def test_deterministic_given_seed(self):
        a = generate_workload("web-search", seed=9)
        b = generate_workload("web-search", seed=9)
        assert [f.size_bytes for f in a.flows] == [f.size_bytes for f in b.flows]


class TestWorkloadEnergyExperiment:
    def test_srpt_faster_at_similar_energy(self):
        from repro.figures.workload_energy import run_workload_energy

        result = run_workload_energy(
            distribution="web-search", duration_s=0.02, seed=0
        )
        assert result.fct_speedup > 1.0
        assert result.energy_ratio == pytest.approx(1.0, abs=0.1)

    def test_table_renders(self):
        from repro.figures.workload_energy import run_workload_energy

        result = run_workload_energy(duration_s=0.015, seed=1)
        assert "srpt" in result.format_table()
