"""Unit tests for throughput probes."""

import pytest

from repro.apps.iperf import IperfSession, run_until_complete
from repro.apps.probe import ThroughputProbe
from repro.units import gbps


class TestProbe:
    def test_receiver_probe_tracks_goodput(self, sim, testbed):
        session = IperfSession(
            testbed, total_bytes=4_000_000, target_bitrate_bps=gbps(4.0)
        )
        probe = ThroughputProbe(sim, session.receiver, interval_s=1e-3)
        probe.start()
        run_until_complete(testbed, [session])
        probe.stop()
        busy = [v for v in probe.series.values if v > 0]
        assert busy, "probe recorded no throughput"
        assert sum(busy) / len(busy) == pytest.approx(gbps(4.0), rel=0.2)

    def test_sender_probe_uses_delivered_bytes(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=2_000_000)
        probe = ThroughputProbe(sim, session.sender, interval_s=1e-3)
        probe.start()
        run_until_complete(testbed, [session])
        probe.stop()
        interval_bits = sum(v * 1e-3 for v in probe.series.values)
        assert interval_bits <= 2_000_000 * 8 * 1.01

    def test_samples_at_fixed_interval(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=2_000_000)
        probe = ThroughputProbe(sim, session.receiver, interval_s=2e-3)
        probe.start()
        run_until_complete(testbed, [session])
        sim.run(until=sim.now + 10e-3)
        probe.stop()
        times = probe.series.times
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(2e-3) for d in deltas)

    def test_zero_after_completion(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=1_000_000)
        probe = ThroughputProbe(sim, session.receiver, interval_s=1e-3)
        probe.start()
        run_until_complete(testbed, [session])
        sim.run(until=sim.now + 5e-3)
        probe.stop()
        assert probe.series.values[-1] == 0.0
