"""Unit/integration tests for the iperf3-style session."""

import pytest

from repro.apps.iperf import IperfSession, run_until_complete
from repro.errors import ExperimentError
from repro.units import gbps


class TestBasicTransfer:
    def test_unlimited_transfer_completes(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=2_000_000, cca="cubic")
        results = run_until_complete(testbed, [session])
        assert results[0].bytes_transferred == 2_000_000
        assert session.complete

    def test_result_before_completion_raises(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=2_000_000)
        with pytest.raises(ExperimentError):
            session.result()

    def test_invalid_size_rejected(self, sim, testbed):
        with pytest.raises(ExperimentError):
            IperfSession(testbed, total_bytes=0)

    def test_invalid_bitrate_rejected(self, sim, testbed):
        with pytest.raises(ExperimentError):
            IperfSession(testbed, total_bytes=1000, target_bitrate_bps=-1.0)

    def test_flow_ids_unique(self, sim, testbed):
        a = IperfSession(testbed, total_bytes=1000)
        b = IperfSession(testbed, total_bytes=1000)
        assert a.flow_id != b.flow_id

    def test_result_fields(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=2_000_000, cca="reno")
        result = run_until_complete(testbed, [session])[0]
        assert result.cca == "reno"
        assert result.duration_s > 0
        assert result.mean_throughput_bps > 0
        assert result.retransmissions >= 0


class TestRateLimiting:
    def test_rate_limited_throughput(self, sim, testbed):
        """A -b 2G flow averages ~2 Gb/s, not line rate."""
        session = IperfSession(
            testbed, total_bytes=2_000_000, cca="cubic",
            target_bitrate_bps=gbps(2.0),
        )
        result = run_until_complete(testbed, [session])[0]
        assert result.mean_throughput_bps == pytest.approx(gbps(2.0), rel=0.1)

    def test_uncap_releases_remaining(self, sim, testbed):
        session = IperfSession(
            testbed, total_bytes=5_000_000, cca="cubic",
            target_bitrate_bps=gbps(1.0),
        )
        sim.schedule(1e-3, session.uncap)
        result = run_until_complete(testbed, [session])[0]
        # with the cap lifted after 1 ms the flow finishes far sooner
        # than the 40 ms the 1 Gb/s cap would have required
        assert result.duration_s < 0.02


class TestScheduling:
    def test_delayed_start(self, sim, testbed):
        session = IperfSession(
            testbed, total_bytes=1_000_000, start_time=0.05
        )
        result = run_until_complete(testbed, [session])[0]
        assert result.start_time == pytest.approx(0.05)
        assert result.end_time > 0.05

    def test_manual_start(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=1_000_000, start_time=None)
        sim.schedule(0.02, session.begin)
        result = run_until_complete(testbed, [session])[0]
        assert result.start_time == pytest.approx(0.02)

    def test_chained_sessions_serialize(self, sim, testbed):
        first = IperfSession(testbed, total_bytes=2_000_000)
        second = IperfSession(testbed, total_bytes=2_000_000, start_time=None)
        first.sender.on_complete(lambda _t: second.begin())
        results = run_until_complete(testbed, [first, second])
        assert results[1].start_time >= results[0].end_time

    def test_time_limit_enforced(self, sim, testbed):
        session = IperfSession(
            testbed, total_bytes=10_000_000, target_bitrate_bps=1e6
        )  # 80 s at 1 Mb/s
        with pytest.raises(ExperimentError):
            run_until_complete(testbed, [session], time_limit_s=0.05)


class TestEcnDefaults:
    def test_dctcp_ecn_on_by_default(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=1000, cca="dctcp")
        assert session.sender.ecn_capable

    def test_cubic_ecn_off_by_default(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=1000, cca="cubic")
        assert not session.sender.ecn_capable

    def test_override_wins(self, sim, testbed):
        session = IperfSession(testbed, total_bytes=1000, cca="cubic", ecn=True)
        assert session.sender.ecn_capable
