"""Per-flow energy attribution: additivity, ledgers, telemetry round-trip.

The load-bearing property is *exact* additivity: attributed joules sum
to the measured total (fleet total for fabric runs) within 1e-9, so the
ledger never invents or loses energy relative to the meter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.harness.experiment import FabricScenario, FlowSpec, Scenario
from repro.harness.fabric import run_fabric_once
from repro.harness.runner import run_once
from repro.obs.attrib import (
    FLOW_ENERGY_CHANNEL,
    IDLE_ENTITY,
    FlowActivity,
    attribute_energy,
    attribute_measurement,
    attribution_from_telemetry,
    measurement_activities,
    record_flow_energy,
    summarize_flow_energy,
    top_energy_flows,
    top_flow_share_percent,
)
from repro.sim.probe import ProbeSink

ADDITIVITY_TOL = 1e-9


class _RecordingSink(ProbeSink):
    enabled = True

    def __init__(self):
        self.samples = []

    def sample(self, time_s, channel, entity, value):
        self.samples.append((time_s, channel, entity, value))


def _activities(raw):
    return [
        FlowActivity(
            entity=f"flow-{i}",
            start_s=min(a, b),
            end_s=max(a, b),
            transferred_bytes=size,
        )
        for i, (a, b, size) in enumerate(raw)
    ]


class TestAdditivity:
    @settings(max_examples=200, deadline=None)
    @given(
        raw=st.lists(
            st.tuples(
                st.floats(0.0, 10.0, allow_nan=False),
                st.floats(0.0, 10.0, allow_nan=False),
                st.integers(0, 10**9),
            ),
            max_size=8,
        ),
        total_j=st.floats(1e-6, 1e6, allow_nan=False),
        duration_s=st.floats(0.01, 100.0, allow_nan=False),
    )
    def test_ledger_sums_to_total(self, raw, total_j, duration_s):
        ledger = attribute_energy(_activities(raw), total_j, duration_s)
        assert abs(sum(ledger.values()) - total_j) <= ADDITIVITY_TOL

    def test_link_run_sums_to_measured_energy(self):
        scenario = Scenario(
            name="attrib-link",
            flows=[FlowSpec(200_000), FlowSpec(100_000)],
            packages=1,
        )
        measurement = run_once(scenario, seed=0)
        ledger = attribute_measurement(measurement)
        assert abs(
            sum(ledger.values()) - measurement.energy_j
        ) <= ADDITIVITY_TOL

    def test_fabric_run_sums_to_fleet_total(self):
        scenario = FabricScenario(
            name="attrib-fabric",
            cca="dctcp",
            policy="fair",
            n_flows=40,
            mix="rpc",
        )
        measurement = run_fabric_once(scenario, seed=0)
        ledger = attribute_measurement(measurement)
        # energy_j is the FleetEnergyReport total (hosts + switches)...
        assert abs(
            measurement.extras["host_energy_j"]
            + measurement.extras["switch_energy_j"]
            - measurement.energy_j
        ) <= ADDITIVITY_TOL
        # ...and the ledger reproduces it exactly
        assert abs(
            sum(ledger.values()) - measurement.energy_j
        ) <= ADDITIVITY_TOL
        assert len(ledger) == 41  # 40 flows + idle


class TestWindows:
    def test_no_flows_attributes_everything_to_idle(self):
        ledger = attribute_energy([], 5.0, 2.0)
        assert ledger == {IDLE_ENTITY: 5.0}

    def test_idle_tail_accrues_to_idle(self):
        flow = FlowActivity("flow-1", 0.0, 1.0, 1000)
        ledger = attribute_energy([flow], 10.0, 2.0)
        assert ledger["flow-1"] == pytest.approx(5.0)
        assert ledger[IDLE_ENTITY] == pytest.approx(5.0)

    def test_concurrent_flows_split_by_rate(self):
        fast = FlowActivity("flow-1", 0.0, 1.0, 3000)
        slow = FlowActivity("flow-2", 0.0, 1.0, 1000)
        ledger = attribute_energy([fast, slow], 4.0, 1.0)
        assert ledger["flow-1"] == pytest.approx(3.0)
        assert ledger["flow-2"] == pytest.approx(1.0)

    def test_serialized_flows_pay_for_their_own_window(self):
        first = FlowActivity("flow-1", 0.0, 1.0, 1000)
        second = FlowActivity("flow-2", 1.0, 3.0, 1000)
        ledger = attribute_energy([first, second], 3.0, 3.0)
        assert ledger["flow-1"] == pytest.approx(1.0)
        assert ledger["flow-2"] == pytest.approx(2.0)
        assert ledger[IDLE_ENTITY] == pytest.approx(0.0)

    def test_zero_duration_raises(self):
        with pytest.raises(ObservabilityError):
            attribute_energy([], 1.0, 0.0)

    def test_duplicate_entities_raise(self):
        dup = [
            FlowActivity("flow-1", 0.0, 1.0, 10),
            FlowActivity("flow-1", 0.5, 2.0, 10),
        ]
        with pytest.raises(ObservabilityError):
            attribute_energy(dup, 1.0, 2.0)


class TestLedgerViews:
    def test_measurement_activities_are_id_ordered(self):
        scenario = Scenario(
            name="attrib-order",
            flows=[FlowSpec(150_000), FlowSpec(150_000)],
            packages=1,
        )
        measurement = run_once(scenario, seed=0)
        activities = measurement_activities(measurement)
        assert [a.entity for a in activities] == ["flow-1", "flow-2"]

    def test_top_energy_flows_ranks_by_joules(self):
        rows = top_energy_flows(
            {"flow-1": 1.0, "flow-2": 3.0, IDLE_ENTITY: 0.0}, top=2
        )
        assert [r[0] for r in rows] == ["flow-2", "flow-1"]
        assert rows[0][2] == pytest.approx(75.0)

    def test_top_flow_share_excludes_idle(self):
        scenario = Scenario(
            name="attrib-share", flows=[FlowSpec(200_000)], packages=1
        )
        measurement = run_once(scenario, seed=0)
        share = top_flow_share_percent(measurement)
        assert 0.0 < share <= 100.0


class TestTelemetryRoundTrip:
    def test_record_flow_energy_emits_one_sample_per_entity(self):
        scenario = Scenario(
            name="attrib-sink",
            flows=[FlowSpec(150_000), FlowSpec(100_000)],
            packages=1,
        )
        measurement = run_once(scenario, seed=0)
        sink = _RecordingSink()
        record_flow_energy(sink, measurement)
        entities = [entity for _, _, entity, _ in sink.samples]
        assert entities == sorted(entities)
        assert set(entities) == {"flow-1", "flow-2", IDLE_ENTITY}
        channels = {channel for _, channel, _, _ in sink.samples}
        assert channels == {FLOW_ENERGY_CHANNEL}
        # stamped with virtual time: the end of the measurement window
        assert all(t == measurement.duration_s for t, _, _, _ in sink.samples)

    def test_disabled_sink_is_untouched(self):
        scenario = Scenario(
            name="attrib-noop", flows=[FlowSpec(150_000)], packages=1
        )
        measurement = run_once(scenario, seed=0)
        record_flow_energy(ProbeSink(), measurement)  # must not raise

    def test_attribution_from_telemetry_rebuilds_ledgers(self):
        records = [
            {
                "scenario": "s",
                "seed": 0,
                "channel": FLOW_ENERGY_CHANNEL,
                "entity": "flow-1",
                "values": [1.5],
            },
            {
                "scenario": "s",
                "seed": 0,
                "channel": FLOW_ENERGY_CHANNEL,
                "entity": IDLE_ENTITY,
                "values": [0.5],
            },
            {
                "scenario": "s",
                "seed": 0,
                "channel": "cwnd_bytes",
                "entity": "flow-1",
                "values": [1.0, 2.0],
            },
        ]
        ledgers = attribution_from_telemetry(records)
        assert ledgers == {("s", 0): {"flow-1": 1.5, IDLE_ENTITY: 0.5}}

    def test_summarize_flow_energy_renders_totals(self):
        records = [
            {
                "scenario": "s",
                "seed": seed,
                "channel": FLOW_ENERGY_CHANNEL,
                "entity": entity,
                "values": [value],
            }
            for seed in (0, 1)
            for entity, value in (("flow-1", 2.0), (IDLE_ENTITY, 1.0))
        ]
        text = summarize_flow_energy(records)
        assert "2 runs" in text
        assert "flow-1" in text and IDLE_ENTITY in text

    def test_summarize_flow_energy_empty_without_attribution(self):
        assert summarize_flow_energy([]) == ""
