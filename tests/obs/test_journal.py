"""JournalWriter, read_journal and the per-worker merge."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.journal import (
    JOURNAL_FILENAME,
    VOLATILE_FIELDS,
    JournalWriter,
    journal_path,
    merge_worker_journals,
    read_journal,
)


class TestWriter:
    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter(path, worker=7) as journal:
            journal.write("run_started", scenario="s", seed=0)
            journal.write("run_finished", scenario="s", seed=0)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "run_started"
        assert first["worker"] == 7
        assert "t_wall" in first

    def test_flushes_eagerly(self, tmp_path):
        journal = JournalWriter(tmp_path / "j.jsonl")
        journal.write("run_started")
        # Readable before close: a crashed worker keeps its events.
        assert len(read_journal(tmp_path / "j.jsonl")) == 1
        journal.close()

    def test_write_after_close_raises(self, tmp_path):
        journal = JournalWriter(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(ObservabilityError):
            journal.write("run_started")


class TestRead:
    def test_directory_resolves_to_main_journal(self, tmp_path):
        with JournalWriter(tmp_path / JOURNAL_FILENAME) as journal:
            journal.write("sweep_started")
        assert journal_path(tmp_path) == tmp_path / JOURNAL_FILENAME
        assert len(read_journal(tmp_path)) == 1

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no journal"):
            read_journal(tmp_path / "absent.jsonl")

    def test_bad_line_raises_with_location(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "ok"}\nnot json\n')
        with pytest.raises(ObservabilityError, match=":2"):
            read_journal(path)

    def test_record_without_event_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"seed": 3}\n')
        with pytest.raises(ObservabilityError, match="event"):
            read_journal(path)

    def test_torn_final_line_is_skipped(self, tmp_path):
        # A last line without its newline is a write in progress (the
        # sweep is live, or was killed mid-write) — not corruption.
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "run_started"}\n{"event": "run_fini')
        events = read_journal(path)
        assert [e["event"] for e in events] == ["run_started"]

    def test_torn_tail_skipped_even_when_it_parses(self, tmp_path):
        # A complete-looking unterminated object is still in progress:
        # the writer commits record + newline in one buffered write, so
        # until the newline lands more bytes may follow.
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b"}')
        assert [e["event"] for e in read_journal(path)] == ["a"]

    def test_torn_tail_is_read_once_committed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b')
        assert len(read_journal(path)) == 1
        with path.open("a", encoding="utf-8") as handle:
            handle.write('"}\n')
        assert [e["event"] for e in read_journal(path)] == ["a", "b"]

    def test_bad_terminated_line_still_raises(self, tmp_path):
        # Only the *unterminated* tail gets the benefit of the doubt.
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "a"}\nnot json\n{"event": "b"}\n')
        with pytest.raises(ObservabilityError, match="bad journal line"):
            read_journal(path)


class TestMerge:
    def _worker(self, tmp_path, pid, items):
        with JournalWriter(tmp_path / f"worker-{pid}.jsonl", worker=pid) as j:
            for item in items:
                j.write("run_started", item=item)
                j.write("run_finished", item=item)

    def test_merge_orders_by_item_index(self, tmp_path):
        self._worker(tmp_path, 100, [1, 3])
        self._worker(tmp_path, 200, [0, 2])
        merged = merge_worker_journals(tmp_path)
        assert [e["item"] for e in merged] == [0, 0, 1, 1, 2, 2, 3, 3]
        # Within an item, the worker's write order survives.
        assert [e["event"] for e in merged[:2]] == [
            "run_started", "run_finished",
        ]

    def test_merge_removes_partials_and_appends(self, tmp_path):
        self._worker(tmp_path, 100, [0])
        with JournalWriter(tmp_path / JOURNAL_FILENAME) as main:
            main.write("batch_started")
            merge_worker_journals(tmp_path, into=main)
        assert list(tmp_path.glob("worker-*.jsonl")) == []
        events = read_journal(tmp_path)
        assert [e["event"] for e in events] == [
            "batch_started", "run_started", "run_finished",
        ]

    def test_events_without_item_sort_after_items(self, tmp_path):
        with JournalWriter(tmp_path / "worker-1.jsonl", worker=1) as j:
            j.write("span", phase="sim_loop")
            j.write("run_finished", item=0)
        merged = merge_worker_journals(tmp_path)
        assert [e["event"] for e in merged] == ["run_finished", "span"]

    def test_volatile_fields_are_the_documented_set(self):
        assert VOLATILE_FIELDS == {"t_wall", "worker", "wall_s", "events_per_s"}
