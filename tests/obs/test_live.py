"""Live tailing, merge dedup, the drift gate, and the progress server."""

import json
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.errors import ObservabilityError
from repro.obs.baseline import snapshot_from_journal
from repro.obs.journal import (
    ABORT_FILENAME,
    JOURNAL_FILENAME,
    JournalWriter,
)
from repro.obs.live import (
    DriftGate,
    JournalTail,
    LiveSweepView,
    ProgressServer,
    request_abort,
)


class TestJournalTail:
    def test_polls_incrementally(self, tmp_path):
        path = tmp_path / "j.jsonl"
        tail = JournalTail(path)
        assert tail.poll() == []  # missing file is "nothing yet"
        path.write_text('{"event": "a"}\n')
        assert [e["event"] for e in tail.poll()] == ["a"]
        assert tail.poll() == []
        with path.open("a") as handle:
            handle.write('{"event": "b"}\n{"event": "c"}\n')
        assert [e["event"] for e in tail.poll()] == ["b", "c"]

    def test_torn_tail_held_back_until_committed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b"}')
        tail = JournalTail(path)
        assert [e["event"] for e in tail.poll()] == ["a"]
        with path.open("a") as handle:
            handle.write("\n")
        assert [e["event"] for e in tail.poll()] == ["b"]
        assert tail.bad_lines == 0

    def test_terminated_garbage_is_counted_not_raised(self, tmp_path):
        # A live tailer cannot crash the watch screen on a producer bug;
        # the strict read (obs report) does the post-mortem.
        path = tmp_path / "j.jsonl"
        path.write_text('not json\n{"event": "a"}\n{"no_event": 1}\n')
        tail = JournalTail(path)
        assert [e["event"] for e in tail.poll()] == ["a"]
        assert tail.bad_lines == 2


def _record(event, worker, **fields):
    record = {"event": event, "t_wall": 1.0, "worker": worker}
    record.update(fields)
    return record


class TestLiveSweepView:
    """Dedup between worker partials and the coordinator merge."""

    COORD = 111
    WORKER = 222

    def _trace(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        # The journal's first event is always coordinator-written.
        with JournalWriter(trace / JOURNAL_FILENAME, worker=self.COORD) as j:
            j.write("batch_started", items=2)
        return trace

    def _run_records(self, item, seed=0):
        return [
            _record(
                "run_started", self.WORKER, item=item, scenario="s", seed=seed
            ),
            _record(
                "run_finished", self.WORKER, item=item, scenario="s",
                seed=seed, wall_s=0.1, sim_time_s=0.01, energy_j=1.0,
            ),
        ]

    def test_missing_trace_dir_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no trace directory"):
            LiveSweepView(tmp_path / "absent")

    def test_partial_then_merge_counts_once(self, tmp_path):
        trace = self._trace(tmp_path)
        view = LiveSweepView(trace)
        view.poll()
        records = self._run_records(0)
        with JournalWriter(
            trace / f"worker-{self.WORKER}.jsonl", worker=self.WORKER
        ) as partial:
            for record in records:
                partial.write_record(record)
        assert len(view.poll()) == 2  # fresh, from the partial
        # The coordinator now merges the same records verbatim into the
        # main journal (and unlinks the partial).
        with JournalWriter(trace / JOURNAL_FILENAME, worker=self.COORD) as j:
            for record in records:
                j.write_record(record)
            j.write("batch_finished", items=2, executed=1, cache_hits=0)
        (trace / f"worker-{self.WORKER}.jsonl").unlink()
        fresh = view.poll()
        assert [e["event"] for e in fresh] == ["batch_finished"]
        assert view.snapshot().runs_finished == 1

    def test_merge_then_partial_counts_once(self, tmp_path):
        # The race can land the other way: the merged journal line is
        # read before the worker partial's copy.
        trace = self._trace(tmp_path)
        view = LiveSweepView(trace)
        view.poll()
        records = self._run_records(0)
        with JournalWriter(trace / JOURNAL_FILENAME, worker=self.COORD) as j:
            for record in records:
                j.write_record(record)
        assert len(view.poll()) == 2  # counted from the merged journal
        with JournalWriter(
            trace / f"worker-{self.WORKER}.jsonl", worker=self.WORKER
        ) as partial:
            for record in records:
                partial.write_record(record)
        assert view.poll() == []  # the partial's copies are duplicates
        assert view.snapshot().runs_finished == 1

    def test_coordinator_events_never_deduped(self, tmp_path):
        trace = self._trace(tmp_path)
        view = LiveSweepView(trace)
        view.poll()
        with JournalWriter(trace / JOURNAL_FILENAME, worker=self.COORD) as j:
            j.write("cache_hit", item=0, scenario="s", seed=0)
            j.write("batch_finished", items=2, executed=0, cache_hits=1)
        assert len(view.poll()) == 2
        progress = view.snapshot()
        assert progress.cache_hits == 1
        assert progress.complete

    def test_on_event_sees_deduped_stream(self, tmp_path):
        trace = self._trace(tmp_path)
        seen = []
        view = LiveSweepView(trace, on_event=seen.append)
        view.poll()
        records = self._run_records(0)
        with JournalWriter(trace / JOURNAL_FILENAME, worker=self.COORD) as j:
            for record in records:
                j.write_record(record)
        view.poll()
        with JournalWriter(
            trace / f"worker-{self.WORKER}.jsonl", worker=self.WORKER
        ) as partial:
            for record in records:
                partial.write_record(record)
        view.poll()
        finished = [e for e in seen if e["event"] == "run_finished"]
        assert len(finished) == 1

    def test_request_abort_writes_flag(self, tmp_path):
        trace = self._trace(tmp_path)
        flag = request_abort(trace, "because the test says so")
        assert flag == trace / ABORT_FILENAME
        assert flag.read_text().startswith("because the test says so")


def _journal_events(scenarios):
    """Synthetic run_finished events: {scenario: [energies...]}."""
    events = []
    for scenario, energies in scenarios.items():
        for seed, energy in enumerate(energies):
            events.append(
                {
                    "event": "run_finished",
                    "scenario": scenario,
                    "seed": seed,
                    "energy_j": energy,
                    "sim_time_s": 0.01,
                    "counters": {"retransmissions": 0, "bottleneck_drops": 0},
                    "extras": {},
                }
            )
    return events


class _Cord:
    def __init__(self):
        self.reason = None

    def cancel(self, reason):
        self.reason = reason


class TestDriftGate:
    def _baseline(self):
        return snapshot_from_journal(
            _journal_events({"x-fair": [1.0, 1.0], "x-slow": [0.8, 0.8]})
        )

    def test_no_drift_when_scenarios_match(self):
        gate = DriftGate(self._baseline(), repetitions=2)
        for event in _journal_events(
            {"x-fair": [1.0, 1.0], "x-slow": [0.8, 0.8]}
        ):
            gate.observe_event(event)
        assert gate.settled == ["x-fair", "x-slow"]
        assert not gate.drifted

    def test_unsettled_scenarios_do_not_gate(self):
        # One of two repetitions seen: nothing is comparable yet, even
        # though the half-seen mean would look like drift.
        gate = DriftGate(self._baseline(), repetitions=2)
        for event in _journal_events({"x-slow": [2.0]}):
            gate.observe_event(event)
        assert gate.settled == []
        assert not gate.drifted

    def test_drift_latches_and_pulls_the_cord(self):
        cord = _Cord()
        drifts = []
        gate = DriftGate(
            self._baseline(), repetitions=2, cancel=cord,
            on_drift=drifts.append,
        )
        for event in _journal_events({"x-slow": [1.6, 1.6]}):
            gate.observe_event(event)
        assert gate.drifted
        assert "x-slow/energy_j" in gate.reason
        assert cord.reason == gate.reason
        assert drifts == [gate]
        assert all(row.gating for row in gate.gating_rows)

    def test_savings_metric_waits_for_the_fair_sibling(self):
        # x-slow settles first with energies matching the baseline; its
        # savings_vs_fair_percent row must not gate (as "missing") until
        # x-fair settles too.
        gate = DriftGate(self._baseline(), repetitions=2)
        for event in _journal_events({"x-slow": [0.8, 0.8]}):
            gate.observe_event(event)
        assert gate.settled == ["x-slow"]
        assert not gate.drifted
        for event in _journal_events({"x-fair": [1.0, 1.0]}):
            gate.observe_event(event)
        assert not gate.drifted

    def test_savings_drift_detected_once_both_settle(self):
        # Same per-scenario energies relative shape, but the fair arm
        # got cheaper: the savings percentage moves and must gate.
        gate = DriftGate(self._baseline(), repetitions=2)
        for event in _journal_events(
            {"x-slow": [0.8, 0.8], "x-fair": [0.9, 0.9]}
        ):
            gate.observe_event(event)
        assert gate.drifted
        assert any(
            "savings_vs_fair_percent" in row.key or "energy_j" in row.key
            for row in gate.gating_rows
        )

    def test_learns_repetitions_from_sweep_started(self):
        gate = DriftGate(self._baseline())
        assert gate.repetitions is None
        gate.observe_event(
            {"event": "sweep_started", "repetitions": 2, "grid_points": 2}
        )
        assert gate.repetitions == 2
        for event in _journal_events({"x-slow": [1.6, 1.6]}):
            gate.observe_event(event)
        assert gate.drifted

    def test_on_result_path_feeds_measurements(self):
        cord = _Cord()
        gate = DriftGate(self._baseline(), repetitions=2, cancel=cord)

        def measurement(energy):
            return SimpleNamespace(
                energy_j=energy,
                duration_s=0.01,
                counters=lambda: {
                    "retransmissions": 0, "bottleneck_drops": 0,
                },
                extras={},
            )

        item = SimpleNamespace(scenario=SimpleNamespace(name="x-slow"))
        gate.on_result(0, item, measurement(1.6))
        assert not gate.drifted
        gate.on_result(1, item, measurement(1.6))
        assert gate.drifted
        assert cord.reason is not None

    def test_extra_scenarios_are_new_not_gating(self):
        gate = DriftGate(self._baseline(), repetitions=2)
        for event in _journal_events({"y-fresh": [3.0, 3.0]}):
            gate.observe_event(event)
        assert gate.settled == ["y-fresh"]
        assert not gate.drifted


class TestProgressServer:
    def _view(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        with JournalWriter(trace / JOURNAL_FILENAME, worker=1) as j:
            j.write("batch_started", items=1)
            j.write("run_started", item=0, scenario="s", seed=0)
            j.write(
                "run_finished", item=0, scenario="s", seed=0,
                wall_s=0.1, sim_time_s=0.01, energy_j=1.0,
            )
            j.write("batch_finished", items=1, executed=1, cache_hits=0)
        view = LiveSweepView(trace)
        view.poll()
        return view

    def _get(self, port, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5
        ) as response:
            return response.status, response.read().decode("utf-8")

    def test_serves_progress_and_metrics(self, tmp_path):
        server = ProgressServer(self._view(tmp_path), port=0).start()
        try:
            status, body = self._get(server.port, "/progress")
            assert status == 200
            doc = json.loads(body)
            assert doc["items_total"] == 1
            assert doc["complete"] is True
            status, body = self._get(server.port, "/metrics")
            assert status == 200
            assert "sweep_items_total 1" in body
            assert "sweep_complete 1" in body
        finally:
            server.stop()

    def test_root_aliases_progress_and_unknown_paths_404(self, tmp_path):
        server = ProgressServer(self._view(tmp_path), port=0).start()
        try:
            status, body = self._get(server.port, "/")
            assert status == 200
            assert json.loads(body)["version"] == 1
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.port, "/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()
