"""Journal summarization and the obs-report rendering."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.report import (
    format_report,
    percentile,
    summarize_journal,
    summary_to_dict,
)


def _events(errors=0):
    events = [
        {"event": "batch_started", "items": 4},
        {"event": "cache_hit", "item": 0, "scenario": "a", "seed": 0},
        {"event": "cache_miss", "item": 1, "scenario": "a", "seed": 1},
    ]
    walls = [0.1, 0.3, 0.2]
    for i, wall in enumerate(walls):
        events.append(
            {
                "event": "run_finished",
                "item": i,
                "scenario": "a" if i < 2 else "b",
                "seed": i,
                "wall_s": wall,
                "sim_time_s": 0.01,
                "energy_j": 1.0 + i,
            }
        )
        events.append({"event": "span", "phase": "sim_loop", "wall_s": wall / 2})
    for i in range(errors):
        events.append(
            {
                "event": "worker_error",
                "scenario": "a",
                "seed": 9 + i,
                "worker": 123,
                "error_type": "ExperimentError",
                "error": "boom",
            }
        )
    # Every started batch reaches its terminal event: this fixture is a
    # sweep that *finished* (summaries of killed sweeps are tested in
    # TestCompleteness).
    events.append(
        {"event": "batch_finished", "items": 4, "executed": 3, "cache_hits": 1}
    )
    return events


class TestPercentile:
    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)
        assert percentile([1.0, 2.0, 3.0], 100.0) == 3.0

    def test_empty_sample_raises(self):
        with pytest.raises(ObservabilityError):
            percentile([], 50.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ObservabilityError):
            percentile([1.0], 101.0)


class TestSummarize:
    def test_counts_and_cache_ratio(self):
        summary = summarize_journal(_events())
        assert summary.runs_finished == 3
        assert summary.cache_hits == 1
        assert summary.cache_misses == 1
        assert summary.cache_hit_ratio == pytest.approx(0.5)
        assert summary.healthy

    def test_per_scenario_percentiles(self):
        summary = summarize_journal(_events())
        a = next(s for s in summary.per_scenario if s.scenario == "a")
        assert a.runs == 2
        assert a.p50_wall_s == pytest.approx(0.2)
        assert a.max_wall_s == pytest.approx(0.3)

    def test_slowest_runs_ranked(self):
        summary = summarize_journal(_events(), slowest=2)
        assert [e["wall_s"] for e in summary.slowest] == [0.3, 0.2]

    def test_phase_totals(self):
        summary = summarize_journal(_events())
        sim = next(p for p in summary.phases if p.phase == "sim_loop")
        assert sim.count == 3
        assert sim.total_wall_s == pytest.approx(0.3)

    def test_worker_errors_make_it_unhealthy(self):
        summary = summarize_journal(_events(errors=1))
        assert not summary.healthy
        assert summary.errors[0]["error"] == "boom"


class TestCompleteness:
    """Killed and aborted sweeps must not summarize as healthy."""

    def test_fixture_sweep_is_complete(self):
        summary = summarize_journal(_events())
        assert summary.batches_started == 1
        assert summary.batches_finished == 1
        assert summary.complete
        assert not summary.aborted

    def test_missing_batch_finished_is_incomplete(self):
        # The journal of a coordinator killed mid-batch: batch_started
        # with no terminal event, plus a run that never finished.
        events = [
            {"event": "batch_started", "items": 2},
            {"event": "run_started", "item": 0, "scenario": "a", "seed": 0},
            {
                "event": "run_finished",
                "item": 0,
                "scenario": "a",
                "seed": 0,
                "wall_s": 0.1,
                "sim_time_s": 0.01,
                "energy_j": 1.0,
            },
            {"event": "run_started", "item": 1, "scenario": "a", "seed": 1},
        ]
        summary = summarize_journal(events)
        assert not summary.complete
        assert summary.runs_in_flight == 1
        assert not summary.healthy
        text = format_report(summary)
        assert "INCOMPLETE" in text
        assert "likely killed" in text

    def test_batch_aborted_counts_as_terminal_but_unhealthy(self):
        events = [
            {"event": "batch_started", "items": 4},
            {
                "event": "batch_aborted",
                "items": 4,
                "completed": 1,
                "reason": "drift vs baseline: a/energy_j",
            },
        ]
        summary = summarize_journal(events)
        assert summary.complete  # the terminal event did arrive...
        assert summary.aborted  # ...but the sweep did not finish its work
        assert not summary.healthy
        assert summary.abort_reason == "drift vs baseline: a/energy_j"
        text = format_report(summary)
        assert "ABORTED" in text
        assert "drift vs baseline" in text

    def test_synthetic_journals_without_batches_stay_healthy(self):
        # Hand-built event streams (unit tests, external tools) carry no
        # batch framing; they are vacuously complete.
        summary = summarize_journal(
            [
                {
                    "event": "run_finished",
                    "scenario": "a",
                    "seed": 0,
                    "wall_s": 0.1,
                    "sim_time_s": 0.01,
                    "energy_j": 1.0,
                }
            ]
        )
        assert summary.complete
        assert summary.healthy

    def test_dict_carries_completeness_fields(self):
        payload = summary_to_dict(summarize_journal(_events()))
        assert payload["complete"] is True
        assert payload["aborted"] is False
        assert payload["abort_reason"] == ""
        assert payload["batches_started"] == 1
        assert payload["batches_finished"] == 1
        assert payload["batches_aborted"] == 0
        assert payload["runs_in_flight"] == 0


class TestRendering:
    def test_text_report_has_sections(self):
        text = format_report(summarize_journal(_events()))
        assert "per-scenario wall time" in text
        assert "wall time by phase" in text
        assert "slowest runs" in text
        assert "UNHEALTHY" not in text

    def test_unhealthy_report_flags_errors(self):
        text = format_report(summarize_journal(_events(errors=2)))
        assert "worker errors" in text
        assert "UNHEALTHY" in text

    def test_dict_is_versioned(self):
        payload = summary_to_dict(summarize_journal(_events()))
        assert payload["version"] == 1
        assert payload["healthy"] is True
        assert payload["cache_hit_ratio"] == pytest.approx(0.5)
