"""Timeline rendering: filters and the three output formats."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.timeline import (
    filter_records,
    format_timeline,
    timeline_csv,
    timeline_json,
)


def record(scenario="s", seed=0, channel="cwnd_bytes", entity="flow-1",
           n=4):
    return {
        "scenario": scenario,
        "seed": seed,
        "channel": channel,
        "entity": entity,
        "times": [i * 0.5 for i in range(n)],
        "values": [float(i) for i in range(n)],
    }


RECORDS = [
    record(),
    record(entity="flow-2"),
    record(seed=1, channel="power_w", entity="pkg-0"),
]


class TestFilters:
    def test_no_filters_copies_everything(self):
        assert filter_records(RECORDS) == RECORDS

    def test_filters_compose(self):
        matched = filter_records(RECORDS, seed=0, entity="flow-2")
        assert [r["entity"] for r in matched] == ["flow-2"]

    def test_seed_zero_is_a_real_filter(self):
        # seed=0 must not be confused with "no filter"
        assert len(filter_records(RECORDS, seed=0)) == 2


class TestFormats:
    def test_text_index_counts_streams_and_samples(self):
        text = format_timeline(RECORDS)
        assert "3 streams, 12 samples" in text
        assert "power_w" in text

    def test_samples_tables_are_bounded(self):
        text = format_timeline([record(n=100)], samples=3)
        assert "== s seed=0 flow-1:cwnd_bytes ==" in text
        # 3 sample rows, not 100
        assert text.count("\n0.") < 10

    def test_empty_records_raise(self):
        with pytest.raises(ObservabilityError, match="no telemetry"):
            format_timeline([])

    def test_csv_is_long_format(self):
        lines = timeline_csv([record(n=2)]).splitlines()
        assert lines == [
            "scenario,seed,channel,entity,time_s,value",
            "s,0,cwnd_bytes,flow-1,0.0,0.0",
            "s,0,cwnd_bytes,flow-1,0.5,1.0",
        ]

    def test_json_round_trips(self):
        payload = json.loads(timeline_json(RECORDS))
        assert payload["version"] == 1
        assert payload["streams"] == RECORDS
