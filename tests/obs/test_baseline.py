"""Baselines: snapshotting journals, tolerance-gated drift comparison."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.baseline import (
    DriftRow,
    compare,
    format_drift_table,
    has_regression,
    load_baseline,
    save_baseline,
    snapshot_from_journal,
)


def run_finished(scenario, energy_j, sim_time_s=2.0, retrans=3.0,
                 drops=5.0, wall_s=0.5):
    return {
        "event": "run_finished",
        "scenario": scenario,
        "energy_j": energy_j,
        "sim_time_s": sim_time_s,
        "counters": {
            "retransmissions": retrans,
            "bottleneck_drops": drops,
        },
        "wall_s": wall_s,
    }


def two_arm_events():
    return [
        {"event": "batch_started"},
        run_finished("fig1-fair", 10.0, wall_s=0.4),
        run_finished("fig1-fair", 12.0, wall_s=0.6),
        run_finished("fig1-fsti", 8.0),
        {"event": "batch_finished"},
    ]


class TestSnapshot:
    def test_per_scenario_means_and_run_count(self):
        snapshot = snapshot_from_journal(two_arm_events())
        metrics = snapshot["metrics"]
        assert metrics["total/runs"] == 3.0
        assert metrics["fig1-fair/energy_j"] == pytest.approx(11.0)
        assert metrics["fig1-fsti/energy_j"] == pytest.approx(8.0)
        assert metrics["fig1-fair/sim_time_s"] == pytest.approx(2.0)
        assert metrics["fig1-fair/retransmissions"] == pytest.approx(3.0)
        assert metrics["fig1-fair/bottleneck_drops"] == pytest.approx(5.0)

    def test_savings_derived_against_fair_sibling(self):
        metrics = snapshot_from_journal(two_arm_events())["metrics"]
        # (11 - 8) / 11 energy saved versus the fair arm
        assert metrics["fig1-fsti/savings_vs_fair_percent"] == pytest.approx(
            100.0 * 3.0 / 11.0
        )
        # the fair arm itself carries no savings metric
        assert "fig1-fair/savings_vs_fair_percent" not in metrics

    def test_no_fair_sibling_no_savings(self):
        metrics = snapshot_from_journal(
            [run_finished("solo-run", 5.0)]
        )["metrics"]
        assert not any("savings" in key for key in metrics)

    def test_wall_percentiles_live_in_info_not_metrics(self):
        snapshot = snapshot_from_journal(two_arm_events())
        assert "fig1-fair/p50_wall_s" in snapshot["info"]
        assert "fig1-fair/p90_wall_s" in snapshot["info"]
        assert not any("wall" in key for key in snapshot["metrics"])

    def test_empty_journal_raises(self):
        with pytest.raises(ObservabilityError, match="run_finished"):
            snapshot_from_journal([{"event": "batch_started"}])


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        snapshot = snapshot_from_journal(two_arm_events())
        path = tmp_path / "baselines" / "seed.json"
        save_baseline(snapshot, path)
        assert load_baseline(path) == snapshot
        # committed-friendly: stable text, trailing newline
        assert path.read_text().endswith("\n")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no baseline"):
            load_baseline(tmp_path / "nope.json")

    def test_garbage_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ObservabilityError, match="bad baseline JSON"):
            load_baseline(path)

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ObservabilityError, match="metrics"):
            load_baseline(path)


def doc(metrics):
    return {"version": 1, "metrics": metrics, "info": {}}


class TestCompare:
    def test_identical_snapshots_all_ok(self):
        snapshot = snapshot_from_journal(two_arm_events())
        rows = compare(snapshot, snapshot)
        assert rows
        assert all(row.status == "ok" for row in rows)
        assert not has_regression(rows)

    def test_drift_beyond_tolerance_regresses(self):
        base = doc({"fig1-fair/energy_j": 10.0})
        cur = doc({"fig1-fair/energy_j": 10.1})  # 1% >> 1e-4
        (row,) = compare(base, cur)
        assert row.status == "regressed"
        assert row.rel_delta == pytest.approx(0.01)
        assert has_regression([row])

    def test_drift_within_tolerance_is_ok(self):
        base = doc({"fig1-fair/energy_j": 10.0})
        cur = doc({"fig1-fair/energy_j": 10.0 * (1 + 5e-5)})
        (row,) = compare(base, cur)
        assert row.status == "ok"

    def test_counters_have_zero_tolerance(self):
        base = doc({"fig1-fair/retransmissions": 3.0})
        cur = doc({"fig1-fair/retransmissions": 4.0})
        (row,) = compare(base, cur)
        assert row.tolerance == 0.0
        assert row.status == "regressed"

    def test_missing_metric_gates(self):
        rows = compare(doc({"gone/energy_j": 1.0}), doc({}))
        (row,) = rows
        assert row.status == "missing"
        assert row.current is None
        assert has_regression(rows)

    def test_new_metric_is_informational(self):
        rows = compare(doc({}), doc({"fresh/energy_j": 1.0}))
        (row,) = rows
        assert row.status == "new"
        assert row.baseline is None
        assert not has_regression(rows)

    def test_tolerance_override_by_leaf_name(self):
        base = doc({"fig1-fair/energy_j": 10.0})
        cur = doc({"fig1-fair/energy_j": 10.1})
        (row,) = compare(base, cur, tolerances={"energy_j": 0.05})
        assert row.status == "ok"
        assert row.tolerance == 0.05

    def test_rows_sorted_by_key(self):
        base = doc({"z/energy_j": 1.0, "a/energy_j": 1.0})
        keys = [row.key for row in compare(base, base)]
        assert keys == sorted(keys)


class TestDriftTable:
    def test_gating_rows_shout_and_verdict_counts_them(self):
        rows = [
            DriftRow("a/energy_j", 1.0, 1.0, 0.0, 1e-4, "ok"),
            DriftRow("b/energy_j", 1.0, 2.0, 1.0, 1e-4, "regressed"),
            DriftRow("c/energy_j", 1.0, None, float("inf"), 1e-4, "missing"),
        ]
        text = format_drift_table(rows)
        assert "REGRESSED" in text
        assert "MISSING" in text
        assert "DRIFT: 2 metric(s) beyond tolerance" in text

    def test_clean_rows_get_ok_verdict(self):
        rows = [DriftRow("a/energy_j", 1.0, 1.0, 0.0, 1e-4, "ok")]
        assert "ok: 1 metric(s) within tolerance" in format_drift_table(rows)

    def test_no_rows(self):
        assert format_drift_table([]) == "no metrics to compare"
