"""The incremental progress model behind ``greenenvy obs watch``."""

import pytest

from repro.obs.progress import (
    ProgressTracker,
    format_progress,
    progress_to_dict,
    progress_to_registry,
)


def _run(item, scenario="a", seed=0, t=0.0, wall=0.1):
    return [
        {
            "event": "run_started",
            "item": item,
            "scenario": scenario,
            "seed": seed,
            "t_wall": t,
        },
        {
            "event": "run_finished",
            "item": item,
            "scenario": scenario,
            "seed": seed,
            "t_wall": t + wall,
            "wall_s": wall,
            "sim_time_s": 0.01,
            "energy_j": 1.0,
        },
    ]


def _batch(events, items=None, t0=0.0, t1=100.0):
    n = items if items is not None else len(
        [e for e in events if e["event"] == "run_finished"]
    )
    return (
        [{"event": "batch_started", "items": n, "t_wall": t0}]
        + events
        + [{"event": "batch_finished", "items": n, "t_wall": t1}]
    )


class TestTracker:
    def test_counts_and_completion(self):
        tracker = ProgressTracker()
        events = _run(0, t=0.0) + _run(1, seed=1, t=1.0)
        tracker.observe_all(_batch(events, t1=2.0))
        p = tracker.snapshot()
        assert p.items_total == 2
        assert p.runs_started == 2
        assert p.runs_finished == 2
        assert p.items_done == 2
        assert p.in_flight == 0
        assert p.fraction_done == 1.0
        assert p.complete
        assert not p.aborted
        assert p.eta_s == 0.0

    def test_mid_run_view(self):
        tracker = ProgressTracker()
        tracker.observe({"event": "batch_started", "items": 4, "t_wall": 0.0})
        tracker.observe_all(_run(0, t=0.0))
        tracker.observe(
            {"event": "run_started", "item": 1, "scenario": "a", "seed": 1,
             "t_wall": 0.2}
        )
        p = tracker.snapshot()
        assert p.items_total == 4
        assert p.items_done == 1
        assert p.in_flight == 1
        assert not p.complete
        assert 0.0 < p.fraction_done < 1.0

    def test_no_batch_header_means_incomplete_and_unknown_total(self):
        tracker = ProgressTracker()
        tracker.observe_all(_run(0))
        p = tracker.snapshot()
        assert p.items_total == 0
        assert not p.complete
        assert p.fraction_done == 0.0
        assert p.eta_s is None

    def test_sweep_header_estimate_yields_to_batch_headers(self):
        # sweep_started carries the planned item count; once real batch
        # headers arrive they are authoritative (and summed, for figure
        # pipelines that run several batches).
        tracker = ProgressTracker()
        tracker.observe(
            {"event": "sweep_started", "items": 12, "grid_points": 6,
             "repetitions": 2, "t_wall": 0.0}
        )
        assert tracker.snapshot().items_total == 12
        tracker.observe({"event": "batch_started", "items": 12, "t_wall": 0.1})
        assert tracker.snapshot().items_total == 12
        assert tracker.snapshot().grid_points == 6
        assert tracker.snapshot().repetitions == 2

    def test_multiple_batches_sum_their_items(self):
        tracker = ProgressTracker()
        tracker.observe({"event": "batch_started", "items": 3, "t_wall": 0.0})
        tracker.observe({"event": "batch_finished", "items": 3, "t_wall": 1.0})
        tracker.observe({"event": "batch_started", "items": 5, "t_wall": 2.0})
        p = tracker.snapshot()
        assert p.items_total == 8
        assert not p.complete  # second batch still open

    def test_cache_hits_and_errors_count_as_done(self):
        tracker = ProgressTracker()
        tracker.observe({"event": "batch_started", "items": 3, "t_wall": 0.0})
        tracker.observe(
            {"event": "cache_hit", "item": 0, "scenario": "a", "seed": 0,
             "t_wall": 0.1}
        )
        tracker.observe_all(_run(1, t=0.2))
        tracker.observe(
            {"event": "worker_error", "item": 2, "scenario": "a", "seed": 2,
             "t_wall": 0.4, "error": "boom"}
        )
        p = tracker.snapshot()
        assert p.items_done == 3
        assert p.cache_hits == 1
        assert p.errors == 1
        scenario = p.scenarios["a"]
        assert scenario.done == 3
        assert scenario.cache_hits == 1
        assert scenario.errors == 1

    def test_abort_latches_reason(self):
        tracker = ProgressTracker()
        tracker.observe({"event": "batch_started", "items": 4, "t_wall": 0.0})
        tracker.observe(
            {"event": "batch_aborted", "items": 4, "completed": 1,
             "reason": "drift vs baseline: a/energy_j", "t_wall": 1.0}
        )
        p = tracker.snapshot()
        assert p.aborted
        assert p.complete  # terminal event arrived
        assert p.abort_reason == "drift vs baseline: a/energy_j"

    def test_eta_from_ewma_of_completion_intervals(self):
        tracker = ProgressTracker()
        tracker.observe({"event": "batch_started", "items": 10, "t_wall": 0.0})
        # Three completions exactly 2s apart: the EWMA is exactly 2.
        for i, t in enumerate((2.0, 4.0, 6.0)):
            tracker.observe_all(_run(i, seed=i, t=t - 0.1, wall=0.1))
        p = tracker.snapshot()
        assert p.ewma_interval_s == pytest.approx(2.0)
        assert p.eta_s == pytest.approx(7 * 2.0)

    def test_wall_percentiles_and_events_per_s(self):
        tracker = ProgressTracker()
        tracker.observe({"event": "batch_started", "items": 2, "t_wall": 0.0})
        tracker.observe_all(_run(0, t=0.0, wall=0.1))
        tracker.observe_all(_run(1, seed=1, t=1.0, wall=0.3))
        tracker.observe(
            {"event": "span", "phase": "sim_loop", "wall_s": 2.0,
             "events_executed": 1000, "t_wall": 1.5}
        )
        p = tracker.snapshot()
        assert p.wall_max_s == pytest.approx(0.3)
        assert p.wall_p50_s in (0.1, 0.3)
        assert p.events_executed == 1000
        assert p.events_per_s == pytest.approx(500.0)
        assert p.phases["sim_loop"].count == 1

    def test_elapsed_spans_first_to_last_event(self):
        tracker = ProgressTracker()
        tracker.observe({"event": "batch_started", "items": 1, "t_wall": 10.0})
        tracker.observe_all(_run(0, t=12.0))
        assert tracker.snapshot().elapsed_s == pytest.approx(2.1)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            ProgressTracker(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            ProgressTracker(ewma_alpha=1.5)


class TestRenderings:
    def _progress(self):
        tracker = ProgressTracker()
        tracker.observe_all(_batch(_run(0) + _run(1, seed=1, t=1.0)))
        return tracker.snapshot()

    def test_dict_is_versioned_and_json_ready(self):
        import json

        doc = progress_to_dict(self._progress())
        assert doc["version"] == 1
        assert doc["items_total"] == 2
        assert doc["complete"] is True
        assert doc["scenarios"]["a"]["finished"] == 2
        json.dumps(doc)  # must serialize cleanly

    def test_registry_renders_prometheus_gauges(self):
        text = progress_to_registry(self._progress()).render_prometheus()
        assert "sweep_items_total 2" in text
        assert "sweep_complete 1" in text
        assert "sweep_eta_seconds 0" in text

    def test_unknown_eta_is_minus_one_gauge(self):
        tracker = ProgressTracker()
        tracker.observe({"event": "batch_started", "items": 4, "t_wall": 0.0})
        text = progress_to_registry(tracker.snapshot()).render_prometheus()
        assert "sweep_eta_seconds -1" in text

    def test_text_view_shows_bar_and_state(self):
        text = format_progress(self._progress())
        assert "2/2 items" in text
        assert "complete" in text
        assert "#" in text

    def test_text_view_flags_aborts(self):
        tracker = ProgressTracker()
        tracker.observe({"event": "batch_started", "items": 4, "t_wall": 0.0})
        tracker.observe(
            {"event": "batch_aborted", "items": 4, "completed": 0,
             "reason": "drift", "t_wall": 1.0}
        )
        assert "ABORTED (drift)" in format_progress(tracker.snapshot())
