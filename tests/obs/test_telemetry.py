"""Telemetry persistence: JSONL round-trips, merge order, read errors."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.telemetry import (
    TELEMETRY_FILENAME,
    TelemetryWriter,
    canonicalize_telemetry,
    merge_worker_telemetry,
    read_telemetry,
    series_from_record,
    telemetry_path,
    telemetry_records,
)
from repro.sim.probe import CWND_CHANNEL, QUEUE_DEPTH_CHANNEL, TimeSeriesProbeSink


def collected_sink():
    sink = TimeSeriesProbeSink()
    sink.sample(0.0, CWND_CHANNEL, "flow-1", 10.0)
    sink.sample(1.0, CWND_CHANNEL, "flow-1", 20.0)
    sink.sample(0.5, QUEUE_DEPTH_CHANNEL, "bottleneck", 3000.0)
    return sink


class TestTelemetryRecords:
    def test_one_record_per_stream_in_key_order(self):
        records = telemetry_records(collected_sink(), "fig1-fair", 3)
        assert [(r["channel"], r["entity"]) for r in records] == [
            (CWND_CHANNEL, "flow-1"),
            (QUEUE_DEPTH_CHANNEL, "bottleneck"),
        ]
        first = records[0]
        assert first["scenario"] == "fig1-fair"
        assert first["seed"] == 3
        assert first["times"] == [0.0, 1.0]
        assert first["values"] == [10.0, 20.0]


class TestWriterRoundTrip:
    def test_write_sink_then_read_back(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        with TelemetryWriter(path) as writer:
            written = writer.write_sink(collected_sink(), "fig1-fair", 0)
        assert written == 2
        records = read_telemetry(path)
        assert records == telemetry_records(collected_sink(), "fig1-fair", 0)

    def test_appends_across_writers(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        with TelemetryWriter(path) as writer:
            writer.write_sink(collected_sink(), "a", 0)
        with TelemetryWriter(path) as writer:
            writer.write_sink(collected_sink(), "b", 1)
        scenarios = [r["scenario"] for r in read_telemetry(path)]
        assert scenarios == ["a", "a", "b", "b"]

    def test_write_after_close_raises(self, tmp_path):
        writer = TelemetryWriter(tmp_path / TELEMETRY_FILENAME)
        writer.close()
        with pytest.raises(ObservabilityError, match="closed"):
            writer.write_record({"scenario": "x"})


class TestReadTelemetry:
    def test_trace_dir_resolves_to_telemetry_file(self, tmp_path):
        assert telemetry_path(tmp_path) == tmp_path / TELEMETRY_FILENAME
        with TelemetryWriter(tmp_path / TELEMETRY_FILENAME) as writer:
            writer.write_sink(collected_sink(), "s", 0)
        assert len(read_telemetry(tmp_path)) == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no telemetry"):
            read_telemetry(tmp_path / "nope.jsonl")

    def test_empty_file_reads_empty(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        path.write_text("")
        assert read_telemetry(path) == []

    def test_garbage_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        record = telemetry_records(collected_sink(), "s", 0)[0]
        path.write_text(json.dumps(record) + "\n{not json\n")
        with pytest.raises(ObservabilityError, match=":2"):
            read_telemetry(path)

    def test_record_missing_required_field_raises(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        record = telemetry_records(collected_sink(), "s", 0)[0]
        del record["values"]
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ObservabilityError, match="lacks"):
            read_telemetry(path)


class TestSeriesFromRecord:
    def test_rebuilds_the_time_series(self):
        record = telemetry_records(collected_sink(), "s", 0)[0]
        series = series_from_record(record)
        assert series.name == "flow-1:cwnd_bytes"
        assert series.times == [0.0, 1.0]
        assert series.values == [10.0, 20.0]


class TestMergeWorkerTelemetry:
    def write_partial(self, trace, wid, scenario, seed):
        path = trace / f"telemetry-worker-{wid}.jsonl"
        with TelemetryWriter(path) as writer:
            writer.write_sink(collected_sink(), scenario, seed)

    def test_merges_sorted_and_removes_partials(self, tmp_path):
        # Worker files written "out of order" relative to the sort key.
        self.write_partial(tmp_path, 0, "zeta", 1)
        self.write_partial(tmp_path, 1, "alpha", 0)
        with TelemetryWriter(tmp_path / TELEMETRY_FILENAME) as writer:
            merged = merge_worker_telemetry(tmp_path, into=writer)
        assert [r["scenario"] for r in merged] == [
            "alpha", "alpha", "zeta", "zeta",
        ]
        assert list(tmp_path.glob("telemetry-worker-*.jsonl")) == []
        assert read_telemetry(tmp_path) == merged

    def test_no_partials_is_a_noop(self, tmp_path):
        assert merge_worker_telemetry(tmp_path) == []

    def test_keep_partials_when_asked(self, tmp_path):
        self.write_partial(tmp_path, 0, "s", 0)
        merge_worker_telemetry(tmp_path, remove_partials=False)
        assert len(list(tmp_path.glob("telemetry-worker-*.jsonl"))) == 1


class TestCanonicalize:
    def test_sorts_file_into_key_order(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        with TelemetryWriter(path) as writer:
            writer.write_sink(collected_sink(), "zeta", 1)
            writer.write_sink(collected_sink(), "alpha", 0)
        before = path.read_bytes()
        assert canonicalize_telemetry(tmp_path) == 4
        assert path.read_bytes() != before
        scenarios = [r["scenario"] for r in read_telemetry(path)]
        assert scenarios == ["alpha", "alpha", "zeta", "zeta"]
        # idempotent: a second pass changes nothing
        after = path.read_bytes()
        canonicalize_telemetry(tmp_path)
        assert path.read_bytes() == after

    def test_missing_file_is_a_noop(self, tmp_path):
        assert canonicalize_telemetry(tmp_path) == 0
