"""Hot-path profiler: collector, persistence, exporters, determinism.

The profiling channel's contract mirrors telemetry's: turning it on
must never change simulation results (profiling on/off and jobs=1 vs
jobs=N all produce bit-identical measurements and telemetry), while the
profile aggregates themselves are deterministic in everything except
wall time.
"""

import json

import pytest

from repro.errors import ObservabilityError
from repro.figures.fig1 import run_fig1
from repro.obs.observer import TracingObserver
from repro.obs.profile import (
    PROFILE_FILENAME,
    ProfileCollector,
    aggregate_profiles,
    export_profile,
    profile_record,
    read_profile,
    summarize_profile,
)
from repro.obs.telemetry import telemetry_path
from repro.sim.profile import (
    DISPATCH_PREFIX,
    NULL_PROFILER,
    HotPathProfiler,
    dispatch_key,
)

BYTES = 100_000
REPS = 1


class TestProtocol:
    def test_null_profiler_is_disabled_and_swallows_everything(self):
        assert NULL_PROFILER.enabled is False
        NULL_PROFILER.count("events_dispatched")
        NULL_PROFILER.enter("x")
        NULL_PROFILER.exit("x")

    def test_dispatch_key_uses_qualname(self):
        class Host:
            def receive(self):
                pass

        key = dispatch_key(Host().receive)
        assert key.startswith(DISPATCH_PREFIX + ".")
        assert key.endswith("Host.receive")

    def test_dispatch_key_is_memoized(self):
        class Host:
            def receive(self):
                pass

        assert dispatch_key(Host().receive) is dispatch_key(Host().receive)


class TestCollector:
    def test_nested_enter_exit_builds_stack_paths(self):
        collector = ProfileCollector()
        collector.enter("a")
        collector.enter("b")
        collector.exit("b")
        collector.exit("a")
        assert set(collector.stack_calls) == {"a", "a;b"}
        assert collector.stack_calls["a;b"] == 1
        assert all(w >= 0.0 for w in collector.stack_wall_s.values())

    def test_counts_accumulate(self):
        collector = ProfileCollector()
        collector.count("events_dispatched")
        collector.count("events_dispatched", 2)
        assert collector.counts == {"events_dispatched": 3}

    def test_mismatched_exit_raises(self):
        collector = ProfileCollector()
        collector.enter("a")
        with pytest.raises(ObservabilityError):
            collector.exit("b")

    def test_exit_without_enter_raises(self):
        with pytest.raises(ObservabilityError):
            ProfileCollector().exit("a")

    def test_profile_record_is_sorted_and_rounded(self):
        collector = ProfileCollector()
        collector.enter("b")
        collector.exit("b")
        collector.enter("a")
        collector.exit("a")
        record = profile_record(collector, "scn", 3)
        assert record["scenario"] == "scn"
        assert record["seed"] == 3
        assert list(record["stack_calls"]) == ["a", "b"]


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """Run the small fig1 sweep once per (jobs, profile) combination."""
    runs = {}
    for jobs in (1, 4):
        for profile in (False, True):
            root = tmp_path_factory.mktemp(f"trace-j{jobs}-p{int(profile)}")
            with TracingObserver(root, profile=profile) as obs:
                result = run_fig1(
                    transfer_bytes=BYTES,
                    repetitions=REPS,
                    jobs=jobs,
                    observer=obs,
                )
            runs[(jobs, profile)] = (root, result)
    return runs


class TestProfilingChangesNothing:
    @pytest.mark.parametrize("jobs", (1, 4))
    def test_measurements_identical_with_profiling_on(self, sweep, jobs):
        _, off = sweep[(jobs, False)]
        _, on = sweep[(jobs, True)]
        assert off.format_table() == on.format_table()

    @pytest.mark.parametrize("jobs", (1, 4))
    def test_telemetry_bytes_identical_with_profiling_on(self, sweep, jobs):
        off_root, _ = sweep[(jobs, False)]
        on_root, _ = sweep[(jobs, True)]
        assert (
            telemetry_path(off_root).read_bytes()
            == telemetry_path(on_root).read_bytes()
        )

    def test_profile_only_written_when_asked(self, sweep):
        off_root, _ = sweep[(1, False)]
        on_root, _ = sweep[(1, True)]
        assert not (off_root / PROFILE_FILENAME).exists()
        assert (on_root / PROFILE_FILENAME).exists()


class TestDeterminism:
    def test_aggregates_identical_across_job_counts(self, sweep):
        serial = aggregate_profiles(read_profile(sweep[(1, True)][0]))
        parallel = aggregate_profiles(read_profile(sweep[(4, True)][0]))
        assert serial.counts == parallel.counts
        assert serial.stack_calls == parallel.stack_calls
        assert serial.runs == parallel.runs

    def test_records_identical_across_job_counts_modulo_wall(self, sweep):
        def shape(root):
            return [
                (r["scenario"], r["seed"], r["counts"], r["stack_calls"])
                for r in read_profile(root)
            ]

        assert shape(sweep[(1, True)][0]) == shape(sweep[(4, True)][0])

    def test_no_worker_partials_left_behind(self, sweep):
        root, _ = sweep[(4, True)]
        assert not list(root.glob("profile-worker-*.jsonl"))

    def test_events_dispatched_counted(self, sweep):
        aggregate = aggregate_profiles(read_profile(sweep[(1, True)][0]))
        assert aggregate.counts.get("events_dispatched", 0) > 0


class TestExports:
    @pytest.fixture(scope="class")
    def exported(self, sweep):
        root, _ = sweep[(1, True)]
        records = read_profile(root)
        return root, records, export_profile(root, records=records)

    def test_folded_lines_are_path_space_micros(self, exported):
        _, _, paths = exported
        lines = paths["folded"].read_text().strip().splitlines()
        assert lines
        for line in lines:
            path, _, micros = line.rpartition(" ")
            assert path and ";" not in micros
            assert int(micros) >= 0

    def test_callgrind_header_and_functions(self, exported):
        _, _, paths = exported
        text = paths["callgrind"].read_text()
        assert text.startswith("# callgrind format")
        assert "events: WallUs Calls" in text
        assert "fn=tcp.sender.handle_packet" in text
        # caller-callee edges carry cfn/calls pairs
        assert "cfn=" in text and "calls=" in text

    def test_chrome_trace_schema(self, exported):
        _, records, paths = exported
        trace = json.loads(paths["chrome"].read_text())
        events = trace["traceEvents"]
        aggregate = aggregate_profiles(records)
        assert len(events) == len(aggregate.stack_wall_s)
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["cat"] == "sim"
            assert event["args"]["calls"] > 0

    def test_summary_names_the_hot_components(self, exported):
        _, records, _ = exported
        summary = summarize_profile(records)
        assert "tcp.sender.handle_packet" in summary
        assert "runs" in summary

    def test_export_without_records_reads_the_trace(self, sweep, tmp_path):
        root, _ = sweep[(1, True)]
        paths = export_profile(root)
        assert all(p.exists() for p in paths.values())


class TestReadValidation:
    def test_missing_profile_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_profile(tmp_path)

    def test_malformed_record_raises(self, tmp_path):
        target = tmp_path / PROFILE_FILENAME
        target.write_text('{"scenario": "x"}\n')
        with pytest.raises(ObservabilityError):
            read_profile(tmp_path)


class TestCli:
    def test_obs_profile_runs_and_exports(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace"
        code = main([
            "obs", "profile", str(trace),
            "--bytes", str(BYTES), "--reps", "1", "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert (trace / "profile.folded").exists()
        assert (trace / "callgrind.out.greenenvy").exists()
        assert (trace / "profile.trace.json").exists()

    def test_obs_report_includes_profile_section(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace"
        assert main([
            "obs", "profile", str(trace), "--bytes", str(BYTES), "--reps", "1",
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "== hot-path profile ==" in out
        assert "== engine heap ==" in out
        assert "== top energy flows ==" in out
