"""The perf gate: snapshots, comparison semantics, CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.errors import ObservabilityError
from repro.obs.perfdiff import (
    DEFAULT_PERF_REL_TOL,
    SNAPSHOT_VERSION,
    compare_perf,
    format_perf_table,
    has_perf_regression,
    load_snapshot,
    perf_snapshot,
    save_snapshot,
    sim_snapshot,
)

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _snapshot(median, minimum=None, sweep="fig1 --bytes 400000 --reps 2"):
    return {
        "version": SNAPSHOT_VERSION,
        "sweep": sweep,
        "attempts": 1,
        "runs": 20,
        "events_per_second": {
            "min": minimum if minimum is not None else median * 0.8,
            "median": median,
            "max": median * 1.2,
        },
        "sim_loop_wall_s": {"total": 1.0, "median": 0.05},
        "sweep_wall_s": 1.5,
        "python": "3.x",
        "platform": "test",
    }


class TestCompare:
    def test_within_tolerance_passes(self):
        rows = compare_perf(_snapshot(100_000), _snapshot(95_000))
        assert not has_perf_regression(rows)
        statuses = {r.metric: r.status for r in rows}
        assert statuses["events_per_second.median"] == "ok"

    def test_drop_beyond_tolerance_regresses(self):
        rows = compare_perf(
            _snapshot(100_000),
            _snapshot(60_000),
            tolerances={
                "events_per_second.median": 0.2,
                "events_per_second.min": 0.2,
            },
        )
        assert has_perf_regression(rows)

    def test_improvement_never_gates(self):
        rows = compare_perf(_snapshot(100_000), _snapshot(200_000))
        assert not has_perf_regression(rows)
        statuses = {r.metric: r.status for r in rows}
        assert statuses["events_per_second.median"] == "improved"

    def test_wall_times_are_context_only(self):
        base = _snapshot(100_000)
        fresh = _snapshot(100_000)
        fresh["sweep_wall_s"] = 100.0  # 60x slower wall, same events/sec
        rows = compare_perf(base, fresh)
        assert not has_perf_regression(rows)
        context = {r.metric for r in rows if r.status == "context"}
        assert "sweep_wall_s" in context

    def test_sweep_mismatch_raises(self):
        with pytest.raises(ObservabilityError):
            compare_perf(
                _snapshot(100_000),
                _snapshot(100_000, sweep="fabric --flows 1000"),
            )

    def test_tolerance_override_beats_default(self):
        # an 8% drop: fine at the default tolerance, fatal at 5%
        base, fresh = _snapshot(100_000), _snapshot(92_000, minimum=92_000)
        assert DEFAULT_PERF_REL_TOL > 0.08
        assert not has_perf_regression(compare_perf(base, fresh))
        rows = compare_perf(
            base, fresh, tolerances={"events_per_second.median": 0.05}
        )
        assert has_perf_regression(rows)

    def test_table_renders_verdict(self):
        rows = compare_perf(_snapshot(100_000), _snapshot(95_000))
        table = format_perf_table(rows)
        assert "events_per_second.median" in table
        assert "perf within tolerance" in table


class TestSnapshots:
    def test_committed_bench_files_load(self):
        for name in ("BENCH_sim.json", "BENCH_fabric.json"):
            payload = load_snapshot(BENCH_DIR / name)
            assert payload["events_per_second"]["median"] > 0
            assert payload["runs"] > 0

    def test_sim_snapshot_matches_committed_sweep(self):
        fresh = sim_snapshot()
        committed = load_snapshot(BENCH_DIR / "BENCH_sim.json")
        assert fresh["sweep"] == committed["sweep"]
        assert fresh["version"] == committed["version"]
        assert fresh["runs"] == committed["runs"]

    def test_save_load_round_trip(self, tmp_path):
        payload = _snapshot(123_456.0)
        target = save_snapshot(payload, tmp_path / "snap.json")
        assert load_snapshot(target) == payload

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            load_snapshot(tmp_path / "absent.json")

    def test_wrong_version_raises(self, tmp_path):
        payload = _snapshot(100.0)
        payload["version"] = 999
        target = tmp_path / "snap.json"
        target.write_text(json.dumps(payload))
        with pytest.raises(ObservabilityError):
            load_snapshot(target)

    def test_unknown_kind_raises(self):
        with pytest.raises(ObservabilityError):
            perf_snapshot("gpu")

    def test_best_of_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            sim_snapshot(best_of=0)


class TestCliGate:
    def test_perf_diff_passes_against_own_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "base.json"
        save_snapshot(sim_snapshot(), baseline)
        code = main([
            "obs", "perf-diff", "--baseline", str(baseline), "--best-of", "2",
        ])
        assert code == 0
        assert "perf within tolerance" in capsys.readouterr().out

    def test_perf_diff_fails_on_injected_regression(self, tmp_path, capsys):
        from repro.cli import main

        # Claim the machine used to be 60% faster: even generous noise
        # headroom cannot absolve a fresh run of that much regression.
        inflated = sim_snapshot()
        for key in ("min", "median", "max"):
            inflated["events_per_second"][key] *= 1.6
        baseline = tmp_path / "base.json"
        save_snapshot(inflated, baseline)
        code = main([
            "obs", "perf-diff", "--baseline", str(baseline),
            "--tolerance", "events_per_second.median=0.2",
            "--tolerance", "events_per_second.min=0.2",
        ])
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_bad_tolerance_spec_is_usage_error(self, capsys):
        from repro.cli import main

        code = main(["obs", "perf-diff", "--tolerance", "nonsense"])
        assert code == 2

    def test_missing_baseline_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "obs", "perf-diff", "--baseline", str(tmp_path / "absent.json"),
        ])
        assert code == 2
