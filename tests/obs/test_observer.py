"""Observer hierarchy: no-op default, journal-backed, tracing coordinator."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.journal import JournalWriter, read_journal
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import (
    METRICS_JSON_FILENAME,
    METRICS_PROM_FILENAME,
    NULL_OBSERVER,
    JournalObserver,
    Observer,
    TracingObserver,
    resolve_observer,
)


class TestNullObserver:
    def test_disabled_and_inert(self):
        obs = Observer()
        assert obs.enabled is False
        assert obs.trace_dir is None
        obs.emit("run_started", scenario="s")
        obs.set_gauge("g", 1.0)
        obs.inc("c")
        obs.collect_workers()
        obs.close()

    def test_span_is_shared_noop(self):
        with NULL_OBSERVER.span("sim_loop") as span:
            span.add(events_executed=5)
        assert span.wall_s == 0.0
        assert NULL_OBSERVER.span("a") is NULL_OBSERVER.span("b")


class TestJournalObserver:
    def test_emit_writes_events(self, tmp_path):
        with JournalObserver(tmp_path / "j.jsonl", worker=5) as obs:
            obs.emit("run_started", scenario="s", seed=1)
        events = read_journal(tmp_path / "j.jsonl")
        assert events[0]["event"] == "run_started"
        assert events[0]["worker"] == 5

    def test_span_times_and_journals(self, tmp_path):
        with JournalObserver(tmp_path / "j.jsonl") as obs:
            with obs.span("sim_loop", scenario="s") as span:
                span.add(events_executed=42)
        assert span.wall_s > 0.0
        record = read_journal(tmp_path / "j.jsonl")[0]
        assert record["event"] == "span"
        assert record["phase"] == "sim_loop"
        assert record["events_executed"] == 42
        assert record["wall_s"] == pytest.approx(span.wall_s)

    def test_registry_counts_events(self, tmp_path):
        registry = MetricsRegistry()
        with JournalObserver(tmp_path / "j.jsonl", registry=registry) as obs:
            obs.emit("run_finished", scenario="s")
            obs.emit("cache_hit")
            obs.emit("cache_miss")
            obs.emit("worker_error")
        assert registry.counter("runs_total").value == 1
        assert registry.counter("cache_hits_total").value == 1
        assert registry.counter("cache_misses_total").value == 1
        assert registry.counter("worker_errors_total").value == 1


class TestTracingObserver:
    def test_creates_dir_and_exports_metrics_on_close(self, tmp_path):
        trace = tmp_path / "trace"
        with TracingObserver(trace) as obs:
            obs.emit("run_finished", scenario="s")
            obs.set_gauge("sim_events_per_second", 1000.0)
        prom = (trace / METRICS_PROM_FILENAME).read_text()
        assert "runs_total 1" in prom
        assert "sim_events_per_second 1000" in prom
        payload = json.loads((trace / METRICS_JSON_FILENAME).read_text())
        assert payload["version"] == 1

    def test_collect_workers_merges_and_counts(self, tmp_path):
        trace = tmp_path / "trace"
        obs = TracingObserver(trace)
        with JournalWriter(trace / "worker-9.jsonl", worker=9) as worker:
            worker.write("run_finished", item=0, scenario="s")
        obs.collect_workers()
        obs.close()
        events = read_journal(trace)
        assert any(
            e["event"] == "run_finished" and e["worker"] == 9 for e in events
        )
        assert list(trace.glob("worker-*.jsonl")) == []
        assert "runs_total 1" in (trace / METRICS_PROM_FILENAME).read_text()


class TestResolve:
    def test_none_is_the_shared_noop(self):
        assert resolve_observer(None) is NULL_OBSERVER

    def test_path_builds_tracing_observer(self, tmp_path):
        obs = resolve_observer(tmp_path / "trace")
        try:
            assert isinstance(obs, TracingObserver)
            assert obs.enabled
        finally:
            obs.close()

    def test_observer_passes_through(self):
        assert resolve_observer(NULL_OBSERVER) is NULL_OBSERVER

    def test_bad_type_raises(self):
        with pytest.raises(ObservabilityError):
            resolve_observer(42)
