"""MetricsRegistry: counters, gauges, histograms and their exports."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("runs_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ObservabilityError):
            Counter("runs_total").inc(-1.0)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("events_per_second")
        g.set(10.0)
        g.set(4.0)
        assert g.value == 4.0


class TestHistogram:
    def test_requires_ascending_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))

    def test_value_on_bucket_edge_falls_in_that_bucket(self):
        # Prometheus buckets are `le` (less-or-equal): an observation
        # exactly on a boundary belongs to that bucket, not the next.
        h = Histogram("h", buckets=(0.1, 1.0))
        h.observe(0.1)
        samples = dict(h.samples())
        assert samples['h_bucket{le="0.1"}'] == 1
        assert samples['h_bucket{le="1"}'] == 1  # cumulative, not 0

    def test_above_all_bounds_lands_only_in_inf(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        h.observe(100.0)
        samples = dict(h.samples())
        assert samples['h_bucket{le="0.1"}'] == 0
        assert samples['h_bucket{le="1"}'] == 0
        assert samples['h_bucket{le="+Inf"}'] == 1

    def test_inf_bucket_always_counts_everything(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 1.0, 2.0):
            h.observe(v)
        samples = dict(h.samples())
        assert samples['h_bucket{le="+Inf"}'] == h.count == 4

    def test_cumulative_counts_are_monotone(self):
        h = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        samples = dict(h.samples())
        counts = [
            samples['h_bucket{le="0.1"}'],
            samples['h_bucket{le="1"}'],
            samples['h_bucket{le="10"}'],
            samples['h_bucket{le="+Inf"}'],
        ]
        assert counts == [1, 2, 3, 4]

    def test_observations_export_cumulative_buckets(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        samples = dict(h.samples())
        assert samples['h_bucket{le="0.1"}'] == 1
        assert samples['h_bucket{le="1"}'] == 2  # cumulative
        assert samples['h_bucket{le="+Inf"}'] == 3
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", labels={"k": "v"}) is not reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", help="completed runs").inc(3)
        reg.gauge("speed").set(1.5)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP runs_total completed runs" in text
        assert "# TYPE runs_total counter" in text
        assert "runs_total 3" in text
        assert "speed 1.5" in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_labels_render_sorted(self):
        reg = MetricsRegistry()
        reg.counter("e", labels={"b": "2", "a": "1"}).inc()
        assert 'e{a="1",b="2"} 1' in reg.render_prometheus()

    def test_label_value_backslash_is_escaped(self):
        reg = MetricsRegistry()
        reg.counter("e", labels={"path": "C:\\traces"}).inc()
        assert 'e{path="C:\\\\traces"} 1' in reg.render_prometheus()

    def test_label_value_double_quote_is_escaped(self):
        reg = MetricsRegistry()
        reg.counter("e", labels={"name": 'say "hi"'}).inc()
        assert 'e{name="say \\"hi\\""} 1' in reg.render_prometheus()

    def test_label_value_newline_is_escaped(self):
        reg = MetricsRegistry()
        reg.counter("e", labels={"msg": "line1\nline2"}).inc()
        text = reg.render_prometheus()
        assert 'e{msg="line1\\nline2"} 1' in text
        # exposition stays one sample per line
        assert "line1\nline2" not in text

    def test_to_dict_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("runs_total").inc()
        reg.histogram("lat").observe(0.2)
        payload = json.loads(json.dumps(reg.to_dict()))
        assert payload["version"] == 1
        names = {m["name"] for m in payload["metrics"]}
        assert {"runs_total", "lat"} <= names
