"""System-level invariants and property tests across the whole stack.

These tests don't target one module; they pin down properties any
network-energy simulator must satisfy: determinism, byte conservation,
energy monotonicity, measurement-window additivity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import calibration as cal
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once
from repro.net.topology import TestbedConfig, build_testbed
from repro.apps.iperf import IperfSession, run_until_complete
from repro.sim.engine import Simulator


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        scenario = Scenario("det", flows=[FlowSpec(3_000_000, cca="cubic")])
        a = run_once(scenario, seed=42)
        b = run_once(scenario, seed=42)
        assert a.energy_j == b.energy_j
        assert a.duration_s == b.duration_s
        assert a.total_retransmissions == b.total_retransmissions

    def test_event_counts_deterministic(self):
        counts = []
        for _ in range(2):
            sim = Simulator()
            testbed = build_testbed(sim, TestbedConfig())
            session = IperfSession(testbed, total_bytes=2_000_000)
            run_until_complete(testbed, [session])
            counts.append(sim.events_executed)
        assert counts[0] == counts[1]


class TestByteConservation:
    @pytest.mark.parametrize("cca", ["cubic", "baseline", "bbr"])
    def test_receiver_gets_exactly_the_payload(self, cca):
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig())
        session = IperfSession(testbed, total_bytes=5_000_000, cca=cca)
        run_until_complete(testbed, [session], time_limit_s=60)
        assert session.receiver.bytes_received == 5_000_000
        assert session.receiver.rcv_nxt == 5_000_000

    def test_sent_equals_payload_plus_retransmissions(self):
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig())
        session = IperfSession(testbed, total_bytes=5_000_000, cca="baseline")
        run_until_complete(testbed, [session], time_limit_s=60)
        sent = session.sender.counters.get("bytes_sent")
        assert sent >= 5_000_000
        # retransmitted bytes = sent - payload (within one MSS of slack)
        retx_segments = session.sender.counters.get("retransmits")
        assert sent - 5_000_000 <= (retx_segments + 1) * session.sender.mss


class TestEnergyInvariants:
    def test_energy_at_least_idle_floor(self):
        """No run can consume less than idle power x duration."""
        m = run_once(
            Scenario("floor", flows=[FlowSpec(2_000_000)], packages=1)
        )
        assert m.energy_j >= cal.P_IDLE_W * m.duration_s * 0.98

    def test_energy_additive_across_packages(self):
        one = run_once(
            Scenario(
                "p1", flows=[FlowSpec(2_000_000)], packages=1,
                power_noise_sigma=0.0, start_jitter_s=0.0,
            )
        )
        three = run_once(
            Scenario(
                "p3", flows=[FlowSpec(2_000_000)], packages=3,
                power_noise_sigma=0.0, start_jitter_s=0.0,
            )
        )
        extra = three.energy_j - one.energy_j
        assert extra == pytest.approx(
            2 * cal.P_IDLE_W * one.duration_s, rel=0.02
        )

    def test_more_bytes_more_energy(self):
        small = run_once(
            Scenario("s", flows=[FlowSpec(2_000_000)], packages=1)
        )
        large = run_once(
            Scenario("l", flows=[FlowSpec(8_000_000)], packages=1)
        )
        assert large.energy_j > small.energy_j

    @given(size_mb=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_energy_scales_roughly_linearly(self, size_mb):
        """Doubling the transfer roughly doubles the energy (steady
        state dominates at these sizes)."""
        base = run_once(
            Scenario(
                "b", flows=[FlowSpec(size_mb * 1_000_000)], packages=1,
                power_noise_sigma=0.0, start_jitter_s=0.0,
            )
        )
        double = run_once(
            Scenario(
                "d", flows=[FlowSpec(2 * size_mb * 1_000_000)], packages=1,
                power_noise_sigma=0.0, start_jitter_s=0.0,
            )
        )
        ratio = double.energy_j / base.energy_j
        assert 1.5 <= ratio <= 2.6


class TestMeasurementWindow:
    def test_power_between_idle_and_busy(self):
        m = run_once(
            Scenario("w", flows=[FlowSpec(5_000_000)], packages=1)
        )
        assert cal.P_IDLE_W * 0.95 <= m.average_power_w <= 60.0

    def test_duration_covers_all_flows(self):
        scenario = Scenario(
            "multi",
            flows=[FlowSpec(2_000_000), FlowSpec(2_000_000, after_flow=0)],
        )
        m = run_once(scenario)
        assert m.duration_s >= m.completion_time_s * 0.999
