#!/usr/bin/env python3
"""Quickstart: the paper's headline result in ~30 lines.

Two 12.5 MB transfers share a simulated 10 Gb/s link. Run them the
TCP-fair way (both at 5 Gb/s) and the "full speed, then idle" way
(serialized at line rate), and compare measured end-host energy.

Expected output: the serialized schedule saves ~16 % — exactly the
paper's Figure 1 endpoint.
"""

from repro.harness import FlowSpec, Scenario, run_once
from repro.units import gbps

TRANSFER_BYTES = 12_500_000  # 0.1 Gbit: 1/100 of the paper's per-flow size


def main() -> None:
    fair = Scenario(
        "fair-share",
        flows=[
            FlowSpec(TRANSFER_BYTES, cca="cubic", target_rate_bps=gbps(5.0)),
            FlowSpec(TRANSFER_BYTES, cca="cubic", target_rate_bps=gbps(5.0)),
        ],
    )
    greedy = Scenario(
        "full-speed-then-idle",
        flows=[
            FlowSpec(TRANSFER_BYTES, cca="cubic"),
            FlowSpec(TRANSFER_BYTES, cca="cubic", after_flow=0),
        ],
    )

    print(f"{'schedule':<22} {'energy':>9} {'duration':>9} {'avg power':>10}")
    measurements = {}
    for scenario in (fair, greedy):
        m = run_once(scenario, seed=1)
        measurements[scenario.name] = m
        print(
            f"{scenario.name:<22} {m.energy_j:8.3f}J {m.duration_s:8.4f}s "
            f"{m.average_power_w:9.2f}W"
        )

    saved = 1 - (
        measurements["full-speed-then-idle"].energy_j
        / measurements["fair-share"].energy_j
    )
    print(f"\nfull-speed-then-idle saves {saved:.1%} (paper: ~16%)")


if __name__ == "__main__":
    main()
