#!/usr/bin/env python3
"""The paper's §5 agenda, end to end: a green datacenter playbook.

Walks the three network-side levers the paper's future-work section
proposes, with measured numbers from the simulated testbed:

1. **Transport**: run SRPT-approximating scheduling (pFabric-style
   priorities) instead of fair sharing.
2. **Fan-in**: avoid spreading a fixed aggregate across many
   synchronized senders (incast is enforced fairness across hosts).
3. **Routing**: consolidate traffic onto fewer links — worthless on
   today's load-independent switches, profitable on rate-adaptive
   hardware.
"""

from repro.figures.incast import run_incast_sweep
from repro.figures.load_balance import run_hardware_comparison
from repro.figures.srpt import run_srpt_comparison


def main() -> None:
    print("=" * 64)
    print("1. transport: SRPT vs fair sharing")
    print("=" * 64)
    srpt = run_srpt_comparison()
    print(srpt.format_table())
    print(
        f"\npFabric-style SRPT saves "
        f"{srpt.energy_savings_vs_fair('pfabric'):.1%} energy and cuts "
        f"mean FCT {srpt.fct_speedup_vs_fair('pfabric'):.1f}x\n"
    )

    print("=" * 64)
    print("2. fan-in: the energy cost of incast")
    print("=" * 64)
    incast = run_incast_sweep(fan_ins=(1, 2, 4, 8))
    print(incast.format_table())
    print(
        f"\nsame bytes, same bottleneck — but 8-way fan-in costs "
        f"{incast.energy_growth():.1f}x the energy of one sender\n"
    )

    print("=" * 64)
    print("3. routing: load imbalance across links")
    print("=" * 64)
    today, adaptive = run_hardware_comparison()
    print(today.format_table())
    print()
    print(adaptive.format_table())
    print(
        f"\non rate-adaptive hardware, consolidation saves up to "
        f"{adaptive.max_savings():.1%} of switch power; on today's "
        f"hardware, exactly 0%"
    )


if __name__ == "__main__":
    main()
