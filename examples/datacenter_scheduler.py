#!/usr/bin/env python3
"""Green scheduling for a batch of datacenter transfers.

The workload the paper's intro motivates: a rack-level host has a batch
of bulk transfers (backup shards, ML training data, VM images) to push
through one 10 Gb/s uplink. The :class:`EnergyAdvisor` predicts the
energy of fair sharing vs SRPT-serialized line-rate execution, and the
simulation backs the prediction with a measured run of both schedules.
"""

from repro.core.advisor import EnergyAdvisor
from repro.harness import FlowSpec, Scenario, run_once
from repro.units import megabytes

#: the batch: mixed transfer sizes, as a real rack sees them
BATCH_MB = (25, 5, 15, 10)


def simulate(schedule: str) -> float:
    """Measure one schedule's energy end-to-end in the simulator."""
    sizes = [megabytes(mb) for mb in BATCH_MB]
    if schedule == "fair":
        # Plain TCP: all flows compete, each gets ~C/n, and capacity is
        # reallocated as flows finish — processor sharing in practice.
        flows = [FlowSpec(size, cca="cubic") for size in sizes]
    else:  # serialized, shortest first (SRPT)
        flows = []
        for i, size in enumerate(sorted(sizes)):
            flows.append(
                FlowSpec(size, cca="cubic", after_flow=i - 1 if i else None)
            )
    scenario = Scenario(f"batch-{schedule}", flows=flows)
    return run_once(scenario, seed=3).energy_j


def main() -> None:
    advisor = EnergyAdvisor(capacity_gbps=10.0)
    sizes = [megabytes(mb) for mb in BATCH_MB]

    print(f"batch: {', '.join(f'{mb} MB' for mb in BATCH_MB)}\n")
    print("analytic prediction (power-model arithmetic):")
    rec = advisor.recommend(sizes)
    print(f"  schedule:          {' -> '.join(rec.schedule)}")
    print(f"  fair-share energy: {rec.fair_energy_j:9.3f} J")
    print(f"  serialized energy: {rec.serialized_energy_j:9.3f} J")
    print(f"  predicted saving:  {rec.savings_fraction:9.1%}")

    print("\nsimulated confirmation (full TCP + energy stack):")
    fair_j = simulate("fair")
    serialized_j = simulate("srpt")
    measured = 1 - serialized_j / fair_j
    print(f"  fair-share energy: {fair_j:9.3f} J")
    print(f"  serialized energy: {serialized_j:9.3f} J")
    print(f"  measured saving:   {measured:9.1%}")

    dollars = advisor.annualized_value(measured)
    print(
        f"\nif this saving held fleet-wide at 100k racks: "
        f"${dollars / 1e6:.0f}M/year"
    )


if __name__ == "__main__":
    main()
