#!/usr/bin/env python3
"""Energy audit of congestion control algorithms (the paper's §4.3).

Transmits the same payload with each CCA on the simulated testbed and
reports energy, average power, completion time and retransmissions —
the per-algorithm "energy bill" an operator choosing a datacenter
transport would want to see.

Run with a larger --bytes value for tighter numbers (the default keeps
the demo under a minute).
"""

import argparse

from repro.analysis.tables import format_table
from repro.cc.registry import PAPER_ALGORITHMS
from repro.harness import FlowSpec, Scenario, run_repeated


def audit(transfer_bytes: int, mtu: int, repetitions: int):
    rows = []
    for cca in PAPER_ALGORITHMS:
        scenario = Scenario(
            name=f"audit-{cca}",
            flows=[FlowSpec(transfer_bytes, cca=cca)],
            mtu_bytes=mtu,
            packages=1,
        )
        result = run_repeated(scenario, repetitions=repetitions)
        rows.append(
            (
                cca,
                result.mean_energy_j,
                result.std_energy_j,
                result.mean_power_w,
                result.mean_duration_s * 1e3,
                int(result.mean_retransmissions),
            )
        )
    rows.sort(key=lambda r: r[1])
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=20_000_000)
    parser.add_argument("--mtu", type=int, default=9000)
    parser.add_argument("--reps", type=int, default=2)
    args = parser.parse_args()

    rows = audit(args.bytes, args.mtu, args.reps)
    print(
        f"\nEnergy audit: {args.bytes / 1e6:.0f} MB per flow, "
        f"MTU {args.mtu}, {args.reps} runs each\n"
    )
    print(
        format_table(
            ["cca", "energy (J)", "std", "power (W)", "fct (ms)", "retx"],
            rows,
        )
    )
    cheapest, most_expensive = rows[0], rows[-1]
    spread = (most_expensive[1] - cheapest[1]) / cheapest[1]
    print(
        f"\n{cheapest[0]} is the most energy-efficient; "
        f"{most_expensive[0]} costs {spread:.0%} more."
    )


if __name__ == "__main__":
    main()
