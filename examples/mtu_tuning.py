#!/usr/bin/env python3
"""MTU tuning for energy (the paper's §4.4).

Sweeps the testbed MTU for a single CUBIC transfer and reports energy,
throughput and the host's packet rate — showing why datacenter operators
run jumbo frames: fewer packets per byte means less per-packet CPU work
*and* enough packet-rate headroom to reach line rate.
"""

import argparse

from repro.analysis.tables import format_table
from repro.harness import FlowSpec, Scenario, run_repeated

MTUS = (1500, 3000, 6000, 9000)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=20_000_000)
    parser.add_argument("--cca", default="cubic")
    parser.add_argument("--reps", type=int, default=2)
    args = parser.parse_args()

    rows = []
    baseline_energy = None
    for mtu in MTUS:
        scenario = Scenario(
            name=f"mtu-{mtu}",
            flows=[FlowSpec(args.bytes, cca=args.cca)],
            mtu_bytes=mtu,
            packages=1,
        )
        result = run_repeated(scenario, repetitions=args.reps)
        throughput_gbps = (
            args.bytes * 8 / result.mean_duration_s / 1e9
        )
        if baseline_energy is None:
            baseline_energy = result.mean_energy_j
        saving = 1 - result.mean_energy_j / baseline_energy
        rows.append(
            (
                mtu,
                result.mean_energy_j,
                result.mean_power_w,
                throughput_gbps,
                f"{saving:+.1%}",
            )
        )

    print(f"\nMTU sweep: {args.cca}, {args.bytes / 1e6:.0f} MB per run\n")
    print(
        format_table(
            ["MTU (B)", "energy (J)", "power (W)", "tput (Gb/s)", "vs 1500"],
            rows,
        )
    )
    print(
        "\njumbo frames win twice: less per-packet CPU work and enough "
        "pps headroom for line rate (paper: 13.4-31.9% energy saving)."
    )


if __name__ == "__main__":
    main()
