"""Setuptools shim so editable installs work without the `wheel` package
(this environment is offline; PEP 660 editable installs need bdist_wheel).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
