"""Discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timestamped events and a
virtual clock. Everything in the library — link transmissions, TCP
timers, energy sampling, application logic — runs as callbacks scheduled
on one simulator instance.

Design notes
------------
* Events at the same timestamp run in FIFO scheduling order (a strictly
  increasing sequence number breaks ties), which makes runs deterministic.
* Cancellation is O(1): :meth:`Event.cancel` marks the event dead and the
  main loop skips it. This is the standard "lazy deletion" heap idiom and
  avoids O(n) heap surgery for the very common cancel-and-rearm pattern of
  TCP retransmission timers. The simulator keeps an exact tally of dead
  entries so :attr:`Simulator.pending_events` reports *live* events even
  though cancelled ones still occupy heap slots until popped
  (:attr:`Simulator.queued_events` exposes the raw heap size).
* The kernel knows nothing about networking or energy; those layers only
  use :meth:`Simulator.schedule` / :attr:`Simulator.now`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.probe import NULL_PROBE_SINK, ProbeSink
from repro.sim.profile import (
    EVENTS_DISPATCHED,
    NULL_PROFILER,
    HotPathProfiler,
    dispatch_key,
)

Callback = Callable[..., None]


class Event:
    """A single scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in timestamp
    order with FIFO tie-breaking. The callback and its arguments do not
    participate in ordering. One Event is allocated per scheduled
    callback — every simulated packet, timer and sample — so the class
    uses ``__slots__``.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callback,
        args: tuple = (),
        cancelled: bool = False,
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        #: back-reference while the event sits in a simulator's heap, so
        #: cancel() can keep the live-event tally exact; cleared when the
        #: event is popped (consumed or compacted).
        self.sim = sim

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, "
            f"callback={self.callback!r}, args={self.args!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark this event dead; the simulator will skip it."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancelled()

    @property
    def alive(self) -> bool:
        """Whether the event is still pending (not cancelled or executed)."""
        return not self.cancelled


class Simulator:
    """Event-driven virtual-time simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5s"))
        sim.run()

    The clock starts at 0.0 and only advances when :meth:`run` (or
    :meth:`step`) executes events.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._events_executed = 0
        #: cancelled-but-not-yet-popped heap entries (lazy deletion)
        self._dead_in_queue = 0
        #: where instrumented components (TCP senders, queues, CPU
        #: packages) send telemetry samples; the shared no-op by
        #: default, swapped by the harness when telemetry is collected.
        #: Write-only from the simulation's perspective — nothing here
        #: ever reads it back.
        self.probe_sink: ProbeSink = NULL_PROBE_SINK
        #: hot-path profiler, same one-way contract as the probe sink:
        #: the shared no-op by default, swapped by the harness when a
        #: profile is collected. Dispatch reports only aggregate
        #: per-event-type counts and component enter/exit marks.
        self.profiler: HotPathProfiler = NULL_PROFILER

    # -- clock --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued.

        Cancelled events stay in the heap until popped (lazy deletion)
        but are excluded here, so this is the number of callbacks that
        will actually fire — the quantity 10k-flow diagnostics care
        about. See :attr:`queued_events` for the raw heap size.
        """
        return len(self._queue) - self._dead_in_queue

    @property
    def queued_events(self) -> int:
        """Raw heap size, cancelled entries included (memory diagnostics)."""
        return len(self._queue)

    @property
    def dead_in_queue(self) -> int:
        """Cancelled-but-not-yet-popped heap entries (the lazy-deletion
        tally). ``queued_events - pending_events`` by construction; a
        large value means the heap is bloated with dead timers."""
        return self._dead_in_queue

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the event is heap-resident."""
        self._dead_in_queue += 1

    # -- scheduling ---------------------------------------------------

    def schedule(self, delay: float, callback: Callback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.9f}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f} before now={self._now:.9f}"
            )
        event = Event(
            time=time, seq=self._seq, callback=callback, args=args, sim=self
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # -- execution ----------------------------------------------------

    def step(self) -> bool:
        """Execute the next live event. Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._dead_in_queue -= 1
                event.sim = None
                continue
            self._now = event.time
            # consumed: drop the heap back-reference *before* marking
            # cancelled so a later cancel() neither double-counts nor
            # touches the tally
            event.sim = None
            event.cancelled = True
            self._events_executed += 1
            profiler = self.profiler
            if profiler.enabled:
                key = dispatch_key(event.callback)
                profiler.count(EVENTS_DISPATCHED)
                profiler.enter(key)
                try:
                    event.callback(*event.args)
                finally:
                    profiler.exit(key)
            else:
                event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Returns the virtual time at which execution stopped. When ``until``
        is given, the clock is advanced to exactly ``until`` even if the
        last event fired earlier (matching how a wall-clock measurement
        window behaves on a real testbed).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                head = queue[0]
                if head.cancelled:
                    heapq.heappop(queue).sim = None
                    self._dead_in_queue -= 1
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue).sim = None
            self._dead_in_queue -= 1
        return self._queue[0].time if self._queue else None
