"""Discrete-event simulation kernel: clock, events, timers, RNG, tracing."""

from __future__ import annotations

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.timer import PeriodicTimer, Timer
from repro.sim.trace import CounterSet, TimeSeries

__all__ = [
    "Event",
    "Simulator",
    "Timer",
    "PeriodicTimer",
    "RngRegistry",
    "derive_seed",
    "TimeSeries",
    "CounterSet",
]
