"""Restartable one-shot timers on top of the event kernel.

TCP needs timers that are constantly re-armed (retransmission timeout),
stopped (when the last outstanding segment is acknowledged) and queried
("is the RTO pending?"). :class:`Timer` wraps the cancel-and-reschedule
dance so protocol code stays readable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator


class Timer:
    """A one-shot timer that can be (re)started and stopped.

    The callback fires at most once per :meth:`start`; restarting an armed
    timer cancels the previous deadline, which is exactly the semantics of
    a TCP retransmission timer being pushed out by each new ACK.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., None], *args: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """Whether the timer is armed and has not yet fired."""
        return self._event is not None and self._event.alive

    @property
    def expiry(self) -> Optional[float]:
        """Absolute virtual time the timer will fire, or None if unarmed."""
        if self.pending:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"timer delay must be >= 0, got {delay}")
        self.stop()
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed; a no-op otherwise."""
        if self._event is not None and self._event.alive:
            self._event.cancel()
        self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback(*self._args)


class PeriodicTimer:
    """A timer that fires every ``interval`` seconds until stopped.

    Used by the energy meter's sampling loop and by paced senders.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., None],
        *args: Any,
    ):
        if interval <= 0:
            raise SimulationError(f"interval must be > 0, got {interval}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the periodic timer is active."""
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start ticking. First tick after ``initial_delay`` (default: one
        full interval)."""
        self.stop()
        self._running = True
        delay = self.interval if initial_delay is None else initial_delay
        self._event = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop ticking."""
        self._running = False
        if self._event is not None and self._event.alive:
            self._event.cancel()
        self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback(*self._args)
        if self._running:  # the callback may have stopped us
            self._event = self._sim.schedule(self.interval, self._tick)
