"""Telemetry probe sinks: how the simulated testbed reports time series.

The paper's claims are *trajectory* claims — power is concave in
throughput (§4.1), energy tracks retransmissions (§4.5) — so the
reproduction needs in-flight series (cwnd, queue depth, instantaneous
power) the way the harness-level journal records run outcomes. This
module defines the neutral half of that channel:

* :class:`ProbeSink` — the no-op protocol instrumented components call.
  Emission sites gate on :attr:`ProbeSink.enabled` and hand over only
  ``(virtual time, channel, entity, value)`` copies, so an untraced run
  pays an attribute read and a branch per sample point.
* :class:`TimeSeriesProbeSink` — records samples into per-
  ``(channel, entity)`` :class:`~repro.sim.trace.TimeSeries`, with
  optional interval-based downsampling for high-rate channels (per-ACK
  cwnd samples at 10 Gb/s arrive every few microseconds).
* :class:`FanoutProbeSink` — duplicates samples to several sinks, for
  callers that want a local series *and* the trace-directory recorder.

The sink protocol deliberately lives sim-side: instrumented components
(``tcp/sender.py``, ``net/queue.py``, ``energy/cpu.py``) import *this*
module, never ``repro.obs``, so the ``obs-no-feedback`` lint rule — the
simulation must not read observability state — keeps holding. The
observability layer implements the protocol from the other side
(:mod:`repro.obs.telemetry`). Samples are stamped exclusively with
virtual time; the ``obs-probe-wall-clock`` lint rule bans the journal's
wall-clock helpers from any module defining a sink.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.trace import TimeSeries

#: a probe stream's identity: (channel, entity), e.g.
#: ("cwnd_bytes", "flow-1") or ("queue_depth_bytes", "bottleneck")
ProbeKey = Tuple[str, str]

#: channel names the shipped emission sites use
CWND_CHANNEL = "cwnd_bytes"
SSTHRESH_CHANNEL = "ssthresh_bytes"
SRTT_CHANNEL = "srtt_s"
RETRANSMITS_CHANNEL = "retransmits"
QUEUE_DEPTH_CHANNEL = "queue_depth_bytes"
QUEUE_DROPS_CHANNEL = "queue_drops"
POWER_CHANNEL = "power_w"
ENERGY_CHANNEL = "energy_j"
THROUGHPUT_CHANNEL = "throughput_bps"


class ProbeSink:
    """No-op telemetry sink: the zero-overhead default.

    Instrumented components call ``sink.sample(...)`` after checking
    :attr:`enabled`; the base class swallows everything, so simulation
    behaviour is identical whether telemetry is collected or not — the
    sink only ever receives copies of numbers, never objects the
    simulation reads back.
    """

    #: emission sites skip sample construction when this is False
    enabled: bool = False

    def sample(
        self, time_s: float, channel: str, entity: str, value: float
    ) -> None:
        """Record one ``(virtual time, value)`` sample on a channel."""


#: the shared no-op sink every simulator starts with
NULL_PROBE_SINK = ProbeSink()


class TimeSeriesProbeSink(ProbeSink):
    """Records samples into one :class:`TimeSeries` per (channel, entity).

    ``min_interval_s`` downsamples each stream independently: after a
    kept sample, further samples on the same stream are dropped until
    at least that much virtual time has passed. ``None`` keeps every
    sample (what figure pipelines reading exact series want).
    """

    enabled = True

    def __init__(self, min_interval_s: Optional[float] = None):
        if min_interval_s is not None and min_interval_s < 0:
            raise ValueError(
                f"min_interval_s must be >= 0, got {min_interval_s}"
            )
        self.min_interval_s = min_interval_s
        self._series: Dict[ProbeKey, TimeSeries] = {}
        self._last_kept: Dict[ProbeKey, float] = {}

    def sample(
        self, time_s: float, channel: str, entity: str, value: float
    ) -> None:
        key = (channel, entity)
        series = self._series.get(key)
        if series is None:
            # runs once per (channel, entity), not per event: the branch
            # is only taken on a stream's very first sample
            series = TimeSeries(name=f"{entity}:{channel}")  # simlint: ignore[perf-alloc-in-hot-path]
            self._series[key] = series
        elif self.min_interval_s is not None:
            if time_s - self._last_kept[key] < self.min_interval_s:
                return
        series.record(time_s, value)
        self._last_kept[key] = time_s

    def series(self, channel: str, entity: str) -> TimeSeries:
        """The recorded series for one stream (empty if never sampled)."""
        return self._series.get(
            (channel, entity), TimeSeries(name=f"{entity}:{channel}")
        )

    def channels(self) -> List[str]:
        """Distinct channel names seen, sorted."""
        return sorted({channel for channel, _entity in self._series})

    def items(self) -> Iterator[Tuple[ProbeKey, TimeSeries]]:
        """All recorded streams in (channel, entity) order."""
        for key in sorted(self._series):
            yield key, self._series[key]

    def __len__(self) -> int:
        return len(self._series)


class FanoutProbeSink(ProbeSink):
    """Duplicates every sample to each of several sinks."""

    enabled = True

    def __init__(self, *sinks: ProbeSink):
        self.sinks = [sink for sink in sinks if sink.enabled]

    def sample(
        self, time_s: float, channel: str, entity: str, value: float
    ) -> None:
        for sink in self.sinks:
            sink.sample(time_s, channel, entity, value)
