"""Hot-path profiler protocol: the neutral half of the profiling channel.

ROADMAP item 1 calls for a *profile-driven* engine overhaul, which needs
to know where the event loop's time goes — but the simulation must never
read observability state back (the ``obs-no-feedback`` contract). This
module mirrors :mod:`repro.sim.probe`: it defines the write-only
protocol instrumented hot paths call, and the observability layer
(:mod:`repro.obs.profile`) implements the recording half from the other
side. The ``obs-profile-no-sim-import`` lint rule enforces exactly that
direction.

The protocol is aggregate-only by design. Hot paths report *which*
component is running (``enter``/``exit``) and *what* happened
(``count``); any wall-clock reads happen inside the obs-side
implementation, and only aggregate deltas ever leave it — never
per-event timestamps, and nothing sim-visible, so the
``obs-probe-wall-clock`` and determinism guarantees hold whether
profiling is on or off.
"""

from __future__ import annotations

#: component keys the shipped instrumentation sites use; dispatch keys
#: (one per event callback) are derived from the callback's qualname by
#: the engine and prefixed with ``DISPATCH_PREFIX``
DISPATCH_PREFIX = "sim.dispatch"
QUEUE_ENQUEUE = "net.queue.enqueue"
QUEUE_DEQUEUE = "net.queue.dequeue"
TCP_HANDLE_PACKET = "tcp.sender.handle_packet"

#: counter keys (``count(...)``), all aggregate tallies
EVENTS_DISPATCHED = "events_dispatched"


class HotPathProfiler:
    """No-op profiler: the zero-overhead default.

    Instrumented hot paths gate on :attr:`enabled` before calling any
    hook, so an unprofiled run pays one attribute read and a branch per
    site. The base class swallows everything; subclasses (obs-side)
    accumulate per-component aggregates. Hooks are write-only: nothing
    returns state the simulation could branch on.
    """

    #: instrumentation sites skip hook calls when this is False
    enabled: bool = False

    def count(self, key: str, n: int = 1) -> None:
        """Add ``n`` to an aggregate tally (e.g. per-event-type counts)."""

    def enter(self, component: str) -> None:
        """Mark entry into a profiled component (nestable)."""

    def exit(self, component: str) -> None:
        """Mark exit from the most recently entered component."""


#: the shared no-op profiler every simulator starts with
NULL_PROFILER = HotPathProfiler()


#: memoized qualname -> key strings, so the per-event cost is one dict
#: lookup. Keyed by the name (bounded: one entry per distinct callback
#: qualname), never by the callback object — holding closures alive
#: across runs would be a leak. Lookups only, never iterated.
_DISPATCH_KEYS: dict = {}


def dispatch_key(callback: object) -> str:
    """The deterministic per-event-type key for an engine callback.

    Bound methods and plain functions map to their qualified name
    (``TcpSender._on_rto``); anything without one falls back to the
    type name. Never includes ids or addresses, so keys are identical
    across runs, interpreters and worker processes.
    """
    func = getattr(callback, "__func__", callback)
    name = getattr(func, "__qualname__", None)
    if name is None:
        name = type(callback).__name__
    key = _DISPATCH_KEYS.get(name)
    if key is None:
        # runs once per distinct callback qualname, not per event
        key = f"{DISPATCH_PREFIX}.{name}"  # simlint: ignore[perf-alloc-in-hot-path]
        _DISPATCH_KEYS[name] = key
    return key
