"""Time-series recording for simulations.

The paper's figures need per-interval throughput samples (Fig. 3), power
samples (Fig. 2/4) and event counts (retransmissions, Fig. 8). Two small
primitives cover all of them:

* :class:`TimeSeries` — (time, value) samples with summary helpers.
* :class:`CounterSet` — named monotonic counters (packets sent, bytes
  acked, retransmissions, ...), the simulation analogue of ``netstat -s``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterator, List, Optional, Tuple


class TimeSeries:
    """An append-only series of (time, value) samples.

    Probe sinks allocate one per telemetry channel inside the event
    loop, so the class defines ``__slots__``.
    """

    __slots__ = ("name", "times", "values")

    def __init__(
        self,
        name: str = "",
        times: Optional[List[float]] = None,
        values: Optional[List[float]] = None,
    ) -> None:
        self.name = name
        # fresh lists are the mutable defaults; one series is built per
        # telemetry stream, not per event
        self.times: List[float] = [] if times is None else times  # simlint: ignore[perf-alloc-in-hot-path]
        self.values: List[float] = [] if values is None else values  # simlint: ignore[perf-alloc-in-hot-path]

    def __repr__(self) -> str:
        return (
            f"TimeSeries(name={self.name!r}, times={self.times!r}, "
            f"values={self.values!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (self.name, self.times, self.values) == (
            other.name,
            other.times,
            other.values,
        )

    __hash__ = None  # mutable, like the dataclass it replaced

    def record(self, time: float, value: float) -> None:
        """Append a sample. Times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"{self.name or 'series'}: time went backwards "
                f"({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    @property
    def last(self) -> float:
        """Most recent value (raises IndexError when empty)."""
        return self.values[-1]

    def mean(self) -> float:
        """Arithmetic mean of the sample values."""
        if not self.values:
            raise ValueError(f"{self.name or 'series'} is empty")
        return sum(self.values) / len(self.values)

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with start <= time < end, as a new series."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return TimeSeries(
            name=self.name, times=self.times[lo:hi], values=self.values[lo:hi]
        )

    def integrate(self) -> float:
        """Trapezoidal integral of value over time.

        Integrating a power series (watts) over time yields energy
        (joules) — the core operation of the RAPL emulation.
        """
        total = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total += 0.5 * (self.values[i] + self.values[i - 1]) * dt
        return total

    def value_at(self, time: float) -> float:
        """Most recent sample value at or before ``time`` (step semantics)."""
        idx = bisect_right(self.times, time) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self.values[idx]

    def resample(self, interval: float) -> "TimeSeries":
        """Average into fixed ``interval``-wide bins (used by Fig. 3)."""
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if not self.times:
            return TimeSeries(name=self.name)
        out = TimeSeries(name=self.name)
        start = self.times[0]
        end = self.times[-1]
        t = start
        while t < end or not len(out):
            chunk = self.window(t, t + interval)
            if len(chunk):
                out.record(t, chunk.mean())
            t += interval
        return out


class CounterSet:
    """Named monotonic counters with a dict-like read interface."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """A copy of all counters."""
        return dict(self._counters)

    def __contains__(self, name: str) -> bool:
        return name in self._counters
