"""Seeded, named random-number streams.

Experiments must be reproducible run-to-run *and* statistically varied
rep-to-rep (the paper repeats every scenario 10 times and reports standard
deviations). :class:`RngRegistry` derives an independent stream per
(component, replication) pair from one master seed, so adding a new random
consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a master seed and a name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Hands out independent ``random.Random`` streams keyed by name.

    >>> rngs = RngRegistry(master_seed=42)
    >>> a = rngs.stream("link-jitter")
    >>> b = rngs.stream("cpu-noise")

    The same name always returns the same stream object, and the draws of
    one stream are unaffected by how often other streams are consumed.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) RNG stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def child(self, name: str) -> "RngRegistry":
        """A registry whose master seed is derived from this one.

        Used to give every replication of an experiment an independent
        but reproducible universe of streams.
        """
        return RngRegistry(derive_seed(self.master_seed, name))
