"""Parameter sweeps: run a scenario family over a parameter grid.

:class:`Sweep` is the one execution engine behind the figure pipelines
(Fig. 1's allocation sweep, Fig. 4's load x bitrate matrix, the
CCA x MTU grid) and any new experiment: declare axes, provide a
scenario factory, get back tidy rows with group-by helpers. Because
every grid point x repetition is an independent seeded simulation,
``run`` fans the whole sweep through the executor layer — ``jobs=8``
runs eight simulations at a time, ``cache=`` makes unchanged reruns
near-instant, and both are bit-identical to a serial run.

    sweep = Sweep(axes={"mtu": [1500, 9000], "cca": ["cubic", "bbr"]})
    results = sweep.run(
        lambda mtu, cca: Scenario(
            f"{cca}@{mtu}", flows=[FlowSpec(10_000_000, cca=cca)],
            mtu_bytes=mtu, packages=1,
        ),
        repetitions=3,
        jobs=8,                     # process-pool parallelism
        cache="results/cache",      # content-addressed reuse
    )
    for row in results.rows:
        print(row.params, row.result.mean_energy_j)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ExperimentError, SweepAbortedError
from repro.harness.cache import ResultCache
from repro.harness.executor import (
    Executor,
    SweepControl,
    WorkItem,
    run_work_items,
)
from repro.harness.experiment import AnyScenario
from repro.harness.runner import RepeatedResult
from repro.obs.observer import Observer, resolve_observer

ScenarioFactory = Callable[..., AnyScenario]


@dataclass
class SweepRow:
    """One grid point's parameters and aggregated measurements."""

    params: Dict[str, Any]
    result: RepeatedResult

    def __getitem__(self, key: str) -> Any:
        return self.params[key]


@dataclass
class SweepResults:
    """All rows of one sweep, with simple relational helpers."""

    rows: List[SweepRow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def where(self, **conditions: Any) -> "SweepResults":
        """Rows matching every ``axis=value`` condition."""
        matched = [
            row
            for row in self.rows
            if all(row.params.get(k) == v for k, v in conditions.items())
        ]
        return SweepResults(rows=matched)

    def one(self, **conditions: Any) -> SweepRow:
        """The single row matching the conditions (raises otherwise)."""
        matched = self.where(**conditions).rows
        if len(matched) != 1:
            raise ExperimentError(
                f"expected exactly one row for {conditions}, got {len(matched)}"
            )
        return matched[0]

    def values(self, axis: str) -> List[Any]:
        """Distinct values of one axis, in first-seen order."""
        seen: List[Any] = []
        for row in self.rows:
            value = row.params[axis]
            if value not in seen:
                seen.append(value)
        return seen

    def series(
        self, x_axis: str, metric: Callable[[RepeatedResult], float],
        **fixed: Any,
    ) -> List["tuple[Any, float]"]:
        """(x, metric) points along one axis with the others fixed."""
        subset = self.where(**fixed)
        return [
            (row.params[x_axis], metric(row.result)) for row in subset.rows
        ]


class Sweep:
    """A cartesian-product parameter sweep."""

    def __init__(self, axes: Mapping[str, Sequence[Any]]):
        if not axes:
            raise ExperimentError("sweep needs at least one axis")
        for name, values in axes.items():
            if not values:
                raise ExperimentError(f"axis {name!r} has no values")
        self.axes = {name: list(values) for name, values in axes.items()}

    @property
    def size(self) -> int:
        """Number of grid points."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> List[Dict[str, Any]]:
        """Every parameter combination, in axis order."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*self.axes.values())
        ]

    def run(
        self,
        factory: ScenarioFactory,
        repetitions: int = 2,
        base_seed: int = 0,
        *,
        executor: Union[None, str, Executor] = None,
        jobs: Optional[int] = None,
        cache: Union[None, str, Path, ResultCache] = None,
        observer: Union[None, str, Path, Observer] = None,
        control: Optional[SweepControl] = None,
    ) -> SweepResults:
        """Run every grid point's scenario ``repetitions`` times.

        All ``size * repetitions`` simulations are flattened into one
        work-item batch and dispatched together, so parallelism spans
        the whole grid, not just one cell. Seeds are per-repetition
        (``base_seed + rep``, the same for every grid point), fixed
        before dispatch — results do not depend on the backend or on
        worker scheduling. ``observer`` (an
        :class:`~repro.obs.observer.Observer` or a trace directory)
        journals the sweep without affecting any result.

        ``control`` threads per-completion hooks and cooperative
        cancellation through (see
        :class:`~repro.harness.executor.SweepControl`). When the batch
        is aborted, the propagating
        :class:`~repro.errors.SweepAbortedError` gains a
        ``partial_sweep`` attribute: a :class:`SweepResults` holding
        every grid point whose ``repetitions`` runs all finished.
        """
        if repetitions < 1:
            raise ExperimentError(
                f"need >= 1 repetition, got {repetitions}"
            )
        points = self.points()
        scenarios = [factory(**point) for point in points]
        items = [
            WorkItem(scenario=scenario, seed=base_seed + rep)
            for scenario in scenarios
            for rep in range(repetitions)
        ]
        obs = resolve_observer(observer)
        if obs.enabled:
            obs.emit(
                "sweep_started",
                axes={name: len(vals) for name, vals in self.axes.items()},
                grid_points=len(points),
                repetitions=repetitions,
                items=len(items),
            )
        try:
            measurements = run_work_items(
                items, executor=executor, jobs=jobs, cache=cache,
                observer=obs, control=control,
            )
        except SweepAbortedError as exc:
            # Salvage the grid points that finished every repetition so
            # callers can still render a partial figure.
            partial = SweepResults()
            for i, (point, scenario) in enumerate(zip(points, scenarios)):
                runs = [
                    exc.partial[j]
                    for j in range(i * repetitions, (i + 1) * repetitions)
                    if j in exc.partial
                ]
                if len(runs) == repetitions:
                    partial.rows.append(
                        SweepRow(
                            params=point,
                            result=RepeatedResult(
                                scenario=scenario.name, runs=runs
                            ),
                        )
                    )
            exc.partial_sweep = partial  # type: ignore[attr-defined]
            if obs.enabled:
                obs.emit(
                    "sweep_aborted",
                    items=len(exc.partial),
                    grid_points=len(partial.rows),
                    reason=exc.reason,
                )
            raise
        if obs.enabled:
            obs.emit("sweep_finished", items=len(measurements))
        results = SweepResults()
        for i, (point, scenario) in enumerate(zip(points, scenarios)):
            runs = measurements[i * repetitions : (i + 1) * repetitions]
            results.rows.append(
                SweepRow(
                    params=point,
                    result=RepeatedResult(scenario=scenario.name, runs=runs),
                )
            )
        return results
