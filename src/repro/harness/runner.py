"""Scenario execution: build a fresh testbed, run, measure, repeat.

The runner reproduces the paper's measurement loop (§3): set up the
scenario, read the RAPL counters, run the traffic, read the counters
again, repeat 10 times, report mean and standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.stats import mean, sample_std
from repro.apps.iperf import IperfResult, IperfSession
from repro.apps.probe import ThroughputProbe
from repro.energy.cpu import CpuModel
from repro.energy.meter import EnergyMeter
from repro.errors import ExperimentError
from repro.harness.experiment import AnyScenario, FabricScenario, Scenario
from repro.net.topology import Testbed, TestbedConfig, build_testbed
from repro.obs.attrib import record_flow_energy
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.report import percentile
from repro.sched import (
    FlowRequest,
    SchedulePlan,
    SchedulingContext,
    get_policy,
)
from repro.sim.engine import Simulator
from repro.sim.probe import ProbeSink
from repro.sim.rng import RngRegistry
from repro.sim.trace import TimeSeries


@dataclass
class RunMeasurement:
    """Everything measured in one scenario execution."""

    scenario: str
    seed: int
    energy_j: float
    duration_s: float
    flow_results: List[IperfResult]
    bottleneck_drops: int
    ecn_marks: int
    power_series: List[TimeSeries] = field(default_factory=list)
    throughput_series: Dict[int, TimeSeries] = field(default_factory=dict)
    #: measurement-kind-specific scalars (e.g. a fabric run's
    #: host/switch energy split); deterministic, cache-round-tripped,
    #: and journaled alongside :meth:`counters`
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def average_power_w(self) -> float:
        """Energy over the measured window divided by its length."""
        if self.duration_s <= 0:
            raise ExperimentError("zero-length measurement window")
        return self.energy_j / self.duration_s

    @property
    def total_retransmissions(self) -> int:
        """Sum of per-flow retransmission counts (iperf3's retr column)."""
        return sum(r.retransmissions for r in self.flow_results)

    @property
    def completion_time_s(self) -> float:
        """Time until the last flow completed."""
        if not self.flow_results:
            raise ExperimentError(
                f"{self.scenario}: no flow results to take a completion "
                f"time from"
            )
        return max(r.end_time for r in self.flow_results)

    def counters(self) -> Dict[str, float]:
        """The run's event counts as one named-counter export.

        This is the single place measurement counters are enumerated —
        the journal's ``run_finished`` events and any future exporter
        read this instead of picking ad-hoc fields off the dataclass,
        so adding a counter extends every consumer at once. Values are
        a pure function of (scenario, seed) and must survive the
        :mod:`repro.harness.cache` JSON round trip losslessly.
        """
        return {
            "bottleneck_drops": float(self.bottleneck_drops),
            "ecn_marks": float(self.ecn_marks),
            "retransmissions": float(self.total_retransmissions),
            "flows": float(len(self.flow_results)),
        }


@dataclass
class RepeatedResult:
    """Aggregate over N repetitions of one scenario."""

    scenario: str
    runs: List[RunMeasurement]

    @property
    def n(self) -> int:
        return len(self.runs)

    @property
    def mean_energy_j(self) -> float:
        return mean([r.energy_j for r in self.runs])

    @property
    def std_energy_j(self) -> float:
        return sample_std([r.energy_j for r in self.runs])

    @property
    def mean_power_w(self) -> float:
        return mean([r.average_power_w for r in self.runs])

    @property
    def std_power_w(self) -> float:
        return sample_std([r.average_power_w for r in self.runs])

    @property
    def mean_duration_s(self) -> float:
        return mean([r.duration_s for r in self.runs])

    @property
    def mean_retransmissions(self) -> float:
        return mean([float(r.total_retransmissions) for r in self.runs])


def _build_testbed(
    scenario: Scenario, sim: Simulator, plan: Optional[SchedulePlan] = None
) -> Testbed:
    kwargs = dict(mtu_bytes=scenario.mtu_bytes)
    if scenario.buffer_bytes is not None:
        kwargs["buffer_bytes"] = scenario.buffer_bytes
    kwargs["ecn_threshold_bytes"] = scenario.ecn_threshold_bytes
    if scenario.host_packet_gap_s is not None:
        kwargs["host_packet_gap_s"] = scenario.host_packet_gap_s
    discipline = scenario.bottleneck_discipline
    if plan is not None and plan.bottleneck_discipline != "fifo":
        # Network-level policy hint (srpt's pFabric-style priority qdisc).
        discipline = plan.bottleneck_discipline
    kwargs["bottleneck_discipline"] = discipline
    kwargs["int_telemetry"] = scenario.int_telemetry
    return build_testbed(sim, TestbedConfig(**kwargs))


def _plan_for(scenario: Scenario) -> Optional[SchedulePlan]:
    """The scenario's policy plan, or None for legacy declared flows.

    Planning happens before the testbed exists, so the context carries
    the testbed's *configured* bottleneck rate (the default dumbbell's
    link rate — single-link scenarios never override it). Plans are
    pure functions of the scenario, never of the run's seed.
    """
    if scenario.policy is None:
        return None
    requests = [
        FlowRequest(
            index=i,
            size_bytes=flow.total_bytes,
            arrival_s=flow.start_time_s,
            deadline_s=flow.deadline_s,
        )
        for i, flow in enumerate(scenario.flows)
    ]
    ctx = SchedulingContext(
        capacity_bps=TestbedConfig().link_rate_bps,
        offered_load=scenario.offered_load,
        supports_priority=True,
    )
    return get_policy(scenario.policy).plan(requests, ctx)


def _prepare_run(
    scenario: Scenario, sim: Simulator, rngs: RngRegistry
) -> "_PreparedRun":
    """Build the testbed, sessions, probes and meter for one run."""
    plan = _plan_for(scenario)
    testbed = _build_testbed(scenario, sim, plan)

    n_packages = scenario.packages or max(2, len(scenario.flows))
    sender_cpu = CpuModel(
        sim,
        testbed.sender,
        packages=n_packages,
        sample_interval_s=scenario.sample_interval_s,
    )
    cpu_models = [sender_cpu]
    if scenario.meter_receiver:
        cpu_models.append(
            CpuModel(
                sim,
                testbed.receiver,
                packages=n_packages,
                sample_interval_s=scenario.sample_interval_s,
            )
        )
    if scenario.power_noise_sigma > 0:
        noise_rng = rngs.stream("power-noise")
        for model in cpu_models:
            model.set_noise(noise_rng, scenario.power_noise_sigma)
    if scenario.background_load > 0:
        for model in cpu_models:
            model.set_background_load(scenario.background_load)

    def _after_index(i: int) -> Optional[int]:
        if plan is not None:
            return plan.schedule_for(i).after_index
        return scenario.flows[i].after_flow

    jitter_rng = rngs.stream("start-jitter")
    sessions: List[IperfSession] = []
    for i, flow in enumerate(scenario.flows):
        if _after_index(i) is not None:
            # Deferred flows draw no jitter (a chained start replaces
            # the arrival entirely) — identical stream consumption to
            # the legacy after_flow path.
            start: Optional[float] = None
        else:
            start = flow.start_time_s + jitter_rng.uniform(
                0.0, scenario.start_jitter_s
            )
        override_cca = plan is not None and plan.sender_cca is not None
        session = IperfSession(
            testbed,
            total_bytes=flow.total_bytes,
            cca=plan.sender_cca if override_cca else flow.cca,  # type: ignore[union-attr]
            target_bitrate_bps=flow.target_rate_bps,
            start_time=start,
            ecn=flow.ecn,
            cca_kwargs=(
                dict(plan.sender_cca_kwargs or {})  # type: ignore[union-attr]
                if override_cca
                else flow.cca_kwargs
            ),
            # Per-run ids, not the process-global counter: measurements
            # must be a pure function of (scenario, seed) so serial,
            # process-pool, and cached runs are interchangeable.
            flow_id=i + 1,
        )
        sessions.append(session)
        for model in cpu_models:
            model.pin_flow(session.flow_id, i % n_packages)

    # Completion chaining for serialized (full-speed-then-idle) schedules
    # and Fig. 1-style cap lifting. Policy plans may defer behind any
    # index (srpt's shortest-first chains), so sessions all exist first.
    for i, flow in enumerate(scenario.flows):
        after = _after_index(i)
        if after is not None:
            successor = sessions[i]
            arrival = flow.start_time_s
            if plan is not None and arrival > 0.0:
                # Open-workload chaining: never start a flow before its
                # own arrival (the fabric runner's exact semantics).
                sessions[after].sender.on_complete(
                    lambda done_t, s=successor, t0=arrival: sim.schedule_at(
                        max(done_t, t0), s.begin
                    )
                )
            else:
                sessions[after].sender.on_complete(
                    lambda _t, s=successor: s.begin()
                )
        if flow.uncap_after is not None:
            capped = sessions[i]
            sessions[flow.uncap_after].sender.on_complete(
                lambda _t, s=capped: s.uncap()
            )

    probes: Dict[int, ThroughputProbe] = {}
    if scenario.probe_interval_s is not None:
        for session in sessions:
            probe = ThroughputProbe(
                sim, session.receiver, interval_s=scenario.probe_interval_s
            )
            probe.start()
            probes[session.flow_id] = probe

    meter = EnergyMeter(sim, cpu_models)
    return _PreparedRun(
        testbed=testbed, sessions=sessions, probes=probes, meter=meter
    )


@dataclass
class _PreparedRun:
    """Everything :func:`run_once` needs after the build phase."""

    testbed: Testbed
    sessions: List[IperfSession]
    probes: Dict[int, ThroughputProbe]
    meter: EnergyMeter


def run_once(
    scenario: AnyScenario,
    seed: int = 0,
    observer: Optional[Observer] = None,
    probe_sink: Optional[ProbeSink] = None,
) -> RunMeasurement:
    """Execute one scenario on a fresh testbed and measure it.

    ``observer`` hooks the run's phases for profiling — spans for
    testbed build, the sim loop (with the executed-event count), and
    measurement teardown. The default is the shared no-op observer,
    and no observer can affect the measurement: it only ever receives
    copies of names and numbers (see :mod:`repro.obs`).

    ``probe_sink`` overrides where in-sim telemetry samples (cwnd,
    queue depth, instantaneous power...) go. The default asks the
    observer for one — telemetry-enabled observers mint a collecting
    sink and persist it to the trace directory afterwards; the no-op
    observer hands back the shared no-op sink. Like the observer, a
    sink is write-only: it cannot affect the measurement.
    """
    if isinstance(scenario, FabricScenario):
        # Imported lazily: the fabric runner builds on this module.
        from repro.harness.fabric import run_fabric_once

        return run_fabric_once(
            scenario, seed=seed, observer=observer, probe_sink=probe_sink
        )
    obs = NULL_OBSERVER if observer is None else observer
    sim = Simulator()
    sink = probe_sink if probe_sink is not None else obs.probe_sink(
        scenario.name, seed
    )
    sim.probe_sink = sink
    profiler = obs.profiler(scenario.name, seed)
    sim.profiler = profiler
    rngs = RngRegistry(seed)
    with obs.span("testbed_build", scenario=scenario.name, seed=seed):
        prepared = _prepare_run(scenario, sim, rngs)
    sessions = prepared.sessions
    meter = prepared.meter
    meter.start()

    loop_span = obs.span("sim_loop", scenario=scenario.name, seed=seed)
    with loop_span:
        while not all(s.complete for s in sessions):
            if sim.now > scenario.time_limit_s:
                stuck = [s.flow_id for s in sessions if not s.complete]
                raise ExperimentError(
                    f"{scenario.name}: flows {stuck} incomplete after "
                    f"{scenario.time_limit_s}s virtual"
                )
            if not sim.step():
                raise ExperimentError(
                    f"{scenario.name}: event queue drained before completion"
                )
        loop_span.add(
            events_executed=sim.events_executed,
            pending_events=sim.pending_events,
            dead_in_queue=sim.dead_in_queue,
        )
    if loop_span.wall_s > 0:
        # The events/sec gauge the ROADMAP's "fast as the hardware
        # allows" goal is tracked by: virtual events over loop wall time.
        obs.set_gauge(
            "sim_events_per_second", sim.events_executed / loop_span.wall_s
        )
    if obs.enabled:
        # Post-loop heap state: live events still queued and the exact
        # lazy-deletion tally, so heap bloat shows up in obs report.
        obs.set_gauge("sim_pending_events", float(sim.pending_events))
        obs.set_gauge("sim_dead_in_queue", float(sim.dead_in_queue))
        obs.set_gauge("sim_queued_events", float(sim.queued_events))

    with obs.span("measurement", scenario=scenario.name, seed=seed):
        energy = meter.stop()
        for probe in prepared.probes.values():
            probe.stop()

        bottleneck_q = prepared.testbed.bottleneck.queue
        flow_results = [s.result() for s in sessions]
        fcts = [r.duration_s for r in flow_results]
        measurement = RunMeasurement(
            scenario=scenario.name,
            seed=seed,
            energy_j=energy,
            duration_s=meter.duration_s,
            flow_results=flow_results,
            bottleneck_drops=int(bottleneck_q.counters.get("drops")),
            ecn_marks=int(bottleneck_q.counters.get("ecn_marks")),
            power_series=meter.power_series(),
            throughput_series={
                fid: p.series for fid, p in prepared.probes.items()
            },
            # The Pareto frontier's x-axis: FCT percentiles, same keys
            # the fabric runner exports (fleet and single-link points
            # plot on one chart).
            extras={
                "fct_p50_s": percentile(fcts, 50.0),
                "fct_p99_s": percentile(fcts, 99.0),
            },
        )
    # Attribution samples must land in the sink before it is persisted.
    record_flow_energy(sink, measurement)
    if probe_sink is None:
        obs.record_telemetry(sink, scenario=scenario.name, seed=seed)
    obs.record_profile(profiler, scenario=scenario.name, seed=seed)
    return measurement


def run_repeated(
    scenario: AnyScenario,
    repetitions: int = 10,
    base_seed: int = 0,
    *,
    executor=None,
    jobs: Optional[int] = None,
    cache=None,
    observer: Optional[Observer] = None,
) -> RepeatedResult:
    """Run a scenario N times with varied seeds (the paper uses N=10).

    Repetitions are independent simulations, so they parallelize and
    cache through the executor layer: ``jobs=4`` fans them out across
    four worker processes, ``cache=`` (a directory path or a
    :class:`~repro.harness.cache.ResultCache`) replays stored results.
    Each repetition's seed is ``base_seed + rep``, derived here — never
    inside a worker — so results are identical for every backend.
    ``observer`` traces the batch (see :mod:`repro.obs`) without
    affecting any result.
    """
    if repetitions < 1:
        raise ExperimentError(f"need >= 1 repetition, got {repetitions}")
    # Imported lazily: the executor module builds on run_once above.
    from repro.harness.executor import WorkItem, run_work_items

    items = [
        WorkItem(scenario=scenario, seed=base_seed + rep)
        for rep in range(repetitions)
    ]
    runs = run_work_items(
        items, executor=executor, jobs=jobs, cache=cache, observer=observer
    )
    return RepeatedResult(scenario=scenario.name, runs=runs)
