"""Experiment descriptions.

A :class:`Scenario` is a declarative description of one measured run —
the simulation analogue of the paper's experiment scripts: which flows
(CCA, size, rate cap, start), which MTU, how much background load, and
how the energy window is measured. The runner
(:mod:`repro.harness.runner`) realizes scenarios against fresh testbeds.
"""

from __future__ import annotations

import functools
import json
import warnings
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Union

from repro.core.allocation import FSTI_PLAN_NAME, AllocationPlan
from repro.errors import ExperimentError
from repro.sched.registry import resolve_policy_name
from repro.units import msec, usec


def _keyword_only_after_first(cls):
    """Deprecate positional construction beyond the first field.

    ``Scenario`` and ``FlowSpec`` have grown 8+ optional fields; calls
    like ``FlowSpec(1_000_000, "cubic", None, 0.0)`` are unreadable and
    break silently when a field is inserted. Everything after the first
    positional field becomes keyword-only after one release; until then
    positional use emits a :class:`DeprecationWarning`.
    """
    original_init = cls.__init__
    first_field = next(iter(cls.__dataclass_fields__))

    @functools.wraps(original_init)
    def __init__(self, *args: Any, **kwargs: Any) -> None:
        if len(args) > 1:
            warnings.warn(
                f"passing {cls.__name__} fields beyond {first_field!r} "
                f"positionally is deprecated and will become an error in "
                f"the next release; use keyword arguments",
                DeprecationWarning,
                stacklevel=2,
            )
        original_init(self, *args, **kwargs)

    cls.__init__ = __init__
    return cls


def _accepts_deprecated_mode(cls):
    """Accept the retired ``mode=`` spelling as ``policy=`` (shim).

    ``FabricScenario.mode`` predates the :mod:`repro.sched` registry;
    its two spellings ("fair"/"serialized") are canonical policy names,
    so the shim forwards them verbatim and warns. Removed after one
    release.
    """
    original_init = cls.__init__

    @functools.wraps(original_init)
    def __init__(
        self, *args: Any, mode: Optional[str] = None, **kwargs: Any
    ) -> None:
        if mode is not None:
            warnings.warn(
                f"{cls.__name__}(mode=...) is deprecated and will be "
                f"removed in the next release; use policy= (registry "
                f"names from repro.sched)",
                DeprecationWarning,
                stacklevel=2,
            )
            if "policy" in kwargs:
                raise ExperimentError(
                    "pass policy= or the deprecated mode=, not both"
                )
            kwargs["policy"] = mode
        original_init(self, *args, **kwargs)

    cls.__init__ = __init__
    return cls


@_keyword_only_after_first
@dataclass
class FlowSpec:
    """One flow of a scenario."""

    total_bytes: int
    cca: str = "cubic"
    #: iperf3 -b style application rate cap; None = unlimited
    target_rate_bps: Optional[float] = None
    #: virtual start time; ignored when ``after_flow`` is set
    start_time_s: float = 0.0
    #: index of a flow in the same scenario that must *complete* before
    #: this one starts (the full-speed-then-idle chaining)
    after_flow: Optional[int] = None
    #: index of a flow whose completion lifts this flow's rate cap
    #: (Fig. 1: the capped flow "uses the rest of the link" afterwards)
    uncap_after: Optional[int] = None
    #: force ECN on/off (None = per-CCA default)
    ecn: Optional[bool] = None
    #: extra keyword arguments for the CCA constructor (e.g. the
    #: baseline's window_segments, bbr2's alpha_quality)
    cca_kwargs: Optional[dict] = None
    #: absolute virtual time this flow should complete by; only the
    #: ``deadline`` scheduling policy reads it (None = unconstrained)
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ExperimentError(f"flow size must be > 0, got {self.total_bytes}")


@_keyword_only_after_first
@dataclass
class Scenario:
    """A full measured experiment."""

    name: str
    flows: List[FlowSpec]
    mtu_bytes: int = 9000
    background_load: float = 0.0
    #: measure the receiver's packages too (paper: sender-side per-flow
    #: arithmetic, so default False)
    meter_receiver: bool = False
    #: per-rep power measurement noise (~RAPL/system noise); the paper's
    #: error bars come from exactly this kind of run-to-run variation
    power_noise_sigma: float = 0.004
    #: per-rep flow start jitter in seconds (decorrelates repetitions)
    start_jitter_s: float = usec(5.0)
    #: wall clock ceiling for the virtual experiment
    time_limit_s: float = 600.0
    #: sampling interval for CPU power integration
    sample_interval_s: float = msec(1.0)
    #: CPU packages to model/meter (None = max(2, n_flows)); single-flow
    #: power figures use 1 so the reading is per-flow, like the paper's
    packages: Optional[int] = None
    #: throughput probe interval (None = no probes)
    probe_interval_s: Optional[float] = None
    #: testbed overrides
    buffer_bytes: Optional[int] = None
    ecn_threshold_bytes: Optional[int] = field(default=100 * 1024)
    host_packet_gap_s: Optional[float] = None
    #: bottleneck scheduling: "fifo" or "priority" (pFabric/SRPT)
    bottleneck_discipline: str = "fifo"
    #: stamp INT at the bottleneck (required by hpcc)
    int_telemetry: bool = False
    #: scheduling policy (a :mod:`repro.sched` registry name). None
    #: keeps the declared flows exactly as written (legacy
    #: ``after_flow`` chains included); a name hands admit/defer and
    #: network-hint decisions to that policy at run time
    policy: Optional[str] = None
    #: the workload's offered load fraction, if known; a policy input
    #: (``load-adaptive`` shares above its threshold). None = closed
    #: batch. Does not affect the physics of the declared flows.
    offered_load: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.flows:
            raise ExperimentError(f"scenario {self.name!r} has no flows")
        if self.policy is not None:
            # Canonicalize so aliases hash identically in cache keys.
            self.policy = resolve_policy_name(self.policy)
            conflicted = [
                i for i, f in enumerate(self.flows) if f.after_flow is not None
            ]
            if conflicted:
                raise ExperimentError(
                    f"scenario {self.name!r} declares after_flow chains on "
                    f"flows {conflicted} AND policy={self.policy!r}; the "
                    f"policy owns admit/defer decisions — drop one"
                )
        if self.offered_load is not None and self.offered_load < 0:
            raise ExperimentError(
                f"offered load must be >= 0, got {self.offered_load}"
            )
        if not 0.0 <= self.background_load <= 1.0:
            raise ExperimentError(
                f"background load must be in [0, 1], got {self.background_load}"
            )
        baselines = sum(1 for f in self.flows if f.cca == "baseline")
        concurrent = sum(1 for f in self.flows if f.after_flow is None)
        if (
            baselines
            and len(self.flows) > 1
            and concurrent > 1
            and self.bottleneck_discipline != "priority"
            # A policy owns the discipline at run time (srpt pairs the
            # baseline CCA with a priority bottleneck itself).
            and self.policy is None
        ):
            # Footnote 2 of the paper: the no-CC module must never share
            # a FIFO bottleneck — it would cause congestion collapse.
            # (A pFabric-style priority bottleneck is the exception: its
            # whole design is line-rate senders + in-network scheduling.)
            raise ExperimentError(
                "the constant-cwnd baseline cannot run concurrently with "
                "other flows (paper footnote 2)"
            )
        for i, flow in enumerate(self.flows):
            if flow.after_flow is not None and not (
                0 <= flow.after_flow < len(self.flows)
            ):
                raise ExperimentError(
                    f"flow {i} chains after nonexistent flow {flow.after_flow}"
                )
            if flow.after_flow == i:
                raise ExperimentError(f"flow {i} cannot chain after itself")

    def with_name(self, name: str) -> "Scenario":
        """A copy under a different name."""
        return replace(self, name=name)

    def canonical_dict(self) -> Dict[str, Any]:
        """Every field (flows included) as JSON-ready plain data."""
        return asdict(self)

    def cache_key(self) -> str:
        """Canonical serialization of the full scenario spec.

        The result cache (:mod:`repro.harness.cache`) hashes this string
        together with the repetition seed and a schema version, so it
        must be a pure function of the scenario's fields: stable across
        processes, interpreter runs, and dict insertion orders (keys are
        sorted). Two scenarios with equal fields always serialize
        identically; any field change produces a different string.
        """
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )


@_accepts_deprecated_mode
@_keyword_only_after_first
@dataclass
class FabricScenario:
    """A fleet-scale experiment: one CCA over a multi-switch fabric.

    The fabric analogue of :class:`Scenario` — a declarative, hashable
    description the runner (:mod:`repro.harness.fabric`) realizes
    against a fresh fabric. The same executor/cache/telemetry plumbing
    applies because both classes expose ``name`` and ``cache_key()``.
    """

    name: str
    cca: str = "dctcp"
    #: scheduling policy (a :mod:`repro.sched` registry name): "fair"
    #: starts every flow at its generated arrival (fair sharing under
    #: contention); "serialized" chains each source host's flows so at
    #: most one runs per host at a time (full-speed-then-idle,
    #: fleet-wide); "srpt"/"deadline"/"load-adaptive" as documented in
    #: docs/scheduling.md. The retired ``mode=`` spelling still maps
    #: here with a DeprecationWarning.
    policy: str = "fair"
    n_flows: int = 1000
    mix: str = "datacenter"
    target_load: float = 0.3
    #: topology: "leaf-spine" (leaves/spines/hosts_per_leaf) or
    #: "fat-tree" (shape fully determined by fat_tree_k)
    topology: str = "leaf-spine"
    leaves: int = 8
    spines: int = 2
    hosts_per_leaf: int = 8
    fat_tree_k: int = 4
    rack_local_fraction: float = 0.3
    incast_fraction: float = 0.05
    incast_fan_in: int = 8
    mtu_bytes: int = 9000
    ecn_threshold_bytes: Optional[int] = field(default=100 * 1024)
    buffer_bytes: Optional[int] = None
    #: per-CCA constructor overrides, as in :class:`FlowSpec`
    cca_kwargs: Optional[dict] = None
    #: switch power hardware: "today" (load-independent) or
    #: "rate-adaptive" (Nedevschi-style sleeping ports)
    switch_power: str = "today"
    time_limit_s: float = 600.0
    sample_interval_s: float = msec(5.0)
    #: fabric runs default to noise-free power so fleet deltas are exact
    power_noise_sigma: float = 0.0
    #: per-flow deadline slack for the ``deadline`` policy: a flow's
    #: deadline is ``arrival + slack x its line-rate duration``; other
    #: policies ignore it
    deadline_slack: float = 4.0

    def __post_init__(self) -> None:
        # Canonicalize so aliases hash identically in cache keys.
        self.policy = resolve_policy_name(self.policy)
        if self.deadline_slack < 1.0:
            raise ExperimentError(
                f"deadline slack must be >= 1 (a line-rate flow can never "
                f"beat its own transmission time), got {self.deadline_slack}"
            )
        if self.topology not in ("leaf-spine", "fat-tree"):
            raise ExperimentError(
                f"unknown topology {self.topology!r}; "
                f"known: ['fat-tree', 'leaf-spine']"
            )
        if self.switch_power not in ("today", "rate-adaptive"):
            raise ExperimentError(
                f"unknown switch power model {self.switch_power!r}; "
                f"known: ['rate-adaptive', 'today']"
            )
        if self.n_flows < 1:
            raise ExperimentError(f"need >= 1 flow, got {self.n_flows}")

    def with_name(self, name: str) -> "FabricScenario":
        """A copy under a different name."""
        return replace(self, name=name)

    def canonical_dict(self) -> Dict[str, Any]:
        """Every field as JSON-ready plain data, marked as a fabric run.

        The ``kind`` marker keeps fabric cache keys disjoint from
        :class:`Scenario` keys even if the field sets ever collide.
        """
        payload = asdict(self)
        payload["kind"] = "fabric"
        return payload

    def cache_key(self) -> str:
        """Canonical serialization (see :meth:`Scenario.cache_key`)."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )


#: anything the runner/executor/cache stack can execute: both classes
#: expose ``name``, ``canonical_dict()`` and ``cache_key()``
AnyScenario = Union[Scenario, FabricScenario]


def scenario_from_plan(
    name: str,
    plan: AllocationPlan,
    cca: str = "cubic",
    serialize_extreme: Optional[bool] = None,
    *,
    policy: Optional[str] = None,
    **kwargs,
) -> Scenario:
    """Build a scenario from a :class:`~repro.core.allocation.AllocationPlan`.

    The full-speed-then-idle plan is realized with completion chaining
    (flow i+1 starts when flow i finishes) rather than nominal start
    times, matching how the paper runs it (the second flow starts when
    the first ends, whatever the actual first-flow FCT was).

    ``policy=`` hands that chaining decision to a :mod:`repro.sched`
    registry policy instead of baking ``after_flow`` chains into the
    flow specs — the ``serialized`` policy reproduces the legacy
    chaining bit-for-bit. ``serialize_extreme`` is the deprecated
    spelling of that choice (True == ``policy="serialized"`` for
    full-speed-then-idle plans) and warns when passed explicitly.
    """
    if serialize_extreme is not None:
        warnings.warn(
            "serialize_extreme= is deprecated and will be removed in the "
            "next release; pass policy='serialized' (or policy='fair' "
            "for serialize_extreme=False) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if policy is not None:
            raise ExperimentError(
                "pass policy= or the deprecated serialize_extreme=, not both"
            )
    flows = []
    serialized = plan.name == FSTI_PLAN_NAME and (
        policy is not None or serialize_extreme is None or serialize_extreme
    )
    for i, flow_plan in enumerate(plan.flows):
        flows.append(
            FlowSpec(
                total_bytes=flow_plan.total_bytes,
                cca=cca,
                target_rate_bps=flow_plan.target_rate_bps,
                start_time_s=0.0 if serialized else flow_plan.start_time_s,
                after_flow=(
                    (i - 1) if serialized and policy is None and i > 0 else None
                ),
                uncap_after=flow_plan.uncap_after,
            )
        )
    return Scenario(name=name, flows=flows, policy=policy, **kwargs)
