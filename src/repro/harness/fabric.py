"""Fabric scenario execution: fleet-level runs of the paper's claim.

:func:`run_fabric_once` is the multi-switch sibling of
:func:`repro.harness.runner.run_once`: build a fresh leaf–spine (or
fat-tree) fabric, realize a generated workload of ~10^3 concurrent
flows on it under one congestion controller, and measure *fleet-level*
energy — every host CPU plus every switch — over the makespan. The
returned :class:`~repro.harness.runner.RunMeasurement` flows through
the ordinary executor/cache/telemetry plumbing, which is what lets 1k+
flow sweeps fan out over worker processes and stay bit-identical to
serial runs.

The scenario's scheduling policy (a :mod:`repro.sched` registry name)
decides per-flow admit/defer fleet-wide: ``fair`` starts every flow at
its generated arrival time (concurrent flows share links), while
``serialized`` chains each source host's flows one at a time (the
full-speed-then-idle allocation the paper shows is cheaper), a deferred
successor starting at its predecessor's completion or its own arrival,
whichever is later. ``srpt``/``deadline``/``load-adaptive`` produce
other chain shapes through the same mechanism.

Every policy transfers exactly the same bytes between the same host
pairs, so the energy delta is the allocation's doing, not the
workload's.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.iperf import IperfSession
from repro.apps.workload import FabricWorkload, generate_fabric_workload
from repro.energy.cpu import CpuModel
from repro.energy.fleet import fleet_energy_report
from repro.energy.meter import EnergyMeter
from repro.energy.switch_power import rate_adaptive_switch, todays_switch
from repro.errors import ExperimentError
from repro.harness.experiment import FabricScenario
from repro.harness.runner import RunMeasurement
from repro.net.host import Host
from repro.net.topology import (
    Fabric,
    FabricConfig,
    build_fat_tree,
    build_leaf_spine,
)
from repro.obs.attrib import record_flow_energy
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.report import percentile
from repro.sched import (
    FlowRequest,
    SchedulePlan,
    SchedulingContext,
    get_policy,
)
from repro.sim.engine import Simulator
from repro.sim.probe import ProbeSink
from repro.sim.rng import RngRegistry
from repro.units import BITS_PER_BYTE


def _build_fabric(scenario: FabricScenario, sim: Simulator) -> Fabric:
    kwargs: Dict[str, object] = dict(
        mtu_bytes=scenario.mtu_bytes,
        ecn_threshold_bytes=scenario.ecn_threshold_bytes,
        # HPCC's switch support: stamp in-band telemetry on every port.
        int_telemetry=scenario.cca == "hpcc",
    )
    if scenario.buffer_bytes is not None:
        kwargs["buffer_bytes"] = scenario.buffer_bytes
    if scenario.topology == "fat-tree":
        return build_fat_tree(
            sim, k=scenario.fat_tree_k, config=FabricConfig(**kwargs)  # type: ignore[arg-type]
        )
    kwargs.update(
        leaves=scenario.leaves,
        spines=scenario.spines,
        hosts_per_leaf=scenario.hosts_per_leaf,
    )
    return build_leaf_spine(sim, FabricConfig(**kwargs))  # type: ignore[arg-type]


def _workload_for(scenario: FabricScenario, fabric: Fabric, seed: int) -> FabricWorkload:
    return generate_fabric_workload(
        hosts=[h.name for h in fabric.hosts],
        rack_of=fabric.host_rack,
        mix=scenario.mix,
        n_flows=scenario.n_flows,
        target_load=scenario.target_load,
        host_capacity_bps=fabric.config.host_link_rate_bps,
        rack_local_fraction=scenario.rack_local_fraction,
        incast_fraction=scenario.incast_fraction,
        incast_fan_in=scenario.incast_fan_in,
        seed=seed,
    )


def _plan_sessions(
    scenario: FabricScenario, fabric: Fabric, workload: FabricWorkload
) -> SchedulePlan:
    """Ask the scenario's policy for the fleet-wide admit/defer plan."""
    rate = fabric.config.host_link_rate_bps
    requests = [
        FlowRequest(
            index=i,
            size_bytes=flow.size_bytes,
            arrival_s=flow.start_time_s,
            src=flow.src,
            dst=flow.dst,
            deadline_s=flow.start_time_s
            + scenario.deadline_slack
            * (flow.size_bytes * BITS_PER_BYTE / rate),
        )
        for i, flow in enumerate(workload.flows)
    ]
    ctx = SchedulingContext(
        capacity_bps=rate,
        offered_load=workload.offered_load,
        # Fabric ports are FIFO/ECN; no pFabric qdisc at this scale.
        supports_priority=False,
    )
    return get_policy(scenario.policy).plan(requests, ctx)


def _start_sessions(
    scenario: FabricScenario,
    fabric: Fabric,
    workload: FabricWorkload,
) -> List[IperfSession]:
    """Instantiate one session per generated flow, honoring the policy.

    Sessions are created in workload order first (a policy may defer a
    flow behind a *later* index — srpt's shortest-first chains), then
    chained: a deferred flow starts at its predecessor's completion,
    but never before its own arrival.
    """
    hosts: Dict[str, Host] = {h.name: h for h in fabric.hosts}
    plan = _plan_sessions(scenario, fabric, workload)
    sessions: List[IperfSession] = []
    sim = fabric.sim
    for i, flow in enumerate(workload.flows):
        deferred = plan.schedule_for(i).deferred
        sessions.append(
            IperfSession(
                fabric,
                total_bytes=flow.size_bytes,
                cca=scenario.cca,
                # Dormant when chained behind another flow.
                start_time=None if deferred else flow.start_time_s,
                cca_kwargs=scenario.cca_kwargs,
                # Per-run ids (not the process-global counter):
                # measurements must stay a pure function of
                # (scenario, seed).
                flow_id=i + 1,
                src_host=hosts[flow.src],
                dst_host=hosts[flow.dst],
            )
        )
    for i, flow in enumerate(workload.flows):
        after = plan.schedule_for(i).after_index
        if after is None:
            continue
        arrival = flow.start_time_s
        sessions[after].sender.on_complete(
            lambda done_t, s=sessions[i], t0=arrival: sim.schedule_at(
                max(done_t, t0), s.begin
            )
        )
    return sessions


def run_fabric_once(
    scenario: FabricScenario,
    seed: int = 0,
    observer: Optional[Observer] = None,
    probe_sink: Optional[ProbeSink] = None,
) -> RunMeasurement:
    """Execute one fabric scenario on a fresh fabric and measure it.

    The measurement's ``energy_j`` is the *fleet* total — summed host
    CPU energy plus per-switch energy under the scenario's switch power
    model, integrated over the makespan — and ``extras`` carries the
    split plus FCT percentiles, so baselines gate on each component:

    * ``host_energy_j`` / ``switch_energy_j`` — the fleet split;
    * ``fct_p50_s`` / ``fct_p99_s`` — flow-completion-time percentiles;
    * ``offered_load`` — the workload's realized load fraction.

    ``bottleneck_drops`` and ``ecn_marks`` aggregate every queue in the
    fabric (there is no single bottleneck port at this scale).
    """
    obs = NULL_OBSERVER if observer is None else observer
    sim = Simulator()
    sink = probe_sink if probe_sink is not None else obs.probe_sink(
        scenario.name, seed
    )
    sim.probe_sink = sink
    profiler = obs.profiler(scenario.name, seed)
    sim.profiler = profiler
    with obs.span("fabric_build", scenario=scenario.name, seed=seed):
        fabric = _build_fabric(scenario, sim)
        workload = _workload_for(scenario, fabric, seed)
        cpu_models = [
            CpuModel(
                sim,
                host,
                packages=1,
                sample_interval_s=scenario.sample_interval_s,
            )
            for host in fabric.hosts
        ]
        if scenario.power_noise_sigma > 0:
            noise_rng = RngRegistry(seed).stream("power-noise")
            for model in cpu_models:
                model.set_noise(noise_rng, scenario.power_noise_sigma)
        sessions = _start_sessions(scenario, fabric, workload)
        meter = EnergyMeter(sim, cpu_models)
    meter.start()

    loop_span = obs.span("sim_loop", scenario=scenario.name, seed=seed)
    with loop_span:
        while not all(s.complete for s in sessions):
            if sim.now > scenario.time_limit_s:
                stuck = sum(1 for s in sessions if not s.complete)
                raise ExperimentError(
                    f"{scenario.name}: {stuck} of {len(sessions)} flows "
                    f"incomplete after {scenario.time_limit_s}s virtual"
                )
            if not sim.step():
                raise ExperimentError(
                    f"{scenario.name}: event queue drained before completion"
                )
        loop_span.add(
            events_executed=sim.events_executed,
            pending_events=sim.pending_events,
            dead_in_queue=sim.dead_in_queue,
        )
    if loop_span.wall_s > 0:
        obs.set_gauge(
            "sim_events_per_second", sim.events_executed / loop_span.wall_s
        )
    if obs.enabled:
        obs.set_gauge("sim_pending_events", float(sim.pending_events))
        obs.set_gauge("sim_dead_in_queue", float(sim.dead_in_queue))
        obs.set_gauge("sim_queued_events", float(sim.queued_events))

    with obs.span("measurement", scenario=scenario.name, seed=seed):
        host_energy_j = meter.stop()
        switch_model = (
            rate_adaptive_switch()
            if scenario.switch_power == "rate-adaptive"
            else todays_switch()
        )
        fleet = fleet_energy_report(
            fabric.switches,
            duration_s=meter.duration_s,
            host_energy_j=host_energy_j,
            model=switch_model,
        )
        flow_results = [s.result() for s in sessions]
        fcts = [r.duration_s for r in flow_results]
        measurement = RunMeasurement(
            scenario=scenario.name,
            seed=seed,
            energy_j=fleet.total_energy_j,
            duration_s=meter.duration_s,
            flow_results=flow_results,
            bottleneck_drops=int(
                sum(q.counters.get("drops") for q in fabric.queues)
            ),
            ecn_marks=int(
                sum(q.counters.get("ecn_marks") for q in fabric.queues)
            ),
            extras={
                "host_energy_j": fleet.host_energy_j,
                "switch_energy_j": fleet.switch_energy_j,
                "fct_p50_s": percentile(fcts, 50.0),
                "fct_p99_s": percentile(fcts, 99.0),
                "offered_load": workload.offered_load,
            },
        )
    # Attribution samples must land in the sink before it is persisted.
    record_flow_energy(sink, measurement)
    if probe_sink is None:
        obs.record_telemetry(sink, scenario=scenario.name, seed=seed)
    obs.record_profile(profiler, scenario=scenario.name, seed=seed)
    return measurement
