"""Parallel execution of independent ``(scenario, seed)`` work items.

Every cell x repetition of the paper's experiment grids is an
independent, seeded simulation — the embarrassingly parallel shape that
lets the CCA x MTU grid scale to hundreds of scenario points. The
executor layer fans :class:`WorkItem` batches out to a backend:

* :class:`SerialExecutor` — in-process, one item at a time. The
  reference semantics; zero overhead for small batches.
* :class:`ProcessExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` running items across worker processes.

Backends are *interchangeable by construction*: each item carries its
own seed (derived per-item from the base seed, never from worker or
process state), every item runs on a fresh simulator, and results come
back in submission order. A ``jobs=8`` run is therefore bit-identical
to a serial one — which the determinism tests under ``tests/harness/``
assert.

:func:`run_work_items` is the single entry point the harness and all
figure pipelines share; it also consults the optional result cache
(:mod:`repro.harness.cache`) so only missing items reach the backend.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.harness.cache import ResultCache, ensure_cache
from repro.harness.experiment import Scenario
from repro.harness.runner import RunMeasurement, run_once


@dataclass(frozen=True)
class WorkItem:
    """One independent simulation: a scenario plus its repetition seed."""

    scenario: Scenario
    seed: int


def execute_item(item: WorkItem) -> RunMeasurement:
    """Run one work item (module-level so process pools can pickle it)."""
    return run_once(item.scenario, seed=item.seed)


class Executor:
    """Maps work items to measurements, preserving submission order."""

    name: str = "base"

    def run_items(self, items: Sequence[WorkItem]) -> List[RunMeasurement]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """The reference backend: run items in-process, in order."""

    name = "serial"

    def run_items(self, items: Sequence[WorkItem]) -> List[RunMeasurement]:
        return [execute_item(item) for item in items]


class ProcessExecutor(Executor):
    """Fan items out across ``jobs`` worker processes.

    Results are collected in submission order (``pool.map``), and each
    item's seed travels with it, so the outcome never depends on which
    worker ran what or in which order items finished.
    """

    name = "process"

    def __init__(self, jobs: Optional[int] = None):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ExperimentError(f"need >= 1 worker process, got {jobs}")
        self.jobs = jobs

    def run_items(self, items: Sequence[WorkItem]) -> List[RunMeasurement]:
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return SerialExecutor().run_items(items)
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_item, items))


def resolve_executor(
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
) -> Executor:
    """Pick a backend from the ``executor=``/``jobs=`` pair.

    * an :class:`Executor` instance is used as-is,
    * ``"serial"`` / ``"process"`` select a backend by name (``jobs``
      sizes the process pool),
    * with neither given, ``jobs`` alone decides: None or 1 means
      serial, more means a process pool of that size.
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        if jobs is None or jobs == 1:
            return SerialExecutor()
        return ProcessExecutor(jobs)
    if executor == "serial":
        return SerialExecutor()
    if executor == "process":
        return ProcessExecutor(jobs)
    raise ExperimentError(
        f"unknown executor {executor!r}; use 'serial', 'process', or an "
        f"Executor instance"
    )


def run_work_items(
    items: Sequence[WorkItem],
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
) -> List[RunMeasurement]:
    """Execute a batch of work items, cache-aware and order-preserving.

    With a cache, stored measurements are returned directly and only
    the misses are dispatched to the backend (then stored). The result
    list always lines up index-for-index with ``items``.
    """
    items = list(items)
    backend = resolve_executor(executor, jobs)
    store = ensure_cache(cache)
    if store is None:
        return backend.run_items(items)

    results: List[Optional[RunMeasurement]] = [None] * len(items)
    missing: List[int] = []
    for i, item in enumerate(items):
        hit = store.get(item.scenario, item.seed)
        if hit is not None:
            results[i] = hit
        else:
            missing.append(i)
    fresh = backend.run_items([items[i] for i in missing])
    for i, measurement in zip(missing, fresh):
        store.put(items[i].scenario, items[i].seed, measurement)
        results[i] = measurement
    return [r for r in results if r is not None]
