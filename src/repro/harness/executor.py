"""Parallel execution of independent ``(scenario, seed)`` work items.

Every cell x repetition of the paper's experiment grids is an
independent, seeded simulation — the embarrassingly parallel shape that
lets the CCA x MTU grid scale to hundreds of scenario points. The
executor layer fans :class:`WorkItem` batches out to a backend:

* :class:`SerialExecutor` — in-process, one item at a time. The
  reference semantics; zero overhead for small batches.
* :class:`ProcessExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` running items across worker processes.

Backends are *interchangeable by construction*: each item carries its
own seed (derived per-item from the base seed, never from worker or
process state), every item runs on a fresh simulator, and results come
back in submission order. A ``jobs=8`` run is therefore bit-identical
to a serial one — which the determinism tests under ``tests/harness/``
assert.

:func:`run_work_items` is the single entry point the harness and all
figure pipelines share; it also consults the optional result cache
(:mod:`repro.harness.cache`) so only missing items reach the backend,
and threads an optional :class:`~repro.obs.observer.Observer` through
for tracing. With tracing on, each worker process appends journal
events to its own file (merged by the coordinator afterwards), so
observability never perturbs result ordering or content.

Failures keep their context: a worker exception is re-raised as
:class:`~repro.errors.ExperimentError` carrying the scenario name, the
seed, and the worker pid — and, when tracing, a ``worker_error``
journal event survives the crash.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ExperimentError, SweepAbortedError
from repro.harness.cache import ResultCache, compute_key, ensure_cache
from repro.harness.experiment import AnyScenario
from repro.harness.runner import RunMeasurement, run_once
from repro.obs.journal import ABORT_FILENAME, perf_clock, worker_id
from repro.obs.observer import (
    NULL_OBSERVER,
    JournalObserver,
    Observer,
    resolve_observer,
)


@dataclass(frozen=True)
class WorkItem:
    """One independent simulation: a scenario plus its repetition seed."""

    scenario: AnyScenario
    seed: int


class CancelToken:
    """A latching cooperative stop flag shared across the sweep layers.

    The coordinator polls :attr:`cancelled` between item completions;
    anything holding a reference (a drift gate's ``on_result`` hook, a
    signal handler, ...) can call :meth:`cancel`. The first reason wins
    and the token never un-cancels, so every layer observes the same
    decision.
    """

    def __init__(self) -> None:
        self._reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        if self._reason is None:
            self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._reason is not None

    @property
    def reason(self) -> str:
        return self._reason if self._reason is not None else "cancelled"


class FileCancelToken(CancelToken):
    """A cancel token that is also raised/observed via a flag file.

    This is the cross-process abort channel: the coordinator polls
    ``path`` between completions, so an external watcher can stop a
    sweep it did not start by creating the file. The file's first line,
    when present, becomes the abort reason; :meth:`cancel` writes the
    file so in-process aborts are visible to other watchers too.
    """

    def __init__(self, path: Union[str, Path]):
        super().__init__()
        self.path = Path(path)

    def cancel(self, reason: str = "cancelled") -> None:
        super().cancel(reason)
        try:
            self.path.write_text(self.reason + "\n", encoding="utf-8")
        except OSError:
            pass  # the in-memory latch still stops this process

    @property
    def cancelled(self) -> bool:
        if self._reason is not None:
            return True
        if self.path.exists():
            try:
                text = self.path.read_text(encoding="utf-8").strip()
            except OSError:
                text = ""
            lines = text.splitlines()
            self._reason = lines[0] if lines else "abort file present"
            return True
        return False


@dataclass
class SweepControl:
    """Observational hooks threaded through a batch run.

    ``on_result`` fires on the coordinator for every completed item —
    cache hits included — in submission order, receiving the item's
    original submission index, the item, and its measurement.
    ``cancel`` is polled between completions; once it fires, the
    remaining items are skipped (queued pool futures are cancelled) and
    a :class:`~repro.errors.SweepAbortedError` carrying the finished
    portion propagates. Both hooks are strictly observational: they
    must not mutate scenarios or results (the determinism contract),
    only watch them and, at most, pull the cord.
    """

    on_result: Optional[
        Callable[[int, WorkItem, "RunMeasurement"], None]
    ] = None
    cancel: Optional[CancelToken] = None

    def notify(
        self, index: int, item: WorkItem, measurement: RunMeasurement
    ) -> None:
        if self.on_result is not None:
            self.on_result(index, item, measurement)

    def check(
        self, completed: Dict[int, RunMeasurement], total: int
    ) -> None:
        """Raise :class:`SweepAbortedError` if a stop was requested."""
        if self.cancel is not None and self.cancel.cancelled:
            raise SweepAbortedError(
                self.cancel.reason, partial=completed, total=total
            )


def _worker_error(item: WorkItem, exc: Exception) -> ExperimentError:
    """Wrap a worker failure with the context the coordinator loses."""
    return ExperimentError(
        f"work item failed (scenario={item.scenario.name!r}, "
        f"seed={item.seed}, worker pid={worker_id()}): "
        f"{type(exc).__name__}: {exc}"
    )


def execute_item(item: WorkItem) -> RunMeasurement:
    """Run one work item (module-level so process pools can pickle it)."""
    try:
        return run_once(item.scenario, seed=item.seed)
    except Exception as exc:
        raise _worker_error(item, exc) from exc


def run_item_observed(
    item: WorkItem, index: int, observer: Observer
) -> RunMeasurement:
    """Run one item, journaling its lifecycle around :func:`run_once`.

    ``run_started`` / ``run_finished`` events carry the submission
    index, scenario name, seed and content-address; ``run_finished``
    additionally records the measurement's deterministic summary
    (energy, simulated duration, :meth:`RunMeasurement.counters`) plus
    the diagnostic wall time. On failure a ``worker_error`` event is
    journaled before the wrapped :class:`ExperimentError` is raised.
    """
    if not observer.enabled:
        return execute_item(item)
    common = dict(item=index, scenario=item.scenario.name, seed=item.seed)
    cache_key = compute_key(item.scenario, item.seed)
    observer.emit("run_started", cache_key=cache_key, **common)
    started = perf_clock()
    try:
        measurement = run_once(item.scenario, seed=item.seed, observer=observer)
    except Exception as exc:
        observer.emit(
            "worker_error",
            error=str(exc),
            error_type=type(exc).__name__,
            **common,
        )
        raise _worker_error(item, exc) from exc
    observer.emit(
        "run_finished",
        cache_key=cache_key,
        energy_j=measurement.energy_j,
        sim_time_s=measurement.duration_s,
        counters=measurement.counters(),
        extras=measurement.extras,
        wall_s=perf_clock() - started,
        **common,
    )
    return measurement


@dataclass(frozen=True)
class _TracedItem:
    """A work item shipped to a pool worker together with trace context."""

    item: WorkItem
    index: int
    trace_dir: str
    #: whether the coordinator's observer collects hot-path profiles;
    #: workers mirror it so a jobs=N profile covers every run
    profile: bool = False


#: per-process journal observers, keyed by trace directory — a pool
#: worker opens its ``worker-<pid>.jsonl`` once and appends across items
_WORKER_OBSERVERS: Dict[str, JournalObserver] = {}


def _worker_observer(trace_dir: str, profile: bool = False) -> JournalObserver:
    observer = _WORKER_OBSERVERS.get(trace_dir)
    if observer is None:
        wid = worker_id()
        root = Path(trace_dir)
        observer = JournalObserver(
            root / f"worker-{wid}.jsonl",
            worker=wid,
            telemetry_path=root / f"telemetry-worker-{wid}.jsonl",
            profile_path=(
                root / f"profile-worker-{wid}.jsonl" if profile else None
            ),
        )
        _WORKER_OBSERVERS[trace_dir] = observer
    return observer


def execute_item_traced(traced: _TracedItem) -> RunMeasurement:
    """Pool entry point when tracing: journal to this worker's file."""
    observer = _worker_observer(traced.trace_dir, profile=traced.profile)
    return run_item_observed(traced.item, traced.index, observer)


class Executor:
    """Maps work items to measurements, preserving submission order."""

    name: str = "base"

    def run_items(
        self,
        items: Sequence[WorkItem],
        observer: Optional[Observer] = None,
        indices: Optional[Sequence[int]] = None,
        control: Optional[SweepControl] = None,
    ) -> List[RunMeasurement]:
        raise NotImplementedError


def _resolve_indices(
    items: Sequence[WorkItem], indices: Optional[Sequence[int]]
) -> List[int]:
    if indices is None:
        return list(range(len(items)))
    if len(indices) != len(items):
        raise ExperimentError(
            f"{len(indices)} indices for {len(items)} work items"
        )
    return list(indices)


class SerialExecutor(Executor):
    """The reference backend: run items in-process, in order."""

    name = "serial"

    def run_items(
        self,
        items: Sequence[WorkItem],
        observer: Optional[Observer] = None,
        indices: Optional[Sequence[int]] = None,
        control: Optional[SweepControl] = None,
    ) -> List[RunMeasurement]:
        obs = NULL_OBSERVER if observer is None else observer
        index_list = _resolve_indices(items, indices)
        if control is None:
            return [
                run_item_observed(item, index, obs)
                for index, item in zip(index_list, items)
            ]
        completed: Dict[int, RunMeasurement] = {}
        results: List[RunMeasurement] = []
        for index, item in zip(index_list, items):
            control.check(completed, len(items))
            measurement = run_item_observed(item, index, obs)
            completed[index] = measurement
            results.append(measurement)
            control.notify(index, item, measurement)
        return results


class ProcessExecutor(Executor):
    """Fan items out across ``jobs`` worker processes.

    Results are collected in submission order (``pool.map``), and each
    item's seed travels with it, so the outcome never depends on which
    worker ran what or in which order items finished. With tracing on,
    workers journal to per-pid files under the observer's trace
    directory; the coordinator merges them after the batch.
    """

    name = "process"

    def __init__(self, jobs: Optional[int] = None):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ExperimentError(f"need >= 1 worker process, got {jobs}")
        self.jobs = jobs

    def run_items(
        self,
        items: Sequence[WorkItem],
        observer: Optional[Observer] = None,
        indices: Optional[Sequence[int]] = None,
        control: Optional[SweepControl] = None,
    ) -> List[RunMeasurement]:
        items = list(items)
        obs = NULL_OBSERVER if observer is None else observer
        index_list = _resolve_indices(items, indices)
        if self.jobs == 1 or len(items) <= 1:
            return SerialExecutor().run_items(
                items, observer=obs, indices=index_list, control=control
            )
        workers = min(self.jobs, len(items))
        entry: Callable[[Any], RunMeasurement]
        payload: Sequence[Any]
        if obs.enabled and obs.trace_dir is not None:
            payload = [
                _TracedItem(
                    item=item,
                    index=index,
                    trace_dir=str(obs.trace_dir),
                    profile=obs.profile_enabled,
                )
                for index, item in zip(index_list, items)
            ]
            entry = execute_item_traced
        else:
            payload = items
            entry = execute_item
        if control is None:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(entry, payload))
        # Cancellable path: consume results in submission order as they
        # land, polling the stop flag between completions. ``pool.map``
        # submits everything up front, so a cancel only skips futures
        # that have not started yet — finished work is kept.
        completed: Dict[int, RunMeasurement] = {}
        results: List[RunMeasurement] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            stream = pool.map(entry, payload)
            for index, item in zip(index_list, items):
                try:
                    control.check(completed, len(items))
                except SweepAbortedError:
                    pool.shutdown(wait=True, cancel_futures=True)
                    raise
                measurement = next(stream)
                completed[index] = measurement
                results.append(measurement)
                control.notify(index, item, measurement)
        return results


def resolve_executor(
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
) -> Executor:
    """Pick a backend from the ``executor=``/``jobs=`` pair.

    * an :class:`Executor` instance is used as-is,
    * ``"serial"`` / ``"process"`` select a backend by name (``jobs``
      sizes the process pool),
    * with neither given, ``jobs`` alone decides: None or 1 means
      serial, more means a process pool of that size.
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        if jobs is None or jobs == 1:
            return SerialExecutor()
        return ProcessExecutor(jobs)
    if executor == "serial":
        return SerialExecutor()
    if executor == "process":
        return ProcessExecutor(jobs)
    raise ExperimentError(
        f"unknown executor {executor!r}; use 'serial', 'process', or an "
        f"Executor instance"
    )


def run_work_items(
    items: Sequence[WorkItem],
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    observer: Union[None, str, Path, Observer] = None,
    control: Optional[SweepControl] = None,
) -> List[RunMeasurement]:
    """Execute a batch of work items, cache-aware and order-preserving.

    With a cache, stored measurements are returned directly and only
    the misses are dispatched to the backend (then stored). The result
    list always lines up index-for-index with ``items``.

    ``observer`` (an :class:`~repro.obs.observer.Observer` or a trace
    directory) journals the batch: ``batch_started``, per-item
    ``cache_hit``/``cache_miss``, the workers' run events, and
    ``batch_finished``, plus spans around cache I/O. Tracing is purely
    observational — results are bit-identical with it on or off — and
    worker journals are merged even when the batch fails, so crashed
    sweeps keep their evidence.

    ``control`` adds per-completion hooks and cooperative cancellation
    (see :class:`SweepControl`). On a traced run with no explicit
    cancel token, a :class:`FileCancelToken` on
    ``<trace_dir>/abort.requested`` is installed automatically, so an
    external ``greenenvy obs watch --abort-on-drift`` (or a plain
    ``touch``) can stop the sweep. A cancelled batch stores whatever
    finished to the cache, journals ``batch_aborted``, and raises
    :class:`~repro.errors.SweepAbortedError` carrying the partial
    results keyed by submission index.
    """
    items = list(items)
    backend = resolve_executor(executor, jobs)
    store = ensure_cache(cache)
    obs = resolve_observer(observer)
    if not obs.enabled and store is None and control is None:
        # The zero-overhead path: no cache bookkeeping, no events.
        return backend.run_items(items)

    if obs.enabled and obs.trace_dir is not None and (
        control is None or control.cancel is None
    ):
        # Every traced run is externally abortable via its flag file.
        control = SweepControl(
            on_result=control.on_result if control is not None else None,
            cancel=FileCancelToken(Path(obs.trace_dir) / ABORT_FILENAME),
        )

    if obs.enabled:
        obs.emit(
            "batch_started",
            items=len(items),
            backend=backend.name,
            cache=store is not None,
        )
    results: List[Optional[RunMeasurement]] = [None] * len(items)
    missing: List[int] = []
    if store is None:
        missing = list(range(len(items)))
    else:
        with obs.span("cache_lookup", items=len(items)):
            for i, item in enumerate(items):
                hit = store.get(item.scenario, item.seed)
                if hit is not None:
                    results[i] = hit
                else:
                    missing.append(i)
                if obs.enabled:
                    obs.emit(
                        "cache_hit" if hit is not None else "cache_miss",
                        item=i,
                        scenario=item.scenario.name,
                        seed=item.seed,
                        cache_key=store.key(item.scenario, item.seed),
                    )
    if control is not None:
        for i, (item, prior) in enumerate(zip(items, results)):
            if prior is not None:
                control.notify(i, item, prior)
    try:
        if control is not None:
            control.check({}, len(items))
        kwargs: Dict[str, Any] = {}
        if control is not None:
            # Only pass the keyword when live so executors written
            # against the pre-cancellation signature keep working.
            kwargs["control"] = control
        fresh = backend.run_items(
            [items[i] for i in missing], observer=obs, indices=missing,
            **kwargs,
        )
    except SweepAbortedError as exc:
        # Keep every finished measurement: store to cache, fold in the
        # hits, and journal the abort before letting it propagate.
        if store is not None and exc.partial:
            with obs.span("cache_store", items=len(exc.partial)):
                for i, measurement in exc.partial.items():
                    store.put(items[i].scenario, items[i].seed, measurement)
        for i, prior in enumerate(results):
            if prior is not None:
                exc.partial.setdefault(i, prior)
        exc.total = len(items)
        exc.args = (
            f"sweep aborted after {len(exc.partial)}/{exc.total} items: "
            f"{exc.reason}",
        )
        if obs.enabled:
            obs.emit(
                "batch_aborted",
                items=len(items),
                completed=len(exc.partial),
                reason=exc.reason,
            )
        raise
    finally:
        # Merge per-worker journals even on failure: the events leading
        # up to a crash are exactly the ones worth keeping.
        obs.collect_workers()
    if store is not None:
        with obs.span("cache_store", items=len(missing)):
            for i, measurement in zip(missing, fresh):
                store.put(items[i].scenario, items[i].seed, measurement)
                results[i] = measurement
    else:
        for i, measurement in zip(missing, fresh):
            results[i] = measurement
    if obs.enabled:
        obs.emit(
            "batch_finished",
            items=len(items),
            executed=len(missing),
            cache_hits=len(items) - len(missing),
        )
    return [r for r in results if r is not None]
