"""Experiment orchestration: scenarios, runner, repetition statistics."""

from __future__ import annotations

from repro.harness.experiment import FlowSpec, Scenario, scenario_from_plan
from repro.harness.runner import (
    RepeatedResult,
    RunMeasurement,
    run_once,
    run_repeated,
)
from repro.harness.sweep import Sweep, SweepResults, SweepRow

__all__ = [
    "FlowSpec",
    "Scenario",
    "scenario_from_plan",
    "RunMeasurement",
    "RepeatedResult",
    "run_once",
    "run_repeated",
    "Sweep",
    "SweepResults",
    "SweepRow",
]
