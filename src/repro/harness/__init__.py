"""Experiment orchestration: scenarios, runner, parallel execution, caching."""

from __future__ import annotations

from repro.harness.cache import (
    SCHEMA_VERSION,
    ResultCache,
    compute_key,
    measurement_from_dict,
    measurement_to_dict,
)
from repro.harness.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    WorkItem,
    resolve_executor,
    run_work_items,
)
from repro.harness.experiment import (
    AnyScenario,
    FabricScenario,
    FlowSpec,
    Scenario,
    scenario_from_plan,
)
from repro.harness.fabric import run_fabric_once
from repro.harness.runner import (
    RepeatedResult,
    RunMeasurement,
    run_once,
    run_repeated,
)
from repro.harness.sweep import Sweep, SweepResults, SweepRow

__all__ = [
    "FlowSpec",
    "Scenario",
    "FabricScenario",
    "AnyScenario",
    "run_fabric_once",
    "scenario_from_plan",
    "RunMeasurement",
    "RepeatedResult",
    "run_once",
    "run_repeated",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "WorkItem",
    "resolve_executor",
    "run_work_items",
    "ResultCache",
    "SCHEMA_VERSION",
    "compute_key",
    "measurement_to_dict",
    "measurement_from_dict",
    "Sweep",
    "SweepResults",
    "SweepRow",
]
