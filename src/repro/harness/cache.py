"""Content-addressed on-disk cache of scenario measurements.

Every run of the paper's grid is a pure function of ``(scenario spec,
seed)`` — the determinism the lint rules and invariant tests enforce.
That purity makes results cacheable: the cache key is a SHA-256 over the
scenario's canonical serialization (:meth:`Scenario.cache_key`), the
repetition seed, and a schema version, so re-running ``greenenvy grid``
with unchanged parameters replays stored measurements instead of
simulating. Bumping :data:`SCHEMA_VERSION` (whenever the simulator's
physics or the measurement schema change) invalidates every old entry
at once without touching the files.

Values are JSON documents holding the *complete* :class:`RunMeasurement`
— power/throughput series included — because a cache hit must be
bit-identical to the run that produced it. Python floats round-trip
exactly through ``json`` (repr-based encoding), so equality is exact,
not approximate.

Only deterministic inputs may reach the key: never wall-clock times or
process ids (the ``det-wall-clock`` / ``det-process-identity`` lint
rules police this).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.apps.iperf import IperfResult
from repro.errors import ExperimentError
from repro.harness.experiment import AnyScenario
from repro.harness.runner import RunMeasurement
from repro.sim.trace import TimeSeries

#: bump when simulator physics or the measurement schema change; every
#: previously cached entry becomes a miss
#: (2: throughput series renamed to the telemetry "entity:channel" form)
#: (3: fabric runs — the ``extras`` energy-split map joined the schema)
#: (4: the scheduling-policy redesign — ``policy`` joined both scenario
#:  specs, single-link runs grew FCT-percentile extras)
SCHEMA_VERSION = 4


def compute_key(
    scenario: AnyScenario, seed: int, schema_version: int = SCHEMA_VERSION
) -> str:
    """The content address of one (scenario, seed) measurement."""
    payload = json.dumps(
        {
            "schema": schema_version,
            "seed": seed,
            "scenario": scenario.cache_key(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _series_to_dict(series: TimeSeries) -> Dict[str, Any]:
    return {
        "name": series.name,
        "times": list(series.times),
        "values": list(series.values),
    }


def _series_from_dict(data: Dict[str, Any]) -> TimeSeries:
    return TimeSeries(
        name=data["name"], times=list(data["times"]), values=list(data["values"])
    )


def measurement_to_dict(measurement: RunMeasurement) -> Dict[str, Any]:
    """A lossless JSON-ready record of one run (series included)."""
    return {
        "scenario": measurement.scenario,
        "seed": measurement.seed,
        "energy_j": measurement.energy_j,
        "duration_s": measurement.duration_s,
        "bottleneck_drops": measurement.bottleneck_drops,
        "ecn_marks": measurement.ecn_marks,
        "flow_results": [
            {
                "flow_id": r.flow_id,
                "cca": r.cca,
                "bytes_transferred": r.bytes_transferred,
                "start_time": r.start_time,
                "end_time": r.end_time,
                "retransmissions": r.retransmissions,
            }
            for r in measurement.flow_results
        ],
        "power_series": [
            _series_to_dict(s) for s in measurement.power_series
        ],
        "throughput_series": {
            str(flow_id): _series_to_dict(s)
            for flow_id, s in measurement.throughput_series.items()
        },
        "extras": dict(measurement.extras),
    }


def measurement_from_dict(data: Dict[str, Any]) -> RunMeasurement:
    """Rebuild a :class:`RunMeasurement` from its JSON record."""
    return RunMeasurement(
        scenario=data["scenario"],
        seed=data["seed"],
        energy_j=data["energy_j"],
        duration_s=data["duration_s"],
        flow_results=[IperfResult(**flow) for flow in data["flow_results"]],
        bottleneck_drops=data["bottleneck_drops"],
        ecn_marks=data["ecn_marks"],
        power_series=[
            _series_from_dict(s) for s in data["power_series"]
        ],
        throughput_series={
            int(flow_id): _series_from_dict(s)
            for flow_id, s in data["throughput_series"].items()
        },
        extras=dict(data["extras"]),
    )


class ResultCache:
    """A directory of content-addressed measurement files.

    Entries are sharded two levels deep (``ab/abcdef….json``) so even
    hundred-thousand-entry grids keep directory listings fast. ``get``
    treats unreadable or corrupt entries as misses — the run is simply
    repeated and the entry rewritten.
    """

    def __init__(
        self,
        root: Union[str, Path],
        schema_version: int = SCHEMA_VERSION,
    ):
        self.root = Path(root)
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.root.mkdir(parents=True, exist_ok=True)

    def key(self, scenario: AnyScenario, seed: int) -> str:
        return compute_key(scenario, seed, self.schema_version)

    def path(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(
        self, scenario: AnyScenario, seed: int
    ) -> Optional[RunMeasurement]:
        """The stored measurement, or None on a miss."""
        path = self.path(self.key(scenario, seed))
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            measurement = measurement_from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return measurement

    def put(
        self, scenario: AnyScenario, seed: int, measurement: RunMeasurement
    ) -> Path:
        """Store one measurement; returns the entry's path.

        The write is atomic (temp file + rename) so a crashed run never
        leaves a truncated entry behind. Writes happen only in the
        coordinating process, so the deterministic temp name cannot
        collide.
        """
        key = self.key(scenario, seed)
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(measurement_to_dict(measurement)), encoding="utf-8"
        )
        tmp.replace(path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("*/*.json"):
            entry.unlink()
            removed += 1
        return removed


def ensure_cache(
    cache: Union[None, str, Path, ResultCache],
) -> Optional[ResultCache]:
    """Coerce a cache argument (path or instance) to a ResultCache."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    raise ExperimentError(
        f"cache must be a path or ResultCache, got {type(cache).__name__}"
    )
