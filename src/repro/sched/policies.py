"""The concrete scheduling policies the registry ships with.

Each policy is a pure planner: it looks at the batch's flow requests
and the :class:`~repro.sched.policy.SchedulingContext` and answers
admit/defer per flow (plus, for ``srpt`` on priority-capable testbeds,
network-level hints). The harness realizes the plan with the same
completion-chaining mechanics the pre-registry ad-hoc paths used, so
``fair`` and ``serialized`` reproduce the old ``mode=`` arms
bit-for-bit — the policies are where the *decisions* moved, not the
physics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.sched.fluid import fluid_completions
from repro.sched.policy import (
    FlowRequest,
    SchedulePlan,
    SchedulingContext,
    SchedulingPolicy,
)

#: pFabric-style senders: the constant-cwnd "baseline" CCA opened wide
#: enough to keep the line busy, so the priority qdisc — not the host —
#: does the scheduling (Alizadeh et al., SIGCOMM 2013 realized on this
#: simulator's dumbbell)
PFABRIC_WINDOW_SEGMENTS = 14

#: above this offered load the ``load-adaptive`` policy shares; at or
#: below it — and for closed batches — it serializes (the fleet-level
#: sign flip documented in docs/datacenter.md, made a policy input)
DEFAULT_LOAD_THRESHOLD = 0.25

#: the ``deadline`` policy's exact construction runs one fluid
#: evaluation per candidate deferral (O(n^2) flow-events total); past
#: this batch size it falls back to the per-chain slack heuristic
DEADLINE_EXACT_MAX_FLOWS = 64


def _meets(completion_s: float, deadline_s: float) -> bool:
    """Deadline check with relative float slack (fluid times drift)."""
    return completion_s <= deadline_s + max(abs(deadline_s), 1.0) * 1e-9


def _serial_after(requests: Sequence[FlowRequest]) -> List[Optional[int]]:
    """Per-source chaining in batch order.

    This is the exact shape of both retired ad-hoc paths: the fabric
    runner's ``last_on_host`` loop and the single-link ``after_flow``
    chains (where every flow shares one source, so the whole batch
    forms a single chain in declaration order).
    """
    after: List[Optional[int]] = []
    last_by_src: Dict[str, int] = {}
    for request in requests:
        after.append(last_by_src.get(request.src))
        last_by_src[request.src] = request.index
    return after


class FairPolicy(SchedulingPolicy):
    """Every flow starts at its arrival; concurrent flows share links."""

    name = "fair"
    description = (
        "admit every flow at its arrival; concurrent flows fair-share "
        "the bottleneck (what deployed CCAs converge to)"
    )

    def plan(
        self, requests: Sequence[FlowRequest], ctx: SchedulingContext
    ) -> SchedulePlan:
        return self._plan(requests, [None] * len(requests))


class SerializedPolicy(SchedulingPolicy):
    """Full-speed-then-idle: each source runs its flows one at a time."""

    name = "serialized"
    description = (
        "chain each source's flows one-at-a-time in arrival order "
        "(full-speed-then-idle, the paper's energy-winning allocation)"
    )

    def plan(
        self, requests: Sequence[FlowRequest], ctx: SchedulingContext
    ) -> SchedulePlan:
        return self._plan(requests, _serial_after(requests))


class SrptPolicy(SchedulingPolicy):
    """Shortest-remaining-processing-time: finish small flows first."""

    name = "srpt"
    description = (
        "remaining-bytes priority: a pFabric-style priority qdisc where "
        "the testbed supports one, clairvoyant shortest-job-first "
        "chains per source elsewhere"
    )

    def plan(
        self, requests: Sequence[FlowRequest], ctx: SchedulingContext
    ) -> SchedulePlan:
        if ctx.supports_priority:
            # The network schedules, senders blast: all flows admitted,
            # priority bottleneck, line-rate constant-cwnd senders.
            return self._plan(
                requests,
                [None] * len(requests),
                bottleneck_discipline="priority",
                sender_cca="baseline",
                sender_cca_kwargs={
                    "window_segments": PFABRIC_WINDOW_SEGMENTS
                },
            )
        # No priority qdisc at this testbed (fabrics): approximate SRPT
        # with clairvoyant shortest-job-first chains per source host.
        by_src: Dict[str, List[FlowRequest]] = {}
        for request in requests:
            by_src.setdefault(request.src, []).append(request)
        after: List[Optional[int]] = [None] * len(requests)
        for group in by_src.values():
            ranked = sorted(
                group, key=lambda r: (r.size_bytes, r.arrival_s, r.index)
            )
            for prev, nxt in zip(ranked, ranked[1:]):
                after[nxt.index] = prev.index
        return self._plan(requests, after)


class DeadlinePolicy(SchedulingPolicy):
    """Serialize only the flows whose slack allows it.

    Construction guarantee (the property the hypothesis suite checks):
    any deadline that fair sharing meets under the fluid model is still
    met under this policy's plan. For batches up to
    :data:`DEADLINE_EXACT_MAX_FLOWS` that holds *by construction* —
    each candidate deferral is accepted only after a full fluid
    re-evaluation shows every fair-feasible deadline still feasible.
    Larger batches use a per-chain slack heuristic that protects each
    deferred flow's own deadline (deferring a flow can only delay that
    flow and its chain successors under processor sharing, so admitted
    flows keep their fair-share service or better).
    """

    name = "deadline"
    description = (
        "serialize flows whose slack allows it; every deadline that "
        "fair sharing meets stays met"
    )

    def plan(
        self, requests: Sequence[FlowRequest], ctx: SchedulingContext
    ) -> SchedulePlan:
        if len(requests) <= DEADLINE_EXACT_MAX_FLOWS:
            return self._plan(requests, self._exact_after(requests, ctx))
        return self._plan(requests, self._heuristic_after(requests, ctx))

    def _exact_after(
        self, requests: Sequence[FlowRequest], ctx: SchedulingContext
    ) -> List[Optional[int]]:
        def completions(after: List[Optional[int]]) -> List[float]:
            return fluid_completions(
                requests, self._plan(requests, after), ctx.capacity_bps
            )

        n = len(requests)
        after: List[Optional[int]] = [None] * n
        if n == 0:
            return after
        fair = completions(after)
        # The guarantees: every deadline fair sharing itself meets.
        guarded = [
            i
            for i, request in enumerate(requests)
            if request.deadline_s is not None
            and _meets(fair[i], request.deadline_s)
        ]
        last_by_src: Dict[str, int] = {}
        for i, request in enumerate(requests):
            predecessor = last_by_src.get(request.src)
            last_by_src[request.src] = i
            if predecessor is None:
                continue
            candidate = list(after)
            candidate[i] = predecessor
            done = completions(candidate)
            if all(
                _meets(done[g], requests[g].deadline_s)  # type: ignore[arg-type]
                for g in guarded
            ):
                after = candidate
        return after

    def _heuristic_after(
        self, requests: Sequence[FlowRequest], ctx: SchedulingContext
    ) -> List[Optional[int]]:
        after: List[Optional[int]] = [None] * len(requests)
        est_finish: List[float] = [0.0] * len(requests)
        last_by_src: Dict[str, int] = {}
        for i, request in enumerate(requests):
            predecessor = last_by_src.get(request.src)
            duration = request.line_rate_duration_s(ctx.capacity_bps)
            solo_finish = request.arrival_s + duration
            if predecessor is None:
                estimate = solo_finish
            else:
                chained = max(est_finish[predecessor], request.arrival_s)
                estimate = chained + duration
                if request.deadline_s is None or _meets(
                    estimate, request.deadline_s
                ):
                    after[i] = predecessor
                else:
                    estimate = solo_finish
            est_finish[i] = estimate
            last_by_src[request.src] = i
        return after


class LoadAdaptivePolicy(SchedulingPolicy):
    """Share under heavy offered load, serialize otherwise.

    docs/datacenter.md documents the fleet-level sign flip: at ~30 %
    offered load, serializing *costs* ~11 % because idle fleet power
    burns over the stretched makespan. This policy turns that finding
    into a decision rule: closed batches (``offered_load is None`` —
    the paper's classic single-bottleneck win) and lightly loaded
    open workloads serialize; anything above the threshold shares.
    """

    name = "load-adaptive"
    description = (
        "serialize closed or lightly loaded batches, fair-share above "
        "the load threshold (the fleet-level sign flip as a policy)"
    )

    def __init__(self, threshold: float = DEFAULT_LOAD_THRESHOLD) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ExperimentError(
                f"load threshold must be in [0, 1], got {threshold}"
            )
        self.threshold = threshold

    def plan(
        self, requests: Sequence[FlowRequest], ctx: SchedulingContext
    ) -> SchedulePlan:
        load = ctx.offered_load
        if load is not None and load > self.threshold:
            return self._plan(requests, [None] * len(requests))
        return self._plan(requests, _serial_after(requests))
