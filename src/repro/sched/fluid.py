"""Analytic fluid (processor-sharing) evaluation of schedule plans.

:func:`fluid_completions` predicts when each flow of a batch completes
under an idealized bottleneck: every runnable flow receives an equal
``capacity / n_active`` share, instantaneously re-divided as flows
arrive and finish. A flow becomes runnable at its arrival (admitted) or
at ``max(completion(predecessor), arrival)`` (deferred) — exactly the
semantics the harness realizes with completion chaining.

The fluid model deliberately ignores packets, RTTs, and congestion
control: it is the *planning-time* oracle the ``deadline`` policy uses
to check that a proposed deferral keeps every fair-share-feasible
deadline feasible, and the yardstick the feasibility property tests
measure against. Evaluations are pure functions of their arguments —
no RNG, no simulator — so policies built on them stay pure too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.sched.policy import FlowRequest, SchedulePlan
from repro.units import BITS_PER_BYTE

#: residual-work threshold (bits) below which a flow counts as finished;
#: far under one bit, far over accumulated float drift
_RESIDUAL_BITS_EPS = 1e-3


def fluid_completions(
    requests: Sequence[FlowRequest],
    plan: SchedulePlan,
    capacity_bps: float,
) -> List[float]:
    """Per-flow completion times (seconds) under processor sharing.

    ``requests`` must be in batch order (``requests[i].index == i``,
    the same contract plans are validated against). Raises
    :class:`~repro.errors.ExperimentError` when the plan's deferrals
    form a cycle (no flow can ever become runnable).
    """
    if len(plan.flows) != len(requests):
        raise ExperimentError(
            f"plan covers {len(plan.flows)} flows but batch has "
            f"{len(requests)}"
        )
    if capacity_bps <= 0:
        raise ExperimentError(f"capacity must be > 0, got {capacity_bps}")
    n = len(requests)
    if n == 0:
        return []

    remaining = [float(r.size_bytes * BITS_PER_BYTE) for r in requests]
    ready: List[Optional[float]] = [None] * n
    successors: Dict[int, List[int]] = {}
    for i, decision in enumerate(plan.flows):
        if decision.after_index is None:
            ready[i] = requests[i].arrival_s
        else:
            successors.setdefault(decision.after_index, []).append(i)

    completion: List[Optional[float]] = [None] * n
    started = [False] * n
    active: List[int] = []
    now = 0.0
    done = 0
    while done < n:
        # Admit every flow whose ready time has come.
        for i in range(n):
            if not started[i] and ready[i] is not None and ready[i] <= now:
                started[i] = True
                active.append(i)
        pending = [
            ready[i]
            for i in range(n)
            if not started[i] and ready[i] is not None
        ]
        next_ready = min(pending) if pending else None

        if active:
            share = capacity_bps / len(active)
            finish_at = now + min(remaining[i] for i in active) / share
            step_to = (
                finish_at if next_ready is None else min(finish_at, next_ready)
            )
            if step_to > now:
                dt = step_to - now
                for i in active:
                    remaining[i] -= share * dt
        elif next_ready is None:
            stuck = [i for i in range(n) if completion[i] is None]
            raise ExperimentError(
                f"fluid evaluation deadlocked: flows {stuck} can never "
                f"become runnable (deferral cycle in plan "
                f"{plan.policy!r})"
            )
        else:
            step_to = next_ready
        now = step_to

        for i in [i for i in active if remaining[i] <= _RESIDUAL_BITS_EPS]:
            active.remove(i)
            completion[i] = now
            done += 1
            for successor in successors.get(i, ()):
                ready[successor] = max(now, requests[successor].arrival_s)
    return [c for c in completion if c is not None]
