"""The named-policy registry the ``policy=`` seam resolves through.

Scenarios, figures, and the CLI all refer to policies by name; the
registry is the single mapping from spellings to
:class:`~repro.sched.policy.SchedulingPolicy` instances. Pre-registry
spellings (``pfabric``, ``fsti``) resolve through
:data:`POLICY_ALIASES` with a :class:`DeprecationWarning`, so old
call sites keep working while new code uses canonical names.

Adding a policy is two steps: subclass ``SchedulingPolicy`` (set
``name``/``description``, implement ``plan``) and call
:func:`register_policy` — see docs/scheduling.md for a worked example.
"""

from __future__ import annotations

import warnings
from typing import Dict, Tuple

from repro.errors import ExperimentError
from repro.sched.policies import (
    DeadlinePolicy,
    FairPolicy,
    LoadAdaptivePolicy,
    SerializedPolicy,
    SrptPolicy,
)
from repro.sched.policy import SchedulingPolicy

#: deprecated spellings from the pre-registry era: the srpt figure's
#: pFabric arm and fig3's FSTI ("fast, serve in turns"-style) panel
POLICY_ALIASES: Dict[str, str] = {
    "pfabric": "srpt",
    "fsti": "serialized",
}

_REGISTRY: Dict[str, SchedulingPolicy] = {}


def register_policy(
    policy: SchedulingPolicy, *, replace: bool = False
) -> SchedulingPolicy:
    """Add a policy instance under its class's ``name``.

    Returns the policy so the call composes as a one-liner after class
    definition. Re-registering an existing name raises unless
    ``replace=True`` (tests swapping in instrumented doubles).
    """
    name = policy.name
    if not name:
        raise ExperimentError(
            f"{type(policy).__name__} declares no policy name"
        )
    if name in POLICY_ALIASES:
        raise ExperimentError(
            f"{name!r} is reserved as a deprecated alias for "
            f"{POLICY_ALIASES[name]!r}"
        )
    if name in _REGISTRY and not replace:
        raise ExperimentError(
            f"policy {name!r} already registered (pass replace=True to "
            f"override)"
        )
    _REGISTRY[name] = policy
    return policy


def resolve_policy_name(name: str) -> str:
    """Canonicalize a policy spelling: aliases warn, unknowns raise."""
    spelling = name.strip().lower()
    if spelling in POLICY_ALIASES:
        canonical = POLICY_ALIASES[spelling]
        warnings.warn(
            f"policy spelling {name!r} is deprecated; use {canonical!r}",
            DeprecationWarning,
            stacklevel=2,
        )
        spelling = canonical
    if spelling not in _REGISTRY:
        known = ", ".join(policy_names())
        raise ExperimentError(
            f"unknown scheduling policy {name!r} (known: {known})"
        )
    return spelling


def get_policy(name: str) -> SchedulingPolicy:
    """The registered policy instance for any accepted spelling."""
    return _REGISTRY[resolve_policy_name(name)]


def policy_names() -> Tuple[str, ...]:
    """Registered canonical names, sorted for stable display and sweeps."""
    return tuple(sorted(_REGISTRY))


for _policy in (
    FairPolicy(),
    SerializedPolicy(),
    SrptPolicy(),
    DeadlinePolicy(),
    LoadAdaptivePolicy(),
):
    register_policy(_policy)
del _policy
