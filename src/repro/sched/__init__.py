"""Energy-aware flow scheduling as a pluggable subsystem.

The paper's core claim — serializing flows instead of fair-sharing them
can cut energy 5–20 % — used to be hardwired as scattered knobs (a
fabric ``mode`` string, ``after_flow`` chaining, a disjoint "srpt"
priority-qdisc path). This package makes serialize-vs-share a
first-class *policy* decision:

* :mod:`repro.sched.policy` — the :class:`SchedulingPolicy` protocol
  and the plan datatypes it produces (admit/defer/ordering per flow on
  virtual time, plus network-level hints like the bottleneck qdisc);
* :mod:`repro.sched.policies` — the concrete policies: ``fair``,
  ``serialized``, ``srpt``, ``deadline``, ``load-adaptive``;
* :mod:`repro.sched.registry` — the named-policy registry the
  ``policy=`` seam (scenarios, figures, CLI) resolves through;
* :mod:`repro.sched.fluid` — an analytic fluid (processor-sharing)
  evaluator used by the ``deadline`` policy and its feasibility proofs.

Everything here is pure planning: policies never touch the simulator,
so a plan is a deterministic function of the requests and context, and
the harness realizes it with the same chaining mechanics the ad-hoc
paths used (which is what keeps the refactor physics-free).
"""

from __future__ import annotations

from repro.sched.policy import (
    FlowRequest,
    FlowSchedule,
    SchedulePlan,
    SchedulingContext,
    SchedulingPolicy,
)
from repro.sched.fluid import fluid_completions
from repro.sched.policies import (
    DeadlinePolicy,
    FairPolicy,
    LoadAdaptivePolicy,
    PFABRIC_WINDOW_SEGMENTS,
    SerializedPolicy,
    SrptPolicy,
)
from repro.sched.registry import (
    POLICY_ALIASES,
    get_policy,
    policy_names,
    register_policy,
    resolve_policy_name,
)

__all__ = [
    "FlowRequest",
    "FlowSchedule",
    "SchedulePlan",
    "SchedulingContext",
    "SchedulingPolicy",
    "fluid_completions",
    "FairPolicy",
    "SerializedPolicy",
    "SrptPolicy",
    "DeadlinePolicy",
    "LoadAdaptivePolicy",
    "PFABRIC_WINDOW_SEGMENTS",
    "POLICY_ALIASES",
    "get_policy",
    "policy_names",
    "register_policy",
    "resolve_policy_name",
]
