"""The :class:`SchedulingPolicy` protocol and its plan datatypes.

A policy answers one question per flow: *given everything the batch
knows at planning time, when may this flow start?* The answer is either
"at its arrival" (admit) or "when that other flow completes" (defer —
realized by the harness as a completion-chained start at
``max(predecessor_completion, own_arrival)`` on virtual time). A plan
may additionally carry network-level hints — the bottleneck queue
discipline and a sender-side CCA override — which is how pFabric-style
SRPT ("the network schedules, senders blast") fits the same protocol
as host-side serialization.

Policies are pure: a plan is a deterministic function of the request
list and the :class:`SchedulingContext`, never of simulator state or
wall time. That purity is what lets the cache key a scenario by its
policy *name* and lets jobs=N sweeps stay bit-identical to serial runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.units import BITS_PER_BYTE


@dataclass(frozen=True)
class FlowRequest:
    """One flow as the scheduler sees it: size, arrival, endpoints.

    ``index`` is the flow's stable position in the batch (the harness
    maps it back to sessions); ``deadline_s`` is an absolute virtual
    time by which the flow should complete, or None for no deadline.
    """

    index: int
    size_bytes: int
    arrival_s: float = 0.0
    src: str = "sender"
    dst: str = "receiver"
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ExperimentError(
                f"flow {self.index}: size must be > 0, got {self.size_bytes}"
            )
        if self.arrival_s < 0:
            raise ExperimentError(
                f"flow {self.index}: arrival must be >= 0, got {self.arrival_s}"
            )

    def line_rate_duration_s(self, capacity_bps: float) -> float:
        """Seconds to move the payload alone at ``capacity_bps``."""
        if capacity_bps <= 0:
            raise ExperimentError(
                f"capacity must be > 0, got {capacity_bps}"
            )
        return self.size_bytes * BITS_PER_BYTE / capacity_bps


@dataclass(frozen=True)
class FlowSchedule:
    """One flow's scheduling decision inside a plan.

    ``after_index`` of None means the flow is admitted at its arrival;
    otherwise it is deferred behind that flow and starts at
    ``max(completion(after_index), arrival)``.
    """

    index: int
    after_index: Optional[int] = None

    @property
    def deferred(self) -> bool:
        return self.after_index is not None


@dataclass(frozen=True)
class SchedulePlan:
    """A policy's full answer for one batch.

    ``bottleneck_discipline`` and the ``sender_cca`` override are
    network-level hints for testbeds that support them (the dumbbell's
    priority qdisc); fabric runners that cannot honor a hint simply
    see policies that never emit it (the context's
    ``supports_priority`` flag tells the policy what is available).
    """

    policy: str
    flows: Tuple[FlowSchedule, ...]
    bottleneck_discipline: str = "fifo"
    #: replace every sender's CCA (pFabric pairs line-rate constant-cwnd
    #: senders with in-network priority scheduling); None keeps each
    #: flow's declared CCA
    sender_cca: Optional[str] = None
    sender_cca_kwargs: Optional[Dict[str, int]] = None

    def __post_init__(self) -> None:
        for i, decision in enumerate(self.flows):
            if decision.index != i:
                raise ExperimentError(
                    f"plan is not in batch order: position {i} holds "
                    f"flow {decision.index}"
                )
            after = decision.after_index
            if after is not None and not 0 <= after < len(self.flows):
                raise ExperimentError(
                    f"flow {i} deferred behind nonexistent flow {after}"
                )
            if after == i:
                raise ExperimentError(f"flow {i} cannot defer behind itself")

    def schedule_for(self, index: int) -> FlowSchedule:
        return self.flows[index]


@dataclass(frozen=True)
class SchedulingContext:
    """What a policy may condition on besides the requests themselves."""

    #: the narrowest per-source link rate flows contend for
    capacity_bps: float
    #: the workload's offered load as a fraction of capacity; None for
    #: closed batches (everything arrives at t=0), where utilization
    #: over the window is 1 by construction
    offered_load: Optional[float] = None
    #: whether the testbed can realize a priority (pFabric) bottleneck
    supports_priority: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ExperimentError(
                f"capacity must be > 0, got {self.capacity_bps}"
            )


class SchedulingPolicy(abc.ABC):
    """Decides per-flow admit/defer/ordering for a batch of flows.

    Subclasses set ``name`` (the registry spelling) and ``description``
    and implement :meth:`plan`. Policies must be pure functions of
    ``(requests, ctx)`` — no RNG, no wall clock, no simulator state —
    and must preserve batch order in the returned plan (one
    :class:`FlowSchedule` per request, same positions).
    """

    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def plan(
        self, requests: Sequence[FlowRequest], ctx: SchedulingContext
    ) -> SchedulePlan:
        """The policy's decisions for every flow in the batch."""

    def _plan(
        self,
        requests: Sequence[FlowRequest],
        after: Sequence[Optional[int]],
        **overrides: object,
    ) -> SchedulePlan:
        """Assemble a plan from per-flow defer targets (helper)."""
        return SchedulePlan(
            policy=self.name,
            flows=tuple(
                FlowSchedule(index=r.index, after_index=a)
                for r, a in zip(requests, after)
            ),
            **overrides,  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
