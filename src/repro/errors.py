"""Exception hierarchy for the Green-With-Envy reproduction library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so applications can catch library errors without
masking genuine bugs (``TypeError`` etc. still propagate).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. scheduling in the past)."""


class NetworkConfigError(ReproError):
    """A network element was configured with invalid parameters."""


class TcpStateError(ReproError):
    """A TCP connection was driven through an invalid state transition."""


class EnergyModelError(ReproError):
    """The energy model was configured or queried inconsistently."""


class ExperimentError(ReproError):
    """An experiment description is invalid or a run failed to complete."""


class SweepAbortedError(ExperimentError):
    """A sweep was cancelled cooperatively before every item ran.

    Raised by the executor layer when a :class:`~repro.harness.executor.
    CancelToken` fires mid-batch (``--abort-on-drift``, an external
    ``obs watch`` abort request, ...). Unlike a worker crash, the
    completed portion of the batch is intact and travels with the
    exception so callers can render partial figures or store results.

    ``partial`` maps the original submission index of every finished
    item to its measurement; ``total`` is the batch size; ``reason``
    says who pulled the cord. Layers above the executor may attach
    richer views (``partial_sweep``, ``partial_figure``) on the way up.
    """

    def __init__(
        self,
        reason: str,
        partial: Optional[Mapping[int, Any]] = None,
        total: int = 0,
    ):
        self.reason = reason
        self.partial = dict(partial or {})
        self.total = total
        super().__init__(
            f"sweep aborted after {len(self.partial)}/{total} items: {reason}"
        )


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class ObservabilityError(ReproError):
    """The tracing/metrics layer was configured or fed inconsistently."""
