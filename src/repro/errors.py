"""Exception hierarchy for the Green-With-Envy reproduction library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so applications can catch library errors without
masking genuine bugs (``TypeError`` etc. still propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. scheduling in the past)."""


class NetworkConfigError(ReproError):
    """A network element was configured with invalid parameters."""


class TcpStateError(ReproError):
    """A TCP connection was driven through an invalid state transition."""


class EnergyModelError(ReproError):
    """The energy model was configured or queried inconsistently."""


class ExperimentError(ReproError):
    """An experiment description is invalid or a run failed to complete."""


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class ObservabilityError(ReproError):
    """The tracing/metrics layer was configured or fed inconsistently."""
