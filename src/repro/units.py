"""Unit helpers and constants used across the library.

All simulator-internal quantities use SI base units:

* time        — seconds (float)
* data size   — bytes (int) unless a name says otherwise
* data rate   — bits per second (float)
* energy      — joules (float); the RAPL emulation layer exposes microjoules
* power       — watts (float)

The helpers in this module exist so call sites read like the paper
("10 Gb/s", "50 GB", "9000-byte MTU") instead of raw exponents.
"""

from __future__ import annotations

# --- data rate ------------------------------------------------------------

BITS_PER_BYTE = 8

KBPS = 1e3
MBPS = 1e6
GBPS = 1e9


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return value * GBPS


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * MBPS


def to_gbps(bits_per_second: float) -> float:
    """Convert bits/second to gigabits/second."""
    return bits_per_second / GBPS


# --- data size ------------------------------------------------------------

KB = 1000
MB = 1000**2
GB = 1000**3
KIB = 1024
MIB = 1024**2
GIB = 1024**3


def gigabytes(value: float) -> int:
    """Convert gigabytes (decimal, like iperf3 -n 50G) to bytes."""
    return int(value * GB)


def megabytes(value: float) -> int:
    """Convert megabytes to bytes."""
    return int(value * MB)


def gigabits(value: float) -> int:
    """Convert gigabits (the paper's '10 Gbit of data') to bytes."""
    return int(value * GB / BITS_PER_BYTE)


# --- time -----------------------------------------------------------------

USEC = 1e-6
MSEC = 1e-3


def usec(value: float) -> float:
    """Convert microseconds to seconds.

    Implemented as division by 1e6 (exactly representable) so
    ``usec(40)`` rounds identically to the literal ``40e-6``.
    """
    return value / 1e6


def msec(value: float) -> float:
    """Convert milliseconds to seconds.

    Division by 1e3 for the same correct-rounding reason as :func:`usec`.
    """
    return value / 1e3


def to_msec(seconds: float) -> float:
    """Convert seconds to milliseconds (table/figure display unit)."""
    return seconds * 1e3


# --- energy ---------------------------------------------------------------

MICROJOULE = 1e-6
KILOJOULE = 1e3


def joules_to_kj(value: float) -> float:
    """Convert joules to kilojoules (the unit of the paper's Fig. 5/7/8)."""
    return value / KILOJOULE


def joules_to_uj(value: float) -> float:
    """Convert joules to microjoules (the RAPL counter's native unit)."""
    return value * 1e6


# --- reporting scales -----------------------------------------------------

#: not an SI unit — the scale for "$M/year"-style report lines
MILLION = 1e6


def transmission_time(size_bytes: int, rate_bps: float) -> float:
    """Serialization delay of ``size_bytes`` on a ``rate_bps`` link, seconds."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return size_bytes * BITS_PER_BYTE / rate_bps
