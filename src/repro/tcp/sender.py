"""TCP sender: window management, loss recovery, retransmission, pacing.

This is the engine room of the reproduction. One :class:`TcpSender`
models the sending half of a Linux TCP connection at the fidelity the
paper's experiments exercise:

* cwnd-limited, ACK-clocked transmission (or paced, if the CCA asks),
* RTT sampling from echoed send timestamps (Karn-safe),
* duplicate-ACK and SACK-based fast retransmit with NewReno-style
  partial-ACK retransmission during recovery,
* RTO with exponential backoff and go-back-N style recovery of the
  un-SACKed outstanding data,
* ECN (ECE) handling with at-most-once-per-window reduction for classic
  CCAs, full feedback passthrough for DCTCP,
* delivery-rate samples per ACK (what BBR's bandwidth filter consumes).

Energy coupling happens exclusively through
:meth:`~repro.net.host.Host.notify_cc_op` and the host send/receive
events — the sender never talks to the energy model directly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import TcpStateError
from repro.net.host import Host
from repro.net.packet import Packet, mss_for_mtu
from repro.sim.engine import Event, Simulator
from repro.sim.probe import (
    CWND_CHANNEL,
    RETRANSMITS_CHANNEL,
    SRTT_CHANNEL,
    SSTHRESH_CHANNEL,
)
from repro.sim.profile import TCP_HANDLE_PACKET
from repro.sim.timer import Timer
from repro.sim.trace import CounterSet
from repro.cc.base import AckEvent, CongestionControl
from repro.tcp.ranges import RangeSet
from repro.units import msec
from repro.tcp.rtt import RttEstimator
from repro.units import BITS_PER_BYTE

CcaFactory = Callable[["TcpSender"], CongestionControl]
CompletionCallback = Callable[[float], None]

#: Fast retransmit threshold (RFC 5681).
DUPACK_THRESHOLD = 3


class SegmentInfo:
    """Sender-side bookkeeping for one outstanding data segment.

    One is allocated per transmitted segment, hence ``__slots__``.
    """

    __slots__ = (
        "seq",
        "length",
        "first_sent_time",
        "sent_time",
        "delivered_at_send",
        "retransmitted",
        "sacked",
        "in_flight",
        "app_limited",
    )

    def __init__(
        self,
        seq: int,
        length: int,
        first_sent_time: float,
        sent_time: float,
        delivered_at_send: int,
        retransmitted: bool = False,
        sacked: bool = False,
        in_flight: bool = False,
        app_limited: bool = False,
    ) -> None:
        self.seq = seq
        self.length = length
        self.first_sent_time = first_sent_time
        self.sent_time = sent_time
        self.delivered_at_send = delivered_at_send
        self.retransmitted = retransmitted
        self.sacked = sacked
        self.in_flight = in_flight
        self.app_limited = app_limited

    @property
    def end_seq(self) -> int:
        return self.seq + self.length


class TcpSender:
    """Sending endpoint of one simulated TCP connection.

    The sender also *is* the :class:`~repro.cc.base.CcContext` handed to
    its congestion controller.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        dst: str,
        cca_factory: CcaFactory,
        total_bytes: Optional[int] = None,
        mss: Optional[int] = None,
        ecn_capable: bool = False,
        min_rto: float = msec(1.0),
        tsq_limit_bytes: int = 256 * 1024,
    ):
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst = dst
        self._mss = mss if mss is not None else mss_for_mtu(host.mtu_bytes)
        if self._mss <= 0:
            raise TcpStateError(f"MSS must be positive, got {self._mss}")
        self.total_bytes = total_bytes
        self.ecn_capable = ecn_capable
        #: TCP-Small-Queues-style cap on this flow's bytes in the host
        #: qdisc; keeps a fast sender from bufferbloating its own NIC
        self.tsq_limit_bytes = tsq_limit_bytes

        self.rtt = RttEstimator(min_rto=min_rto)
        self.counters = CounterSet()
        #: probe entity label, precomputed so the per-ACK telemetry path
        #: does not build an f-string per event
        self._probe_entity = f"flow-{flow_id}"

        # sequence space
        self.snd_una = 0
        self.snd_nxt = 0
        #: peer's advertised receive window (updated from every ACK)
        self.rwnd_bytes = 64 * 1024
        self.app_bytes = total_bytes if total_bytes is not None else 0
        self.delivered_bytes = 0

        # outstanding segment bookkeeping (_order holds seqs in send
        # order, which is ascending for new data — reaping is O(acked))
        self._segments: Dict[int, SegmentInfo] = {}
        self._order: Deque[int] = deque()
        self._sacked = RangeSet()
        self._in_flight = 0
        self._retx_queue: Deque[int] = deque()
        self._retx_queued: set = set()

        # loss recovery state
        self._dupack_count = 0
        self._recovery_point: Optional[int] = None
        self._last_ecn_reduction: Optional[float] = None
        self._highest_sacked = 0
        self._epoch_scan: Optional[int] = None  # scoreboard scan cursor

        # pacing
        self._pacing_next = 0.0
        self._pacing_event: Optional[Event] = None
        #: set when the host qdisc rejected a packet; cleared on drain
        self._local_block = False
        #: last sequence that bypassed cwnd as the front hole (each
        #: distinct hole gets one free retransmission, like NewReno's
        #: partial-ACK rule — but never more than one per hole)
        self._front_bypass_seq = -1

        self._rto_timer = Timer(sim, self._on_rto)
        self.completed_at: Optional[float] = None
        self._on_complete: List[CompletionCallback] = []
        self._started = False

        host.register_flow(flow_id, self)
        self.cca: CongestionControl = cca_factory(self)

    # ------------------------------------------------------------------
    # CcContext protocol
    # ------------------------------------------------------------------

    @property
    def mss(self) -> int:
        """Maximum segment size in bytes."""
        return self._mss

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT, if sampled."""
        return self.rtt.srtt

    @property
    def min_rtt(self) -> Optional[float]:
        """Minimum RTT observed on this connection."""
        return self.rtt.min_rtt

    def charge(self, cost_units: float) -> None:
        """Forward CCA computation cost to the host's energy listeners."""
        self.host.notify_cc_op(self.cca.name, cost_units, self.flow_id)

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting whatever data is available."""
        self._started = True
        nic = self.host.nic
        if nic is not None and nic.tx_packet_gap_s > 0:
            # Wake on qdisc drain: releases TSQ backpressure and retries
            # after local drops.
            nic.add_drain_listener(self._on_qdisc_drain)
        self._try_send()

    def _on_qdisc_drain(self) -> None:
        if self._local_block:
            # Hysteresis, like the kernel's qdisc wakeups: after a local
            # drop, stay blocked until the queue has drained below the
            # CCA's watermark instead of hammering one packet per slot.
            # (The no-CC baseline sets its watermark at ~100% and pays
            # for the resulting churn in wasted transmit slots.)
            nic = self.host.nic
            if nic is not None and nic.tx_backlog_packets > int(
                self.cca.qdisc_retry_watermark * nic.tx_queue_packets
            ):
                return
            self._local_block = False
        self._try_send()

    def write(self, nbytes: int) -> None:
        """Make ``nbytes`` more application data available to send."""
        if nbytes < 0:
            raise TcpStateError(f"cannot write {nbytes} bytes")
        self.app_bytes += nbytes
        if self._started:
            self._try_send()

    def on_complete(self, callback: CompletionCallback) -> None:
        """Register a callback fired when ``total_bytes`` are fully ACKed."""
        self._on_complete.append(callback)

    @property
    def complete(self) -> bool:
        """Whether the configured transfer has been fully acknowledged."""
        return self.completed_at is not None

    @property
    def bytes_in_flight(self) -> int:
        """Estimated bytes currently in the network."""
        return self._in_flight

    @property
    def in_recovery(self) -> bool:
        """Whether the sender is inside a loss-recovery episode."""
        return self._recovery_point is not None

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Process an incoming ACK.

        The public entry point wraps :meth:`_handle_packet` in a
        hot-path profiler span when one is attached — this is the
        per-ACK path a profile-driven engine overhaul needs to see.
        """
        profiler = self.sim.profiler
        if profiler.enabled:
            profiler.enter(TCP_HANDLE_PACKET)
            try:
                self._handle_packet(packet)
            finally:
                profiler.exit(TCP_HANDLE_PACKET)
        else:
            self._handle_packet(packet)

    def _handle_packet(self, packet: Packet) -> None:
        if not packet.is_ack:
            self.counters.add("unexpected_data")
            return
        if packet.ack_seq > self.snd_nxt:
            raise TcpStateError(
                f"flow {self.flow_id}: ACK {packet.ack_seq} beyond "
                f"snd_nxt {self.snd_nxt}"
            )
        self.counters.add("acks")
        if packet.rwnd_bytes is not None:
            self.rwnd_bytes = packet.rwnd_bytes

        rtt_sample: Optional[float] = None
        if packet.echo_time is not None:
            rtt_sample = self.sim.now - packet.echo_time
            if rtt_sample > 0:
                self.rtt.on_sample(rtt_sample)

        newly_sacked = self._apply_sacks(packet)

        if packet.ack_seq > self.snd_una:
            self._handle_new_ack(packet, rtt_sample)
        else:
            self._handle_dupack(packet, rtt_sample, newly_sacked)
            # Any ACK (including dupacks carrying SACK progress) shows the
            # connection is alive — rearm the RTO like the kernel does.
            if self._outstanding_bytes() > 0:
                self._rto_timer.start(self.rtt.rto)

        self._try_send()

        sink = self.sim.probe_sink
        if sink.enabled:
            # Per-ACK congestion-state telemetry: the series the paper's
            # trajectory claims (§4.1, §4.5) are read from. Downsampling
            # happens in the sink, never here.
            now = self.sim.now
            entity = self._probe_entity
            sink.sample(now, CWND_CHANNEL, entity, float(self.cca.cwnd))
            sink.sample(
                now, SSTHRESH_CHANNEL, entity, float(self.cca.ssthresh)
            )
            if self.rtt.srtt is not None:
                sink.sample(now, SRTT_CHANNEL, entity, self.rtt.srtt)
            sink.sample(
                now,
                RETRANSMITS_CHANNEL,
                entity,
                self.counters.get("retransmits"),
            )

    def _make_event(
        self,
        packet: Packet,
        newly_acked: int,
        rtt_sample: Optional[float],
        delivery_rate: Optional[float],
        app_limited: bool,
    ) -> AckEvent:
        return AckEvent(
            newly_acked_bytes=newly_acked,
            cumulative_ack=packet.ack_seq,
            rtt_sample=rtt_sample,
            flight_bytes=self._in_flight,
            in_recovery=self.in_recovery,
            ecn_echo=packet.ecn_echo,
            ecn_marked_bytes=packet.ecn_marked_bytes,
            delivery_rate_bps=delivery_rate,
            is_app_limited=app_limited,
            int_qlen_bytes=packet.int_qlen_bytes,
            int_tx_bytes=packet.int_tx_bytes,
            int_timestamp=packet.int_timestamp,
            int_link_rate_bps=packet.int_link_rate_bps,
        )

    def _handle_new_ack(
        self,
        packet: Packet,
        rtt_sample: Optional[float],
    ) -> None:
        newly_acked = packet.ack_seq - self.snd_una
        self.snd_una = packet.ack_seq
        self.delivered_bytes += newly_acked
        self._dupack_count = 0
        delivery_rate, app_limited = self._reap_acked_segments(packet.ack_seq)
        self._sacked.trim_below(packet.ack_seq)

        event = self._make_event(
            packet, newly_acked, rtt_sample, delivery_rate, app_limited
        )

        if self.in_recovery:
            assert self._recovery_point is not None
            if packet.ack_seq >= self._recovery_point:
                self._recovery_point = None
                self._epoch_scan = None
                self.cca.on_recovery_exit()
                self.counters.add("recovery_exits")
                self._maybe_ecn_react(event)
                self.cca.on_ack(event)
            else:
                # Partial ACK: the hole at the new snd_una was also lost,
                # and the SACK scoreboard may expose further holes.
                self.counters.add("partial_acks")
                self._queue_retransmit(self.snd_una)
                self._queue_sack_holes()
        else:
            self._maybe_ecn_react(event)
            self.cca.on_ack(event)

        if self._outstanding_bytes() > 0:
            self._rto_timer.start(self.rtt.rto)
        else:
            self._rto_timer.stop()

        self._check_complete()

    def _handle_dupack(
        self,
        packet: Packet,
        rtt_sample: Optional[float],
        newly_sacked: int,
    ) -> None:
        if self._outstanding_bytes() == 0:
            return  # window update / stray ACK, nothing outstanding
        self._dupack_count += 1
        self.counters.add("dupacks")
        event = self._make_event(packet, 0, rtt_sample, None, False)
        self.cca.on_dupack(event)

        sack_loss = self._sacked.total_bytes >= DUPACK_THRESHOLD * self._mss
        if (
            not self.in_recovery
            and (self._dupack_count >= DUPACK_THRESHOLD or sack_loss)
        ):
            self._enter_fast_recovery(event)
        elif self.in_recovery:
            self._queue_sack_holes()

    def _enter_fast_recovery(self, event: AckEvent) -> None:
        self._recovery_point = self.snd_nxt
        self._epoch_scan = self.snd_una
        self.counters.add("fast_recoveries")
        self.cca.on_congestion_event(event)
        self._queue_retransmit(self.snd_una)
        self._queue_sack_holes()

    def _queue_sack_holes(self) -> None:
        """RFC 6675-style scoreboard: every unsacked segment below the
        highest SACKed byte is presumed lost and queued for retransmit.

        The scan cursor only moves forward within one recovery epoch, so
        total scan work per epoch is O(window) even under heavy loss.
        """
        if self._recovery_point is None or self._epoch_scan is None:
            return
        limit = min(self._highest_sacked, self._recovery_point)
        cursor = max(self._epoch_scan, self.snd_una)
        while cursor < limit:
            seg = self._segments.get(cursor)
            if seg is None:
                # Either reaped (below snd_una — cannot happen given the
                # max above) or mid-segment; step by MSS to resync.
                cursor += self._mss
                continue
            if not seg.sacked:
                self._queue_retransmit(seg.seq)
            cursor = seg.end_seq
        self._epoch_scan = cursor

    def _maybe_ecn_react(self, event: AckEvent) -> None:
        """Classic CCAs cut at most once per RTT on ECE; DCTCP-style
        controllers see every ACK's marked-byte feedback via on_ecn."""
        if not event.ecn_echo and event.ecn_marked_bytes == 0:
            return
        if getattr(self.cca, "reacts_per_ack_to_ecn", False):
            self.cca.on_ecn(event)
            return
        if not event.ecn_echo:
            return
        window = self.rtt.srtt or self.rtt.min_rtt or 0.0
        last = self._last_ecn_reduction
        if last is None or self.sim.now - last >= window:
            self._last_ecn_reduction = self.sim.now
            self.counters.add("ecn_reductions")
            self.cca.on_ecn(event)

    # ------------------------------------------------------------------
    # SACK / segment bookkeeping
    # ------------------------------------------------------------------

    def _apply_sacks(self, packet: Packet) -> int:
        newly = 0
        for start, end in packet.sacks:
            if end <= start:
                continue
            if end <= self.snd_una:
                continue  # stale block, fully below the cumulative ACK
            self._highest_sacked = max(self._highest_sacked, end)
            newly += self._sacked.add(max(start, self.snd_una), end)
        if newly:
            for seg in self._segments.values():
                if (
                    not seg.sacked
                    and self._sacked.contains(seg.seq, seg.end_seq)
                ):
                    seg.sacked = True
                    if seg.in_flight:
                        seg.in_flight = False
                        self._in_flight -= seg.length
        return newly

    def _reap_acked_segments(
        self, ack_seq: int
    ) -> "tuple[Optional[float], bool]":
        """Remove fully-ACKed segments; return a BBR-style delivery-rate
        sample from the newest non-retransmitted segment covered.

        ``_order`` is ascending in seq, so this is O(segments acked)
        amortized rather than O(outstanding) per ACK.
        """
        best: Optional[SegmentInfo] = None
        order = self._order
        segments = self._segments
        while order:
            seq = order[0]
            seg = segments.get(seq)
            if seg is None:
                order.popleft()
                continue
            if seg.end_seq > ack_seq:
                break
            order.popleft()
            del segments[seq]
            if seg.in_flight:
                self._in_flight -= seg.length
            if not seg.retransmitted:
                best = seg  # ascending order: the last one wins
        if best is None:
            return None, False
        elapsed = self.sim.now - best.first_sent_time
        if elapsed <= 0:
            return None, best.app_limited
        acked_since = self.delivered_bytes - best.delivered_at_send
        if acked_since <= 0:
            return None, best.app_limited
        return acked_since * BITS_PER_BYTE / elapsed, best.app_limited

    def _outstanding_bytes(self) -> int:
        return self.snd_nxt - self.snd_una

    # ------------------------------------------------------------------
    # RTO
    # ------------------------------------------------------------------

    def _on_rto(self) -> None:
        if self._outstanding_bytes() == 0:
            return
        self.counters.add("rtos")
        self.rtt.backoff()
        self.cca.on_rto()
        # Everything outstanding and un-SACKed is presumed lost.
        self._recovery_point = self.snd_nxt
        for seq in sorted(self._segments):
            seg = self._segments[seq]
            if seg.sacked:
                continue
            if seg.in_flight:
                seg.in_flight = False
                self._in_flight -= seg.length
            self._queue_retransmit(seq)
        self._rto_timer.start(self.rtt.rto)
        self._try_send()

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------

    def _queue_retransmit(self, seq: int) -> None:
        seg = self._segments.get(seq)
        if seg is None or seg.sacked:
            return
        if seg.in_flight:
            seg.in_flight = False
            self._in_flight -= seg.length
        if seq not in self._retx_queued:
            self._retx_queued.add(seq)
            self._retx_queue.append(seq)

    def _next_new_segment_size(self) -> int:
        available = self.app_bytes - self.snd_nxt
        if self.total_bytes is not None:
            available = min(available, self.total_bytes - self.snd_nxt)
        return min(self._mss, max(0, available))

    def _cwnd_allows(self, nbytes: int) -> bool:
        window = min(self.cca.cwnd, self.rwnd_bytes)
        return self._in_flight + nbytes <= window or self._in_flight == 0

    def _pacing_gate(self) -> bool:
        """True when pacing permits a send now; otherwise schedules a
        wakeup and returns False."""
        rate = self.cca.pacing_rate_bps()
        if rate is None or rate <= 0:
            return True
        if self.sim.now >= self._pacing_next:
            return True
        if self._pacing_event is None or not self._pacing_event.alive:
            self._pacing_event = self.sim.schedule_at(
                self._pacing_next, self._pacing_wakeup
            )
        return False

    def _pacing_wakeup(self) -> None:
        self._pacing_event = None
        self._try_send()

    def _charge_pacing(self, wire_bytes: int) -> None:
        rate = self.cca.pacing_rate_bps()
        if rate is None or rate <= 0:
            return
        self._pacing_next = (
            max(self.sim.now, self._pacing_next) + wire_bytes * BITS_PER_BYTE / rate
        )

    def _tsq_blocked(self) -> bool:
        """TCP Small Queues: don't stack more of this flow in the qdisc."""
        if not self.cca.respects_tsq:
            return False
        nic = self.host.nic
        if nic is None or nic.tx_packet_gap_s <= 0:
            return False
        return nic.flow_backlog_bytes(self.flow_id) >= self.tsq_limit_bytes

    def _try_send(self) -> None:
        if not self._started or self.complete:
            return
        while not self._local_block and not self._tsq_blocked():
            # Retransmissions take priority over new data. The front
            # hole (snd_una) may bypass cwnd once per distinct hole —
            # the NewReno partial-ACK retransmission — but never more,
            # so repeated in-network loss of the same segment cannot
            # turn the bypass into an unbounded retransmission stream.
            seq = self._peek_retransmit()
            if seq is not None:
                seg = self._segments[seq]
                if not self._cwnd_allows(seg.length):
                    bypass_ok = (
                        seq == self.snd_una and seq != self._front_bypass_seq
                    )
                    if not bypass_ok:
                        return
                    self._front_bypass_seq = seq
                if not self._pacing_gate():
                    return
                self._retx_queue.popleft()
                self._retx_queued.discard(seq)
                self._transmit_segment(seg, retransmit=True)
                continue
            size = self._next_new_segment_size()
            if size <= 0:
                return
            if not self._cwnd_allows(size) or not self._pacing_gate():
                return
            self._transmit_new(size)

    def _peek_retransmit(self) -> Optional[int]:
        retx = self._retx_queue
        while retx:
            seq = retx[0]
            seg = self._segments.get(seq)
            if seg is None or seg.sacked or seg.end_seq <= self.snd_una:
                retx.popleft()
                self._retx_queued.discard(seq)
                continue
            return seq
        return None

    def _transmit_new(self, size: int) -> None:
        app_limited = (
            self._next_new_segment_size() < self._mss
            or self.app_bytes - self.snd_nxt - size <= 0
        )
        seg = SegmentInfo(
            seq=self.snd_nxt,
            length=size,
            first_sent_time=self.sim.now,
            sent_time=self.sim.now,
            delivered_at_send=self.delivered_bytes,
            in_flight=True,
            app_limited=app_limited,
        )
        self._segments[seg.seq] = seg
        self._order.append(seg.seq)
        self.snd_nxt += size
        self._in_flight += size
        self._send_packet(seg, retransmitted=False)

    def _transmit_segment(self, seg: SegmentInfo, retransmit: bool) -> None:
        seg.retransmitted = seg.retransmitted or retransmit
        seg.sent_time = self.sim.now
        seg.in_flight = True
        self._in_flight += seg.length
        self.counters.add("retransmits")
        self._send_packet(seg, retransmitted=True)

    def _send_packet(self, seg: SegmentInfo, retransmitted: bool) -> None:
        # pFabric-style priority: the flow's remaining bytes, so a
        # priority-scheduled bottleneck approximates SRPT. FIFO queues
        # ignore the field.
        if self.total_bytes is not None:
            remaining = max(0, self.total_bytes - self.snd_una)
        else:
            remaining = None
        packet = Packet(
            flow_id=self.flow_id,
            src=self.host.name,
            dst=self.dst,
            seq=seg.seq,
            payload_bytes=seg.length,
            ecn_capable=self.ecn_capable,
            retransmitted=retransmitted,
            priority=remaining,
        )
        self.counters.add("segments_sent")
        self.counters.add("bytes_sent", seg.length)
        self.cca.on_sent(seg.length)
        self._charge_pacing(packet.wire_bytes)
        accepted = self.host.send(packet)
        if not accepted:
            # The host qdisc rejected the packet (local congestion). The
            # kernel learns this synchronously: the segment goes straight
            # back on the retransmit queue and we pause until the qdisc
            # drains. It still counts as a retransmission when resent,
            # which is how the paper's no-TSQ baseline racks up millions
            # of retransmits without collapsing.
            self.counters.add("local_drops")
            seg.in_flight = False
            self._in_flight -= seg.length
            self._local_block = True
            self._queue_retransmit(seg.seq)
        if not self._rto_timer.pending:
            self._rto_timer.start(self.rtt.rto)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def _check_complete(self) -> None:
        if (
            self.completed_at is None
            and self.total_bytes is not None
            and self.snd_una >= self.total_bytes
        ):
            self.completed_at = self.sim.now
            self._rto_timer.stop()
            if self._pacing_event is not None and self._pacing_event.alive:
                self._pacing_event.cancel()
            for callback in self._on_complete:
                callback(self.sim.now)

    @property
    def flow_completion_time(self) -> Optional[float]:
        """Seconds from t=0 to full acknowledgement, if finished."""
        return self.completed_at
