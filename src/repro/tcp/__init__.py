"""TCP stack: sender, receiver, RTT estimation, range bookkeeping."""

from __future__ import annotations

from repro.tcp.ranges import RangeSet
from repro.tcp.receiver import TcpReceiver
from repro.tcp.rtt import RttEstimator
from repro.tcp.sender import SegmentInfo, TcpSender

__all__ = [
    "RangeSet",
    "RttEstimator",
    "TcpReceiver",
    "TcpSender",
    "SegmentInfo",
]
