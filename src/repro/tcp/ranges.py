"""Byte-range bookkeeping shared by the receiver (reassembly) and the
sender (SACK scoreboard).

A :class:`RangeSet` stores disjoint half-open ``[start, end)`` intervals
with merge-on-insert. Both TCP endpoints are, at heart, interval sets:
the receiver tracks which bytes have arrived, the sender tracks which
outstanding bytes the peer has selectively acknowledged.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator, List, Tuple

Interval = Tuple[int, int]


class RangeSet:
    """A set of disjoint, sorted, half-open byte intervals."""

    def __init__(self) -> None:
        self._intervals: List[Interval] = []

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    @property
    def total_bytes(self) -> int:
        """Sum of interval lengths."""
        return sum(end - start for start, end in self._intervals)

    def add(self, start: int, end: int) -> int:
        """Insert ``[start, end)``, merging overlaps.

        Returns the number of bytes that were *newly* covered, which the
        receiver uses to count goodput exactly once even when segments
        are retransmitted.
        """
        if end <= start:
            raise ValueError(f"empty/negative range [{start}, {end})")
        before = self.total_bytes
        merged_start, merged_end = start, end
        # the rebuild-into-a-fresh-list is the merge algorithm itself,
        # not an incidental allocation; interval counts stay small (SACK
        # scoreboards hold a handful of holes)
        keep: List[Interval] = []  # simlint: ignore[perf-alloc-in-hot-path]
        for s, e in self._intervals:
            if e < merged_start or s > merged_end:
                keep.append((s, e))
            else:
                merged_start = min(merged_start, s)
                merged_end = max(merged_end, e)
        insort(keep, (merged_start, merged_end))
        self._intervals = keep
        return self.total_bytes - before

    def contains(self, start: int, end: int) -> bool:
        """Whether ``[start, end)`` is fully covered."""
        idx = bisect_left(self._intervals, (start + 1, 0)) - 1
        if idx < 0:
            return False
        s, e = self._intervals[idx]
        return s <= start and end <= e

    def covers_point(self, point: int) -> bool:
        """Whether byte ``point`` is covered."""
        return self.contains(point, point + 1)

    def first_missing_after(self, point: int) -> int:
        """Lowest byte >= ``point`` not covered by any interval."""
        cursor = point
        for s, e in self._intervals:
            if e <= cursor:
                continue
            if s > cursor:
                break
            cursor = e
        return cursor

    def trim_below(self, point: int) -> None:
        """Discard coverage below ``point`` (bytes cumulatively ACKed)."""
        # rebuild is the algorithm; interval counts stay small
        out: List[Interval] = []  # simlint: ignore[perf-alloc-in-hot-path]
        for s, e in self._intervals:
            if e <= point:
                continue
            out.append((max(s, point), e))
        self._intervals = out

    def blocks_above(self, point: int, limit: int = 3) -> Tuple[Interval, ...]:
        """Up to ``limit`` intervals entirely above ``point``.

        These become the SACK blocks on an ACK. RFC 2018 orders blocks
        most-recently-received first; after a loss burst the newest data
        sits highest, so reporting the *highest* blocks is the faithful
        approximation — and it is what lets the sender's scoreboard learn
        the full extent of a burst quickly.
        """
        # builds the SACK block tuple for one ACK; bounded by `limit`
        out = [iv for iv in self._intervals if iv[0] > point]  # simlint: ignore[perf-alloc-in-hot-path]
        return tuple(out[-limit:])
