"""Round-trip-time estimation and retransmission timeout (RFC 6298).

Implements the standard SRTT/RTTVAR exponentially-weighted estimator with
the RFC 6298 constants, plus minimum-RTT tracking (needed by Vegas, BBR
and DCTCP's gain arithmetic) and exponential RTO backoff.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TcpStateError
from repro.units import msec

#: RFC 6298 smoothing constants.
ALPHA = 1.0 / 8.0
BETA = 1.0 / 4.0
K = 4.0

#: Datacenter-friendly clamp. The RFC minimum of 1 s would make a 40 µs
#: RTT fabric unusable; Linux uses 200 ms but datacenter stacks configure
#: far lower. The floor is configurable per connection.
DEFAULT_MIN_RTO = msec(1.0)
DEFAULT_MAX_RTO = 60.0
DEFAULT_INITIAL_RTO = 0.1


class RttEstimator:
    """SRTT/RTTVAR/RTO state for one connection."""

    def __init__(
        self,
        min_rto: float = DEFAULT_MIN_RTO,
        max_rto: float = DEFAULT_MAX_RTO,
        initial_rto: float = DEFAULT_INITIAL_RTO,
    ):
        if not 0 < min_rto <= max_rto:
            raise TcpStateError(f"invalid RTO bounds [{min_rto}, {max_rto}]")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._initial_rto = initial_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.min_rtt: Optional[float] = None
        self.latest_rtt: Optional[float] = None
        self._backoff = 1
        self.samples = 0

    def on_sample(self, rtt: float) -> None:
        """Fold one RTT measurement into the estimator."""
        if rtt <= 0:
            raise TcpStateError(f"RTT sample must be > 0, got {rtt}")
        self.latest_rtt = rtt
        self.samples += 1
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            # First measurement (RFC 6298 §2.2).
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - BETA) * self.rttvar + BETA * abs(self.srtt - rtt)
            self.srtt = (1 - ALPHA) * self.srtt + ALPHA * rtt
        self._backoff = 1  # a valid sample clears backoff

    @property
    def rto(self) -> float:
        """Current retransmission timeout, seconds (with backoff applied)."""
        if self.srtt is None:
            base = self._initial_rto
        else:
            assert self.rttvar is not None
            base = self.srtt + K * self.rttvar
        rto = max(self.min_rto, base) * self._backoff
        return min(rto, self.max_rto)

    def backoff(self) -> None:
        """Double the RTO after a retransmission timeout (Karn/Partridge)."""
        self._backoff = min(self._backoff * 2, 64)

    @property
    def backoff_factor(self) -> int:
        """Current exponential backoff multiplier."""
        return self._backoff
