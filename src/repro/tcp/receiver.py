"""TCP receiver: reassembly, delayed ACKs, SACK generation, ECN echo.

The receiver side of the stack is deliberately simple — the paper's
workloads are one-directional bulk transfers — but it implements the
pieces that shape sender behaviour:

* cumulative + selective acknowledgements (up to 3 SACK blocks),
* delayed ACKs (every ``delack_segments`` full segments, with a timeout),
* immediate duplicate ACKs on out-of-order arrival (what fast retransmit
  keys on), and
* DCTCP-style ECN feedback: each ACK reports how many of the newly
  acknowledged bytes arrived CE-marked, plus the instantaneous CE echo
  bit. A CE state change forces an immediate ACK, per the DCTCP paper.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.timer import Timer
from repro.sim.trace import CounterSet
from repro.tcp.ranges import RangeSet
from repro.units import usec

CompletionCallback = Callable[[float], None]

#: Linux's minimum delayed-ACK timeout is 40 ms; datacenter stacks run
#: far lower. 500 µs keeps ACK clocking tight at 10 Gb/s scale.
DEFAULT_DELACK_TIMEOUT = usec(500)

#: initial receive window before autotuning opens it (Linux default
#: order of magnitude) and the tcp_rmem-style autotuning ceiling
DEFAULT_INITIAL_RWND = 64 * 1024
DEFAULT_MAX_RWND = 6 * 1024 * 1024


class TcpReceiver:
    """Receiving endpoint of one simulated TCP connection."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: int,
        peer: str,
        expected_bytes: Optional[int] = None,
        delack_segments: int = 2,
        delack_timeout: float = DEFAULT_DELACK_TIMEOUT,
        max_rwnd_bytes: int = DEFAULT_MAX_RWND,
    ):
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.peer = peer
        self.expected_bytes = expected_bytes
        self.delack_segments = max(1, delack_segments)
        self.max_rwnd_bytes = max_rwnd_bytes
        self.received = RangeSet()
        self.rcv_nxt = 0
        self.bytes_received = 0
        self.counters = CounterSet()
        self.completed_at: Optional[float] = None
        self._on_complete: List[CompletionCallback] = []
        self._unacked_segments = 0
        self._pending_echo_time: Optional[float] = None
        self._ce_state = False  # last seen CE mark (DCTCP echo state)
        self._marked_bytes_pending = 0
        self._last_int: Optional[Packet] = None  # most recent INT carrier
        self._delack_timer = Timer(sim, self._delack_expired)
        host.register_flow(flow_id, self)

    # -- public API -------------------------------------------------------

    def on_complete(self, callback: CompletionCallback) -> None:
        """Register a callback fired once ``expected_bytes`` have arrived."""
        self._on_complete.append(callback)

    @property
    def complete(self) -> bool:
        """Whether the expected transfer has fully arrived."""
        return self.completed_at is not None

    # -- packet handling ----------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Process one arriving data segment."""
        if packet.is_ack:
            # Bulk transfer is one-directional; stray ACKs are ignored.
            self.counters.add("stray_acks")
            return
        self.counters.add("segments")
        out_of_order = packet.seq > self.rcv_nxt
        #: a non-empty reassembly queue means this segment may fill a gap,
        #: which must be acknowledged immediately (RFC 5681 §4.2)
        had_gap = bool(self.received)
        duplicate = packet.end_seq <= self.rcv_nxt or self.received.contains(
            packet.seq, packet.end_seq
        )
        newly = 0
        if not duplicate:
            newly = self.received.add(packet.seq, packet.end_seq)
        else:
            self.counters.add("duplicate_segments")
        self.bytes_received += newly
        self.rcv_nxt = self.received.first_missing_after(self.rcv_nxt)
        self.received.trim_below(self.rcv_nxt)

        ce_changed = packet.ecn_marked != self._ce_state
        self._ce_state = packet.ecn_marked
        if packet.ecn_marked:
            self.counters.add("ce_marks")
            self._marked_bytes_pending += packet.payload_bytes
        self._pending_echo_time = packet.sent_time
        if packet.int_timestamp is not None:
            self._last_int = packet
        self._unacked_segments += 1

        must_ack_now = (
            out_of_order
            or duplicate
            or had_gap
            or ce_changed
            or self._unacked_segments >= self.delack_segments
            or self._transfer_finished()
        )
        if must_ack_now:
            self._send_ack()
        elif not self._delack_timer.pending:
            self._delack_timer.start(DEFAULT_DELACK_TIMEOUT)

        if self._transfer_finished() and self.completed_at is None:
            self.completed_at = self.sim.now
            for callback in self._on_complete:
                callback(self.sim.now)

    # -- internals ----------------------------------------------------------

    def _transfer_finished(self) -> bool:
        return (
            self.expected_bytes is not None
            and self.rcv_nxt >= self.expected_bytes
        )

    def _delack_expired(self) -> None:
        if self._unacked_segments > 0:
            self._send_ack()

    @property
    def advertised_rwnd(self) -> int:
        """Dynamic-right-sizing autotuning: the window opens with the
        data already received, from a small initial value up to the
        tcp_rmem-style ceiling. This is what bounds a constant-cwnd
        sender's initial burst on real systems."""
        return min(
            self.max_rwnd_bytes, DEFAULT_INITIAL_RWND + self.bytes_received
        )

    def _send_ack(self) -> None:
        self._delack_timer.stop()
        ack = Packet(
            flow_id=self.flow_id,
            src=self.host.name,
            dst=self.peer,
            is_ack=True,
            ack_seq=self.rcv_nxt,
            sacks=self.received.blocks_above(self.rcv_nxt),
            ecn_echo=self._ce_state,
            ecn_marked_bytes=self._marked_bytes_pending,
            echo_time=self._pending_echo_time,
            rwnd_bytes=self.advertised_rwnd,
        )
        if self._last_int is not None:
            ack.int_qlen_bytes = self._last_int.int_qlen_bytes
            ack.int_tx_bytes = self._last_int.int_tx_bytes
            ack.int_timestamp = self._last_int.int_timestamp
            ack.int_link_rate_bps = self._last_int.int_link_rate_bps
            self._last_int = None
        self._unacked_segments = 0
        self._marked_bytes_pending = 0
        self.counters.add("acks_sent")
        self.host.send(ack)
