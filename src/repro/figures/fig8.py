"""Figure 8: energy vs retransmissions, per CCA and MTU.

§4.5: corr(energy, retransmissions) ~= 0.47 once the highly-variable
BBR2 runs are excluded; the no-CC baseline sits far right (orders of
magnitude more retransmissions) and high.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.stats import pearson
from repro.analysis.tables import format_table
from repro.figures.grid import CcaMtuGrid


@dataclass
class Fig8Result:
    """Energy-vs-retransmissions scatter over the grid."""

    grid: CcaMtuGrid

    def points(self) -> List[Tuple[str, int, float, float]]:
        """(cca, mtu, retransmissions, energy_j) for every run."""
        return self.grid.scatter(x="retransmissions", y="energy")

    def correlation(self, exclude: Tuple[str, ...] = ("bbr2",)) -> float:
        """corr(retx, energy), excluding the named CCAs (paper: 0.47
        excluding bbr2)."""
        pts = [p for p in self.points() if p[0] not in exclude]
        return pearson([p[2] for p in pts], [p[3] for p in pts])

    def log_correlation(self, exclude: Tuple[str, ...] = ("bbr2",)) -> float:
        """Correlation on log10(1 + retx) — the figure's log x-axis."""
        pts = [p for p in self.points() if p[0] not in exclude]
        return pearson(
            [math.log10(1.0 + p[2]) for p in pts], [p[3] for p in pts]
        )

    def most_retransmitting_cca(self) -> str:
        """CCA with the highest mean retransmission count (paper: baseline)."""
        return max(
            self.grid.ccas(),
            key=lambda c: sum(
                self.grid.cell(c, m).mean_retransmissions
                for m in self.grid.mtus()
            ),
        )

    def format_table(self) -> str:
        rows = [
            (cca, mtu, retx, energy)
            for cca, mtu, retx, energy in sorted(self.points())
        ]
        return format_table(
            ["cca", "mtu", "retransmissions", "energy (J)"],
            rows,
            float_fmt="{:.3f}",
        )


def fig8_from_grid(grid: CcaMtuGrid) -> Fig8Result:
    """Derive the Figure 8 view from a measured grid."""
    return Fig8Result(grid=grid)
