"""§5 extension: per-mechanism energy attribution for each CCA.

The paper: "our results in §4.3 does not necessarily expose the
underlying reason for these differences. We expect such differences to
stem from unique mechanisms used for each algorithm such as maintained
flow state, packet pacing, cwnd calculation arithmetic, and so on. We
plan to investigate the energy consequences of such mechanisms in
future work."

This experiment runs one transfer per CCA with per-component energy
accounting turned on and reports where every joule went: the idle
floor, the concave network term, the small-packet excess, the CC
arithmetic, the retransmission churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.tables import format_table
from repro.apps.iperf import IperfSession, run_until_complete
from repro.energy.cpu import CpuModel
from repro.energy.meter import EnergyMeter
from repro.net.topology import TestbedConfig, build_testbed
from repro.sim.engine import Simulator

#: the display subset (idle/load folded into "idle floor")
REPORT_COMPONENTS = (
    "idle",
    "network",
    "packet_excess",
    "cc_compute",
    "retransmissions",
)


@dataclass
class MechanismRow:
    """One CCA's energy, attributed."""

    cca: str
    total_j: float
    components_j: Dict[str, float]

    def share(self, component: str) -> float:
        """Fraction of total energy attributed to one mechanism."""
        if self.total_j <= 0:
            return 0.0
        return self.components_j.get(component, 0.0) / self.total_j


@dataclass
class MechanismResult:
    """The full per-CCA attribution table."""

    rows: List[MechanismRow]
    transfer_bytes: int

    def row(self, cca: str) -> MechanismRow:
        for row in self.rows:
            if row.cca == cca:
                return row
        raise LookupError(f"no row for {cca!r}")

    def dominant_component(self, cca: str, ignore=("idle",)) -> str:
        """The largest non-floor contributor for one CCA."""
        row = self.row(cca)
        candidates = {
            k: v for k, v in row.components_j.items() if k not in ignore
        }
        return max(candidates, key=candidates.get)

    def format_table(self) -> str:
        headers = ["cca", "total (J)"] + [f"{c} (J)" for c in REPORT_COMPONENTS]
        table_rows = []
        for row in sorted(self.rows, key=lambda r: r.total_j):
            cells: List[object] = [row.cca, row.total_j]
            cells += [row.components_j.get(c, 0.0) for c in REPORT_COMPONENTS]
            table_rows.append(tuple(cells))
        return format_table(headers, table_rows)


def run_mechanism_breakdown(
    ccas: Sequence[str] = ("cubic", "bbr", "bbr2", "dctcp", "baseline"),
    transfer_bytes: int = 20_000_000,
    mtu: int = 9000,
) -> MechanismResult:
    """Measure the per-mechanism energy attribution for each CCA."""
    rows: List[MechanismRow] = []
    for cca in ccas:
        sim = Simulator()
        testbed = build_testbed(
            sim, TestbedConfig(mtu_bytes=mtu, int_telemetry=(cca == "hpcc"))
        )
        cpu = CpuModel(sim, testbed.sender, packages=1)
        meter = EnergyMeter(sim, [cpu])
        session = IperfSession(testbed, total_bytes=transfer_bytes, cca=cca)
        meter.start()
        run_until_complete(testbed, [session], time_limit_s=120.0)
        total = meter.stop()
        breakdown = cpu.energy_breakdown_j
        # Fold load + floor adjustment into the idle floor for display.
        breakdown = dict(breakdown)
        breakdown["idle"] += breakdown.pop("background_load", 0.0)
        breakdown["idle"] += breakdown.pop("floor_adjustment", 0.0)
        rows.append(
            MechanismRow(cca=cca, total_j=total, components_j=breakdown)
        )
    return MechanismResult(rows=rows, transfer_bytes=transfer_bytes)
