"""Figure 3: throughput-over-time, one panel per scheduling policy.

The paper's original figure: under ``fair``, two flows hold ~5 Gb/s
each until both finish at ~2 s (scaled); under ``serialized`` (the
full-speed-then-idle allocation the paper calls FSTI), flow 1 runs at
~10 Gb/s then idles while flow 2 runs at ~10 Gb/s — and both average
5 Gb/s over the experiment. Any registered :mod:`repro.sched` policy
can be rendered as an extra panel; the retired "fsti" spelling still
resolves to ``serialized`` through the registry aliases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once
from repro.sched import resolve_policy_name
from repro.sim.probe import THROUGHPUT_CHANNEL, TimeSeriesProbeSink
from repro.sim.trace import TimeSeries
from repro.units import gbps, msec, to_gbps

DEFAULT_TRANSFER_BYTES = 12_500_000
DEFAULT_CAPACITY_BPS = gbps(10.0)

#: the figure's two classic panels (left: fair sharing, right: FSTI)
DEFAULT_POLICIES = ("fair", "serialized")


@dataclass
class Fig3Panel:
    """One policy's run: per-flow throughput series plus the window."""

    policy: str
    series: Dict[int, TimeSeries]
    duration_s: float


@dataclass
class Fig3Result:
    """Per-flow throughput series for every rendered policy panel."""

    panels: Dict[str, Fig3Panel]

    def _panel(self, which: str) -> Fig3Panel:
        name = resolve_policy_name(which)
        if name not in self.panels:
            rendered = ", ".join(sorted(self.panels))
            raise ExperimentError(
                f"no fig3 panel for policy {which!r} (rendered: {rendered})"
            )
        return self.panels[name]

    def panel(self, which: str) -> List[Tuple[int, TimeSeries]]:
        """Ordered (flow, series) pairs for one policy's panel."""
        return sorted(self._panel(which).series.items())

    def duration_s(self, which: str) -> float:
        """One panel's measured window (time until its last flow ends)."""
        return self._panel(which).duration_s

    def mean_throughputs_gbps(self, which: str) -> List[float]:
        """Average per-flow throughput over its panel's full window
        (idle time included — the paper's point is that every flow in
        both classic panels averages C/2 over the experiment)."""
        duration = self.duration_s(which)
        result = []
        for _flow, ts in self.panel(which):
            if not len(ts) or duration <= 0:
                result.append(0.0)
                continue
            interval = (
                (ts.times[-1] - ts.times[0]) / (len(ts) - 1)
                if len(ts) > 1
                else duration
            )
            total_bits = sum(ts.values) * interval
            result.append(to_gbps(total_bits / duration))
        return result


def _per_flow_throughput(
    sink: TimeSeriesProbeSink, n_flows: int
) -> Dict[int, TimeSeries]:
    """Per-flow goodput series from a run's collected telemetry."""
    return {
        flow_id: sink.series(THROUGHPUT_CHANNEL, f"flow-{flow_id}")
        for flow_id in range(1, n_flows + 1)
    }


def _capped_pair(
    transfer_bytes: int, capacity_bps: float, cca: str
) -> List[FlowSpec]:
    """The classic fair panel: two flows rate-capped at C/2 each."""
    return [
        FlowSpec(transfer_bytes, cca=cca, target_rate_bps=capacity_bps / 2),
        FlowSpec(transfer_bytes, cca=cca, target_rate_bps=capacity_bps / 2),
    ]


def _uncapped_pair(
    transfer_bytes: int, capacity_bps: float, cca: str
) -> List[FlowSpec]:
    return [
        FlowSpec(transfer_bytes, cca=cca),
        FlowSpec(transfer_bytes, cca=cca),
    ]


#: per-policy flow declarations: the fair panel keeps its paper-faithful
#: C/2 rate caps; every other policy gets the uncapped pair and decides
#: admit/defer itself (dispatch by name — no mode-literal branching)
_PANEL_FLOWS = {"fair": _capped_pair}


def run_fig3(
    transfer_bytes: int = DEFAULT_TRANSFER_BYTES,
    capacity_bps: float = DEFAULT_CAPACITY_BPS,
    cca: str = "cubic",
    probe_interval_s: float = msec(1.0),
    seed: int = 0,
    policies: Optional[Sequence[str]] = None,
) -> Fig3Result:
    """Produce one Figure 3 panel per policy (one run each; timeseries)."""
    names = [
        resolve_policy_name(p)
        for p in (DEFAULT_POLICIES if policies is None else policies)
    ]
    if not names:
        raise ExperimentError("need at least one policy to render")
    panels: Dict[str, Fig3Panel] = {}
    for name in names:
        flows = _PANEL_FLOWS.get(name, _uncapped_pair)(
            transfer_bytes, capacity_bps, cca
        )
        scenario = Scenario(
            f"fig3-{name}",
            flows=flows,
            probe_interval_s=probe_interval_s,
            policy=name,
        )
        # The figure consumes the telemetry path: each run gets a
        # collecting probe sink (no downsampling — the probes already
        # pace sampling at probe_interval_s) and the panels read
        # per-flow throughput streams off it, the same series a traced
        # run writes to telemetry.jsonl.
        sink = TimeSeriesProbeSink()
        measurement = run_once(scenario, seed=seed, probe_sink=sink)
        panels[name] = Fig3Panel(
            policy=name,
            series=_per_flow_throughput(sink, len(flows)),
            duration_s=measurement.duration_s,
        )
    return Fig3Result(panels=panels)
