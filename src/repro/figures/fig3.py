"""Figure 3: throughput-over-time for fair vs full-speed-then-idle.

Left panel: two flows hold ~5 Gb/s each until both finish at ~2 s
(scaled). Right panel: flow 1 runs at ~10 Gb/s then idles while flow 2
runs at ~10 Gb/s; both average 5 Gb/s over the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once
from repro.sim.probe import THROUGHPUT_CHANNEL, TimeSeriesProbeSink
from repro.sim.trace import TimeSeries
from repro.units import gbps, msec, to_gbps

DEFAULT_TRANSFER_BYTES = 12_500_000
DEFAULT_CAPACITY_BPS = gbps(10.0)


@dataclass
class Fig3Result:
    """Per-flow throughput series for both panels."""

    fair_series: Dict[int, TimeSeries]
    fsti_series: Dict[int, TimeSeries]
    fair_duration_s: float
    fsti_duration_s: float

    def panel(self, which: str) -> List[Tuple[int, TimeSeries]]:
        """Ordered (flow, series) pairs for 'fair' or 'fsti'."""
        series = self.fair_series if which == "fair" else self.fsti_series
        return sorted(series.items())

    def mean_throughputs_gbps(self, which: str) -> List[float]:
        """Average per-flow throughput over its panel's full window
        (idle time included — the paper's point is that every flow in
        both panels averages C/2 over the experiment)."""
        duration = (
            self.fair_duration_s if which == "fair" else self.fsti_duration_s
        )
        result = []
        for _flow, ts in self.panel(which):
            if not len(ts) or duration <= 0:
                result.append(0.0)
                continue
            interval = (
                (ts.times[-1] - ts.times[0]) / (len(ts) - 1)
                if len(ts) > 1
                else duration
            )
            total_bits = sum(ts.values) * interval
            result.append(to_gbps(total_bits / duration))
        return result


def _per_flow_throughput(
    sink: TimeSeriesProbeSink, n_flows: int
) -> Dict[int, TimeSeries]:
    """Per-flow goodput series from a run's collected telemetry."""
    return {
        flow_id: sink.series(THROUGHPUT_CHANNEL, f"flow-{flow_id}")
        for flow_id in range(1, n_flows + 1)
    }


def run_fig3(
    transfer_bytes: int = DEFAULT_TRANSFER_BYTES,
    capacity_bps: float = DEFAULT_CAPACITY_BPS,
    cca: str = "cubic",
    probe_interval_s: float = msec(1.0),
    seed: int = 0,
) -> Fig3Result:
    """Produce both Figure 3 panels (one run each; it's a timeseries)."""
    fair = Scenario(
        "fig3-fair",
        flows=[
            FlowSpec(transfer_bytes, cca=cca, target_rate_bps=capacity_bps / 2),
            FlowSpec(transfer_bytes, cca=cca, target_rate_bps=capacity_bps / 2),
        ],
        probe_interval_s=probe_interval_s,
    )
    fsti = Scenario(
        "fig3-fsti",
        flows=[
            FlowSpec(transfer_bytes, cca=cca),
            FlowSpec(transfer_bytes, cca=cca, after_flow=0),
        ],
        probe_interval_s=probe_interval_s,
    )
    # The figure consumes the telemetry path: each run gets a collecting
    # probe sink (no downsampling — the probes already pace sampling at
    # probe_interval_s) and the panels read per-flow throughput streams
    # off it, the same series a traced run writes to telemetry.jsonl.
    fair_sink = TimeSeriesProbeSink()
    fair_m = run_once(fair, seed=seed, probe_sink=fair_sink)
    fsti_sink = TimeSeriesProbeSink()
    fsti_m = run_once(fsti, seed=seed, probe_sink=fsti_sink)
    return Fig3Result(
        fair_series=_per_flow_throughput(fair_sink, len(fair.flows)),
        fsti_series=_per_flow_throughput(fsti_sink, len(fsti.flows)),
        fair_duration_s=fair_m.duration_s,
        fsti_duration_s=fsti_m.duration_s,
    )
