"""Fleet-level fabric figure: fair vs serialized across datacenter CCAs.

The paper's single-bottleneck experiments (Figs. 1-4) show an unfair
full-speed-then-idle allocation beating fair sharing on energy. This
figure asks the fleet-scale version of the question: run the *same*
generated datacenter workload — 1k+ flows over a leaf-spine fabric —
once with every flow starting at its arrival (fair sharing under
contention) and once with each source host serializing its flows
(full-speed-then-idle, fleet-wide), for each datacenter CCA, and
compare total fleet energy (host CPUs + switches) and flow completion
times.

Scenario names follow the ``fabric_<cca>-<mode>`` convention so the
baseline snapshotter (:mod:`repro.obs.baseline`) derives each CCA's
``savings_vs_fair_percent`` automatically from the journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.advisor import EnergyAdvisor
from repro.errors import ExperimentError
from repro.harness.cache import ResultCache
from repro.harness.executor import Executor
from repro.harness.experiment import FabricScenario
from repro.harness.runner import RepeatedResult, RunMeasurement
from repro.harness.sweep import Sweep
from repro.obs.observer import Observer
from repro.units import MILLION, to_msec

#: the datacenter CCAs the ISSUE's fleet comparison covers
DEFAULT_CCAS = ("dctcp", "dcqcn", "hpcc", "swift")

#: both scheduling arms of every comparison
MODES = ("fair", "serialized")


def fabric_scenario_name(cca: str, mode: str) -> str:
    """The ``fabric_<cca>-<mode>`` naming convention (baseline-aware)."""
    return f"fabric_{cca}-{mode}"


def _extras_mean(runs: Sequence[RunMeasurement], key: str) -> float:
    return mean([float(r.extras.get(key, 0.0)) for r in runs])


@dataclass
class FabricCcaPoint:
    """One CCA's fair/serialized pair of repeated fleet measurements."""

    cca: str
    fair: RepeatedResult
    serialized: RepeatedResult

    @property
    def savings_percent(self) -> float:
        """Fleet energy saved by serializing, relative to fair sharing."""
        fair_energy = self.fair.mean_energy_j
        if fair_energy <= 0:
            raise ExperimentError(
                f"{self.cca}: fair arm measured non-positive energy"
            )
        return 100.0 * (fair_energy - self.serialized.mean_energy_j) / fair_energy

    def fct_p50_s(self, mode: str) -> float:
        return _extras_mean(self._arm(mode).runs, "fct_p50_s")

    def fct_p99_s(self, mode: str) -> float:
        return _extras_mean(self._arm(mode).runs, "fct_p99_s")

    def host_energy_j(self, mode: str) -> float:
        return _extras_mean(self._arm(mode).runs, "host_energy_j")

    def switch_energy_j(self, mode: str) -> float:
        return _extras_mean(self._arm(mode).runs, "switch_energy_j")

    def _arm(self, mode: str) -> RepeatedResult:
        if mode == "fair":
            return self.fair
        if mode == "serialized":
            return self.serialized
        raise ExperimentError(f"unknown mode {mode!r}")


@dataclass
class FabricResult:
    """All CCAs' fleet-level comparisons, plus the sweep's shape."""

    points: List[FabricCcaPoint]
    n_flows: int
    topology: str

    def point(self, cca: str) -> FabricCcaPoint:
        for point in self.points:
            if point.cca == cca:
                return point
        raise ExperimentError(f"no fabric point for CCA {cca!r}")

    def annualized_value_usd(self, cca: str) -> float:
        """$/year the CCA's measured fleet saving is worth at DC scale.

        The cost model's domain is a fraction in [-1, 1]; a small run
        whose serialized arm burns more than twice the fair energy (an
        idle-dominated toy fleet) saturates at -100% rather than erroring
        out of the whole figure.
        """
        fraction = self.point(cca).savings_percent / 100.0
        return EnergyAdvisor().annualized_value(max(-1.0, min(1.0, fraction)))

    def format_table(self) -> str:
        """The figure as text: energy split, savings, FCTs per CCA."""
        rows = []
        for point in self.points:
            rows.append(
                (
                    point.cca,
                    point.fair.mean_energy_j,
                    point.serialized.mean_energy_j,
                    point.savings_percent,
                    to_msec(point.fct_p50_s("fair")),
                    to_msec(point.fct_p50_s("serialized")),
                    to_msec(point.fct_p99_s("fair")),
                    to_msec(point.fct_p99_s("serialized")),
                    self.annualized_value_usd(point.cca) / MILLION,
                )
            )
        body = format_table(
            [
                "cca",
                "fair (J)",
                "serial (J)",
                "savings %",
                "p50 fair (ms)",
                "p50 serial (ms)",
                "p99 fair (ms)",
                "p99 serial (ms)",
                "value ($M/yr)",
            ],
            rows,
            float_fmt="{:.3f}",
        )
        header = (
            f"fleet energy, fair vs serialized - {self.n_flows} flows on "
            f"{self.topology}"
        )
        return header + "\n" + body


def run_fabric_figure(
    ccas: Sequence[str] = DEFAULT_CCAS,
    n_flows: int = 1000,
    mix: str = "datacenter",
    target_load: float = 0.3,
    topology: str = "leaf-spine",
    leaves: int = 8,
    spines: int = 2,
    hosts_per_leaf: int = 8,
    fat_tree_k: int = 4,
    switch_power: str = "today",
    repetitions: int = 1,
    base_seed: int = 0,
    *,
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
    cache_dir: Union[None, str, Path, ResultCache] = None,
    observer: Union[None, str, Path, Observer] = None,
) -> FabricResult:
    """Run the fair/serialized fleet comparison for every CCA.

    The whole CCA x mode grid flattens into one work-item batch, so a
    ``jobs=N`` run parallelizes across all arms at once and stays
    bit-identical to a serial run (the executor layer's contract).
    """
    if not ccas:
        raise ExperimentError("need at least one CCA")

    def factory(cca: str, mode: str) -> FabricScenario:
        return FabricScenario(
            name=fabric_scenario_name(cca, mode),
            cca=cca,
            mode=mode,
            n_flows=n_flows,
            mix=mix,
            target_load=target_load,
            topology=topology,
            leaves=leaves,
            spines=spines,
            hosts_per_leaf=hosts_per_leaf,
            fat_tree_k=fat_tree_k,
            switch_power=switch_power,
        )

    results = Sweep({"cca": list(ccas), "mode": list(MODES)}).run(
        factory,
        repetitions=repetitions,
        base_seed=base_seed,
        executor=executor,
        jobs=jobs,
        cache=cache_dir,
        observer=observer,
    )
    points = [
        FabricCcaPoint(
            cca=cca,
            fair=results.one(cca=cca, mode="fair").result,
            serialized=results.one(cca=cca, mode="serialized").result,
        )
        for cca in ccas
    ]
    return FabricResult(points=points, n_flows=n_flows, topology=topology)
