"""Fleet-level fabric figure: scheduling policies across datacenter CCAs.

The paper's single-bottleneck experiments (Figs. 1-4) show an unfair
full-speed-then-idle allocation beating fair sharing on energy. This
figure asks the fleet-scale version of the question: run the *same*
generated datacenter workload — 1k+ flows over a leaf-spine fabric —
once per scheduling policy (classically ``fair`` vs ``serialized``),
for each datacenter CCA, and compare total fleet energy (host CPUs +
switches) and flow completion times.

Scenario names follow the ``fabric_<cca>-<policy>`` convention so the
baseline snapshotter (:mod:`repro.obs.baseline`) derives each CCA's
``savings_vs_fair_percent`` automatically from the journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.core.advisor import EnergyAdvisor
from repro.errors import ExperimentError, SweepAbortedError
from repro.harness.cache import ResultCache
from repro.harness.executor import Executor, SweepControl
from repro.harness.experiment import FabricScenario
from repro.harness.runner import RepeatedResult, RunMeasurement
from repro.harness.sweep import Sweep, SweepResults
from repro.obs.attrib import top_flow_share_percent
from repro.obs.observer import Observer
from repro.sched import resolve_policy_name
from repro.units import MILLION, to_msec

#: the datacenter CCAs the ISSUE's fleet comparison covers
DEFAULT_CCAS = ("dctcp", "dcqcn", "hpcc", "swift")

#: both classic scheduling arms of every comparison
DEFAULT_POLICIES = ("fair", "serialized")


def fabric_scenario_name(cca: str, policy: str) -> str:
    """The ``fabric_<cca>-<policy>`` naming convention (baseline-aware)."""
    return f"fabric_{cca}-{policy}"


def _extras_mean(runs: Sequence[RunMeasurement], key: str) -> float:
    return mean([float(r.extras.get(key, 0.0)) for r in runs])


@dataclass
class FabricCcaPoint:
    """One CCA's per-policy repeated fleet measurements."""

    cca: str
    arms: Dict[str, RepeatedResult]

    def arm(self, policy: str) -> RepeatedResult:
        name = resolve_policy_name(policy)
        if name not in self.arms:
            ran = ", ".join(sorted(self.arms))
            raise ExperimentError(
                f"{self.cca}: no arm for policy {policy!r} (ran: {ran})"
            )
        return self.arms[name]

    @property
    def fair(self) -> RepeatedResult:
        return self.arms["fair"]

    @property
    def serialized(self) -> RepeatedResult:
        return self.arms["serialized"]

    def savings_percent_vs_fair(self, policy: str) -> float:
        """Fleet energy a policy saves relative to fair sharing."""
        fair_energy = self.fair.mean_energy_j
        if fair_energy <= 0:
            raise ExperimentError(
                f"{self.cca}: fair arm measured non-positive energy"
            )
        return (
            100.0
            * (fair_energy - self.arm(policy).mean_energy_j)
            / fair_energy
        )

    @property
    def savings_percent(self) -> float:
        """The classic headline: serializing vs fair sharing."""
        return self.savings_percent_vs_fair("serialized")

    def fct_p50_s(self, policy: str) -> float:
        return _extras_mean(self.arm(policy).runs, "fct_p50_s")

    def fct_p99_s(self, policy: str) -> float:
        return _extras_mean(self.arm(policy).runs, "fct_p99_s")

    def host_energy_j(self, policy: str) -> float:
        return _extras_mean(self.arm(policy).runs, "host_energy_j")

    def switch_energy_j(self, policy: str) -> float:
        return _extras_mean(self.arm(policy).runs, "switch_energy_j")

    def top_flow_share_percent(self, policy: str) -> float:
        """Mean share of fleet joules billed to the hungriest flow.

        From the per-flow attribution ledger: at 1k+ flows a fair
        fabric spreads this to a fraction of a percent, so a policy
        that concentrates it is visibly skewing who pays for the
        fleet's energy.
        """
        return mean(
            [top_flow_share_percent(r) for r in self.arm(policy).runs]
        )


@dataclass
class FabricResult:
    """All CCAs' fleet-level comparisons, plus the sweep's shape."""

    points: List[FabricCcaPoint]
    n_flows: int
    topology: str
    policies: Sequence[str] = DEFAULT_POLICIES

    def point(self, cca: str) -> FabricCcaPoint:
        for point in self.points:
            if point.cca == cca:
                return point
        raise ExperimentError(f"no fabric point for CCA {cca!r}")

    def annualized_value_usd(self, cca: str, policy: str = "serialized") -> float:
        """$/year a policy's measured fleet saving is worth at DC scale.

        The cost model's domain is a fraction in [-1, 1]; a small run
        whose chained arm burns more than twice the fair energy (an
        idle-dominated toy fleet) saturates at -100% rather than erroring
        out of the whole figure.
        """
        fraction = self.point(cca).savings_percent_vs_fair(policy) / 100.0
        return EnergyAdvisor().annualized_value(max(-1.0, min(1.0, fraction)))

    def format_table(self) -> str:
        """The figure as text: per CCA x policy energy, savings, FCTs."""
        rows = []
        for point in self.points:
            for policy in self.policies:
                if policy not in point.arms:
                    continue  # partial figure from an aborted sweep
                arm = point.arm(policy)
                rows.append(
                    (
                        point.cca,
                        policy,
                        arm.mean_energy_j,
                        point.savings_percent_vs_fair(policy),
                        to_msec(point.fct_p50_s(policy)),
                        to_msec(point.fct_p99_s(policy)),
                        point.top_flow_share_percent(policy),
                    )
                )
        body = format_table(
            [
                "cca",
                "policy",
                "energy (J)",
                "savings %",
                "p50 (ms)",
                "p99 (ms)",
                "top flow %",
            ],
            rows,
            float_fmt="{:.3f}",
        )
        parts = []
        for point in self.points:
            try:
                value = self.annualized_value_usd(point.cca)
            except ExperimentError:
                continue  # no serialized arm in this sweep
            parts.append(f"{point.cca}=${value / MILLION:.3f}M/yr")
        values = "  ".join(parts)
        header = (
            f"fleet energy by scheduling policy - {self.n_flows} flows on "
            f"{self.topology}"
        )
        if values:
            header += f"\nannualized value of serializing: {values}"
        return header + "\n" + body


def run_fabric_figure(
    ccas: Sequence[str] = DEFAULT_CCAS,
    n_flows: int = 1000,
    mix: str = "datacenter",
    target_load: float = 0.3,
    topology: str = "leaf-spine",
    leaves: int = 8,
    spines: int = 2,
    hosts_per_leaf: int = 8,
    fat_tree_k: int = 4,
    switch_power: str = "today",
    repetitions: int = 1,
    base_seed: int = 0,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
    cache_dir: Union[None, str, Path, ResultCache] = None,
    observer: Union[None, str, Path, Observer] = None,
    control: Optional[SweepControl] = None,
) -> FabricResult:
    """Run the per-policy fleet comparison for every CCA.

    The whole CCA x policy grid flattens into one work-item batch, so a
    ``jobs=N`` run parallelizes across all arms at once and stays
    bit-identical to a serial run (the executor layer's contract).
    ``fair`` must be among the policies: every comparison is relative
    to it.
    """
    if not ccas:
        raise ExperimentError("need at least one CCA")
    names = [resolve_policy_name(p) for p in policies]
    if "fair" not in names:
        raise ExperimentError(
            "the fabric figure reports savings vs fair; include 'fair'"
        )

    def factory(cca: str, policy: str) -> FabricScenario:
        return FabricScenario(
            name=fabric_scenario_name(cca, policy),
            cca=cca,
            policy=policy,
            n_flows=n_flows,
            mix=mix,
            target_load=target_load,
            topology=topology,
            leaves=leaves,
            spines=spines,
            hosts_per_leaf=hosts_per_leaf,
            fat_tree_k=fat_tree_k,
            switch_power=switch_power,
        )

    def to_points(
        results: SweepResults, require_all_arms: bool
    ) -> List[FabricCcaPoint]:
        points = []
        for cca in ccas:
            arms = {
                policy: row.result
                for policy in names
                for row in results.where(cca=cca, policy=policy).rows
            }
            if require_all_arms and len(arms) != len(names):
                raise ExperimentError(
                    f"{cca}: expected {len(names)} arms, got {len(arms)}"
                )
            # A CCA is only comparable once its fair arm exists — every
            # savings number is relative to it.
            if "fair" in arms:
                points.append(FabricCcaPoint(cca=cca, arms=arms))
        return points

    try:
        results = Sweep({"cca": list(ccas), "policy": names}).run(
            factory,
            repetitions=repetitions,
            base_seed=base_seed,
            executor=executor,
            jobs=jobs,
            cache=cache_dir,
            observer=observer,
            control=control,
        )
    except SweepAbortedError as exc:
        partial = getattr(exc, "partial_sweep", None)
        if partial is not None:
            exc.partial_figure = FabricResult(  # type: ignore[attr-defined]
                points=to_points(partial, require_all_arms=False),
                n_flows=n_flows,
                topology=topology,
                policies=names,
            )
        raise
    return FabricResult(
        points=to_points(results, require_all_arms=True),
        n_flows=n_flows,
        topology=topology,
        policies=names,
    )
