"""Figure 6: average power per CCA and MTU.

The key paper observation (§4.3): the *power* ranking differs drastically
from the *energy* ranking — corr(total energy, average power) ~= -0.8
across CCAs. Low instantaneous power often means a slower transfer, and
the long tail of active time costs more total energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.stats import pearson
from repro.analysis.tables import format_table
from repro.figures.grid import CcaMtuGrid


@dataclass
class Fig6Result:
    """Power view over the CCA x MTU grid."""

    grid: CcaMtuGrid

    def power_w(self, cca: str, mtu: int) -> float:
        return self.grid.cell(cca, mtu).mean_power_w

    def cca_order_at_mtu(self, mtu: int) -> List[str]:
        """CCAs sorted by ascending average power at one MTU."""
        return sorted(self.grid.ccas(), key=lambda c: self.power_w(c, mtu))

    def power_spread_fraction(self, mtu: int) -> float:
        """(max - min) / min across CCAs at one MTU (paper: ~14 %)."""
        powers = [self.power_w(c, mtu) for c in self.grid.ccas()]
        return (max(powers) - min(powers)) / min(powers)

    def energy_power_correlation(self, mtu: int) -> float:
        """corr over CCAs of total energy vs average power (paper: -0.8)."""
        ccas = self.grid.ccas()
        energies = [self.grid.cell(c, mtu).mean_energy_j for c in ccas]
        powers = [self.power_w(c, mtu) for c in ccas]
        return pearson(energies, powers)

    def format_table(self) -> str:
        mtus = self.grid.mtus()
        rows = []
        for cca in self.cca_order_at_mtu(mtus[0]):
            row: List[object] = [cca]
            for mtu in mtus:
                cell = self.grid.cell(cca, mtu)
                row.append(cell.mean_power_w)
                row.append(cell.result.std_power_w)
            rows.append(tuple(row))
        headers = ["cca"]
        for mtu in mtus:
            headers += [f"P@{mtu} (W)", "std"]
        return format_table(headers, rows, float_fmt="{:.2f}")


def fig6_from_grid(grid: CcaMtuGrid) -> Fig6Result:
    """Derive the Figure 6 view from a measured grid."""
    return Fig6Result(grid=grid)
