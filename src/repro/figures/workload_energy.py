"""§5 extension: energy under production-datacenter workloads.

Runs the published web-search / data-mining flow-size distributions as
an open-loop Poisson workload through one sender host (the paper's
"multiplexing multiple flows at the same sender" case) under any set
of registered scheduling policies — classically:

* **fair** — every flow is a normal CUBIC connection over the FIFO
  bottleneck;
* **srpt** — pFabric-style priority bottleneck with line-rate senders.

The workload's target load reaches each policy as the scheduling
context's ``offered_load`` (what ``load-adaptive`` conditions on).
Reported: total energy over the busy window, mean and p99-ish FCT. The
expected shape: on heavy-tailed traffic SRPT slashes mean FCT (mice
stop waiting behind elephants) at equal-or-better energy — the "green
and fast" conclusion of §5 under realistic load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.apps.workload import Workload, generate_workload
from repro.errors import ExperimentError
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import RunMeasurement, run_once
from repro.sched import resolve_policy_name
from repro.units import to_msec

#: the classic two-way comparison
DEFAULT_POLICIES = ("fair", "srpt")


@dataclass
class WorkloadPoint:
    """One policy's outcome on one workload."""

    schedule: str
    measurement: RunMeasurement

    @property
    def energy_j(self) -> float:
        return self.measurement.energy_j

    @property
    def mean_fct_s(self) -> float:
        return mean([r.duration_s for r in self.measurement.flow_results])

    @property
    def tail_fct_s(self) -> float:
        durations = sorted(r.duration_s for r in self.measurement.flow_results)
        index = max(0, int(0.95 * len(durations)) - 1)
        return durations[index]


@dataclass
class WorkloadEnergyResult:
    """Per-policy outcomes on one generated workload."""

    workload: Workload
    points: Dict[str, WorkloadPoint]

    def point(self, schedule: str) -> WorkloadPoint:
        """One policy's point; retired spellings resolve via aliases."""
        name = resolve_policy_name(schedule)
        if name not in self.points:
            ran = ", ".join(sorted(self.points))
            raise ExperimentError(
                f"no workload point for policy {schedule!r} (ran: {ran})"
            )
        return self.points[name]

    @property
    def fct_speedup(self) -> float:
        """Mean-FCT speedup of the srpt arm over fair (the classic pair)."""
        return self.points["fair"].mean_fct_s / self.points["srpt"].mean_fct_s

    @property
    def energy_ratio(self) -> float:
        return self.points["srpt"].energy_j / self.points["fair"].energy_j

    def format_table(self) -> str:
        rows = []
        for name, p in sorted(self.points.items()):
            rows.append(
                (
                    name,
                    p.energy_j,
                    to_msec(p.mean_fct_s),
                    to_msec(p.tail_fct_s),
                )
            )
        return format_table(
            ["schedule", "energy (J)", "mean FCT (ms)", "p95 FCT (ms)"],
            rows,
        )


def _scenario(workload: Workload, policy: str, target_load: float) -> Scenario:
    flows: List[FlowSpec] = [
        FlowSpec(
            arrival.size_bytes,
            cca="cubic",
            start_time_s=arrival.start_time_s,
        )
        for arrival in workload.flows
    ]
    return Scenario(
        name=f"workload-{workload.name}-{policy}",
        flows=flows,
        packages=1,  # one sender host: the multiplexing case
        time_limit_s=600.0,
        policy=policy,
        offered_load=target_load,
    )


def run_workload_energy(
    distribution: str = "web-search",
    target_load: float = 0.5,
    duration_s: float = 0.03,
    seed: int = 0,
    policies: Optional[Sequence[str]] = None,
) -> WorkloadEnergyResult:
    """Generate one workload and run it under every requested policy."""
    names = [
        resolve_policy_name(p)
        for p in (DEFAULT_POLICIES if policies is None else policies)
    ]
    if not names:
        raise ExperimentError("need at least one policy")
    workload = generate_workload(
        distribution=distribution,
        target_load=target_load,
        duration_s=duration_s,
        seed=seed,
    )
    points = {
        name: WorkloadPoint(
            name,
            run_once(_scenario(workload, name, target_load), seed=seed),
        )
        for name in names
    }
    return WorkloadEnergyResult(workload=workload, points=points)
