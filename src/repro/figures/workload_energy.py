"""§5 extension: energy under production-datacenter workloads.

Runs the published web-search / data-mining flow-size distributions as
an open-loop Poisson workload through one sender host (the paper's
"multiplexing multiple flows at the same sender" case) and compares:

* **fair** — every flow is a normal CUBIC connection over the FIFO
  bottleneck;
* **srpt** — pFabric-style priority bottleneck with line-rate senders.

Reported: total energy over the busy window, mean and p99-ish FCT. The
expected shape: on heavy-tailed traffic SRPT slashes mean FCT (mice stop
waiting behind elephants) at equal-or-better energy — the "green and
fast" conclusion of §5 under realistic load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.apps.workload import Workload, generate_workload
from repro.figures.srpt import PFABRIC_WINDOW_SEGMENTS
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import RunMeasurement, run_once
from repro.units import to_msec


@dataclass
class WorkloadPoint:
    """One schedule's outcome on one workload."""

    schedule: str
    measurement: RunMeasurement

    @property
    def energy_j(self) -> float:
        return self.measurement.energy_j

    @property
    def mean_fct_s(self) -> float:
        return mean([r.duration_s for r in self.measurement.flow_results])

    @property
    def tail_fct_s(self) -> float:
        durations = sorted(r.duration_s for r in self.measurement.flow_results)
        index = max(0, int(0.95 * len(durations)) - 1)
        return durations[index]


@dataclass
class WorkloadEnergyResult:
    """fair vs srpt on one generated workload."""

    workload: Workload
    points: Dict[str, WorkloadPoint]

    @property
    def fct_speedup(self) -> float:
        return self.points["fair"].mean_fct_s / self.points["srpt"].mean_fct_s

    @property
    def energy_ratio(self) -> float:
        return self.points["srpt"].energy_j / self.points["fair"].energy_j

    def format_table(self) -> str:
        rows = []
        for name in ("fair", "srpt"):
            p = self.points[name]
            rows.append(
                (
                    name,
                    p.energy_j,
                    to_msec(p.mean_fct_s),
                    to_msec(p.tail_fct_s),
                )
            )
        return format_table(
            ["schedule", "energy (J)", "mean FCT (ms)", "p95 FCT (ms)"],
            rows,
        )


def _scenario(workload: Workload, schedule: str) -> Scenario:
    flows: List[FlowSpec] = []
    for arrival in workload.flows:
        if schedule == "fair":
            flows.append(
                FlowSpec(
                    arrival.size_bytes, cca="cubic",
                    start_time_s=arrival.start_time_s,
                )
            )
        else:
            flows.append(
                FlowSpec(
                    arrival.size_bytes,
                    cca="baseline",
                    start_time_s=arrival.start_time_s,
                    cca_kwargs={"window_segments": PFABRIC_WINDOW_SEGMENTS},
                )
            )
    return Scenario(
        name=f"workload-{workload.name}-{schedule}",
        flows=flows,
        packages=1,  # one sender host: the multiplexing case
        bottleneck_discipline="priority" if schedule == "srpt" else "fifo",
        time_limit_s=600.0,
    )


def run_workload_energy(
    distribution: str = "web-search",
    target_load: float = 0.5,
    duration_s: float = 0.03,
    seed: int = 0,
) -> WorkloadEnergyResult:
    """Generate one workload and run it under both schedules."""
    workload = generate_workload(
        distribution=distribution,
        target_load=target_load,
        duration_s=duration_s,
        seed=seed,
    )
    points = {
        schedule: WorkloadPoint(
            schedule, run_once(_scenario(workload, schedule), seed=seed)
        )
        for schedule in ("fair", "srpt")
    }
    return WorkloadEnergyResult(workload=workload, points=points)
