"""§5 extension: energy of SRPT-approximating transports.

The paper's future-work section: "One intriguing approach would be to
measure the energy usage of existing transport protocols that
approximate the Shortest Remaining Processing Time first (SRPT)
scheduling [pFabric, PIAS, Aeolus, Homa]."

This experiment runs the same mixed-size batch of flows three ways:

* **fair** — FIFO bottleneck, all flows start together: classic TCP
  sharing, the energy-worst case by Theorem 1;
* **pfabric** — priority bottleneck (packets carry remaining-bytes
  priority), all flows start together: the *network* enforces SRPT with
  no end-host coordination;
* **serialized** — application-level SRPT (each flow starts when its
  predecessor completes): the full-speed-then-idle ideal.

Reported per schedule: total energy, mean FCT, makespan. The paper's
§4.1/§5 prediction is fair > pfabric >= serialized on energy, with
pfabric also winning mean FCT — SRPT is green *and* fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import RunMeasurement, run_once
from repro.units import to_msec

#: the batch: mixed sizes like a rack's outbound queue (bytes)
DEFAULT_BATCH = (20_000_000, 10_000_000, 5_000_000, 2_500_000)


@dataclass
class SrptPoint:
    """One schedule's outcome."""

    schedule: str
    measurement: RunMeasurement

    @property
    def energy_j(self) -> float:
        return self.measurement.energy_j

    @property
    def mean_fct_s(self) -> float:
        return mean([r.duration_s for r in self.measurement.flow_results])

    @property
    def makespan_s(self) -> float:
        return self.measurement.completion_time_s


@dataclass
class SrptResult:
    """All three schedules side by side."""

    points: Dict[str, SrptPoint]
    batch: Sequence[int]

    def energy_savings_vs_fair(self, schedule: str) -> float:
        fair = self.points["fair"].energy_j
        return (fair - self.points[schedule].energy_j) / fair

    def fct_speedup_vs_fair(self, schedule: str) -> float:
        fair = self.points["fair"].mean_fct_s
        return fair / self.points[schedule].mean_fct_s

    def format_table(self) -> str:
        rows = []
        for name in ("fair", "pfabric", "serialized"):
            p = self.points[name]
            rows.append(
                (
                    name,
                    p.energy_j,
                    100 * self.energy_savings_vs_fair(name),
                    to_msec(p.mean_fct_s),
                    to_msec(p.makespan_s),
                )
            )
        return format_table(
            ["schedule", "energy (J)", "saving (%)", "mean FCT (ms)", "makespan (ms)"],
            rows,
        )


#: pFabric rate control: start near line rate with ~2xBDP in flight and
#: let the switch do the scheduling (the pFabric paper's "minimal" rate
#: control, realized with a small constant window)
PFABRIC_WINDOW_SEGMENTS = 14


def _batch_flows(
    batch: Sequence[int],
    cca: str,
    serialized: bool,
    cca_kwargs: dict = None,
) -> List[FlowSpec]:
    if not serialized:
        return [FlowSpec(size, cca=cca, cca_kwargs=cca_kwargs) for size in batch]
    flows = []
    for i, size in enumerate(sorted(batch)):  # SRPT order
        flows.append(
            FlowSpec(
                size, cca=cca, after_flow=i - 1 if i > 0 else None,
                cca_kwargs=cca_kwargs,
            )
        )
    return flows


def run_srpt_comparison(
    batch: Sequence[int] = DEFAULT_BATCH,
    cca: str = "cubic",
    seed: int = 0,
) -> SrptResult:
    """Run the three-schedule comparison.

    The pfabric schedule uses the constant-cwnd "baseline" senders —
    pFabric's actual design pairs line-rate senders with in-network
    priority scheduling; window-based CCAs would back off exactly when
    the scheduler wants them blasting.
    """
    n = len(batch)
    scenarios = {
        "fair": Scenario(
            "srpt-fair",
            flows=_batch_flows(batch, cca, serialized=False),
            packages=n,
        ),
        "pfabric": Scenario(
            "srpt-pfabric",
            flows=_batch_flows(
                batch,
                "baseline",
                serialized=False,
                cca_kwargs={"window_segments": PFABRIC_WINDOW_SEGMENTS},
            ),
            bottleneck_discipline="priority",
            packages=n,
        ),
        "serialized": Scenario(
            "srpt-serialized",
            flows=_batch_flows(batch, cca, serialized=True),
            packages=n,
        ),
    }
    points = {
        name: SrptPoint(name, run_once(scenario, seed=seed))
        for name, scenario in scenarios.items()
    }
    return SrptResult(points=points, batch=batch)
