"""§5 extension: energy of SRPT-approximating transports.

The paper's future-work section: "One intriguing approach would be to
measure the energy usage of existing transport protocols that
approximate the Shortest Remaining Processing Time first (SRPT)
scheduling [pFabric, PIAS, Aeolus, Homa]."

This experiment runs the same mixed-size batch of flows once per
scheduling policy (default: the classic three-way comparison):

* **fair** — FIFO bottleneck, all flows start together: classic TCP
  sharing, the energy-worst case by Theorem 1;
* **srpt** — priority bottleneck (packets carry remaining-bytes
  priority) with line-rate senders, all flows start together: the
  *network* enforces SRPT with no end-host coordination (pFabric; the
  retired "pfabric" spelling aliases here);
* **serialized** — application-level SRPT (each flow starts when its
  predecessor completes): the full-speed-then-idle ideal.

The batch is declared shortest-first, so chaining policies realize SRPT
order. Reported per policy: total energy, mean FCT, makespan. The
paper's §4.1/§5 prediction is fair > srpt >= serialized on energy, with
srpt also winning mean FCT — SRPT is green *and* fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.errors import ExperimentError
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import RunMeasurement, run_once
from repro.sched import PFABRIC_WINDOW_SEGMENTS, resolve_policy_name
from repro.units import to_msec

__all__ = [
    "DEFAULT_BATCH",
    "DEFAULT_POLICIES",
    "PFABRIC_WINDOW_SEGMENTS",  # re-exported; canonical home is repro.sched
    "SrptPoint",
    "SrptResult",
    "run_srpt_comparison",
]

#: the batch: mixed sizes like a rack's outbound queue (bytes)
DEFAULT_BATCH = (20_000_000, 10_000_000, 5_000_000, 2_500_000)

#: the classic three-way comparison
DEFAULT_POLICIES = ("fair", "srpt", "serialized")


@dataclass
class SrptPoint:
    """One policy's outcome."""

    schedule: str
    measurement: RunMeasurement

    @property
    def energy_j(self) -> float:
        return self.measurement.energy_j

    @property
    def mean_fct_s(self) -> float:
        return mean([r.duration_s for r in self.measurement.flow_results])

    @property
    def makespan_s(self) -> float:
        return self.measurement.completion_time_s


@dataclass
class SrptResult:
    """All compared policies side by side, keyed by canonical name."""

    points: Dict[str, SrptPoint]
    batch: Sequence[int]

    def point(self, schedule: str) -> SrptPoint:
        """One policy's point; retired spellings resolve via aliases."""
        name = resolve_policy_name(schedule)
        if name not in self.points:
            ran = ", ".join(sorted(self.points))
            raise ExperimentError(
                f"no srpt point for policy {schedule!r} (ran: {ran})"
            )
        return self.points[name]

    def energy_savings_vs_fair(self, schedule: str) -> float:
        fair = self.points["fair"].energy_j
        return (fair - self.point(schedule).energy_j) / fair

    def fct_speedup_vs_fair(self, schedule: str) -> float:
        fair = self.points["fair"].mean_fct_s
        return fair / self.point(schedule).mean_fct_s

    def format_table(self) -> str:
        rows = []
        for name, p in sorted(self.points.items()):
            rows.append(
                (
                    name,
                    p.energy_j,
                    100 * self.energy_savings_vs_fair(name),
                    to_msec(p.mean_fct_s),
                    to_msec(p.makespan_s),
                )
            )
        return format_table(
            ["schedule", "energy (J)", "saving (%)", "mean FCT (ms)", "makespan (ms)"],
            rows,
        )


def run_srpt_comparison(
    batch: Sequence[int] = DEFAULT_BATCH,
    cca: str = "cubic",
    seed: int = 0,
    policies: Optional[Sequence[str]] = None,
) -> SrptResult:
    """Run the per-policy comparison over one shortest-first batch.

    Every policy sees the identical flow declarations (the batch sorted
    shortest-first, all arriving at t=0) and decides admit/defer —
    plus, for ``srpt`` on this priority-capable dumbbell, the
    network-level hints (priority qdisc, constant-cwnd line-rate
    senders: pFabric's actual design, since window-based CCAs would
    back off exactly when the scheduler wants them blasting).

    ``fair`` must be among the policies: the table reports savings
    relative to it.
    """
    names = [
        resolve_policy_name(p)
        for p in (DEFAULT_POLICIES if policies is None else policies)
    ]
    if "fair" not in names:
        raise ExperimentError(
            "the srpt comparison reports savings vs fair; include 'fair'"
        )
    n = len(batch)
    flows: List[FlowSpec] = [
        FlowSpec(size, cca=cca) for size in sorted(batch)
    ]
    points = {}
    for name in names:
        scenario = Scenario(
            f"srpt-{name}",
            flows=list(flows),
            packages=n,
            policy=name,
        )
        points[name] = SrptPoint(name, run_once(scenario, seed=seed))
    return SrptResult(points=points, batch=batch)
