"""§5 extension: load imbalance across links under two switch-power models.

The experiment the paper's final paragraph sketches: spread an aggregate
load across m parallel links either *balanced* (ECMP-style, each link at
R/m) or *consolidated* (fill links one at a time, sleep the rest), and
compare switch energy under

* today's load-independent port hardware ([21, 32]), and
* rate-adaptive, sleep-capable hardware ([45]).

The reproduction-level claims: with today's hardware the split is
irrelevant (savings = 0); with rate-adaptive hardware, consolidation
saves — the network-side mirror of the paper's end-host result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.tables import format_table
from repro.energy.switch_power import (
    SwitchPowerModel,
    rate_adaptive_switch,
    todays_switch,
)
from repro.errors import ExperimentError


def balanced_utilizations(load_fraction: float, links: int) -> List[float]:
    """ECMP: every link carries load/m."""
    if not 0.0 <= load_fraction <= 1.0:
        raise ExperimentError(f"load must be in [0, 1] of capacity, got {load_fraction}")
    return [load_fraction for _ in range(links)]


def consolidated_utilizations(load_fraction: float, links: int) -> List[float]:
    """Fill links to 100 % one at a time; surplus links carry nothing.

    ``load_fraction`` is per-link-normalized (1.0 = every link full), so
    total traffic is preserved between the two placements.
    """
    if not 0.0 <= load_fraction <= 1.0:
        raise ExperimentError(f"load must be in [0, 1] of capacity, got {load_fraction}")
    total = load_fraction * links
    out: List[float] = []
    for _ in range(links):
        take = min(1.0, total)
        out.append(take)
        total -= take
    return out


@dataclass
class LoadBalancePoint:
    """Switch power for one (hardware, placement, load) combination."""

    load_fraction: float
    balanced_w: float
    consolidated_w: float

    @property
    def savings_fraction(self) -> float:
        if self.balanced_w <= 0:
            raise ExperimentError("balanced power must be positive")
        return (self.balanced_w - self.consolidated_w) / self.balanced_w


@dataclass
class LoadBalanceResult:
    """The load sweep under one hardware model."""

    hardware: str
    links: int
    points: List[LoadBalancePoint]

    def max_savings(self) -> float:
        return max(p.savings_fraction for p in self.points)

    def format_table(self) -> str:
        rows = [
            (
                f"{100 * p.load_fraction:.0f}%",
                p.balanced_w,
                p.consolidated_w,
                100 * p.savings_fraction,
            )
            for p in self.points
        ]
        return format_table(
            [
                f"load ({self.hardware})",
                "balanced (W)",
                "consolidated (W)",
                "savings (%)",
            ],
            rows,
        )


def run_load_balance(
    model: SwitchPowerModel,
    hardware: str,
    links: int = 8,
    loads: Sequence[float] = (0.125, 0.25, 0.5, 0.75),
) -> LoadBalanceResult:
    """Sweep aggregate load under one switch-power model."""
    points = []
    for load in loads:
        balanced = model.total_power_w(balanced_utilizations(load, links))
        consolidated = model.total_power_w(
            consolidated_utilizations(load, links)
        )
        points.append(
            LoadBalancePoint(
                load_fraction=load,
                balanced_w=balanced,
                consolidated_w=consolidated,
            )
        )
    return LoadBalanceResult(hardware=hardware, links=links, points=points)


def run_hardware_comparison(
    links: int = 8, loads: Sequence[float] = (0.125, 0.25, 0.5, 0.75)
) -> "tuple[LoadBalanceResult, LoadBalanceResult]":
    """Both hardware generations, same placements."""
    return (
        run_load_balance(todays_switch(), "load-independent", links, loads),
        run_load_balance(rate_adaptive_switch(), "rate-adaptive", links, loads),
    )
