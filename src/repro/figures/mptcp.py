"""§2 extension: subflow multiplexing energy (the MPTCP findings).

The related-work section cites Zhao et al. [59, 60]: CPU energy for the
transport is proportional to average throughput and path delay, and
"eliminating link sharing between sub-flows" minimizes CPU consumption
for the same network resource. "Our work confirms these insights."

This experiment makes that confirmation concrete: move the same payload
as

* **single** — one flow (the efficient baseline),
* **subflows-shared** — k parallel subflows multiplexed on one CPU
  package (MPTCP over one socket's worth of CPU),
* **subflows-spread** — k parallel subflows pinned to k packages
  (the worst case [59] warns about: every subflow keeps a core complex
  awake for the whole transfer).

Expected shape: single <= shared < spread, with the spread penalty
growing with k — the per-package idle floor is the dominant cost, the
same concavity economics as the paper's Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.tables import format_table
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import RunMeasurement, run_once
from repro.units import to_msec


@dataclass
class MptcpResult:
    """Energy of the three subflow placements."""

    measurements: Dict[str, RunMeasurement]
    subflows: int
    total_bytes: int

    def energy(self, placement: str) -> float:
        return self.measurements[placement].energy_j

    def spread_penalty(self) -> float:
        """Extra energy of per-package subflows vs the single flow."""
        single = self.energy("single")
        return (self.energy("subflows-spread") - single) / single

    def format_table(self) -> str:
        rows = []
        for name in ("single", "subflows-shared", "subflows-spread"):
            m = self.measurements[name]
            rows.append(
                (
                    name,
                    m.energy_j,
                    m.average_power_w,
                    to_msec(m.duration_s),
                )
            )
        return format_table(
            ["placement", "energy (J)", "power (W)", "duration (ms)"], rows
        )


def run_mptcp_comparison(
    total_bytes: int = 20_000_000,
    subflows: int = 4,
    cca: str = "cubic",
    seed: int = 0,
) -> MptcpResult:
    """Compare single-flow vs k-subflow placements for one payload."""
    per_subflow = total_bytes // subflows
    single = Scenario(
        "mptcp-single",
        flows=[FlowSpec(total_bytes, cca=cca)],
        packages=1,
    )
    shared = Scenario(
        "mptcp-shared",
        flows=[FlowSpec(per_subflow, cca=cca) for _ in range(subflows)],
        packages=1,  # all subflows on one package
    )
    spread = Scenario(
        "mptcp-spread",
        flows=[FlowSpec(per_subflow, cca=cca) for _ in range(subflows)],
        packages=subflows,  # one package per subflow
    )
    return MptcpResult(
        measurements={
            "single": run_once(single, seed=seed),
            "subflows-shared": run_once(shared, seed=seed),
            "subflows-spread": run_once(spread, seed=seed),
        },
        subflows=subflows,
        total_bytes=total_bytes,
    )
