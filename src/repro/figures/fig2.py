"""Figure 2: power vs average throughput for a CUBIC sender.

Two series over a fixed measurement window:

* **Sending smoothly** — the flow is application-rate-limited to the
  target throughput for the whole window (the paper's blue curve). The
  resulting power curve is strictly concave and increasing.
* **Full speed, then idle** — the same number of bytes are blasted at
  line rate, then the host idles for the remainder of the window (the
  paper's orange tangent line): time-averaged power falls on the chord
  between p(0) and p(line rate).

A throughput of zero measures the idle server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.energy.cpu import CpuModel
from repro.energy.meter import EnergyMeter
from repro.harness.experiment import FlowSpec, Scenario
from repro.net.topology import TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from repro.units import gbps

DEFAULT_WINDOW_S = 0.02
DEFAULT_THROUGHPUTS_GBPS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0)


@dataclass
class Fig2Point:
    """One (throughput, power) sample of either series."""

    target_gbps: float
    mean_power_w: float
    std_power_w: float


@dataclass
class Fig2Result:
    """Both series of Figure 2."""

    smooth: List[Fig2Point]
    full_speed_then_idle: List[Fig2Point]

    def smooth_curve(self) -> List[Tuple[float, float]]:
        """(throughput, power) points of the smooth-sending series."""
        return [(p.target_gbps, p.mean_power_w) for p in self.smooth]

    def chord_curve(self) -> List[Tuple[float, float]]:
        """(throughput, power) points of the burst-then-idle series."""
        return [(p.target_gbps, p.mean_power_w) for p in self.full_speed_then_idle]

    def format_table(self) -> str:
        rows = []
        chord_by_target = {p.target_gbps: p for p in self.full_speed_then_idle}
        for p in self.smooth:
            chord = chord_by_target.get(p.target_gbps)
            rows.append(
                (
                    p.target_gbps,
                    p.mean_power_w,
                    p.std_power_w,
                    chord.mean_power_w if chord else float("nan"),
                )
            )
        return format_table(
            ["throughput (Gb/s)", "smooth power (W)", "std", "burst+idle power (W)"],
            rows,
            float_fmt="{:.2f}",
        )


def _measure_idle_power(
    window_s: float, repetitions: int, base_seed: int, load: float = 0.0
) -> Fig2Point:
    """Meter an idle (no-traffic) server over the window."""
    from repro.analysis.stats import mean, sample_std
    from repro.sim.rng import RngRegistry

    powers = []
    for rep in range(repetitions):
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig())
        cpu = CpuModel(sim, testbed.sender, packages=1)
        cpu.set_noise(
            RngRegistry(base_seed + rep).stream("power-noise"), 0.0015
        )
        if load > 0:
            cpu.set_background_load(load)
        meter = EnergyMeter(sim, [cpu])
        meter.start()
        sim.run(until=window_s)
        meter.stop()
        powers.append(meter.average_power_w)
    return Fig2Point(0.0, mean(powers), sample_std(powers))


def _point_scenario(
    target_gbps: float,
    window_s: float,
    burst: bool,
    cca: str,
    load: float,
) -> Scenario:
    """A single-flow scenario moving ``target * window`` bits."""
    payload = int(gbps(target_gbps) * window_s / 8)
    flow = FlowSpec(
        total_bytes=payload,
        cca=cca,
        target_rate_bps=None if burst else gbps(target_gbps),
    )
    return Scenario(
        name=f"fig2-{'burst' if burst else 'smooth'}-{target_gbps:g}",
        flows=[flow],
        background_load=load,
        packages=1,
        # Curve-shape figures need low measurement noise; the paper
        # plots means of 10 runs, we run fewer reps with a tighter sigma.
        power_noise_sigma=0.0015,
    )


def _window_point(
    target_gbps: float, runs, window_s: float, load: float
) -> Fig2Point:
    """Summarize repeated runs as power over the *fixed window*.

    Normalize to the window: after completion the package idles at
    p(0), which the window's time-average must include (the flow may
    finish early in burst mode), so both series share the same
    denominator.
    """
    from repro.analysis.stats import mean, sample_std

    powers = []
    for m in runs:
        leftover = max(0.0, window_s - m.duration_s)
        energy = m.energy_j + _idle_power_for(load) * leftover
        powers.append(energy / max(window_s, m.duration_s))
    return Fig2Point(target_gbps, mean(powers), sample_std(powers))


def _measure_series(
    throughputs: Sequence[float],
    window_s: float,
    burst: bool,
    cca: str,
    repetitions: int,
    base_seed: int,
    load: float = 0.0,
    executor=None,
    jobs=None,
    cache=None,
    observer=None,
) -> List[Fig2Point]:
    """Measure one series, fanning all (target, repetition) simulations
    through the executor layer at once. Idle (zero-throughput) points
    meter an empty testbed directly — too cheap to parallelize."""
    from repro.harness.executor import WorkItem, run_work_items

    targets = [t for t in throughputs if t > 0]
    items = [
        WorkItem(
            scenario=_point_scenario(target, window_s, burst, cca, load),
            seed=base_seed + rep,
        )
        for target in targets
        for rep in range(repetitions)
    ]
    measurements = run_work_items(
        items, executor=executor, jobs=jobs, cache=cache, observer=observer
    )
    by_target = {
        target: measurements[i * repetitions : (i + 1) * repetitions]
        for i, target in enumerate(targets)
    }
    points: List[Fig2Point] = []
    for target in throughputs:
        if target <= 0:
            points.append(
                _measure_idle_power(window_s, repetitions, base_seed, load)
            )
        else:
            points.append(
                _window_point(target, by_target[target], window_s, load)
            )
    return points


def _idle_power_for(load: float) -> float:
    from repro.energy.power_model import PowerModel

    return PowerModel().smooth_sending_power_w(0.0, load)


def run_fig2(
    throughputs_gbps: Sequence[float] = DEFAULT_THROUGHPUTS_GBPS,
    window_s: float = DEFAULT_WINDOW_S,
    cca: str = "cubic",
    repetitions: int = 3,
    base_seed: int = 0,
    *,
    executor=None,
    jobs=None,
    cache_dir=None,
    observer=None,
) -> Fig2Result:
    """Reproduce both Figure 2 series."""
    from repro.obs.observer import resolve_observer

    # Resolve once so both series share one journal/registry.
    obs = resolve_observer(observer)
    smooth = _measure_series(
        throughputs_gbps, window_s, burst=False, cca=cca,
        repetitions=repetitions, base_seed=base_seed,
        executor=executor, jobs=jobs, cache=cache_dir, observer=obs,
    )
    burst = _measure_series(
        throughputs_gbps, window_s, burst=True, cca=cca,
        repetitions=repetitions, base_seed=base_seed + 1000,
        executor=executor, jobs=jobs, cache=cache_dir, observer=obs,
    )
    return Fig2Result(smooth=smooth, full_speed_then_idle=burst)
