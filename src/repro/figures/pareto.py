"""The FCT-vs-energy Pareto frontier across scheduling policies.

The paper optimizes joules; pFabric-style SRPT optimizes FCT; FairQ
optimizes fairness-and-FCT. This figure puts every registered
:mod:`repro.sched` policy on one chart and asks which trade-offs are
*efficient*: for each policy it measures total energy and FCT
percentiles on two workloads —

* **link** — a closed shortest-first batch multiplexed through one
  sender over the classic dumbbell (the paper's single-bottleneck
  setting; the ``fair``/``serialized`` points land exactly where the
  legacy fig3/srpt paths put them);
* **fabric** — an open Poisson workload over a leaf-spine fleet (the
  docs/datacenter.md setting where the energy sign flips).

The full workload x policy grid flattens into one work-item batch, so
``jobs=N`` parallelizes every arm and stays bit-identical to a serial
run; scenario names follow ``pareto_<workload>-<policy>`` so baseline
snapshots derive ``savings_vs_fair_percent`` per workload
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.errors import ExperimentError, SweepAbortedError
from repro.harness.cache import ResultCache
from repro.harness.executor import Executor, SweepControl
from repro.harness.experiment import (
    AnyScenario,
    FabricScenario,
    FlowSpec,
    Scenario,
)
from repro.harness.runner import RepeatedResult
from repro.harness.sweep import Sweep, SweepResults
from repro.net.topology import TestbedConfig
from repro.obs.attrib import top_flow_share_percent
from repro.obs.observer import Observer
from repro.sched import policy_names, resolve_policy_name
from repro.units import BITS_PER_BYTE, to_msec

#: the two workloads every policy is evaluated on
WORKLOADS = ("link", "fabric")

#: the link batch: mixed sizes through one sender (bytes)
DEFAULT_LINK_BATCH = (20_000_000, 10_000_000, 5_000_000, 2_500_000)

#: per-flow deadline slack for the link batch (x line-rate duration);
#: gives the ``deadline`` policy real constraints to respect
DEFAULT_DEADLINE_SLACK = 4.0


def pareto_scenario_name(workload: str, policy: str) -> str:
    """The ``pareto_<workload>-<policy>`` naming convention."""
    return f"pareto_{workload}-{policy}"


@dataclass
class ParetoPoint:
    """One (workload, policy) cell of the frontier."""

    workload: str
    policy: str
    result: RepeatedResult

    @property
    def energy_j(self) -> float:
        return self.result.mean_energy_j

    def _extras_mean(self, key: str) -> float:
        return mean([float(r.extras.get(key, 0.0)) for r in self.result.runs])

    @property
    def fct_p50_s(self) -> float:
        return self._extras_mean("fct_p50_s")

    @property
    def fct_p99_s(self) -> float:
        return self._extras_mean("fct_p99_s")

    @property
    def top_flow_share_percent(self) -> float:
        """Mean share of each run's joules billed to its hungriest flow.

        The attribution ledger's one-number view of how concentrated a
        policy leaves the energy bill: serialized schedules push it
        toward 100/n-th of the batch's largest flow, fair sharing
        flattens it toward an even split.
        """
        return mean(
            [top_flow_share_percent(r) for r in self.result.runs]
        )


@dataclass
class ParetoResult:
    """Every (workload, policy) point plus frontier extraction."""

    points: List[ParetoPoint]
    policies: Sequence[str]

    def point(self, workload: str, policy: str) -> ParetoPoint:
        name = resolve_policy_name(policy)
        for point in self.points:
            if point.workload == workload and point.policy == name:
                return point
        raise ExperimentError(
            f"no pareto point for workload={workload!r} policy={policy!r}"
        )

    def workload_points(self, workload: str) -> List[ParetoPoint]:
        if workload not in WORKLOADS:
            raise ExperimentError(
                f"unknown workload {workload!r}; known: {sorted(WORKLOADS)}"
            )
        return [p for p in self.points if p.workload == workload]

    def savings_vs_fair_percent(self, workload: str, policy: str) -> float:
        fair = self.point(workload, "fair").energy_j
        if fair <= 0:
            raise ExperimentError(
                f"{workload}: fair arm measured non-positive energy"
            )
        return 100.0 * (fair - self.point(workload, policy).energy_j) / fair

    def frontier(self, workload: str, tail: bool = False) -> List[ParetoPoint]:
        """The non-dominated policies on one workload.

        A point is dominated when another policy is at least as good on
        both axes (FCT — p50, or p99 with ``tail=True`` — and energy)
        and strictly better on one. The result is sorted fastest-first.
        """

        def fct(p: ParetoPoint) -> float:
            return p.fct_p99_s if tail else p.fct_p50_s

        candidates = sorted(
            self.workload_points(workload), key=lambda p: (fct(p), p.energy_j)
        )
        front: List[ParetoPoint] = []
        best_energy = float("inf")
        for point in candidates:
            if point.energy_j < best_energy:
                front.append(point)
                best_energy = point.energy_j
        return front

    def format_table(self) -> str:
        """Both workloads' frontiers as text (* marks non-dominated)."""
        blocks = []
        for workload in WORKLOADS:
            points = self.workload_points(workload)
            if not points:
                continue
            front = {p.policy for p in self.frontier(workload)}
            rows = [
                (
                    ("*" if p.policy in front else " ") + p.policy,
                    p.energy_j,
                    self.savings_vs_fair_percent(workload, p.policy),
                    to_msec(p.fct_p50_s),
                    to_msec(p.fct_p99_s),
                    p.top_flow_share_percent,
                )
                for p in sorted(points, key=lambda p: p.fct_p50_s)
            ]
            body = format_table(
                [
                    "policy",
                    "energy (J)",
                    "savings %",
                    "p50 (ms)",
                    "p99 (ms)",
                    "top flow %",
                ],
                rows,
                float_fmt="{:.3f}",
            )
            blocks.append(f"{workload} workload (* = Pareto-efficient)\n{body}")
        return "\n\n".join(blocks)


def _link_scenario(
    policy: str,
    batch: Sequence[int],
    cca: str,
    deadline_slack: float,
) -> Scenario:
    """The closed shortest-first batch through one dumbbell sender."""
    rate = TestbedConfig().link_rate_bps
    flows = [
        FlowSpec(
            size,
            cca=cca,
            deadline_s=deadline_slack * (size * BITS_PER_BYTE / rate),
        )
        for size in sorted(batch)
    ]
    return Scenario(
        name=pareto_scenario_name("link", policy),
        flows=flows,
        packages=len(flows),
        policy=policy,
    )


def run_pareto(
    policies: Optional[Sequence[str]] = None,
    link_batch: Sequence[int] = DEFAULT_LINK_BATCH,
    link_cca: str = "cubic",
    deadline_slack: float = DEFAULT_DEADLINE_SLACK,
    fabric_cca: str = "dctcp",
    n_flows: int = 200,
    mix: str = "rpc",
    target_load: float = 0.3,
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 4,
    repetitions: int = 1,
    base_seed: int = 0,
    *,
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
    cache_dir: Union[None, str, Path, ResultCache] = None,
    observer: Union[None, str, Path, Observer] = None,
    control: Optional[SweepControl] = None,
) -> ParetoResult:
    """Sweep every policy across both workloads and build the frontier.

    ``policies=None`` means the whole registry — the figure exists to
    compare all of them. ``fair`` must be included: savings and
    dominance are measured against it.
    """
    names = (
        list(policy_names())
        if policies is None
        else [resolve_policy_name(p) for p in policies]
    )
    if "fair" not in names:
        raise ExperimentError(
            "the pareto figure reports savings vs fair; include 'fair'"
        )

    def factory(workload: str, policy: str) -> AnyScenario:
        if workload == "link":
            return _link_scenario(policy, link_batch, link_cca, deadline_slack)
        return FabricScenario(
            name=pareto_scenario_name("fabric", policy),
            cca=fabric_cca,
            policy=policy,
            n_flows=n_flows,
            mix=mix,
            target_load=target_load,
            leaves=leaves,
            spines=spines,
            hosts_per_leaf=hosts_per_leaf,
            deadline_slack=deadline_slack,
        )

    def partial_points(results: SweepResults) -> List[ParetoPoint]:
        # Keep a workload's points only when its fair arm completed:
        # savings and dominance are both measured against fair.
        points = []
        for workload in WORKLOADS:
            arms = {
                policy: row.result
                for policy in names
                for row in results.where(workload=workload, policy=policy).rows
            }
            if "fair" not in arms:
                continue
            points.extend(
                ParetoPoint(workload=workload, policy=policy, result=result)
                for policy, result in arms.items()
            )
        return points

    try:
        results = Sweep({"workload": list(WORKLOADS), "policy": names}).run(
            factory,
            repetitions=repetitions,
            base_seed=base_seed,
            executor=executor,
            jobs=jobs,
            cache=cache_dir,
            observer=observer,
            control=control,
        )
    except SweepAbortedError as exc:
        partial = getattr(exc, "partial_sweep", None)
        if partial is not None:
            exc.partial_figure = ParetoResult(  # type: ignore[attr-defined]
                points=partial_points(partial), policies=names
            )
        raise
    points = [
        ParetoPoint(
            workload=workload,
            policy=policy,
            result=results.one(workload=workload, policy=policy).result,
        )
        for workload in WORKLOADS
        for policy in names
    ]
    return ParetoResult(points=points, policies=names)
