"""Per-figure reproduction pipelines (Figures 1-8 plus ablations)."""

from __future__ import annotations

from repro.figures.ablation import (
    Bbr2AlphaAblation,
    ConcavityAblation,
    bbr2_alpha_ablation,
    buffer_ablation,
    concavity_ablation,
    ecn_threshold_ablation,
)
from repro.figures.fabric import (
    FabricCcaPoint,
    FabricResult,
    run_fabric_figure,
)
from repro.figures.fig1 import Fig1Point, Fig1Result, run_fig1
from repro.figures.fig2 import Fig2Point, Fig2Result, run_fig2
from repro.figures.fig3 import Fig3Result, run_fig3
from repro.figures.fig4 import Fig4Result, run_fig4
from repro.figures.fig5 import Fig5Result, fig5_from_grid
from repro.figures.fig6 import Fig6Result, fig6_from_grid
from repro.figures.fig7 import Fig7Result, fig7_from_grid
from repro.figures.fig8 import Fig8Result, fig8_from_grid
from repro.figures.grid import CcaMtuGrid, GridCell, run_cca_mtu_grid
from repro.figures.incast import IncastResult, run_incast_point, run_incast_sweep
from repro.figures.load_balance import (
    LoadBalanceResult,
    run_hardware_comparison,
    run_load_balance,
)
from repro.figures.friendliness import (
    FriendlinessResult,
    run_friendliness_matrix,
    run_pairing,
)
from repro.figures.mechanisms import MechanismResult, run_mechanism_breakdown
from repro.figures.mptcp import MptcpResult, run_mptcp_comparison
from repro.figures.pareto import ParetoPoint, ParetoResult, run_pareto
from repro.figures.srpt import SrptResult, run_srpt_comparison
from repro.figures.workload_energy import (
    WorkloadEnergyResult,
    run_workload_energy,
)

__all__ = [
    "run_fabric_figure",
    "FabricResult",
    "FabricCcaPoint",
    "run_srpt_comparison",
    "SrptResult",
    "run_pareto",
    "ParetoResult",
    "ParetoPoint",
    "run_incast_sweep",
    "run_incast_point",
    "IncastResult",
    "run_load_balance",
    "run_hardware_comparison",
    "LoadBalanceResult",
    "run_mptcp_comparison",
    "MptcpResult",
    "run_mechanism_breakdown",
    "MechanismResult",
    "run_friendliness_matrix",
    "run_pairing",
    "FriendlinessResult",
    "run_workload_energy",
    "WorkloadEnergyResult",
    "run_fig1",
    "Fig1Result",
    "Fig1Point",
    "run_fig2",
    "Fig2Result",
    "Fig2Point",
    "run_fig3",
    "Fig3Result",
    "run_fig4",
    "Fig4Result",
    "run_cca_mtu_grid",
    "CcaMtuGrid",
    "GridCell",
    "fig5_from_grid",
    "Fig5Result",
    "fig6_from_grid",
    "Fig6Result",
    "fig7_from_grid",
    "Fig7Result",
    "fig8_from_grid",
    "Fig8Result",
    "concavity_ablation",
    "ConcavityAblation",
    "bbr2_alpha_ablation",
    "Bbr2AlphaAblation",
    "ecn_threshold_ablation",
    "buffer_ablation",
]
