"""Ablations beyond the paper: which modelling choices carry the result?

DESIGN.md calls out the design decisions worth stress-testing:

* **Concavity** — Theorem 1's premise. With a *linear* power curve the
  unfairness saving must vanish (:func:`concavity_ablation`).
* **BBR2 alpha penalty** — how much of the 40 % BBR2-vs-BBR gap comes
  from the modelled implementation immaturity
  (:func:`bbr2_alpha_ablation`).
* **ECN threshold** — DCTCP's advantage as the marking threshold moves
  (:func:`ecn_threshold_ablation`).
* **Bottleneck buffer** — loss-based CCAs' retransmissions vs buffer
  depth (:func:`buffer_ablation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.theorem import theorem1_savings
from repro.energy.power_model import PowerModel
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once


@dataclass
class ConcavityAblation:
    """Analytic savings under concave vs linear power curves."""

    concave_savings_fraction: float
    linear_savings_fraction: float


def concavity_ablation(capacity_gbps: float = 10.0) -> ConcavityAblation:
    """Compare full-speed-then-idle savings under the calibrated concave
    curve vs a linear curve with the same endpoints."""
    model = PowerModel()
    p_concave = lambda t: model.smooth_sending_power_w(t)  # noqa: E731
    p0 = model.smooth_sending_power_w(0.0)
    p1 = model.smooth_sending_power_w(capacity_gbps)
    p_linear = lambda t: p0 + (p1 - p0) * t / capacity_gbps  # noqa: E731
    # The full-speed-then-idle schedule corresponds to the static
    # allocation (C, 0): one package busy at line rate, one fully idle.
    extreme = [capacity_gbps, 0.0]
    return ConcavityAblation(
        concave_savings_fraction=theorem1_savings(p_concave, capacity_gbps, extreme),
        linear_savings_fraction=theorem1_savings(p_linear, capacity_gbps, extreme),
    )


def concavity_exponent_sweep(
    gammas: Sequence[float] = (0.1, 0.17, 0.3, 0.5, 0.7, 0.9, 1.0),
    capacity_gbps: float = 10.0,
    fraction: float = 0.8,
) -> Dict[float, float]:
    """Sensitivity of the unfairness saving to the fitted exponent.

    The headline 16.3 % at the serialized extreme depends only on the
    paper's three anchors, but the *interior* of the Fig. 1 curve
    depends on the curve family. The sweep reports the static saving of
    an 80/20 split vs fair as gamma varies, and its shape is a finding
    in itself: the saving vanishes at gamma = 1 (linear — Theorem 1's
    boundary case) *and* collapses again as gamma -> 0, because an
    extremely concave curve is nearly flat everywhere above zero, so two
    busy flows cost the same however the split falls. Interior
    unfairness only pays at moderate concavity; at the extremes of the
    exponent, all of the savings concentrate in the full
    speed-then-*idle* schedule, where one package actually reaches p(0).
    """
    out: Dict[float, float] = {}
    for gamma in gammas:
        model = PowerModel(gamma_net=gamma)
        p = model.smooth_sending_power_w
        split = [fraction * capacity_gbps, (1 - fraction) * capacity_gbps]
        out[gamma] = theorem1_savings(p, capacity_gbps, split)
    return out


@dataclass
class Bbr2AlphaAblation:
    """Measured BBR2 energy with and without the alpha-quality penalty."""

    alpha_energy_j: float
    mature_energy_j: float
    bbr_energy_j: float

    @property
    def alpha_overhead_vs_bbr(self) -> float:
        return (self.alpha_energy_j - self.bbr_energy_j) / self.bbr_energy_j

    @property
    def mature_overhead_vs_bbr(self) -> float:
        return (self.mature_energy_j - self.bbr_energy_j) / self.bbr_energy_j


def bbr2_alpha_ablation(
    transfer_bytes: int = 25_000_000, mtu: int = 9000, seed: int = 0
) -> Bbr2AlphaAblation:
    """Quantify how much of BBR2's energy gap the alpha knobs explain.

    The 'mature' variant is registered ad hoc by instantiating Bbr2 with
    ``alpha_quality=False`` through a custom factory.
    """
    from repro.cc.bbr2 import Bbr2
    from repro.apps.iperf import IperfSession, run_until_complete
    from repro.energy.cpu import CpuModel
    from repro.energy.meter import EnergyMeter
    from repro.net.topology import TestbedConfig, build_testbed
    from repro.sim.engine import Simulator

    def measure(cca_name: str, alpha_quality: bool) -> float:
        sim = Simulator()
        testbed = build_testbed(sim, TestbedConfig(mtu_bytes=mtu))
        cpu = CpuModel(sim, testbed.sender, packages=1)
        meter = EnergyMeter(sim, [cpu])
        if cca_name == "bbr":
            session = IperfSession(testbed, transfer_bytes, cca="bbr")
        else:
            session = IperfSession(testbed, transfer_bytes, cca="bbr2")
            # Rebuild the CCA with the requested maturity. The session
            # wires flow ids and receivers; only the controller changes.
            session.sender.cca = Bbr2(session.sender, alpha_quality=alpha_quality)
        meter.start()
        run_until_complete(testbed, [session])
        return meter.stop()

    return Bbr2AlphaAblation(
        alpha_energy_j=measure("bbr2", True),
        mature_energy_j=measure("bbr2", False),
        bbr_energy_j=measure("bbr", True),
    )


def ecn_threshold_ablation(
    thresholds_bytes: Sequence[int] = (25 * 1024, 100 * 1024, 400 * 1024),
    transfer_bytes: int = 25_000_000,
    seed: int = 0,
) -> Dict[int, float]:
    """DCTCP energy vs the switch's CE marking threshold."""
    out: Dict[int, float] = {}
    for threshold in thresholds_bytes:
        scenario = Scenario(
            name=f"ablation-ecn-{threshold}",
            flows=[FlowSpec(transfer_bytes, cca="dctcp")],
            ecn_threshold_bytes=threshold,
            packages=1,
        )
        out[threshold] = run_once(scenario, seed=seed).energy_j
    return out


def buffer_ablation(
    buffers_bytes: Sequence[int] = (256 * 1024, 1024 * 1024, 4 * 1024 * 1024),
    cca: str = "cubic",
    transfer_bytes: int = 25_000_000,
    seed: int = 0,
) -> Dict[int, "tuple[float, int]"]:
    """(energy, retransmissions) vs bottleneck buffer depth."""
    out: Dict[int, tuple] = {}
    for buffer_bytes in buffers_bytes:
        scenario = Scenario(
            name=f"ablation-buffer-{buffer_bytes}",
            flows=[FlowSpec(transfer_bytes, cca=cca)],
            buffer_bytes=buffer_bytes,
            packages=1,
        )
        m = run_once(scenario, seed=seed)
        out[buffer_bytes] = (m.energy_j, m.total_retransmissions)
    return out
