"""§2 extension: CCA friendliness, with the energy dimension attached.

The paper's related work cites Ware et al. [55] ("Beyond Jain's Fairness
Index") on deployment friendliness. This experiment runs pairs of CCAs
head-to-head on the shared bottleneck and reports each pairing's

* bandwidth shares (who bullies whom),
* mean Jain fairness over the contended window, and
* total energy —

connecting the deployment question to the paper's thesis: an aggressive
pairing is *unfair*, and by Theorem 1 that very unfairness can make it
the cheaper deployment.

At the default scaled transfer sizes the shares reflect the *short-flow*
regime — largely slow-start races (e.g. CUBIC's HyStart exits early and
cedes to Reno) rather than the steady-state AIMD equilibria of minute-
long runs; grow ``transfer_bytes`` to probe the long-flow regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.convergence import mean_fairness
from repro.analysis.tables import format_table
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import run_once
from repro.units import msec


@dataclass
class PairingResult:
    """One head-to-head pairing."""

    cca_a: str
    cca_b: str
    share_a: float
    mean_fairness: float
    energy_j: float

    @property
    def bully(self) -> str:
        """Which algorithm took the larger share."""
        return self.cca_a if self.share_a >= 0.5 else self.cca_b


@dataclass
class FriendlinessResult:
    """The pairing matrix."""

    pairings: List[PairingResult]
    transfer_bytes: int

    def pairing(self, cca_a: str, cca_b: str) -> PairingResult:
        for p in self.pairings:
            if (p.cca_a, p.cca_b) == (cca_a, cca_b):
                return p
        raise LookupError(f"no pairing ({cca_a}, {cca_b})")

    def format_table(self) -> str:
        rows = [
            (
                f"{p.cca_a} vs {p.cca_b}",
                f"{100 * p.share_a:.0f}% / {100 * (1 - p.share_a):.0f}%",
                p.mean_fairness,
                p.energy_j,
            )
            for p in self.pairings
        ]
        return format_table(
            ["pairing", "shares", "mean Jain", "energy (J)"], rows
        )


def run_pairing(
    cca_a: str,
    cca_b: str,
    transfer_bytes: int = 10_000_000,
    seed: int = 0,
) -> PairingResult:
    """One head-to-head run: both flows start together, same payload."""
    scenario = Scenario(
        f"friend-{cca_a}-vs-{cca_b}",
        flows=[FlowSpec(transfer_bytes, cca=cca_a), FlowSpec(transfer_bytes, cca=cca_b)],
        probe_interval_s=msec(1.0),
    )
    m = run_once(scenario, seed=seed)
    results = m.flow_results
    # share over the contended window: compare goodput while both ran
    first_done = min(r.end_time for r in results)
    series = list(m.throughput_series.values())
    contended = [s.window(0.0, first_done) for s in series]
    bits = [sum(s.values) for s in contended]
    total = sum(bits) or 1.0
    return PairingResult(
        cca_a=cca_a,
        cca_b=cca_b,
        share_a=bits[0] / total,
        mean_fairness=mean_fairness(series),
        energy_j=m.energy_j,
    )


def run_friendliness_matrix(
    ccas: Sequence[str] = ("cubic", "bbr", "reno", "dctcp"),
    transfer_bytes: int = 10_000_000,
    seed: int = 0,
) -> FriendlinessResult:
    """All ordered-independent pairings of the given CCAs."""
    pairings = []
    for i, cca_a in enumerate(ccas):
        for cca_b in ccas[i + 1:]:
            pairings.append(
                run_pairing(cca_a, cca_b, transfer_bytes, seed=seed)
            )
    return FriendlinessResult(pairings=pairings, transfer_bytes=transfer_bytes)
