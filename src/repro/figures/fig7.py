"""Figure 7: energy vs flow completion time, per CCA and MTU.

§4.5: energy is strongly correlated with FCT, and the scatter separates
into two clusters — large-MTU runs (fast and cheap, bottom-left) vs
1500-byte runs (pps-bound, slow and expensive, top-right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.stats import mean, pearson
from repro.analysis.tables import format_table
from repro.figures.grid import CcaMtuGrid


@dataclass
class Fig7Result:
    """Energy-vs-FCT scatter over the grid."""

    grid: CcaMtuGrid

    def points(self) -> List[Tuple[str, int, float, float]]:
        """(cca, mtu, fct_s, energy_j) for every run."""
        return self.grid.scatter(x="fct", y="energy")

    def energy_fct_correlation(self) -> float:
        """corr(FCT, energy) over all runs (paper: strongly positive)."""
        pts = self.points()
        return pearson([p[2] for p in pts], [p[3] for p in pts])

    def cluster_means(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """((fct, energy) for MTU-1500 runs, same for MTU >= 3000).

        The paper's inset shows exactly these two clusters.
        """
        small = [(p[2], p[3]) for p in self.points() if p[1] == 1500]
        large = [(p[2], p[3]) for p in self.points() if p[1] != 1500]
        def _mean(cluster):
            return (mean([c[0] for c in cluster]), mean([c[1] for c in cluster]))
        return _mean(small), _mean(large)

    def format_table(self) -> str:
        rows = [
            (cca, mtu, fct, energy)
            for cca, mtu, fct, energy in sorted(self.points())
        ]
        return format_table(
            ["cca", "mtu", "fct (s)", "energy (J)"], rows, float_fmt="{:.4f}"
        )


def fig7_from_grid(grid: CcaMtuGrid) -> Fig7Result:
    """Derive the Figure 7 view from a measured grid."""
    return Fig7Result(grid=grid)
