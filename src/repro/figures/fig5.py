"""Figure 5: average energy per CCA and MTU for a fixed transfer.

Paper findings this view must reproduce (§4.3-§4.4):

* every real CCA uses 8.2-14.2 % less energy than the constant-cwnd
  baseline (BBR2 excepted),
* BBR2 (alpha) uses ~40 % more energy than BBR,
* growing the MTU from 1500 to 9000 bytes cuts energy by 13.4-31.9 %
  depending on the CCA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import format_table
from repro.errors import AnalysisError
from repro.figures.grid import CcaMtuGrid


@dataclass
class Fig5Result:
    """Energy view over the CCA x MTU grid."""

    grid: CcaMtuGrid

    def energy_j(self, cca: str, mtu: int) -> float:
        return self.grid.cell(cca, mtu).mean_energy_j

    def cca_order_at_mtu(self, mtu: int) -> List[str]:
        """CCAs sorted by ascending energy at one MTU (the bar order)."""
        return sorted(self.grid.ccas(), key=lambda c: self.energy_j(c, mtu))

    def baseline_overhead_fraction(self, mtu: int) -> Dict[str, float]:
        """Per-CCA energy saving vs the baseline (positive = CCA cheaper)."""
        if "baseline" not in self.grid.ccas():
            raise AnalysisError("grid lacks the baseline algorithm")
        base = self.energy_j("baseline", mtu)
        return {
            cca: (base - self.energy_j(cca, mtu)) / base
            for cca in self.grid.ccas()
            if cca != "baseline"
        }

    def bbr2_vs_bbr_fraction(self, mtu: int) -> float:
        """BBR2's extra energy relative to BBR (paper: ~0.40)."""
        bbr = self.energy_j("bbr", mtu)
        return (self.energy_j("bbr2", mtu) - bbr) / bbr

    def mtu_savings_fraction(self, cca: str, small: int = 1500, big: int = 9000) -> float:
        """Energy saved going from the small MTU to the big one."""
        small_e = self.energy_j(cca, small)
        return (small_e - self.energy_j(cca, big)) / small_e

    def format_table(self) -> str:
        mtus = self.grid.mtus()
        rows = []
        for cca in self.cca_order_at_mtu(mtus[0]):
            row: List[object] = [cca]
            for mtu in mtus:
                cell = self.grid.cell(cca, mtu)
                row.append(cell.mean_energy_j)
                row.append(cell.result.std_energy_j)
            rows.append(tuple(row))
        headers = ["cca"]
        for mtu in mtus:
            headers += [f"E@{mtu} (J)", "std"]
        return format_table(headers, rows)


def fig5_from_grid(grid: CcaMtuGrid) -> Fig5Result:
    """Derive the Figure 5 view from a measured grid."""
    return Fig5Result(grid=grid)
