"""The CCA x MTU measurement grid shared by Figures 5-8.

§4.3-§4.5 all analyze the same underlying experiment: transmit 50 GB
with each congestion control algorithm at MTUs of 1500/3000/6000/9000
bytes, repeating each cell and recording energy, average power, flow
completion time and retransmissions. We run that grid once and let each
figure derive its view.

Scaling: transfers default to 1/1000 of the paper's 50 GB (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.cc.registry import PAPER_ALGORITHMS
from repro.harness.cache import ResultCache
from repro.harness.executor import Executor
from repro.harness.experiment import FlowSpec, Scenario
from repro.harness.runner import RepeatedResult
from repro.harness.sweep import Sweep
from repro.obs.observer import Observer

#: 50 GB scaled by 1/1000
DEFAULT_TRANSFER_BYTES = 50_000_000
DEFAULT_MTUS = (1500, 3000, 6000, 9000)


@dataclass
class GridCell:
    """One (CCA, MTU) cell with its repeated measurements."""

    cca: str
    mtu_bytes: int
    result: RepeatedResult

    @property
    def mean_energy_j(self) -> float:
        return self.result.mean_energy_j

    @property
    def mean_power_w(self) -> float:
        return self.result.mean_power_w

    @property
    def mean_fct_s(self) -> float:
        return self.result.mean_duration_s

    @property
    def mean_retransmissions(self) -> float:
        return self.result.mean_retransmissions


@dataclass
class CcaMtuGrid:
    """The full grid with lookup helpers."""

    cells: List[GridCell]
    transfer_bytes: int

    def cell(self, cca: str, mtu_bytes: int) -> GridCell:
        for c in self.cells:
            if c.cca == cca and c.mtu_bytes == mtu_bytes:
                return c
        raise LookupError(f"no cell for ({cca!r}, {mtu_bytes})")

    def ccas(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            if c.cca not in seen:
                seen.append(c.cca)
        return seen

    def mtus(self) -> List[int]:
        return sorted({c.mtu_bytes for c in self.cells})

    def scatter(
        self, x: str, y: str = "energy"
    ) -> List[Tuple[str, int, float, float]]:
        """Per-run scatter points (cca, mtu, x, y) for Figs. 7/8.

        ``x`` is 'fct' or 'retransmissions'; ``y`` is 'energy'.
        """
        points = []
        for cell in self.cells:
            for run in cell.result.runs:
                xs = (
                    run.duration_s
                    if x == "fct"
                    else float(run.total_retransmissions)
                )
                ys = run.energy_j if y == "energy" else run.average_power_w
                points.append((cell.cca, cell.mtu_bytes, xs, ys))
        return points


def run_cca_mtu_grid(
    transfer_bytes: int = DEFAULT_TRANSFER_BYTES,
    mtus: Sequence[int] = DEFAULT_MTUS,
    ccas: Sequence[str] = PAPER_ALGORITHMS,
    repetitions: int = 3,
    base_seed: int = 0,
    time_limit_s: float = 600.0,
    *,
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
    cache_dir: Union[None, str, Path, ResultCache] = None,
    observer: Union[None, str, Path, Observer] = None,
) -> CcaMtuGrid:
    """Run the full CCA x MTU grid (the §4.3-§4.5 experiment).

    The grid is one :class:`~repro.harness.sweep.Sweep` over
    (cca, mtu): ``jobs=N`` fans the cells' repetitions out across N
    worker processes and ``cache_dir=`` reuses previous runs — with
    identical results either way, since seeds are per-repetition.
    """

    def cell_scenario(cca: str, mtu: int) -> Scenario:
        return Scenario(
            name=f"grid-{cca}-mtu{mtu}",
            flows=[FlowSpec(transfer_bytes, cca=cca)],
            mtu_bytes=mtu,
            packages=1,
            time_limit_s=time_limit_s,
        )

    sweep = Sweep({"cca": list(ccas), "mtu": list(mtus)})
    results = sweep.run(
        cell_scenario,
        repetitions=repetitions,
        base_seed=base_seed,
        executor=executor,
        jobs=jobs,
        cache=cache_dir,
        observer=observer,
    )
    cells = [
        GridCell(cca=row["cca"], mtu_bytes=row["mtu"], result=row.result)
        for row in results.rows
    ]
    return CcaMtuGrid(cells=cells, transfer_bytes=transfer_bytes)
