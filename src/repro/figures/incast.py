"""§5 extension: energy under incast fan-in.

The paper validates its claims with a single sender and flags
"multiplexing multiple flows at the same sender, and incast" as the
workloads to check next. This experiment runs the classic incast
pattern — N synchronized senders delivering one aggregate payload to a
single receiver through one bottleneck port — and measures total
end-host energy, completion time and retransmissions as N grows.

The energy question: the aggregate offered work is constant (same bytes,
same bottleneck), but fan-in adds idle-host time (each of N senders
holds its package for the whole synchronized epoch) and loss-recovery
churn. Under the paper's concave power curve, energy should therefore
*grow* with N — fan-in is a form of enforced fairness, and fairness is
expensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.tables import format_table
from repro.cc.registry import factory as cca_factory
from repro.energy.cpu import CpuModel
from repro.energy.meter import EnergyMeter
from repro.errors import ExperimentError
from repro.net.topology import TestbedConfig, build_incast_testbed
from repro.sim.engine import Simulator
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.units import to_msec


@dataclass
class IncastPoint:
    """Measurements for one fan-in degree."""

    fan_in: int
    energy_j: float
    makespan_s: float
    retransmissions: int
    bottleneck_drops: int

    @property
    def energy_per_mb(self) -> float:
        return self.energy_j  # normalized by the caller's fixed payload


@dataclass
class IncastResult:
    """The fan-in sweep."""

    points: List[IncastPoint]
    aggregate_bytes: int

    def point(self, fan_in: int) -> IncastPoint:
        for p in self.points:
            if p.fan_in == fan_in:
                return p
        raise LookupError(f"no point for fan-in {fan_in}")

    def energy_growth(self) -> float:
        """Energy at max fan-in relative to fan-in 1."""
        first = self.points[0].energy_j
        return self.points[-1].energy_j / first

    def format_table(self) -> str:
        rows = [
            (
                p.fan_in,
                p.energy_j,
                to_msec(p.makespan_s),
                p.retransmissions,
                p.bottleneck_drops,
            )
            for p in self.points
        ]
        return format_table(
            ["fan-in", "energy (J)", "makespan (ms)", "retx", "bneck drops"],
            rows,
        )


def run_incast_point(
    fan_in: int,
    aggregate_bytes: int,
    cca: str = "cubic",
    config: TestbedConfig = None,
    time_limit_s: float = 120.0,
) -> IncastPoint:
    """One synchronized incast epoch: N senders, aggregate/N bytes each."""
    sim = Simulator()
    testbed = build_incast_testbed(sim, fan_in, config or TestbedConfig())
    per_sender = aggregate_bytes // fan_in

    cpu_models = []
    senders: List[TcpSender] = []
    for i, host in enumerate(testbed.senders):
        cpu_models.append(CpuModel(sim, host, packages=1))
        flow_id = 1000 + i
        TcpReceiver(
            sim,
            testbed.receiver,
            flow_id,
            peer=host.name,
            expected_bytes=per_sender,
        )
        sender = TcpSender(
            sim,
            host,
            flow_id,
            dst="receiver",
            cca_factory=cca_factory(cca),
            total_bytes=per_sender,
        )
        senders.append(sender)

    meter = EnergyMeter(sim, cpu_models)
    meter.start()
    for sender in senders:
        sender.start()

    while not all(s.complete for s in senders):
        if sim.now > time_limit_s:
            raise ExperimentError(
                f"incast fan-in {fan_in} stuck after {time_limit_s}s"
            )
        if not sim.step():
            raise ExperimentError("event queue drained before completion")
    energy = meter.stop()

    return IncastPoint(
        fan_in=fan_in,
        energy_j=energy,
        makespan_s=max(s.completed_at for s in senders),
        retransmissions=sum(
            int(s.counters.get("retransmits")) for s in senders
        ),
        bottleneck_drops=int(testbed.bottleneck.queue.counters.get("drops")),
    )


def run_incast_sweep(
    fan_ins: Sequence[int] = (1, 2, 4, 8),
    aggregate_bytes: int = 20_000_000,
    cca: str = "cubic",
) -> IncastResult:
    """Sweep the fan-in degree at a fixed aggregate payload."""
    points = [
        run_incast_point(n, aggregate_bytes, cca=cca) for n in fan_ins
    ]
    return IncastResult(points=points, aggregate_bytes=aggregate_bytes)
