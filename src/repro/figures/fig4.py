"""Figure 4: power vs bitrate under background server load.

§4.2 re-runs the Fig. 2 smooth-sending sweep while ``stress`` occupies
0/25/50/75 % of the host's cores. The network's marginal power shrinks
as the host gets busier, but full-speed-then-idle still saves ~1 % at
25 % load and ~0.17 % at 75 % — which the paper extrapolates to
~$10M/year for a 100k-rack datacenter.

The load x bitrate matrix is declared as one
:class:`~repro.harness.sweep.Sweep` (axes: load, target bitrate) rather
than nested loops, so the whole figure parallelizes and caches through
the executor layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.tables import format_table
from repro.figures.fig2 import (
    Fig2Point,
    _measure_idle_power,
    _point_scenario,
    _window_point,
)
from repro.harness.cache import ResultCache
from repro.harness.executor import Executor
from repro.harness.experiment import Scenario
from repro.harness.sweep import Sweep
from repro.obs.observer import Observer

DEFAULT_LOADS = (0.0, 0.25, 0.50, 0.75)
DEFAULT_THROUGHPUTS_GBPS = (0.0, 2.0, 4.0, 5.0, 6.0, 8.0, 10.0)


@dataclass
class Fig4Result:
    """One smooth-power curve per background-load level."""

    curves: Dict[float, List[Fig2Point]]
    window_s: float

    def loads(self) -> List[float]:
        return sorted(self.curves)

    def savings_fsti_vs_fair_percent(self, load: float) -> float:
        """Full-speed-then-idle saving for two half-rate flows at this
        load, from the measured curve endpoints (the §4.2 numbers).

        fair: both flows at C/2 for the window -> 2 * p(C/2) * T
        fsti: each flow busy half the window  -> (p(C) + p(0)) * T
        """
        curve = {p.target_gbps: p.mean_power_w for p in self.curves[load]}
        line_rate = max(curve)
        half = line_rate / 2.0
        if half not in curve:
            raise KeyError(f"curve at load {load} lacks the half-rate point")
        fair = 2.0 * curve[half]
        fsti = curve[line_rate] + curve[0.0]
        return 100.0 * (fair - fsti) / fair

    def format_table(self) -> str:
        rows = []
        throughputs = sorted(
            {p.target_gbps for pts in self.curves.values() for p in pts}
        )
        for t in throughputs:
            row: List[object] = [t]
            for load in self.loads():
                match = [p for p in self.curves[load] if p.target_gbps == t]
                row.append(match[0].mean_power_w if match else float("nan"))
            rows.append(tuple(row))
        headers = ["bitrate (Gb/s)"] + [
            f"load {100 * load:.0f}% (W)" for load in self.loads()
        ]
        return format_table(headers, rows, float_fmt="{:.2f}")


def run_fig4(
    loads: Sequence[float] = DEFAULT_LOADS,
    throughputs_gbps: Sequence[float] = DEFAULT_THROUGHPUTS_GBPS,
    window_s: float = 0.02,
    cca: str = "cubic",
    repetitions: int = 3,
    base_seed: int = 0,
    *,
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
    cache_dir: Union[None, str, Path, ResultCache] = None,
    observer: Union[None, str, Path, Observer] = None,
) -> Fig4Result:
    """Measure the smooth-power curve at each background load."""
    positive = [t for t in throughputs_gbps if t > 0]

    def point_scenario(load: float, target_gbps: float) -> Scenario:
        return _point_scenario(target_gbps, window_s, False, cca, load)

    results = Sweep({"load": list(loads), "target_gbps": positive}).run(
        point_scenario,
        repetitions=repetitions,
        base_seed=base_seed,
        executor=executor,
        jobs=jobs,
        cache=cache_dir,
        observer=observer,
    )
    curves: Dict[float, List[Fig2Point]] = {}
    for load in loads:
        points: List[Fig2Point] = []
        for target in throughputs_gbps:
            if target <= 0:
                points.append(
                    _measure_idle_power(window_s, repetitions, base_seed, load)
                )
            else:
                row = results.one(load=load, target_gbps=target)
                points.append(
                    _window_point(target, row.result.runs, window_s, load)
                )
        curves[load] = points
    return Fig4Result(curves=curves, window_s=window_s)
