"""Figure 1: energy savings vs bandwidth fraction allocated to flow #1.

Paper setup (§1, §4.1): two CUBIC flows share a 10 Gb/s bottleneck, each
transferring 10 Gbit. Flow 1 is rate-limited to a fraction of the link,
flow 2 uses the remainder; total energy is measured from experiment
start until *both* flows complete. The fair point (50/50) is the most
expensive; the full-speed-then-idle extreme saves ~16 %.

Scaling: transfers default to 1/100 of the paper's (12.5 MB each), which
preserves throughputs and powers and shrinks only the duration/energy
axis (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analysis.tables import format_table
from repro.core.allocation import (
    FAIR_PLAN_NAME,
    FSTI_PLAN_NAME,
    AllocationPlan,
    fig1_allocations,
)
from repro.core.savings import savings_percent
from repro.errors import SweepAbortedError
from repro.harness.cache import ResultCache
from repro.harness.executor import Executor, SweepControl
from repro.harness.experiment import Scenario, scenario_from_plan
from repro.harness.runner import RepeatedResult
from repro.harness.sweep import Sweep, SweepRow
from repro.obs.observer import Observer
from repro.units import gbps

#: paper: 10 Gbit per flow; default scale 1/100
DEFAULT_TRANSFER_BYTES = 12_500_000
DEFAULT_CAPACITY_BPS = gbps(10.0)


@dataclass
class Fig1Point:
    """One x-position of Figure 1."""

    label: str
    flow0_fraction: Optional[float]
    result: RepeatedResult

    @property
    def mean_energy_j(self) -> float:
        return self.result.mean_energy_j


@dataclass
class Fig1Result:
    """The full sweep plus derived savings."""

    points: List[Fig1Point]

    @property
    def fair_point(self) -> Fig1Point:
        for point in self.points:
            if point.label == FAIR_PLAN_NAME:
                return point
        raise LookupError("sweep has no fair point")

    @property
    def fsti_point(self) -> Fig1Point:
        for point in self.points:
            if point.label == FSTI_PLAN_NAME:
                return point
        raise LookupError("sweep has no full-speed-then-idle point")

    def savings_vs_fair_percent(self, point: Fig1Point) -> float:
        """The paper's y-axis: energy saving relative to the fair split."""
        return savings_percent(self.fair_point.mean_energy_j, point.mean_energy_j)

    @property
    def max_savings_percent(self) -> float:
        return max(self.savings_vs_fair_percent(p) for p in self.points)

    def format_table(self) -> str:
        try:
            self.fair_point
            have_fair = True
        except LookupError:
            # A partial figure from an aborted sweep may lack the fair
            # arm; the energies are still worth printing.
            have_fair = False
        rows = []
        for point in self.points:
            frac = (
                f"{100 * point.flow0_fraction:.0f}%"
                if point.flow0_fraction is not None
                else "-"
            )
            rows.append(
                (
                    point.label,
                    frac,
                    point.mean_energy_j,
                    point.result.std_energy_j,
                    self.savings_vs_fair_percent(point) if have_fair else "-",
                )
            )
        return format_table(
            ["allocation", "flow1 share", "energy (J)", "std (J)", "savings vs fair (%)"],
            rows,
        )


def run_fig1(
    transfer_bytes: int = DEFAULT_TRANSFER_BYTES,
    capacity_bps: float = DEFAULT_CAPACITY_BPS,
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    cca: str = "cubic",
    repetitions: int = 3,
    base_seed: int = 0,
    *,
    executor: Union[None, str, Executor] = None,
    jobs: Optional[int] = None,
    cache_dir: Union[None, str, Path, ResultCache] = None,
    observer: Union[None, str, Path, Observer] = None,
    control: Optional[SweepControl] = None,
) -> Fig1Result:
    """Reproduce the Fig. 1 sweep.

    One :class:`~repro.harness.sweep.Sweep` over the allocation plans;
    ``jobs``/``cache_dir`` parallelize and cache the underlying
    simulations without changing any result, and ``observer`` (or a
    trace directory) journals the sweep — see :mod:`repro.obs`.
    ``control`` threads cancellation/result hooks through; on abort the
    raised :class:`~repro.errors.SweepAbortedError` carries a
    ``partial_figure`` built from the grid points that completed.
    """
    plans = list(fig1_allocations(transfer_bytes, capacity_bps, fractions))

    def plan_scenario(plan: AllocationPlan) -> Scenario:
        return scenario_from_plan(f"fig1-{plan.name}", plan, cca=cca)

    def to_points(rows: List[SweepRow]) -> List[Fig1Point]:
        return [
            Fig1Point(
                label=row["plan"].name,
                flow0_fraction=row["plan"].flow0_fraction
                if row["plan"].name != FSTI_PLAN_NAME
                else None,
                result=row.result,
            )
            for row in rows
        ]

    try:
        results = Sweep({"plan": plans}).run(
            plan_scenario,
            repetitions=repetitions,
            base_seed=base_seed,
            executor=executor,
            jobs=jobs,
            cache=cache_dir,
            observer=observer,
            control=control,
        )
    except SweepAbortedError as exc:
        partial = getattr(exc, "partial_sweep", None)
        if partial is not None:
            exc.partial_figure = Fig1Result(  # type: ignore[attr-defined]
                points=to_points(partial.rows)
            )
        raise
    return Fig1Result(points=to_points(results.rows))
