"""``greenenvy`` command-line interface.

One subcommand per paper artifact::

    greenenvy fig1                 # unfairness-savings sweep
    greenenvy fig2                 # power vs throughput curve
    greenenvy fig3                 # fair vs serialized timeseries
    greenenvy fig4                 # loaded-host power curves
    greenenvy grid                 # the CCA x MTU grid feeding figs 5-8
    greenenvy theorem              # Theorem 1 numeric verification
    greenenvy advise 1e9 5e8 2e9   # green-schedule a batch of transfers
    greenenvy policies             # list registered scheduling policies
    greenenvy pareto --policy all  # FCT-vs-energy frontier across them
    greenenvy obs watch DIR        # live progress/ETA of a traced sweep

The figure commands that admit multiple scheduling arms (``fig3``,
``srpt``, ``workload``, ``fabric``, ``pareto``) all spell them the
same way: a repeatable ``--policy NAME`` flag naming entries of the
:mod:`repro.sched` registry.

Sizes are scaled down from the paper's (DESIGN.md §5) so every command
finishes in seconds to minutes on a laptop; pass ``--bytes``/``--reps``
to trade time for fidelity.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional, Tuple

#: exit code for a sweep cancelled mid-run (drift gate or abort file),
#: distinct from failures (1) and usage/IO errors (2)
EXIT_ABORTED = 3


def _add_common(parser: argparse.ArgumentParser, default_bytes: int) -> None:
    parser.add_argument(
        "--bytes", type=int, default=default_bytes,
        help="per-flow transfer size in bytes",
    )
    parser.add_argument("--reps", type=int, default=3, help="repetitions per point")
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")


def _add_parallel(parser: argparse.ArgumentParser) -> None:
    """Executor-layer knobs: results are identical whatever their values."""
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes for the simulations (default: serial; "
        "results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed result cache directory; reruns with "
        "unchanged parameters replay stored measurements",
    )
    parser.add_argument(
        "--trace", default=None, metavar="DIR",
        help="write a run journal (journal.jsonl) and metrics exports "
        "into DIR; inspect with 'greenenvy obs report DIR'. Tracing "
        "never changes results",
    )


def _add_policy(parser: argparse.ArgumentParser, default: str) -> None:
    parser.add_argument(
        "--policy", action="append", dest="policies", metavar="NAME",
        help="scheduling policy to run (repeatable; comma lists and "
        f"'all' also work; default: {default}; see 'greenenvy policies')",
    )


def _policies(args: argparse.Namespace) -> Optional[List[str]]:
    """Canonical, deduplicated policy names from ``--policy`` flags.

    ``None`` when the user gave no flag, so each figure keeps its own
    classic default arms. ``all`` expands to the whole registry;
    retired spellings resolve through the aliases (with their
    deprecation warning).
    """
    values = getattr(args, "policies", None)
    if not values:
        return None
    from repro.sched import policy_names, resolve_policy_name

    names: List[str] = []
    for value in values:
        for part in value.split(","):
            part = part.strip()
            if not part:
                continue
            if part.lower() == "all":
                names.extend(policy_names())
            else:
                names.append(resolve_policy_name(part))
    return list(dict.fromkeys(names)) or None


def _observer(args: argparse.Namespace):
    """Build the figure commands' observer from ``--trace`` (or no-op)."""
    from repro.obs.observer import resolve_observer

    return resolve_observer(getattr(args, "trace", None))


def _trace_note(args: argparse.Namespace) -> None:
    if getattr(args, "trace", None):
        print(f"\ntrace written to {args.trace} "
              f"(greenenvy obs report {args.trace})")


def _add_abort_on_drift(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--abort-on-drift", metavar="BASELINE", dest="abort_on_drift",
        help="cancel the sweep early (exit 3) as soon as a scenario "
        "that finished all its repetitions drifts from this baseline "
        "JSON ('greenenvy obs snapshot')",
    )


def _drift_setup(args: argparse.Namespace) -> Tuple[Any, Any]:
    """``--abort-on-drift`` wiring: ``(control, gate)`` or ``(None, None)``.

    The gate's cancel cord is a :class:`FileCancelToken` when the run is
    traced — so an external ``obs watch --abort-on-drift`` (or a bare
    ``touch DIR/abort.requested``) can stop the same sweep — and a plain
    in-process token otherwise.
    """
    baseline = getattr(args, "abort_on_drift", None)
    if not baseline:
        return None, None
    from pathlib import Path

    from repro.harness.executor import (
        CancelToken,
        FileCancelToken,
        SweepControl,
    )
    from repro.obs.journal import ABORT_FILENAME
    from repro.obs.live import DriftGate

    trace = getattr(args, "trace", None)
    token = (
        FileCancelToken(Path(trace) / ABORT_FILENAME)
        if trace
        else CancelToken()
    )
    gate = DriftGate(baseline, repetitions=args.reps, cancel=token)
    return SweepControl(on_result=gate.on_result, cancel=token), gate


def _aborted_exit(exc: BaseException, gate: Any) -> int:
    """Render a :class:`SweepAbortedError`: partial figure, drift, exit 3."""
    partial = getattr(exc, "partial_figure", None)
    if partial is not None:
        print(partial.format_table())
        print()
    if gate is not None and gate.drifted:
        from repro.obs.baseline import format_drift_table

        print(format_drift_table(gate.gating_rows))
        print()
    print(f"error: {exc}", file=sys.stderr)
    return EXIT_ABORTED


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError, SweepAbortedError
    from repro.figures.fig1 import run_fig1

    try:
        control, gate = _drift_setup(args)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _observer(args) as obs:
            result = run_fig1(
                transfer_bytes=args.bytes, repetitions=args.reps,
                base_seed=args.seed, jobs=args.jobs, cache_dir=args.cache_dir,
                observer=obs, control=control,
            )
    except SweepAbortedError as exc:
        return _aborted_exit(exc, gate)
    print(result.format_table())
    print(f"\nmax savings vs fair: {result.max_savings_percent:.1f}% "
          f"(paper: ~16%)")
    _trace_note(args)
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.figures.fig2 import run_fig2

    with _observer(args) as obs:
        result = run_fig2(
            repetitions=args.reps, base_seed=args.seed,
            jobs=args.jobs, cache_dir=args.cache_dir, observer=obs,
        )
    print(result.format_table())
    _trace_note(args)
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.figures.fig3 import run_fig3

    from repro.units import to_gbps

    result = run_fig3(
        transfer_bytes=args.bytes, seed=args.seed, policies=_policies(args)
    )
    for panel in result.panels:
        print(f"\n== {panel} ==")
        for flow, series in result.panel(panel):
            samples = " ".join(f"{to_gbps(v):.1f}" for v in series.values)
            print(f"flow {flow} (Gb/s per ms): {samples}")
        means = ", ".join(f"{m:.2f}" for m in result.mean_throughputs_gbps(panel))
        print(f"window-average throughputs: {means} Gb/s")
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.figures.fig4 import run_fig4

    with _observer(args) as obs:
        result = run_fig4(
            repetitions=args.reps, base_seed=args.seed,
            jobs=args.jobs, cache_dir=args.cache_dir, observer=obs,
        )
    print(result.format_table())
    for load in result.loads():
        print(
            f"full-speed-then-idle savings at load {100 * load:.0f}%: "
            f"{result.savings_fsti_vs_fair_percent(load):.2f}%"
        )
    _trace_note(args)
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from repro.figures.fig5 import fig5_from_grid
    from repro.figures.fig6 import fig6_from_grid
    from repro.figures.fig7 import fig7_from_grid
    from repro.figures.fig8 import fig8_from_grid
    from repro.figures.grid import run_cca_mtu_grid

    with _observer(args) as obs:
        grid = run_cca_mtu_grid(
            transfer_bytes=args.bytes, repetitions=args.reps,
            base_seed=args.seed, jobs=args.jobs, cache_dir=args.cache_dir,
            observer=obs,
        )
    if getattr(args, "json", None):
        from repro.analysis.export import save_json

        save_json([cell.result for cell in grid.cells], args.json)
        print(f"wrote raw measurements to {args.json}\n")
    fig5 = fig5_from_grid(grid)
    fig6 = fig6_from_grid(grid)
    fig7 = fig7_from_grid(grid)
    fig8 = fig8_from_grid(grid)
    print("== Figure 5: energy ==")
    print(fig5.format_table())
    print(f"\nBBR2 vs BBR energy overhead @9000: "
          f"{100 * fig5.bbr2_vs_bbr_fraction(9000):.0f}% (paper: ~40%)")
    print("\n== Figure 6: power ==")
    print(fig6.format_table())
    print(f"\ncorr(energy, power) @1500: "
          f"{fig6.energy_power_correlation(1500):.2f} (paper: -0.8)")
    print(f"\ncorr(energy, fct): {fig7.energy_fct_correlation():.2f}")
    print(f"corr(energy, retx) excl bbr2: {fig8.correlation():.2f} "
          f"(paper: 0.47)")
    _trace_note(args)
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs.journal import read_journal
    from repro.obs.report import (
        format_report,
        summarize_journal,
        summary_to_dict,
    )

    try:
        events = read_journal(args.journal)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(
            f"error: journal at {args.journal} is empty (no events recorded)",
            file=sys.stderr,
        )
        return 2
    summary = summarize_journal(events, slowest=args.slowest)
    if args.format == "json":
        import json

        print(json.dumps(summary_to_dict(summary), indent=2, sort_keys=True))
    else:
        print(format_report(summary))
        for extra in _report_extras(args.journal):
            print()
            print(extra)
    # A journal with worker errors fails the command, so CI can gate on
    # sweep health: greenenvy obs report trace/ && deploy ...
    return 0 if summary.healthy else 1


def _report_extras(target: str) -> List[str]:
    """Attribution and profile sections for trace-directory reports.

    ``obs report`` also accepts a bare journal file; only a trace
    directory can carry the sibling ``telemetry.jsonl``/``profile.jsonl``
    these sections read, so they quietly disappear otherwise.
    """
    from pathlib import Path

    from repro.obs.attrib import summarize_flow_energy
    from repro.obs.profile import profile_path, read_profile, summarize_profile
    from repro.obs.telemetry import read_telemetry, telemetry_path

    sections: List[str] = []
    root = Path(target)
    if not root.is_dir():
        return sections
    if telemetry_path(root).exists():
        flows = summarize_flow_energy(read_telemetry(root))
        if flows:
            sections.append("== top energy flows ==\n" + flows)
    if profile_path(root).exists():
        sections.append(
            "== hot-path profile ==\n"
            + summarize_profile(read_profile(root))
        )
    return sections


def _cmd_obs_timeline(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs.telemetry import read_telemetry
    from repro.obs.timeline import (
        filter_records,
        format_timeline,
        timeline_csv,
        timeline_json,
    )

    try:
        records = read_telemetry(args.trace)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    matched = filter_records(
        records,
        scenario=args.scenario,
        seed=args.seed,
        channel=args.channel,
        entity=args.entity,
    )
    if not matched:
        print("no telemetry streams match the given filters", file=sys.stderr)
        return 1
    if args.format == "csv":
        sys.stdout.write(timeline_csv(matched))
    elif args.format == "json":
        print(timeline_json(matched))
    else:
        print(format_timeline(matched, samples=args.samples))
    return 0


def _cmd_obs_snapshot(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs.baseline import save_baseline, snapshot_from_journal
    from repro.obs.journal import read_journal

    try:
        snapshot = snapshot_from_journal(read_journal(args.trace))
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        save_baseline(snapshot, args.output)
        print(
            f"wrote baseline {args.output} "
            f"({len(snapshot['metrics'])} gated metrics)"
        )
    else:
        import json

        print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs.baseline import (
        compare,
        format_drift_table,
        has_regression,
        load_baseline,
        snapshot_from_journal,
    )
    from repro.obs.journal import read_journal

    tolerances = {}
    for spec in args.tolerance or []:
        name, sep, value = spec.partition("=")
        try:
            if not name or not sep:
                raise ValueError(spec)
            tolerances[name] = float(value)
        except ValueError:
            print(
                f"error: bad --tolerance {spec!r} (want metric=relative, "
                f"e.g. energy_j=1e-3)",
                file=sys.stderr,
            )
            return 2
    try:
        baseline = load_baseline(args.baseline)
        current = snapshot_from_journal(read_journal(args.trace))
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = compare(baseline, current, tolerances=tolerances or None)
    print(format_drift_table(rows))
    # Non-zero on drift so CI can gate: greenenvy obs diff base.json trace/
    return 1 if has_regression(rows) else 0


def _cmd_obs_watch(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.errors import ObservabilityError
    from repro.obs.baseline import format_drift_table
    from repro.obs.live import (
        DriftGate,
        LiveSweepView,
        ProgressServer,
        request_abort,
    )
    from repro.obs.progress import format_progress, progress_to_dict

    if args.abort_on_drift and not args.baseline:
        print("error: --abort-on-drift needs --baseline", file=sys.stderr)
        return 2

    gate: Optional[DriftGate] = None
    if args.baseline:

        class _AbortFlag:
            """The gate's cancel cord for a sweep this process doesn't
            own: creating the abort flag file is the cooperative stop
            channel the running coordinator polls."""

            def cancel(self, reason: str) -> None:
                request_abort(args.trace, reason)

        try:
            gate = DriftGate(
                args.baseline,
                cancel=_AbortFlag() if args.abort_on_drift else None,
            )
        except ObservabilityError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        view = LiveSweepView(
            args.trace,
            on_event=gate.observe_event if gate is not None else None,
        )
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    server = None
    if args.serve is not None:
        server = ProgressServer(view, port=args.serve).start()
        print(
            f"serving http://127.0.0.1:{server.port}/progress "
            f"(JSON) and /metrics (Prometheus)",
            file=sys.stderr,
        )
    # Full-screen refresh only when someone is actually watching a
    # terminal; piped output gets one appended block per refresh.
    refresh = sys.stdout.isatty() and not args.once and not args.json
    try:
        while True:
            view.poll()
            progress = view.snapshot()
            if args.json:
                print(json.dumps(progress_to_dict(progress), sort_keys=True))
                sys.stdout.flush()
            else:
                if refresh:
                    print("\x1b[2J\x1b[H", end="")
                print(format_progress(progress))
            if args.once or progress.complete or progress.aborted:
                break
            if not refresh and not args.json:
                print()
            time.sleep(args.interval)
    finally:
        if server is not None:
            server.stop()

    drifted = gate is not None and gate.drifted
    if drifted and not args.json:
        print()
        print(format_drift_table(gate.gating_rows))
    # Exit 1 when the watched sweep is demonstrably unhealthy — it
    # drifted, aborted, or recorded worker errors. A --once snapshot of
    # a sweep that is simply still running exits 0.
    return 1 if (drifted or progress.aborted or progress.errors) else 0


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.figures.fig1 import run_fig1
    from repro.obs.observer import TracingObserver
    from repro.obs.profile import (
        export_profile,
        read_profile,
        summarize_profile,
    )

    with TracingObserver(args.trace, profile=True) as obs:
        run_fig1(
            transfer_bytes=args.bytes, repetitions=args.reps,
            base_seed=args.seed, jobs=args.jobs, observer=obs,
        )
    try:
        records = read_profile(args.trace)
        paths = export_profile(args.trace, records=records)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summarize_profile(records, top=args.top))
    print()
    print(f"flamegraph input:  {paths['folded']} "
          f"(flamegraph.pl {paths['folded'].name} > flame.svg)")
    print(f"callgrind profile: {paths['callgrind']} (kcachegrind)")
    print(f"chrome trace:      {paths['chrome']} (chrome://tracing, Perfetto)")
    return 0


def _cmd_obs_perf_diff(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs.perfdiff import (
        BENCH_FABRIC_FILENAME,
        BENCH_SIM_FILENAME,
        compare_perf,
        format_perf_table,
        has_perf_regression,
        load_snapshot,
        perf_snapshot,
    )

    tolerances = {}
    for spec in args.tolerance or []:
        name, sep, value = spec.partition("=")
        try:
            if not name or not sep:
                raise ValueError(spec)
            tolerances[name] = float(value)
        except ValueError:
            print(
                f"error: bad --tolerance {spec!r} (want metric=relative, "
                f"e.g. events_per_second.median=0.3)",
                file=sys.stderr,
            )
            return 2
    default_name = (
        BENCH_FABRIC_FILENAME if args.kind == "fabric" else BENCH_SIM_FILENAME
    )
    baseline_path = args.baseline or f"benchmarks/{default_name}"
    try:
        baseline = load_snapshot(baseline_path)
        fresh = perf_snapshot(args.kind, best_of=args.best_of)
        rows = compare_perf(baseline, fresh, tolerances=tolerances or None)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"baseline: {baseline_path} ({baseline.get('platform', '?')})")
    print(format_perf_table(rows))
    # Non-zero on an events/sec regression so CI can gate on engine speed.
    return 1 if has_perf_regression(rows) else 0


def _cmd_theorem(args: argparse.Namespace) -> int:
    from repro.core.theorem import worst_allocation_is_fair
    from repro.energy.power_model import PowerModel

    model = PowerModel()
    p = lambda t: model.smooth_sending_power_w(t)  # noqa: E731
    holds = worst_allocation_is_fair(p, 10.0, n=args.flows, trials=args.trials)
    print(
        f"Theorem 1 over {args.trials} random allocations of {args.flows} "
        f"flows: fair share is the most expensive — "
        f"{'CONFIRMED' if holds else 'VIOLATED'}"
    )
    return 0 if holds else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import quick_report

    report = quick_report(
        transfer_bytes=args.bytes, repetitions=args.reps, seed=args.seed
    )
    text = report.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} "
              f"({report.claims_ok}/{report.claims_total} claims ok)")
    else:
        print(text)
    return 0 if report.claims_ok == report.claims_total else 1


def _cmd_srpt(args: argparse.Namespace) -> int:
    from repro.figures.srpt import run_srpt_comparison

    result = run_srpt_comparison(seed=args.seed, policies=_policies(args))
    print(result.format_table())
    for name in sorted(set(result.points) - {"fair"}):
        print(
            f"\n{name}: {result.energy_savings_vs_fair(name):.1%} "
            f"energy saving, {result.fct_speedup_vs_fair(name):.2f}x mean FCT"
        )
    return 0


def _cmd_incast(args: argparse.Namespace) -> int:
    from repro.figures.incast import run_incast_sweep

    result = run_incast_sweep(aggregate_bytes=args.bytes)
    print(result.format_table())
    print(f"\nenergy growth 1 -> {result.points[-1].fan_in} senders: "
          f"x{result.energy_growth():.2f}")
    return 0


def _cmd_loadbalance(args: argparse.Namespace) -> int:
    from repro.figures.load_balance import run_hardware_comparison

    today, adaptive = run_hardware_comparison()
    print(today.format_table())
    print()
    print(adaptive.format_table())
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.figures.workload_energy import run_workload_energy

    result = run_workload_energy(
        distribution=args.distribution, target_load=args.load, seed=args.seed,
        policies=_policies(args),
    )
    print(
        f"{result.workload.name}: {len(result.workload.flows)} flows, "
        f"offered load {result.workload.offered_load:.2f}\n"
    )
    print(result.format_table())
    if "fair" in result.points:
        fair = result.points["fair"]
        for name in sorted(set(result.points) - {"fair"}):
            point = result.points[name]
            print(
                f"\n{name}: {fair.mean_fct_s / point.mean_fct_s:.2f}x mean "
                f"FCT at {point.energy_j / fair.energy_j:.3f}x the energy"
            )
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError, SweepAbortedError
    from repro.figures.fabric import DEFAULT_POLICIES, run_fabric_figure
    from repro.units import MILLION

    ccas = [c.strip() for c in args.ccas.split(",") if c.strip()]
    try:
        control, gate = _drift_setup(args)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _observer(args) as obs:
            result = run_fabric_figure(
                ccas=ccas,
                n_flows=args.flows,
                mix=args.mix,
                target_load=args.load,
                topology=args.topology,
                leaves=args.leaves,
                spines=args.spines,
                hosts_per_leaf=args.hosts_per_leaf,
                switch_power=args.switch_power,
                repetitions=args.reps,
                base_seed=args.seed,
                policies=_policies(args) or DEFAULT_POLICIES,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                observer=obs,
                control=control,
            )
    except SweepAbortedError as exc:
        return _aborted_exit(exc, gate)
    print(result.format_table())
    # The fair arms score exactly 0% against themselves, so the best
    # (cca, policy) cell is fair only when every other arm costs energy.
    cca, policy, saving = max(
        (
            (point.cca, name, point.savings_percent_vs_fair(name))
            for point in result.points
            for name in result.policies
        ),
        key=lambda row: row[2],
    )
    print(
        f"\nbest fleet saving: {saving:.1f}% ({cca}, {policy}), worth "
        f"${result.annualized_value_usd(cca, policy) / MILLION:.1f}M/year "
        f"at datacenter scale"
    )
    _trace_note(args)
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError, SweepAbortedError
    from repro.figures.pareto import WORKLOADS, run_pareto

    kwargs = {}
    if args.link_batch:
        kwargs["link_batch"] = tuple(
            int(float(s)) for s in args.link_batch.split(",") if s.strip()
        )
    try:
        control, gate = _drift_setup(args)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _observer(args) as obs:
            result = run_pareto(
                policies=_policies(args),
                link_cca=args.link_cca,
                deadline_slack=args.deadline_slack,
                fabric_cca=args.fabric_cca,
                n_flows=args.flows,
                mix=args.mix,
                target_load=args.load,
                leaves=args.leaves,
                spines=args.spines,
                hosts_per_leaf=args.hosts_per_leaf,
                repetitions=args.reps,
                base_seed=args.seed,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                observer=obs,
                control=control,
                **kwargs,
            )
    except SweepAbortedError as exc:
        return _aborted_exit(exc, gate)
    print(result.format_table())
    for workload in WORKLOADS:
        front = " -> ".join(p.policy for p in result.frontier(workload))
        print(f"\n{workload} frontier (fastest -> greenest): {front}")
    _trace_note(args)
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from repro.sched import POLICY_ALIASES, get_policy, policy_names

    names = policy_names()
    width = max(len(name) for name in names)
    for name in names:
        print(f"{name:<{width}}  {get_policy(name).description}")
    if POLICY_ALIASES:
        spellings = ", ".join(
            f"{old} -> {new}" for old, new in sorted(POLICY_ALIASES.items())
        )
        print(f"\nretired spellings (deprecated): {spellings}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation import run_validation, validation_passed

    checks = run_validation()
    width = max(len(c.name) for c in checks)
    for check in checks:
        mark = "ok " if check.ok else "FAIL"
        print(f"[{mark}] {check.name:<{width}}  expected {check.expected}, "
              f"got {check.actual}")
    ok = validation_passed(checks)
    print(f"\n{'all checks passed' if ok else 'CALIBRATION BROKEN'}")
    return 0 if ok else 1


def _cmd_mptcp(args: argparse.Namespace) -> int:
    from repro.figures.mptcp import run_mptcp_comparison

    result = run_mptcp_comparison(total_bytes=args.bytes, seed=args.seed)
    print(result.format_table())
    print(f"\nspreading subflows across packages costs "
          f"+{100 * result.spread_penalty():.0f}%")
    return 0


def _cmd_mechanisms(args: argparse.Namespace) -> int:
    from repro.figures.mechanisms import run_mechanism_breakdown

    result = run_mechanism_breakdown(transfer_bytes=args.bytes)
    print(result.format_table())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import (
        LintUsageError,
        iter_rules,
        load_baseline,
        new_findings,
        render_baseline,
        render_json,
        render_sarif,
        render_text,
        run_lint,
    )
    from repro.lint.engine import LintResult

    if args.list_rules:
        width = max(len(rule.name) for rule in iter_rules())
        for rule in iter_rules():
            print(f"{rule.name:<{width}}  [{rule.family}] {rule.description}")
        return 0
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        result = run_lint(args.paths, select=select, ignore=ignore)
        if args.write_baseline:
            Path(args.write_baseline).write_text(
                render_baseline(result.findings), encoding="utf-8"
            )
            print(
                f"wrote baseline with {len(result.findings)} finding"
                f"{'s' if len(result.findings) != 1 else ''} "
                f"to {args.write_baseline}"
            )
            return 0
        baselined = 0
        if args.baseline:
            baseline = load_baseline(Path(args.baseline))
            fresh = new_findings(result.findings, baseline)
            baselined = len(result.findings) - len(fresh)
            result = LintResult(
                findings=fresh,
                files_checked=result.files_checked,
                rules_run=result.rules_run,
            )
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fmt = "sarif" if args.sarif else args.format
    if fmt == "json":
        print(render_json(result))
    elif fmt == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
        if baselined:
            print(
                f"({baselined} known finding"
                f"{'s' if baselined != 1 else ''} absorbed by the baseline)"
            )
    return 0 if result.clean else 1


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import EnergyAdvisor
    from repro.units import MILLION

    advisor = EnergyAdvisor()
    # Accept scientific notation ("1e9") as the usage examples promise.
    rec = advisor.recommend([int(float(b)) for b in args.sizes])
    print(f"schedule (serialized, SRPT): {' -> '.join(rec.schedule)}")
    print(f"fair-share energy:  {rec.fair_energy_j:.2f} J")
    print(f"serialized energy:  {rec.serialized_energy_j:.2f} J")
    print(f"saving:             {100 * rec.savings_fraction:.1f}%")
    value = advisor.annualized_value(rec.savings_fraction)
    print(f"at 100k-rack scale: ${value / MILLION:.1f}M/year")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="greenenvy",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="unfairness vs energy savings sweep")
    _add_common(p, default_bytes=12_500_000)
    _add_parallel(p)
    _add_abort_on_drift(p)
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("fig2", help="power vs throughput curves")
    _add_common(p, default_bytes=0)
    _add_parallel(p)
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser(
        "fig3", help="per-policy throughput timeseries (one panel each)"
    )
    _add_common(p, default_bytes=12_500_000)
    _add_policy(p, default="fair, serialized")
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("fig4", help="loaded-host power curves")
    _add_common(p, default_bytes=0)
    _add_parallel(p)
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("grid", help="CCA x MTU grid (figures 5-8)")
    _add_common(p, default_bytes=25_000_000)
    _add_parallel(p)
    p.add_argument("--json", help="also dump raw measurements to this file")
    p.set_defaults(func=_cmd_grid)

    p = sub.add_parser("theorem", help="verify Theorem 1 numerically")
    p.add_argument("--flows", type=int, default=2)
    p.add_argument("--trials", type=int, default=1000)
    p.set_defaults(func=_cmd_theorem)

    p = sub.add_parser(
        "lint",
        help="simulator-correctness static analysis (units, determinism, "
        "dataflow, CCA contract, API hygiene, hot-path perf)",
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format",
    )
    p.add_argument(
        "--sarif", action="store_true",
        help="shorthand for --format sarif (SARIF 2.1.0)",
    )
    p.add_argument(
        "--select", help="comma-separated rule names to run (default: all)"
    )
    p.add_argument(
        "--ignore", help="comma-separated rule names to skip"
    )
    p.add_argument(
        "--baseline", metavar="PATH",
        help="only findings not in this baseline file count",
    )
    p.add_argument(
        "--write-baseline", metavar="PATH",
        help="record current findings as the baseline and exit 0",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="list available rules and exit",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("advise", help="green-schedule a batch of transfers")
    p.add_argument("sizes", nargs="+", help="transfer sizes in bytes")
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser(
        "report", help="run the quick end-to-end reproduction report"
    )
    _add_common(p, default_bytes=8_000_000)
    p.add_argument("--output", "-o", help="write markdown to a file")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("srpt", help="SRPT transport energy (§5 extension)")
    _add_common(p, default_bytes=0)
    _add_policy(p, default="fair, srpt, serialized")
    p.set_defaults(func=_cmd_srpt)

    p = sub.add_parser("incast", help="incast fan-in energy (§5 extension)")
    _add_common(p, default_bytes=20_000_000)
    p.set_defaults(func=_cmd_incast)

    p = sub.add_parser(
        "loadbalance", help="link imbalance under two switch-power models"
    )
    p.set_defaults(func=_cmd_loadbalance)

    p = sub.add_parser(
        "workload", help="production workloads: per-policy energy and FCT"
    )
    _add_common(p, default_bytes=0)
    p.add_argument(
        "--distribution", default="web-search",
        choices=("web-search", "data-mining"),
    )
    p.add_argument("--load", type=float, default=0.5)
    _add_policy(p, default="fair, srpt")
    p.set_defaults(func=_cmd_workload)

    p = sub.add_parser(
        "fabric",
        help="leaf-spine fleet energy at 1k+ flows, per scheduling "
        "policy and datacenter CCA",
    )
    p.add_argument(
        "--flows", type=int, default=1000,
        help="concurrent flows in the generated workload",
    )
    p.add_argument(
        "--ccas", default="dctcp,dcqcn",
        help="comma-separated datacenter CCAs (dctcp, dcqcn, hpcc, swift)",
    )
    p.add_argument("--leaves", type=int, default=8, help="leaf (ToR) switches")
    p.add_argument("--spines", type=int, default=2, help="spine switches")
    p.add_argument(
        "--hosts-per-leaf", type=int, default=8, help="hosts per rack"
    )
    p.add_argument(
        "--topology", default="leaf-spine", choices=("leaf-spine", "fat-tree")
    )
    p.add_argument(
        "--load", type=float, default=0.3,
        help="target offered load as a fraction of host capacity",
    )
    p.add_argument(
        "--mix", default="datacenter",
        help="traffic mix (datacenter, rpc-heavy, or a single distribution)",
    )
    p.add_argument(
        "--switch-power", default="today", choices=("today", "rate-adaptive"),
        help="switch power hardware model",
    )
    p.add_argument("--reps", type=int, default=1, help="repetitions per arm")
    p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    _add_policy(p, default="fair, serialized")
    _add_parallel(p)
    _add_abort_on_drift(p)
    p.set_defaults(func=_cmd_fabric)

    p = sub.add_parser(
        "pareto",
        help="FCT-vs-energy Pareto frontier across scheduling policies "
        "on a link batch and a leaf-spine workload",
    )
    _add_policy(p, default="every registered policy")
    p.add_argument(
        "--link-batch", metavar="BYTES,BYTES,...",
        help="comma-separated flow sizes for the link workload "
        "(default: 20M,10M,5M,2.5M)",
    )
    p.add_argument(
        "--link-cca", default="cubic", help="CCA for the link workload"
    )
    p.add_argument(
        "--deadline-slack", type=float, default=4.0,
        help="per-flow deadline as a multiple of line-rate duration",
    )
    p.add_argument(
        "--fabric-cca", default="dctcp", help="CCA for the fabric workload"
    )
    p.add_argument(
        "--flows", type=int, default=200, help="fabric workload flow count"
    )
    p.add_argument(
        "--mix", default="rpc",
        help="fabric traffic mix (datacenter, rpc-heavy, or a distribution)",
    )
    p.add_argument(
        "--load", type=float, default=0.3,
        help="fabric target offered load as a fraction of host capacity",
    )
    p.add_argument("--leaves", type=int, default=4, help="leaf (ToR) switches")
    p.add_argument("--spines", type=int, default=2, help="spine switches")
    p.add_argument(
        "--hosts-per-leaf", type=int, default=4, help="hosts per rack"
    )
    p.add_argument("--reps", type=int, default=1, help="repetitions per arm")
    p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    _add_parallel(p)
    _add_abort_on_drift(p)
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser(
        "policies",
        help="list the registered scheduling policies (see docs/scheduling.md)",
    )
    p.set_defaults(func=_cmd_policies)

    p = sub.add_parser(
        "validate", help="fast calibration self-check (no simulation)"
    )
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "mptcp", help="subflow multiplexing energy ([59]'s MPTCP findings)"
    )
    _add_common(p, default_bytes=20_000_000)
    p.set_defaults(func=_cmd_mptcp)

    p = sub.add_parser(
        "mechanisms",
        help="per-mechanism energy attribution for each CCA (§5)",
    )
    _add_common(p, default_bytes=20_000_000)
    p.set_defaults(func=_cmd_mechanisms)

    p = sub.add_parser(
        "obs",
        help="inspect traces written by --trace: journals, live "
        "progress, in-sim telemetry, and cross-run baselines",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "report", help="summarize a sweep's journal (exit 1 on worker errors)"
    )
    p.add_argument(
        "journal",
        help="trace directory (containing journal.jsonl) or a .jsonl file",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    p.add_argument(
        "--slowest", type=int, default=5,
        help="how many slowest runs to list",
    )
    p.set_defaults(func=_cmd_obs_report)

    p = obs_sub.add_parser(
        "timeline",
        help="render in-sim telemetry series (cwnd, queue depth, power) "
        "from a trace (exit 1 when filters match nothing)",
    )
    p.add_argument(
        "trace",
        help="trace directory (containing telemetry.jsonl) or a .jsonl file",
    )
    p.add_argument("--scenario", help="only this scenario")
    p.add_argument("--seed", type=int, help="only this seed")
    p.add_argument(
        "--channel", help="only this channel (e.g. cwnd_bytes, power_w)"
    )
    p.add_argument(
        "--entity", help="only this entity (e.g. flow-1, bottleneck)"
    )
    p.add_argument(
        "--format", choices=("text", "csv", "json"), default="text",
        help="output format",
    )
    p.add_argument(
        "--samples", type=int, default=0,
        help="also print up to N evenly-spaced samples per stream (text)",
    )
    p.set_defaults(func=_cmd_obs_timeline)

    p = obs_sub.add_parser(
        "snapshot",
        help="snapshot a traced sweep's deterministic outcomes as a "
        "baseline JSON document",
    )
    p.add_argument(
        "trace",
        help="trace directory (containing journal.jsonl) or a .jsonl file",
    )
    p.add_argument(
        "--output", "-o", help="write the baseline here (default: stdout)"
    )
    p.set_defaults(func=_cmd_obs_snapshot)

    p = obs_sub.add_parser(
        "diff",
        help="compare a traced sweep against a committed baseline "
        "(exit 1 on drift beyond tolerance — the CI regression gate)",
    )
    p.add_argument("baseline", help="baseline JSON from 'obs snapshot'")
    p.add_argument(
        "trace",
        help="trace directory (containing journal.jsonl) or a .jsonl file",
    )
    p.add_argument(
        "--tolerance", action="append", metavar="METRIC=REL",
        help="override a metric's relative tolerance (repeatable), "
        "e.g. --tolerance energy_j=1e-3",
    )
    p.set_defaults(func=_cmd_obs_diff)

    p = obs_sub.add_parser(
        "watch",
        help="live progress/ETA of a running traced sweep — tails the "
        "journal and worker partials; optional HTTP endpoint and "
        "incremental drift abort (exit 1 when the sweep drifted, "
        "aborted, or erred)",
    )
    p.add_argument(
        "trace", help="trace directory a --trace sweep is writing into"
    )
    p.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period",
    )
    p.add_argument(
        "--once", action="store_true",
        help="print a single snapshot and exit (status-check mode)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="one JSON progress object per refresh instead of the "
        "text view",
    )
    p.add_argument(
        "--baseline", metavar="PATH",
        help="baseline JSON from 'obs snapshot'; scenarios are diffed "
        "incrementally as they finish all repetitions",
    )
    p.add_argument(
        "--abort-on-drift", action="store_true",
        help="on drift, write the trace's abort flag file so the "
        "running sweep cancels cooperatively (needs --baseline)",
    )
    p.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="also serve /progress (JSON) and /metrics (Prometheus) "
        "on 127.0.0.1:PORT (0 picks a free port)",
    )
    p.set_defaults(func=_cmd_obs_watch)

    p = obs_sub.add_parser(
        "profile",
        help="run the canonical fig1 sweep with the hot-path profiler on "
        "and export flamegraph/callgrind/chrome-trace views",
    )
    p.add_argument(
        "trace",
        help="trace directory to write profile.jsonl and the exports into",
    )
    p.add_argument(
        "--bytes", type=int, default=400_000,
        help="per-flow transfer size in bytes",
    )
    p.add_argument(
        "--reps", type=int, default=2, help="repetitions per sweep point"
    )
    p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    p.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (profiles merge deterministically; "
        "measurements are bit-identical either way)",
    )
    p.add_argument(
        "--top", type=int, default=10,
        help="how many hottest components to print",
    )
    p.set_defaults(func=_cmd_obs_profile)

    p = obs_sub.add_parser(
        "perf-diff",
        help="re-run a committed perf sweep and compare events/sec against "
        "benchmarks/BENCH_*.json (exit 1 on regression beyond tolerance "
        "— the CI perf gate)",
    )
    p.add_argument(
        "--kind", choices=("sim", "fabric"), default="sim",
        help="which committed snapshot to gate against (default: sim)",
    )
    p.add_argument(
        "--baseline", default=None,
        help="snapshot JSON to compare against (default: "
        "benchmarks/BENCH_<kind>.json relative to the working directory)",
    )
    p.add_argument(
        "--best-of", type=int, default=1, metavar="N",
        help="run the sweep N times and compare the fastest attempt "
        "(suppresses machine noise)",
    )
    p.add_argument(
        "--tolerance", action="append", metavar="METRIC=REL",
        help="override a metric's relative tolerance (repeatable), "
        "e.g. --tolerance events_per_second.median=0.3",
    )
    p.set_defaults(func=_cmd_obs_perf_diff)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``greenenvy`` console script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
