"""repro — reproduction of *Green With Envy: Unfair Congestion Control
Algorithms Can Be More Energy Efficient* (HotNets '23).

The library layers, bottom-up:

* :mod:`repro.sim` — discrete-event kernel (clock, events, timers, RNG)
* :mod:`repro.net` — packets, queues, links, NICs, switch, hosts, topology
* :mod:`repro.tcp` — TCP sender/receiver with SACK loss recovery
* :mod:`repro.cc` — the paper's ten congestion control algorithms
* :mod:`repro.energy` — calibrated power model + RAPL-emulating meters
* :mod:`repro.apps` — iperf3-style traffic and throughput probes
* :mod:`repro.core` — the paper's contribution: Theorem 1, allocation
  strategies, green scheduling, $-savings extrapolation
* :mod:`repro.harness` — scenario runner with repetition statistics
* :mod:`repro.figures` — one pipeline per paper figure (1-8) + ablations

Quick start::

    from repro.harness import Scenario, FlowSpec, run_once

    fair = Scenario("fair", flows=[
        FlowSpec(12_500_000, cca="cubic", target_rate_bps=5e9),
        FlowSpec(12_500_000, cca="cubic", target_rate_bps=5e9),
    ])
    fsti = Scenario("greedy", flows=[
        FlowSpec(12_500_000, cca="cubic"),
        FlowSpec(12_500_000, cca="cubic", after_flow=0),
    ])
    saved = 1 - run_once(fsti).energy_j / run_once(fair).energy_j
    print(f"full-speed-then-idle saves {saved:.1%}")   # ~16%
"""

from __future__ import annotations

from repro.errors import (
    AnalysisError,
    EnergyModelError,
    ExperimentError,
    NetworkConfigError,
    ReproError,
    SimulationError,
    TcpStateError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "NetworkConfigError",
    "TcpStateError",
    "EnergyModelError",
    "ExperimentError",
    "AnalysisError",
]
