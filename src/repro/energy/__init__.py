"""Energy substrate: calibrated power model, CPU accounting, RAPL emulation."""

from __future__ import annotations

from repro.energy.cpu import CpuModel, CpuPackage
from repro.energy.fleet import (
    FleetEnergyReport,
    SwitchEnergyReading,
    fleet_energy_report,
    measure_switch_energy,
    port_utilization,
)
from repro.energy.meter import EnergyMeter
from repro.energy.power_model import IntervalActivity, PowerModel
from repro.energy.rapl import RaplDomain, RaplReader, energy_delta_j
from repro.energy.stress import StressLoad
from repro.energy.switch_power import (
    SwitchPowerModel,
    rate_adaptive_switch,
    todays_switch,
)

__all__ = [
    "FleetEnergyReport",
    "SwitchEnergyReading",
    "fleet_energy_report",
    "measure_switch_energy",
    "port_utilization",
    "SwitchPowerModel",
    "todays_switch",
    "rate_adaptive_switch",
    "PowerModel",
    "IntervalActivity",
    "CpuModel",
    "CpuPackage",
    "EnergyMeter",
    "RaplDomain",
    "RaplReader",
    "energy_delta_j",
    "StressLoad",
]
