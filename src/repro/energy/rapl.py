"""Intel RAPL (Running Average Power Limit) interface emulation.

The paper measures energy via RAPL's per-package energy-status counters:
read the counter before and after the experiment, subtract, multiply by
the energy unit. We emulate that interface faithfully, including its
sharp edges:

* the counter is a **32-bit register that wraps** (at the default
  2^-16 J unit that's every ~65.5 kJ — about half an hour at full load,
  so real measurement scripts must handle wrap, and so does ours);
* readings are quantized to the energy unit;
* the counter is monotonically increasing between wraps and per-package.

:class:`RaplDomain` wraps one :class:`~repro.energy.cpu.CpuPackage`;
:func:`energy_delta_j` implements the standard single-wrap correction.
"""

from __future__ import annotations

from typing import Dict, List

from repro.energy import calibration as cal
from repro.energy.cpu import CpuModel, CpuPackage
from repro.errors import EnergyModelError
from repro.units import joules_to_uj


class RaplDomain:
    """One emulated RAPL energy-status register.

    ``domain`` selects what the register reports: ``"package"``
    (MSR_PKG_ENERGY_STATUS, the paper's measurement) or ``"dram"``
    (MSR_DRAM_ENERGY_STATUS, where §4.3's "more frequent memory
    accesses" land).
    """

    def __init__(
        self,
        package: CpuPackage,
        energy_unit_j: float = cal.RAPL_ENERGY_UNIT_J,
        counter_bits: int = cal.RAPL_COUNTER_BITS,
        domain: str = "package",
    ):
        if energy_unit_j <= 0:
            raise EnergyModelError(f"energy unit must be > 0, got {energy_unit_j}")
        if domain not in ("package", "dram"):
            raise EnergyModelError(f"unknown RAPL domain {domain!r}")
        self.package = package
        self.energy_unit_j = energy_unit_j
        self.counter_mask = (1 << counter_bits) - 1
        self.domain = domain

    @property
    def name(self) -> str:
        """Domain name, e.g. ``sender-pkg0`` or ``sender-pkg0-dram``."""
        if self.domain == "dram":
            return f"{self.package.name}-dram"
        return self.package.name

    @property
    def wrap_joules(self) -> float:
        """Energy span after which the counter wraps."""
        return (self.counter_mask + 1) * self.energy_unit_j

    def read_counter(self) -> int:
        """Read the raw 32-bit energy-status counter (flushes accounting)."""
        self.package.flush()
        joules = (
            self.package.dram_energy_j
            if self.domain == "dram"
            else self.package.energy_j
        )
        units = int(joules / self.energy_unit_j)
        return units & self.counter_mask

    def read_energy_uj(self) -> float:
        """Read the counter scaled to microjoules (the sysfs view)."""
        return joules_to_uj(self.read_counter() * self.energy_unit_j)


def energy_delta_j(
    before: int, after: int, domain: RaplDomain
) -> float:
    """Energy between two raw counter reads, correcting one wrap."""
    delta_units = after - before
    if delta_units < 0:
        delta_units += domain.counter_mask + 1
    return delta_units * domain.energy_unit_j


class RaplReader:
    """Reads all packages of one or more hosts, like ``powercap`` sysfs.

    >>> reader = RaplReader.for_cpu_models([sender_cpu, receiver_cpu])
    >>> before = reader.read_all()
    >>> ... run experiment ...
    >>> joules = reader.joules_since(before)
    """

    def __init__(self, domains: List[RaplDomain]):
        if not domains:
            raise EnergyModelError("RaplReader needs at least one domain")
        self.domains = domains

    @classmethod
    def for_cpu_models(
        cls, cpu_models: List[CpuModel], include_dram: bool = False
    ) -> "RaplReader":
        """Build a reader covering every package of the given CPU models.

        ``include_dram`` adds each package's DRAM domain, like reading
        both powercap zones. The paper's figures are package-only.
        """
        domains: List[RaplDomain] = []
        for model in cpu_models:
            for pkg in model.packages:
                domains.append(RaplDomain(pkg))
                if include_dram:
                    domains.append(RaplDomain(pkg, domain="dram"))
        return cls(domains)

    def read_all(self) -> Dict[str, int]:
        """Raw counter per domain name."""
        return {d.name: d.read_counter() for d in self.domains}

    def joules_since(self, before: Dict[str, int]) -> float:
        """Total energy across domains since the ``before`` snapshot."""
        total = 0.0
        for domain in self.domains:
            after = domain.read_counter()
            total += energy_delta_j(before[domain.name], after, domain)
        return total
