"""Package power model: concave-in-throughput with calibrated extras.

The model (structure in DESIGN.md, constants in
:mod:`repro.energy.calibration`) maps one CPU package's activity over an
interval to average power:

    P = P_idle + C_load(L) + S(L) * n(t) + beta_pkt * excess_pps
        + beta_cc * excess_cc_rate + beta_retx * retx_rate

``n`` is strictly concave and increasing — the property Theorem 1 needs —
and the model degenerates to exactly the paper's three anchor points for
the reference configuration (CUBIC, MTU 9000, idle host).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy import calibration as cal
from repro.errors import EnergyModelError
from repro.units import to_gbps


@dataclass
class IntervalActivity:
    """What one CPU package did during one accounting interval."""

    duration_s: float
    wire_bytes: int = 0          # bytes sent + received by pinned flows
    packet_events: int = 0       # data + ACK packets handled
    cc_cost_units: float = 0.0   # CCA computation, relative units
    retransmissions: int = 0
    background_load: float = 0.0  # fraction of cores busy with `stress`

    @property
    def throughput_gbps(self) -> float:
        """Average wire throughput attributed to the package, Gb/s."""
        if self.duration_s <= 0:
            return 0.0
        return to_gbps(self.wire_bytes * 8.0 / self.duration_s)


class PowerModel:
    """Converts package activity to watts. Stateless and reusable.

    Parameters mirror the calibration constants so ablation benchmarks can
    sweep them (e.g. force a *linear* network curve to show Theorem 1's
    savings vanish without concavity).
    """

    def __init__(
        self,
        p_idle_w: float = cal.P_IDLE_W,
        a_net: float = cal.A_NET,
        gamma_net: float = cal.GAMMA_NET,
        beta_pkt: float = cal.BETA_PKT_W_PER_PPS,
        beta_cc: float = cal.BETA_CC_W_PER_UNIT_PER_S,
        beta_retx: float = cal.BETA_RETX_W_PER_RPS,
        load_table=cal.C_LOAD_TABLE,
        attenuation_table=cal.S_ATTENUATION_TABLE,
    ):
        if p_idle_w < 0:
            raise EnergyModelError(f"idle power must be >= 0, got {p_idle_w}")
        if gamma_net <= 0 or gamma_net > 1:
            raise EnergyModelError(
                f"gamma must be in (0, 1] for a concave increasing curve, "
                f"got {gamma_net}"
            )
        self.p_idle_w = p_idle_w
        self.a_net = a_net
        self.gamma_net = gamma_net
        self.beta_pkt = beta_pkt
        self.beta_cc = beta_cc
        self.beta_retx = beta_retx
        self.load_table = load_table
        self.attenuation_table = attenuation_table

    # -- curve pieces ------------------------------------------------------

    def network_power_w(self, throughput_gbps: float) -> float:
        """The concave network contribution n(t), W above idle."""
        if throughput_gbps <= 0:
            return 0.0
        return self.a_net * throughput_gbps**self.gamma_net

    def load_power_w(self, load: float) -> float:
        """Background-compute contribution C_load(L), W above idle."""
        return cal.interpolate(self.load_table, load)

    def attenuation(self, load: float) -> float:
        """Network-power attenuation S(L) on a loaded package."""
        return cal.interpolate(self.attenuation_table, load)

    # -- full model ---------------------------------------------------------

    #: component keys of :meth:`power_components`, in display order
    COMPONENT_KEYS = (
        "idle",
        "background_load",
        "network",
        "packet_excess",
        "cc_compute",
        "retransmissions",
        "floor_adjustment",
    )

    def power_components(self, activity: IntervalActivity) -> "dict[str, float]":
        """Average package power over the interval, broken down by
        mechanism — the per-mechanism attribution §5 of the paper plans
        to investigate ("flow state, packet pacing, cwnd calculation
        arithmetic, and so on").

        The components sum exactly to :meth:`power_w`'s value;
        ``floor_adjustment`` absorbs the clamp when micro-work credits
        would otherwise push the total below idle + load.
        """
        if activity.duration_s <= 0:
            raise EnergyModelError(
                f"interval duration must be > 0, got {activity.duration_s}"
            )
        t = activity.throughput_gbps
        load = activity.background_load

        # Excesses relative to the reference configuration at throughput t.
        ref_pps = cal.reference_packet_rate(t)
        ref_events = ref_pps * cal.REF_EVENTS_PER_DATA_PACKET
        actual_events = activity.packet_events / activity.duration_s
        ref_cc_rate = ref_pps * cal.REF_ACKS_PER_PACKET * cal.REF_CC_UNITS_PER_ACK
        actual_cc_rate = activity.cc_cost_units / activity.duration_s
        retx_rate = activity.retransmissions / activity.duration_s

        components = {
            "idle": self.p_idle_w,
            "background_load": self.load_power_w(load),
            "network": self.attenuation(load) * self.network_power_w(t),
            "packet_excess": self.beta_pkt * (actual_events - ref_events),
            "cc_compute": self.beta_cc * (actual_cc_rate - ref_cc_rate),
            "retransmissions": self.beta_retx * retx_rate,
            "floor_adjustment": 0.0,
        }
        total = sum(components.values())
        floor = components["idle"] + components["background_load"]
        if total < floor:
            components["floor_adjustment"] = floor - total
        return components

    def power_w(self, activity: IntervalActivity) -> float:
        """Average package power over the interval, watts."""
        return sum(self.power_components(activity).values())

    def dram_power_w(self, activity: IntervalActivity) -> float:
        """DRAM-domain power for the interval (RAPL's separate domain).

        The paper measures package energy; the DRAM domain carries the
        "more frequent memory accesses" cost §4.3 attributes to the
        bursty baseline. Kept out of the package figure so the paper's
        calibration anchors stay exact.
        """
        if activity.duration_s <= 0:
            raise EnergyModelError(
                f"interval duration must be > 0, got {activity.duration_s}"
            )
        power = cal.DRAM_IDLE_W
        power += cal.BETA_DRAM_W_PER_GBPS * activity.throughput_gbps
        power += (
            cal.BETA_DRAM_RETX_W_PER_RPS
            * activity.retransmissions
            / activity.duration_s
        )
        return power

    def smooth_sending_power_w(
        self, throughput_gbps: float, load: float = 0.0
    ) -> float:
        """Power for reference-config smooth sending at ``t`` Gb/s.

        This is the closed-form curve of the paper's Fig. 2 blue line
        (and Fig. 4's family under load).
        """
        return (
            self.p_idle_w
            + self.load_power_w(load)
            + self.attenuation(load) * self.network_power_w(throughput_gbps)
        )

    def full_speed_then_idle_power_w(
        self,
        average_throughput_gbps: float,
        line_rate_gbps: float = cal.LINE_RATE_GBPS,
        load: float = 0.0,
    ) -> float:
        """Time-averaged power for bursting at line rate then idling.

        Sending a fraction f = t_avg / line of the time at line rate and
        idling otherwise gives the chord (orange tangent line of Fig. 2):
        P = (1-f) * P(0) + f * P(line).
        """
        if average_throughput_gbps < 0 or average_throughput_gbps > line_rate_gbps:
            raise EnergyModelError(
                f"average throughput {average_throughput_gbps} outside "
                f"[0, {line_rate_gbps}]"
            )
        f = average_throughput_gbps / line_rate_gbps
        idle = self.smooth_sending_power_w(0.0, load)
        busy = self.smooth_sending_power_w(line_rate_gbps, load)
        return (1 - f) * idle + f * busy
