"""Experiment energy metering: the paper's read-before/read-after loop.

§3: "For each scenario, we read the energy counter for each CPU before
and after the experiment. The difference between the successive counter
reads gives us the energy used by the scenario for that CPU."

:class:`EnergyMeter` packages that discipline: construct it over the CPU
models you care about (typically just the sender's, matching the paper's
per-flow power arithmetic), call :meth:`start` when the measured window
opens and :meth:`stop` when it closes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.energy.cpu import CpuModel
from repro.energy.rapl import RaplReader
from repro.errors import EnergyModelError
from repro.sim.engine import Simulator
from repro.sim.probe import ENERGY_CHANNEL
from repro.sim.trace import TimeSeries


class EnergyMeter:
    """Measures energy over a window of virtual time via emulated RAPL."""

    def __init__(self, sim: Simulator, cpu_models: List[CpuModel]):
        if not cpu_models:
            raise EnergyModelError("EnergyMeter needs at least one CpuModel")
        self.sim = sim
        self.cpu_models = cpu_models
        self.reader = RaplReader.for_cpu_models(cpu_models)
        self._before: Optional[Dict[str, int]] = None
        self._start_time: Optional[float] = None
        self._energy_j: Optional[float] = None
        self._stop_time: Optional[float] = None

    def start(self) -> None:
        """Open the measurement window (starts CPU sampling)."""
        for model in self.cpu_models:
            model.start()
        self._before = self.reader.read_all()
        self._start_time = self.sim.now
        self._energy_j = None
        self._stop_time = None

    def stop(self) -> float:
        """Close the window; returns joules consumed inside it."""
        if self._before is None:
            raise EnergyModelError("stop() before start()")
        self._energy_j = self.reader.joules_since(self._before)
        self._stop_time = self.sim.now
        for model in self.cpu_models:
            model.stop()
        sink = self.sim.probe_sink
        if sink.enabled:
            # One sample per measurement window: the metered joules at
            # window close, alongside the per-package power series the
            # CPU models emit continuously.
            sink.sample(self.sim.now, ENERGY_CHANNEL, "meter", self._energy_j)
        return self._energy_j

    @property
    def energy_j(self) -> float:
        """Measured energy (valid after :meth:`stop`)."""
        if self._energy_j is None:
            raise EnergyModelError("meter not stopped yet")
        return self._energy_j

    @property
    def duration_s(self) -> float:
        """Length of the measurement window."""
        if self._start_time is None or self._stop_time is None:
            raise EnergyModelError("meter window not complete")
        return self._stop_time - self._start_time

    @property
    def average_power_w(self) -> float:
        """Energy / duration over the window."""
        duration = self.duration_s
        if duration <= 0:
            raise EnergyModelError("zero-length measurement window")
        return self.energy_j / duration

    def power_series(self) -> List[TimeSeries]:
        """Per-package power samples recorded during the window."""
        return [
            pkg.power_series
            for model in self.cpu_models
            for pkg in model.packages
        ]
