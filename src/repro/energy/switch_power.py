"""Switch power models: load-independent vs energy-proportional ports.

The paper's closing paragraph (§5): prior work finds today's switches
draw essentially constant power regardless of load [21, 32], while
Nedevschi et al. [45] argue equipment should sleep and rate-adapt. "If a
data center contained such equipment, our results imply that there could
be significant power savings by increasing load imbalance across data
center links."

:class:`SwitchPowerModel` expresses both hardware generations with one
parameterization:

    P = chassis + sum over ports of port_power(utilization)

    port_power(u) = sleep_w                          if u == 0 and can sleep
                  = idle_w + proportional_w * u^gamma  otherwise

* today's hardware: ``proportional_w = 0``, ``sleep_w = idle_w`` — load
  and balance are irrelevant;
* rate-adaptive hardware: ``proportional_w > 0`` — consolidating traffic
  onto fewer links saves energy when gamma < 1 fails... (for gamma = 1
  the *proportional* term is balance-invariant, so the savings come from
  sleeping the emptied ports; for gamma > 1 imbalance additionally costs
  — the model exposes all three regimes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import EnergyModelError


@dataclass
class SwitchPowerModel:
    """Per-switch power as a function of per-port utilization."""

    chassis_w: float = 150.0
    port_idle_w: float = 1.5
    #: power added at 100 % port utilization (0 = today's load-independent
    #: hardware)
    port_proportional_w: float = 0.0
    #: exponent of the utilization term (1 = linear rate adaptation)
    utilization_gamma: float = 1.0
    #: power of a sleeping (zero-traffic) port; equal to idle_w when the
    #: hardware cannot sleep
    port_sleep_w: float = 1.5

    def port_power_w(self, utilization: float) -> float:
        """One port's power at the given utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise EnergyModelError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        if utilization == 0.0:
            return self.port_sleep_w
        return (
            self.port_idle_w
            + self.port_proportional_w * utilization**self.utilization_gamma
        )

    def total_power_w(self, utilizations: Sequence[float]) -> float:
        """Whole-switch power for a set of port utilizations."""
        return self.chassis_w + sum(self.port_power_w(u) for u in utilizations)


def todays_switch() -> SwitchPowerModel:
    """Load-independent hardware, as measured by [21, 32]."""
    return SwitchPowerModel(
        chassis_w=150.0,
        port_idle_w=1.5,
        port_proportional_w=0.0,
        port_sleep_w=1.5,  # cannot sleep
    )


def rate_adaptive_switch() -> SwitchPowerModel:
    """The [45]-style hardware the paper's §5 asks for: ports that
    rate-adapt (linear in utilization) and sleep when idle."""
    return SwitchPowerModel(
        chassis_w=150.0,
        port_idle_w=1.5,
        port_proportional_w=1.0,
        utilization_gamma=1.0,
        port_sleep_w=0.15,  # deep sleep at zero traffic
    )
