"""Fleet-level energy accounting for multi-switch fabrics.

The paper's §4.2 extrapolates a two-server testbed saving to "$10M/year
for a large data center" — a fleet-level claim. This module produces the
fleet-level number from a simulated fabric: per-port utilizations are
read off the link byte counters a run leaves behind, turned into
per-switch power via :class:`~repro.energy.switch_power.SwitchPowerModel`,
integrated over the run's makespan, and summed with the host CPU energy
the :class:`~repro.energy.meter.EnergyMeter` integrated during the run.

Utilization here is the busy fraction of the measurement window:
``tx_bytes * 8 / rate / duration``, mean utilization rather than an
instantaneous series. For load-independent hardware (the default,
matching [21, 32]) the distinction is irrelevant — power is constant —
and for the rate-adaptive model it is exact when gamma == 1 because the
proportional term is linear in utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.energy.switch_power import SwitchPowerModel, todays_switch
from repro.errors import EnergyModelError
from repro.net.switch import Switch
from repro.units import BITS_PER_BYTE


@dataclass
class SwitchEnergyReading:
    """One switch's contribution over the measurement window."""

    name: str
    power_w: float
    energy_j: float
    port_utilizations: List[float] = field(default_factory=list)

    @property
    def mean_utilization(self) -> float:
        if not self.port_utilizations:
            return 0.0
        return sum(self.port_utilizations) / len(self.port_utilizations)


@dataclass
class FleetEnergyReport:
    """Fabric-wide energy split: hosts + every switch, over one window."""

    duration_s: float
    host_energy_j: float
    switch_readings: List[SwitchEnergyReading] = field(default_factory=list)

    @property
    def switch_energy_j(self) -> float:
        return sum(r.energy_j for r in self.switch_readings)

    @property
    def total_energy_j(self) -> float:
        return self.host_energy_j + self.switch_energy_j

    def per_switch(self) -> Dict[str, float]:
        """Per-switch joules, keyed by switch name."""
        return {r.name: r.energy_j for r in self.switch_readings}


def port_utilization(
    tx_bytes: float, rate_bps: float, duration_s: float
) -> float:
    """Busy fraction of a port over a window (clamped to 1.0).

    The clamp absorbs edge effects: a packet whose serialization began
    inside the window but ended after it counts its full wire bytes.
    """
    if duration_s <= 0:
        raise EnergyModelError(f"duration must be > 0, got {duration_s}")
    if rate_bps <= 0:
        raise EnergyModelError(f"rate must be > 0, got {rate_bps}")
    return min(1.0, tx_bytes * BITS_PER_BYTE / rate_bps / duration_s)


def measure_switch_energy(
    switch: Switch,
    duration_s: float,
    model: Optional[SwitchPowerModel] = None,
) -> SwitchEnergyReading:
    """One switch's power/energy from its egress-port byte counters."""
    model = model or todays_switch()
    utils = [
        port_utilization(
            port.link.counters.get("tx_bytes"),
            port.link.rate_bps,
            duration_s,
        )
        for port in switch.ports()
    ]
    power_w = model.total_power_w(utils)
    return SwitchEnergyReading(
        name=switch.name,
        power_w=power_w,
        energy_j=power_w * duration_s,
        port_utilizations=utils,
    )


def fleet_energy_report(
    switches: List[Switch],
    duration_s: float,
    host_energy_j: float,
    model: Optional[SwitchPowerModel] = None,
) -> FleetEnergyReport:
    """Aggregate host CPU energy and per-switch energy to fleet level."""
    model = model or todays_switch()
    return FleetEnergyReport(
        duration_s=duration_s,
        host_energy_j=host_energy_j,
        switch_readings=[
            measure_switch_energy(sw, duration_s, model) for sw in switches
        ],
    )
