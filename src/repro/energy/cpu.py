"""CPU package accounting: turn stack events into energy.

The testbed servers have two CPU packages; RAPL reports energy per
package, and the paper's per-flow power arithmetic (§4.1: 34.23 W *per
flow*) corresponds to each flow's processing landing on its own package.
:class:`CpuModel` reproduces that: it listens to a host's stack events,
attributes work to per-flow-pinned :class:`CpuPackage` objects, and
integrates the :class:`~repro.energy.power_model.PowerModel` over virtual
time.

Integration is flush-based: activity accumulates between flushes and the
model converts each interval's average rates to watts. A periodic sampler
(default 5 ms) bounds interval length so rate changes (e.g. the
full-speed-then-idle phase switch) are resolved; RAPL reads force a flush
so measurement windows are exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.energy.power_model import IntervalActivity, PowerModel
from repro.errors import EnergyModelError
from repro.net.host import Host, HostListener
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.probe import POWER_CHANNEL
from repro.sim.timer import PeriodicTimer
from repro.sim.trace import TimeSeries
from repro.units import msec

DEFAULT_SAMPLE_INTERVAL_S = msec(5.0)


class CpuPackage:
    """One physical CPU package with its own power curve and RAPL domain."""

    def __init__(self, name: str, model: PowerModel, sim: Simulator):
        self.name = name
        self.model = model
        self.sim = sim
        #: optional measurement-noise source: each flushed interval's
        #: power is scaled by ~N(1, sigma), emulating the run-to-run
        #: variation behind the paper's error bars
        self.noise_rng = None
        self.noise_sigma = 0.0
        self.background_load = 0.0
        self.energy_j = 0.0
        #: DRAM-domain energy, integrated alongside the package domain
        #: (real RAPL exposes them as separate MSRs)
        self.dram_energy_j = 0.0
        #: per-mechanism energy attribution (keys from
        #: PowerModel.COMPONENT_KEYS); sums to energy_j up to noise
        self.energy_components_j: Dict[str, float] = {
            key: 0.0 for key in PowerModel.COMPONENT_KEYS
        }
        self.power_series = TimeSeries(name=f"{name}-power")
        self._last_flush = sim.now
        self._wire_bytes = 0
        self._packet_events = 0
        self._cc_units = 0.0
        self._retransmissions = 0

    # -- accumulation ------------------------------------------------------

    def account_packet(self, wire_bytes: int) -> None:
        """Charge one packet event of ``wire_bytes`` to this package."""
        self._wire_bytes += wire_bytes
        self._packet_events += 1

    def account_cc(self, cost_units: float) -> None:
        """Charge congestion-control computation."""
        self._cc_units += cost_units

    def account_retransmission(self) -> None:
        """Charge one retransmission event."""
        self._retransmissions += 1

    def set_background_load(self, load: float) -> None:
        """Change the `stress` load fraction (flushes the open interval)."""
        if not 0.0 <= load <= 1.0:
            raise EnergyModelError(f"load must be in [0, 1], got {load}")
        self.flush()
        self.background_load = load

    # -- integration -------------------------------------------------------

    def flush(self) -> None:
        """Close the open interval: convert accumulated activity to energy."""
        now = self.sim.now
        duration = now - self._last_flush
        if duration <= 0:
            return
        activity = IntervalActivity(
            duration_s=duration,
            wire_bytes=self._wire_bytes,
            packet_events=self._packet_events,
            cc_cost_units=self._cc_units,
            retransmissions=self._retransmissions,
            background_load=self.background_load,
        )
        components = self.model.power_components(activity)
        power = sum(components.values())
        dram_power = self.model.dram_power_w(activity)
        scale = 1.0
        if self.noise_rng is not None and self.noise_sigma > 0:
            scale = max(0.0, self.noise_rng.gauss(1.0, self.noise_sigma))
            power *= scale
            dram_power *= scale
        self.energy_j += power * duration
        self.dram_energy_j += dram_power * duration
        for key, watts in components.items():
            self.energy_components_j[key] += watts * scale * duration
        self.power_series.record(now, power)
        sink = self.sim.probe_sink
        if sink.enabled:
            # Instantaneous per-package power for telemetry traces: the
            # same value the RAPL emulation integrates, stamped at the
            # flush boundary.
            sink.sample(now, POWER_CHANNEL, self.name, power)
        self._last_flush = now
        self._wire_bytes = 0
        self._packet_events = 0
        self._cc_units = 0.0
        self._retransmissions = 0

    @property
    def current_power_w(self) -> float:
        """Most recent interval's average power (idle level before any)."""
        if len(self.power_series):
            return self.power_series.last
        return self.model.smooth_sending_power_w(0.0, self.background_load)


class CpuModel(HostListener):
    """Attributes one host's stack events to its CPU packages.

    Flows are pinned to packages round-robin on first sight (mirroring
    the paper's two-flow / two-package setup); :meth:`pin_flow` overrides.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        model: Optional[PowerModel] = None,
        packages: int = 2,
        sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
    ):
        if packages < 1:
            raise EnergyModelError(f"need >= 1 package, got {packages}")
        self.sim = sim
        self.host = host
        self.model = model or PowerModel()
        self.packages: List[CpuPackage] = [
            CpuPackage(f"{host.name}-pkg{i}", self.model, sim)
            for i in range(packages)
        ]
        self._flow_pin: Dict[int, CpuPackage] = {}
        self._next_pin = 0
        self._sampler = PeriodicTimer(sim, sample_interval_s, self.flush_all)
        host.add_listener(self)

    # -- pinning -----------------------------------------------------------

    def pin_flow(self, flow_id: int, package_index: int) -> None:
        """Pin ``flow_id``'s processing to a specific package."""
        self._flow_pin[flow_id] = self.packages[package_index]

    def package_for(self, flow_id: int) -> CpuPackage:
        """The package attributed with ``flow_id``'s work (auto-pins)."""
        pkg = self._flow_pin.get(flow_id)
        if pkg is None:
            pkg = self.packages[self._next_pin % len(self.packages)]
            self._next_pin += 1
            self._flow_pin[flow_id] = pkg
        return pkg

    # -- HostListener ------------------------------------------------------

    def on_packet_sent(self, host: Host, packet: Packet) -> None:
        self.package_for(packet.flow_id).account_packet(packet.wire_bytes)

    def on_packet_received(self, host: Host, packet: Packet) -> None:
        self.package_for(packet.flow_id).account_packet(packet.wire_bytes)

    def on_retransmit(self, host: Host, packet: Packet) -> None:
        self.package_for(packet.flow_id).account_retransmission()

    def on_cc_op(
        self, host: Host, algorithm: str, cost_units: float, flow_id: int
    ) -> None:
        self.package_for(flow_id).account_cc(cost_units)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin periodic power sampling."""
        for pkg in self.packages:
            pkg._last_flush = self.sim.now
        self._sampler.start()

    def stop(self) -> None:
        """Stop sampling (flushes the open interval)."""
        self.flush_all()
        self._sampler.stop()

    def flush_all(self) -> None:
        """Flush every package's open accounting interval."""
        for pkg in self.packages:
            pkg.flush()

    @property
    def total_energy_j(self) -> float:
        """Total energy across packages since construction (flushes first)."""
        self.flush_all()
        return sum(pkg.energy_j for pkg in self.packages)

    @property
    def energy_breakdown_j(self) -> Dict[str, float]:
        """Per-mechanism energy across packages (flushes first)."""
        self.flush_all()
        totals = {key: 0.0 for key in PowerModel.COMPONENT_KEYS}
        for pkg in self.packages:
            for key, joules in pkg.energy_components_j.items():
                totals[key] += joules
        return totals

    def set_background_load(self, load: float) -> None:
        """Apply a `stress`-style load fraction to every package."""
        for pkg in self.packages:
            pkg.set_background_load(load)

    def set_noise(self, rng, sigma: float) -> None:
        """Enable per-interval power measurement noise on every package."""
        for pkg in self.packages:
            pkg.noise_rng = rng
            pkg.noise_sigma = sigma
