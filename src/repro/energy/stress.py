"""Background compute load, modelling the Linux ``stress`` tool.

§4.2 runs ``stress`` on a fraction of the end-host's cores while CUBIC
traffic flows. Here a :class:`StressLoad` sets the background-load
fraction of a host's CPU packages for a window of virtual time. The
power consequences live in the calibration tables
(:data:`repro.energy.calibration.C_LOAD_TABLE` and the attenuation
table).
"""

from __future__ import annotations

from repro.energy.cpu import CpuModel
from repro.errors import EnergyModelError
from repro.sim.engine import Simulator


class StressLoad:
    """Occupies a fraction of a host's cores with synthetic compute."""

    def __init__(self, sim: Simulator, cpu_model: CpuModel, load: float):
        if not 0.0 <= load <= 1.0:
            raise EnergyModelError(f"load fraction must be in [0, 1], got {load}")
        self.sim = sim
        self.cpu_model = cpu_model
        self.load = load
        self._active = False

    @property
    def active(self) -> bool:
        """Whether the stress workers are currently running."""
        return self._active

    def start(self) -> None:
        """Spin up the stress workers (applies the load immediately)."""
        self.cpu_model.set_background_load(self.load)
        self._active = True

    def stop(self) -> None:
        """Kill the stress workers."""
        self.cpu_model.set_background_load(0.0)
        self._active = False

    def run_for(self, duration_s: float) -> None:
        """Start now and schedule an automatic stop."""
        self.start()
        self.sim.schedule(duration_s, self.stop)

    @classmethod
    def from_cores(
        cls, sim: Simulator, cpu_model: CpuModel, busy_cores: int, total_cores: int
    ) -> "StressLoad":
        """Build from a core count, like ``stress -c <busy_cores>``."""
        if total_cores <= 0 or not 0 <= busy_cores <= total_cores:
            raise EnergyModelError(
                f"invalid core counts {busy_cores}/{total_cores}"
            )
        return cls(sim, cpu_model, busy_cores / total_cores)
