"""Calibration constants for the energy model, with provenance.

Every number here is either (a) read directly off the paper's figures и
text, or (b) fitted so a paper-reported aggregate comes out right. The
model structure is documented in DESIGN.md §2; briefly:

    P(package) = P_IDLE
               + C_load(L)                    # background compute (stress)
               + S(L) * n(t)                  # concave network-power curve
               + BETA_PKT * excess_pkt_rate   # small-MTU per-packet overhead
               + BETA_CC  * excess_cc_rate    # CCA per-ACK compute
               + BETA_RETX * retx_rate        # retransmission overhead

where ``n(t) = A_NET * t^GAMMA_NET`` is fitted through the paper's §4.1
anchors and ``t`` is the package's attributed wire throughput in Gb/s.
The "excess" rates are relative to the calibration reference (CUBIC at
MTU 9000), so by construction the model reproduces the anchors exactly
for the reference configuration.
"""

from __future__ import annotations

import math

from repro.units import gbps, usec
from typing import Sequence, Tuple

# ---------------------------------------------------------------------------
# §4.1 anchors (paper text, Figure 2): CUBIC sender, MTU 9000, per CPU package
# ---------------------------------------------------------------------------

#: idle package power, W ("each flow consumes only 21.49 Watts" while idle)
P_IDLE_W = 21.49
#: package power while its flow sends smoothly at 5 Gb/s, W
P_HALF_RATE_W = 34.23
#: package power while its flow sends at the 10 Gb/s line rate, W
P_LINE_RATE_W = 35.82

#: the testbed's line rate, Gb/s
LINE_RATE_GBPS = 10.0

# Fit n(t) = A_NET * t^GAMMA_NET through (5, P_HALF-P_IDLE), (10, P_LINE-P_IDLE).
_D5 = P_HALF_RATE_W - P_IDLE_W
_D10 = P_LINE_RATE_W - P_IDLE_W

#: concavity exponent of the network power curve (~0.17: power nearly
#: saturates by half rate, the paper's central observation)
GAMMA_NET = math.log(_D10 / _D5) / math.log(2.0)
#: scale of the network power curve, W per (Gb/s)^GAMMA_NET
A_NET = _D5 / (5.0**GAMMA_NET)


def network_power_w(throughput_gbps: float) -> float:
    """The calibrated concave curve n(t), in watts above idle."""
    if throughput_gbps <= 0:
        return 0.0
    return A_NET * throughput_gbps**GAMMA_NET


# ---------------------------------------------------------------------------
# §4.2 (Figure 4): background load tables
# ---------------------------------------------------------------------------

#: additional package power from running `stress` on a fraction of cores,
#: W, at load levels 0/25/50/75/100 % — read off Fig. 4's y-intercepts
C_LOAD_TABLE: Sequence[Tuple[float, float]] = (
    (0.0, 0.0),
    (0.25, 33.5),
    (0.50, 53.5),
    (0.75, 73.5),
    (1.00, 95.0),
)

#: attenuation of the *network* power contribution when the package is
#: already loaded — calibrated so the paper's full-speed-then-idle savings
#: come out right: 16.3 % at idle, ~1 % at 25 % load, ~0.17 % at 75 %
S_ATTENUATION_TABLE: Sequence[Tuple[float, float]] = (
    (0.0, 1.0),
    (0.25, 0.101),
    (0.50, 0.055),
    (0.75, 0.029),
    (1.00, 0.020),
)


def interpolate(table: Sequence[Tuple[float, float]], x: float) -> float:
    """Piecewise-linear interpolation with clamped ends."""
    if x <= table[0][0]:
        return table[0][1]
    if x >= table[-1][0]:
        return table[-1][1]
    for (x0, y0), (x1, y1) in zip(table, table[1:]):
        if x0 <= x <= x1:
            frac = (x - x0) / (x1 - x0)
            return y0 + frac * (y1 - y0)
    raise AssertionError("unreachable: table not sorted?")  # pragma: no cover


# ---------------------------------------------------------------------------
# reference configuration (what the anchors were measured with)
# ---------------------------------------------------------------------------

#: the anchors were measured with CUBIC at MTU 9000
REF_MTU_BYTES = 9000
#: CUBIC's relative per-ACK cost (see repro.cc.cubic)
REF_CC_UNITS_PER_ACK = 1.35
#: delayed-ACK ratio: one ACK per two data segments
REF_ACKS_PER_PACKET = 0.5
#: packet events (tx data + rx ACK) per data packet at the reference
REF_EVENTS_PER_DATA_PACKET = 1.0 + REF_ACKS_PER_PACKET


def reference_packet_rate(throughput_gbps: float) -> float:
    """Data-packet rate (pps) implied by the reference MTU at ``t`` Gb/s."""
    return gbps(throughput_gbps) / (REF_MTU_BYTES * 8.0)


# ---------------------------------------------------------------------------
# additive micro-work coefficients (Fig. 5/6 calibration)
# ---------------------------------------------------------------------------

#: W per excess packet event per second. Calibrated so MTU 1500 at its
#: ~5 Gb/s pps-limited throughput draws ~8-10 W more than MTU 9000 at the
#: same throughput, yielding the paper's 13.4-31.9 % energy savings band
#: for 1500 -> 9000 (Fig. 5).
BETA_PKT_W_PER_PPS = usec(28)

#: W per excess CC cost-unit per second. Calibrated so the Fig. 6 power
#: spread across CCAs at MTU 1500 is ~14 %.
BETA_CC_W_PER_UNIT_PER_S = usec(9)

#: W per retransmission per second (queue churn + memory accesses at the
#: sender, §4.3's explanation for the baseline's cost). Kept small: the
#: dominant energy cost of retransmissions is the *time* they waste, not
#: their instantaneous power (Fig. 6 shows lossy algorithms do not draw
#: proportionally more power).
BETA_RETX_W_PER_RPS = usec(40)

# ---------------------------------------------------------------------------
# host packet-processing capacity (§4.4: "an MTU of 9000 bytes ... to
# achieve the full 10 Gb/s line rate" — i.e. at 1500 B the hosts are
# pps-bound below line rate; Fig. 7's 1500-byte cluster finishes 50 GB in
# ~75-90 s => ~4.5-5.3 Gb/s)
# ---------------------------------------------------------------------------

#: minimum spacing between packets a host can sustain (CPU/DMA per-packet
#: cost). 1576 wire bytes / 2.35 us ~= 5.4 Gb/s at MTU 1500; MTU >= 3000
#: reaches line rate.
HOST_MIN_PACKET_GAP_S = usec(2.35)

# ---------------------------------------------------------------------------
# DRAM domain (RAPL exposes it separately from the package; the paper's
# §4.3 attributes part of the baseline's cost to "more frequent memory
# accesses", which land here)
# ---------------------------------------------------------------------------

#: DRAM idle/refresh power per package's memory, W
DRAM_IDLE_W = 3.0
#: W per Gb/s of payload moved through memory (copy + DMA traffic)
BETA_DRAM_W_PER_GBPS = 0.35
#: W per retransmission per second (requeued buffers are re-read)
BETA_DRAM_RETX_W_PER_RPS = usec(20)

# ---------------------------------------------------------------------------
# RAPL emulation (§3: Intel RAPL interface, Sandy-Bridge-era unit)
# ---------------------------------------------------------------------------

#: energy status unit: 2^-16 J ~= 15.26 uJ (MSR_RAPL_POWER_UNIT default)
RAPL_ENERGY_UNIT_J = 2.0**-16
#: the energy status register is 32 bits wide and wraps
RAPL_COUNTER_BITS = 32

# ---------------------------------------------------------------------------
# §4.2 cost extrapolation
# ---------------------------------------------------------------------------

#: "The energy to run a typical data center rack is on the order of
#: $10k/year" [51]
RACK_COST_USD_PER_YEAR = 10_000.0
#: "around 100k racks in a typical data center" [38]
RACKS_PER_DATACENTER = 100_000
