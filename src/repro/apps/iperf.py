"""iperf3-style bulk-transfer sessions.

The paper generates all traffic with ``iperf3 -n <bytes> [-b <rate>]``.
:class:`IperfSession` reproduces that: it wires a
:class:`~repro.tcp.sender.TcpSender` / :class:`~repro.tcp.receiver.TcpReceiver`
pair across a testbed, optionally pacing the *application* writes to hit
a target bitrate (iperf3's ``-b`` works at the application layer, above
TCP — which is how the paper caps one flow's throughput in Fig. 1), and
reports an :class:`IperfResult` with the fields the paper's analysis
uses: completion time, retransmissions, mean throughput.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import ExperimentError
from repro.net.host import Host
from repro.net.topology import Fabric, Testbed
from repro.sim.timer import PeriodicTimer
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.cc.registry import factory as cca_factory
from repro.units import BITS_PER_BYTE, usec

_flow_ids = itertools.count(1)

#: application write-pacing tick for rate-limited sessions
WRITE_INTERVAL_S = usec(200)

#: CCAs that negotiate ECN on the connection by default
ECN_ALGORITHMS = frozenset({"dctcp", "bbr2", "dcqcn"})


@dataclass
class IntervalReport:
    """One row of iperf3's ``-i`` interval output."""

    start_s: float
    end_s: float
    bytes_acked: int
    retransmissions: int
    cwnd_bytes: int

    @property
    def bandwidth_bps(self) -> float:
        """Goodput over the interval."""
        duration = self.end_s - self.start_s
        if duration <= 0:
            return 0.0
        return self.bytes_acked * BITS_PER_BYTE / duration


@dataclass
class IperfResult:
    """Summary of one completed transfer (iperf3's closing report)."""

    flow_id: int
    cca: str
    bytes_transferred: int
    start_time: float
    end_time: float
    retransmissions: int

    @property
    def duration_s(self) -> float:
        """Flow completion time ("Iperf Time" in the paper's Fig. 7)."""
        return self.end_time - self.start_time

    @property
    def mean_throughput_bps(self) -> float:
        """Goodput over the whole transfer."""
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_transferred * BITS_PER_BYTE / self.duration_s


class IperfSession:
    """One sender->receiver bulk transfer over a testbed.

    Parameters
    ----------
    total_bytes:
        Transfer size (``iperf3 -n``).
    cca:
        Congestion control algorithm name (``-C``).
    target_bitrate_bps:
        Application-level pacing (``-b``); None sends as fast as TCP allows.
    start_time:
        Virtual time at which the client begins writing; ``None`` leaves
        the session dormant until :meth:`begin` is called (used for
        completion-chained full-speed-then-idle schedules).
    ecn:
        Force ECN on/off; default enables it for the algorithms that use it.
    src_host / dst_host:
        Explicit endpoint hosts. Default to the testbed's dedicated
        sender/receiver pair; multi-switch fabrics (where any host pair
        may converse) pass both explicitly, in which case ``testbed``
        only supplies the simulator.
    """

    def __init__(
        self,
        testbed: Union[Testbed, Fabric],
        total_bytes: int,
        cca: str = "cubic",
        target_bitrate_bps: Optional[float] = None,
        start_time: Optional[float] = 0.0,
        ecn: Optional[bool] = None,
        flow_id: Optional[int] = None,
        cca_kwargs: Optional[dict] = None,
        report_interval_s: Optional[float] = None,
        src_host: Optional[Host] = None,
        dst_host: Optional[Host] = None,
    ):
        if total_bytes <= 0:
            raise ExperimentError(f"transfer size must be > 0, got {total_bytes}")
        if target_bitrate_bps is not None and target_bitrate_bps <= 0:
            raise ExperimentError(
                f"target bitrate must be > 0, got {target_bitrate_bps}"
            )
        if src_host is not None and dst_host is not None:
            src, dst = src_host, dst_host
        elif isinstance(testbed, Testbed):
            src = src_host if src_host is not None else testbed.sender
            dst = dst_host if dst_host is not None else testbed.receiver
        else:
            raise ExperimentError(
                f"{type(testbed).__name__} sessions must name both "
                f"src_host and dst_host"
            )
        self.testbed = testbed
        self.sim = testbed.sim
        self.total_bytes = total_bytes
        self.cca = cca
        self.target_bitrate_bps = target_bitrate_bps
        self.start_time = start_time
        self.flow_id = flow_id if flow_id is not None else next(_flow_ids)
        ecn_capable = ecn if ecn is not None else cca in ECN_ALGORITHMS

        self.receiver = TcpReceiver(
            self.sim,
            dst,
            self.flow_id,
            peer=src.name,
            expected_bytes=total_bytes,
        )
        rate_limited = target_bitrate_bps is not None
        self.sender = TcpSender(
            self.sim,
            src,
            self.flow_id,
            dst=dst.name,
            cca_factory=cca_factory(cca, **(cca_kwargs or {})),
            total_bytes=total_bytes,
            ecn_capable=ecn_capable,
        )
        if rate_limited:
            # iperf3 -b: the client writes in paced bursts; TCP below is
            # unconstrained. Stage the first burst at start time.
            self.sender.app_bytes = 0
            self._written = 0
            self._write_carry = 0.0
            self._writer = PeriodicTimer(self.sim, WRITE_INTERVAL_S, self._write_tick)
        else:
            self._writer = None
        #: iperf3 -i style interval rows, populated while running
        self.interval_reports: List[IntervalReport] = []
        self._reporter: Optional[PeriodicTimer] = None
        self._report_marker = (0.0, 0, 0)  # (time, delivered, retx)
        if report_interval_s is not None:
            if report_interval_s <= 0:
                raise ExperimentError(
                    f"report interval must be > 0, got {report_interval_s}"
                )
            self._reporter = PeriodicTimer(
                self.sim, report_interval_s, self._interval_tick
            )
        self._begun = False
        if start_time is not None:
            self.sim.schedule_at(start_time, self._start)

    # -- lifecycle ---------------------------------------------------------

    def begin(self) -> None:
        """Start a dormant session now (idempotent)."""
        self._start()

    def uncap(self) -> None:
        """Remove the application rate cap; remaining data is handed to
        TCP immediately (the flow then "uses the rest of the link")."""
        self.target_bitrate_bps = None
        if self._writer is not None:
            self._writer.stop()
            self._writer = None
            remaining = self.total_bytes - self._written
            if remaining > 0 and self._begun:
                self._written = self.total_bytes
                self.sender.write(remaining)
            elif remaining > 0:
                # Not begun yet: _start() will see no writer and the
                # sender already has the full payload staged.
                self._written = self.total_bytes
                self.sender.app_bytes = self.total_bytes

    def _start(self) -> None:
        if self._begun:
            return
        self._begun = True
        if self.start_time is None:
            self.start_time = self.sim.now
        if self._writer is not None:
            self._write_tick()
            self._writer.start()
        if self._reporter is not None:
            self._report_marker = (self.sim.now, 0, 0)
            self._reporter.start()
            self.sender.on_complete(lambda _t: self._finish_reports())
        self.sender.start()

    def _interval_tick(self) -> None:
        self._emit_interval()

    def _emit_interval(self) -> None:
        last_time, last_delivered, last_retx = self._report_marker
        now = self.sim.now
        delivered = self.sender.delivered_bytes
        retx = int(self.sender.counters.get("retransmits"))
        if now <= last_time:
            return
        self.interval_reports.append(
            IntervalReport(
                start_s=last_time,
                end_s=now,
                bytes_acked=delivered - last_delivered,
                retransmissions=retx - last_retx,
                cwnd_bytes=int(self.sender.cca.cwnd),
            )
        )
        self._report_marker = (now, delivered, retx)

    def _finish_reports(self) -> None:
        if self._reporter is not None:
            self._reporter.stop()
            self._emit_interval()  # the final partial interval

    def _write_tick(self) -> None:
        assert self.target_bitrate_bps is not None
        budget = self.target_bitrate_bps * WRITE_INTERVAL_S / BITS_PER_BYTE
        budget += self._write_carry
        chunk = int(budget)
        self._write_carry = budget - chunk
        chunk = min(chunk, self.total_bytes - self._written)
        if chunk > 0:
            self._written += chunk
            self.sender.write(chunk)
        if self._written >= self.total_bytes and self._writer is not None:
            self._writer.stop()

    # -- results -----------------------------------------------------------

    @property
    def complete(self) -> bool:
        """Whether the transfer is fully acknowledged."""
        return self.sender.complete

    def result(self) -> IperfResult:
        """The closing report (only valid once complete)."""
        if not self.complete:
            raise ExperimentError(
                f"flow {self.flow_id} not complete at t={self.sim.now:.6f}"
            )
        assert self.sender.completed_at is not None
        return IperfResult(
            flow_id=self.flow_id,
            cca=self.cca,
            bytes_transferred=self.total_bytes,
            start_time=self.start_time,
            end_time=self.sender.completed_at,
            retransmissions=int(self.sender.counters.get("retransmits")),
        )


def run_until_complete(
    testbed: Testbed,
    sessions: List[IperfSession],
    time_limit_s: float = 600.0,
) -> List[IperfResult]:
    """Drive the simulator until every session completes.

    Raises :class:`ExperimentError` if the time limit passes first (a
    stuck experiment should fail loudly, not return bogus energy).
    """
    sim = testbed.sim
    while not all(s.complete for s in sessions):
        if sim.now > time_limit_s:
            stuck = [s.flow_id for s in sessions if not s.complete]
            raise ExperimentError(
                f"flows {stuck} incomplete after {time_limit_s}s of virtual time"
            )
        if not sim.step():
            stuck = [s.flow_id for s in sessions if not s.complete]
            raise ExperimentError(f"event queue drained with flows {stuck} stuck")
    return [s.result() for s in sessions]
