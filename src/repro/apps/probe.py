"""Throughput probes: periodic goodput sampling for timeseries figures.

Fig. 3 plots per-flow throughput over time. A :class:`ThroughputProbe`
samples a flow's byte counter on a fixed interval and records
instantaneous goodput, the simulation analogue of iperf3's interval
reports.

Two vantage points are supported: the sender's cumulative-ACK counter
(bursty: a filled hole releases many bytes at once) and the receiver's
arrival counter (smooth; what iperf3's server-side report shows). The
figures use the receiver view.

Samples flow through the shared :class:`~repro.sim.probe.ProbeSink`
protocol: each probe keeps its own :class:`TimeSeriesProbeSink`
collector (backing the :attr:`ThroughputProbe.series` view the figures
read) and mirrors every sample to ``sim.probe_sink`` so traced runs get
the same series in their telemetry files for free.
"""

from __future__ import annotations

from typing import Callable, Union

from repro.sim.engine import Simulator
from repro.sim.probe import THROUGHPUT_CHANNEL, TimeSeriesProbeSink
from repro.sim.timer import PeriodicTimer
from repro.sim.trace import TimeSeries
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.units import BITS_PER_BYTE, msec

Endpoint = Union[TcpSender, TcpReceiver]


def _byte_counter(endpoint: Endpoint) -> Callable[[], int]:
    if isinstance(endpoint, TcpSender):
        return lambda: endpoint.delivered_bytes
    return lambda: endpoint.bytes_received


class ThroughputProbe:
    """Samples one flow's goodput every ``interval_s`` seconds."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        interval_s: float = msec(1.0),
        name: str = "",
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.interval_s = interval_s
        self._read = _byte_counter(endpoint)
        self.entity = name or f"flow-{endpoint.flow_id}"
        self._collector = TimeSeriesProbeSink()
        self._last_bytes = 0
        self._timer = PeriodicTimer(sim, interval_s, self._sample)

    @property
    def series(self) -> TimeSeries:
        """The goodput samples collected so far (bps over virtual time)."""
        return self._collector.series(THROUGHPUT_CHANNEL, self.entity)

    def start(self) -> None:
        """Begin sampling (first sample after one interval)."""
        self._last_bytes = self._read()
        self._timer.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    def _sample(self) -> None:
        current = self._read()
        delta = current - self._last_bytes
        self._last_bytes = current
        throughput_bps = delta * BITS_PER_BYTE / self.interval_s
        now = self.sim.now
        self._collector.sample(now, THROUGHPUT_CHANNEL, self.entity, throughput_bps)
        sink = self.sim.probe_sink
        if sink.enabled:
            sink.sample(now, THROUGHPUT_CHANNEL, self.entity, throughput_bps)
