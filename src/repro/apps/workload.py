"""Production-datacenter workload generation.

§5: the paper's lab results need validation "with the sorts of workloads
used in production data centers". This module provides the two flow-size
distributions the datacenter transport literature standardized on (both
published with the DCTCP/pFabric measurement studies) plus Poisson flow
arrivals, so energy experiments can run against realistic traffic:

* **web-search** (DCTCP, Alizadeh et al. 2010): mice-heavy query traffic
  with a heavy tail to ~30 MB;
* **data-mining** (VL2/pFabric): extremely heavy-tailed — most flows
  under 10 KB, most *bytes* in multi-MB flows.

Sizes are expressed at simulation scale (bytes); the empirical CDFs are
the published ones with the tails capped at the simulator-friendly sizes
noted per distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.errors import ExperimentError
from repro.sim.rng import RngRegistry
from repro.units import gbps

if TYPE_CHECKING:
    import random

#: (size_bytes, cumulative probability) knots — web search (DCTCP Fig. 4)
WEB_SEARCH_CDF: Sequence[Tuple[int, float]] = (
    (6_000, 0.15),
    (13_000, 0.30),
    (19_000, 0.40),
    (33_000, 0.53),
    (53_000, 0.60),
    (133_000, 0.70),
    (667_000, 0.80),
    (1_333_000, 0.90),
    (3_333_000, 0.95),
    (6_667_000, 0.98),
    (20_000_000, 1.00),
)

#: data mining (VL2 / pFabric): most flows tiny, most bytes huge
DATA_MINING_CDF: Sequence[Tuple[int, float]] = (
    (180, 0.10),
    (1_000, 0.40),
    (10_000, 0.70),
    (100_000, 0.80),
    (1_000_000, 0.90),
    (10_000_000, 0.96),
    (30_000_000, 1.00),
)

#: RPC request/response traffic (memcached/Thrift-style): overwhelmingly
#: small messages, capped at 16 KB
RPC_CDF: Sequence[Tuple[int, float]] = (
    (64, 0.05),
    (256, 0.30),
    (512, 0.50),
    (1_000, 0.70),
    (2_000, 0.85),
    (4_000, 0.95),
    (16_000, 1.00),
)

#: elephant/background transfers (storage replication, shuffles): every
#: flow is at least 1 MB, capped at 10 MB to stay simulator-friendly
ELEPHANT_CDF: Sequence[Tuple[int, float]] = (
    (1_000_000, 0.25),
    (2_000_000, 0.55),
    (4_000_000, 0.85),
    (10_000_000, 1.00),
)

DISTRIBUTIONS = {
    "web-search": WEB_SEARCH_CDF,
    "data-mining": DATA_MINING_CDF,
    "rpc": RPC_CDF,
    "elephant": ELEPHANT_CDF,
}

#: named traffic mixes for fabric workloads: (flow class, weight) pairs
#: over DISTRIBUTIONS entries. Weights are normalized at sampling time.
MIXES = {
    "datacenter": (("rpc", 0.60), ("web-search", 0.35), ("elephant", 0.05)),
    "rpc-heavy": (("rpc", 0.90), ("web-search", 0.09), ("elephant", 0.01)),
    "web-search": (("web-search", 1.0),),
    "data-mining": (("data-mining", 1.0),),
    "rpc": (("rpc", 1.0),),
    "elephant": (("elephant", 1.0),),
}


def mix_components(mix: str) -> Sequence[Tuple[str, float]]:
    """The (flow class, weight) components of a named mix."""
    if mix not in MIXES:
        raise ExperimentError(
            f"unknown traffic mix {mix!r}; known: {sorted(MIXES)}"
        )
    return MIXES[mix]


def mean_mix_flow_size(mix: str, seed: int = 0) -> float:
    """Weight-averaged mean flow size of a mix (sizes arrival rates)."""
    components = mix_components(mix)
    total_weight = sum(weight for _cls, weight in components)
    return (
        sum(
            weight * mean_flow_size(DISTRIBUTIONS[cls], seed=seed)
            for cls, weight in components
        )
        / total_weight
    )


def sample_flow_size(
    cdf: Sequence[Tuple[int, float]], rng: random.Random
) -> int:
    """Draw one flow size from an empirical CDF (log-linear interpolation
    between knots, the standard treatment for these heavy tails)."""
    u = rng.random()
    prev_size, prev_p = 1, 0.0
    for size, p in cdf:
        if u <= p:
            if p == prev_p:
                return size
            frac = (u - prev_p) / (p - prev_p)
            log_size = (
                math.log(prev_size)
                + frac * (math.log(size) - math.log(prev_size))
            )
            return max(1, int(math.exp(log_size)))
        prev_size, prev_p = size, p
    return cdf[-1][0]


def mean_flow_size(cdf: Sequence[Tuple[int, float]], samples: int = 20_000,
                   seed: int = 0) -> float:
    """Monte-Carlo mean of the distribution (used to size arrival rates)."""
    rng = RngRegistry(seed).stream("flow-size-mean")
    return sum(sample_flow_size(cdf, rng) for _ in range(samples)) / samples


@dataclass
class FlowArrival:
    """One generated flow."""

    start_time_s: float
    size_bytes: int


@dataclass
class Workload:
    """A generated open-loop workload."""

    name: str
    flows: List[FlowArrival]
    target_load: float
    capacity_bps: float

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.flows)

    @property
    def span_s(self) -> float:
        return max(f.start_time_s for f in self.flows) if self.flows else 0.0

    @property
    def offered_load(self) -> float:
        """Actual offered load over the generation window."""
        if self.span_s <= 0:
            return 0.0
        return self.total_bytes * 8.0 / self.span_s / self.capacity_bps


def generate_workload(
    distribution: str = "web-search",
    target_load: float = 0.5,
    capacity_bps: float = gbps(10.0),
    duration_s: float = 0.05,
    seed: int = 0,
    max_flows: int = 2000,
) -> Workload:
    """Poisson arrivals at the rate that offers ``target_load`` of the
    bottleneck, with sizes drawn from the named distribution."""
    if distribution not in DISTRIBUTIONS:
        raise ExperimentError(
            f"unknown distribution {distribution!r}; "
            f"known: {sorted(DISTRIBUTIONS)}"
        )
    if not 0.0 < target_load < 1.0:
        raise ExperimentError(f"load must be in (0, 1), got {target_load}")
    cdf = DISTRIBUTIONS[distribution]
    rng = RngRegistry(seed).stream("workload-arrivals")
    mean_size = mean_flow_size(cdf, seed=seed)
    arrival_rate = target_load * capacity_bps / (mean_size * 8.0)
    flows: List[FlowArrival] = []
    clock = 0.0
    while clock < duration_s and len(flows) < max_flows:
        clock += rng.expovariate(arrival_rate)
        if clock >= duration_s:
            break
        flows.append(
            FlowArrival(
                start_time_s=clock,
                size_bytes=sample_flow_size(cdf, rng),
            )
        )
    if not flows:
        raise ExperimentError(
            "generated an empty workload; increase duration or load"
        )
    return Workload(
        name=distribution,
        flows=flows,
        target_load=target_load,
        capacity_bps=capacity_bps,
    )


# -- fabric workloads (multi-rack traffic matrices) -------------------


@dataclass
class FabricFlow:
    """One generated fabric flow: size plus placement.

    ``incast_group`` is ``-1`` for ordinary point-to-point flows; flows
    sharing a non-negative group id are the synchronized senders of one
    incast fan-in (same destination, same start time — the partition/
    aggregate pattern FairQ and the DCTCP study both highlight).
    """

    start_time_s: float
    size_bytes: int
    src: str
    dst: str
    flow_class: str
    incast_group: int = -1


@dataclass
class FabricWorkload:
    """A generated fabric-wide open-loop workload."""

    mix: str
    flows: List[FabricFlow]
    target_load: float
    #: aggregate host-uplink capacity the load target is expressed against
    capacity_bps: float
    rack_of: "dict[str, int]"

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.flows)

    @property
    def span_s(self) -> float:
        return max(f.start_time_s for f in self.flows) if self.flows else 0.0

    @property
    def offered_load(self) -> float:
        """Offered fraction of the aggregate host-uplink capacity."""
        if self.span_s <= 0:
            return 0.0
        return self.total_bytes * 8.0 / self.span_s / self.capacity_bps

    @property
    def incast_groups(self) -> int:
        return len({f.incast_group for f in self.flows if f.incast_group >= 0})

    @property
    def cross_rack_fraction(self) -> float:
        if not self.flows:
            return 0.0
        cross = sum(
            1 for f in self.flows if self.rack_of[f.src] != self.rack_of[f.dst]
        )
        return cross / len(self.flows)

    def class_counts(self) -> "dict[str, int]":
        counts: "dict[str, int]" = {}
        for f in self.flows:
            counts[f.flow_class] = counts.get(f.flow_class, 0) + 1
        return counts


def _pick_weighted(
    components: Sequence[Tuple[str, float]], rng: random.Random
) -> str:
    total = sum(weight for _cls, weight in components)
    u = rng.random() * total
    acc = 0.0
    for cls, weight in components:
        acc += weight
        if u <= acc:
            return cls
    return components[-1][0]


def generate_fabric_workload(
    hosts: Sequence[str],
    rack_of: "dict[str, int]",
    mix: str = "datacenter",
    n_flows: int = 1000,
    target_load: float = 0.3,
    host_capacity_bps: float = gbps(10.0),
    rack_local_fraction: float = 0.3,
    incast_fraction: float = 0.05,
    incast_fan_in: int = 8,
    seed: int = 0,
) -> FabricWorkload:
    """Generate exactly ``n_flows`` flows over a fabric's hosts.

    Arrivals are Poisson at the rate that offers ``target_load`` of the
    aggregate host-uplink capacity given the mix's mean flow size.
    Placement draws a source uniformly, then keeps the destination in
    the source's rack with probability ``rack_local_fraction`` (VL2's
    measured matrices are rack-skewed, not uniform). A
    ``incast_fraction`` share of arrival events instead fan
    ``incast_fan_in`` rack-external senders into one destination
    simultaneously — each sender counts toward ``n_flows``.

    All randomness flows through four named :class:`RngRegistry`
    streams ("fabric-arrivals", "fabric-size", "fabric-placement",
    "fabric-incast"), so identical arguments yield byte-identical
    workloads on any platform.
    """
    if len(hosts) < 2:
        raise ExperimentError(f"need >= 2 hosts, got {len(hosts)}")
    if n_flows < 1:
        raise ExperimentError(f"need >= 1 flow, got {n_flows}")
    if not 0.0 < target_load < 1.0:
        raise ExperimentError(f"load must be in (0, 1), got {target_load}")
    if not 0.0 <= rack_local_fraction <= 1.0:
        raise ExperimentError(
            f"rack-local fraction must be in [0, 1], got {rack_local_fraction}"
        )
    if not 0.0 <= incast_fraction <= 1.0:
        raise ExperimentError(
            f"incast fraction must be in [0, 1], got {incast_fraction}"
        )
    if incast_fan_in < 2:
        raise ExperimentError(f"incast fan-in must be >= 2, got {incast_fan_in}")
    for host in hosts:
        if host not in rack_of:
            raise ExperimentError(f"host {host!r} has no rack assignment")

    components = mix_components(mix)
    registry = RngRegistry(seed)
    arrivals_rng = registry.stream("fabric-arrivals")
    size_rng = registry.stream("fabric-size")
    placement_rng = registry.stream("fabric-placement")
    incast_rng = registry.stream("fabric-incast")

    hosts = list(hosts)
    racks: "dict[int, List[str]]" = {}
    for host in hosts:
        racks.setdefault(rack_of[host], []).append(host)

    mean_size = mean_mix_flow_size(mix, seed=seed)
    # an incast event injects fan_in flows at once; thin the event rate
    # so the *byte* rate still offers target_load
    flows_per_event = (
        1.0 - incast_fraction
    ) + incast_fraction * incast_fan_in
    arrival_rate = target_load * host_capacity_bps * len(hosts) / (
        mean_size * 8.0 * flows_per_event
    )

    def _sample_size() -> Tuple[str, int]:
        cls = _pick_weighted(components, size_rng)
        return cls, sample_flow_size(DISTRIBUTIONS[cls], size_rng)

    def _pick_dst(src: str) -> str:
        src_rack = rack_of[src]
        local_peers = [h for h in racks[src_rack] if h != src]
        if local_peers and placement_rng.random() < rack_local_fraction:
            return local_peers[placement_rng.randrange(len(local_peers))]
        remote = [h for h in hosts if rack_of[h] != src_rack]
        if not remote:  # single-rack fabric: everything is rack-local
            return local_peers[placement_rng.randrange(len(local_peers))]
        return remote[placement_rng.randrange(len(remote))]

    flows: List[FabricFlow] = []
    clock = 0.0
    incast_group = 0
    while len(flows) < n_flows:
        clock += arrivals_rng.expovariate(arrival_rate)
        if incast_rng.random() < incast_fraction:
            # one incast event: fan_in rack-external senders -> one dst
            dst = hosts[incast_rng.randrange(len(hosts))]
            candidates = [h for h in hosts if rack_of[h] != rack_of[dst]]
            if not candidates:
                candidates = [h for h in hosts if h != dst]
            fan_in = min(incast_fan_in, n_flows - len(flows), len(candidates))
            chosen = incast_rng.sample(candidates, fan_in)
            for src in chosen:
                _cls, size = _sample_size()
                flows.append(
                    FabricFlow(
                        start_time_s=clock,
                        size_bytes=size,
                        src=src,
                        dst=dst,
                        flow_class="incast",
                        incast_group=incast_group,
                    )
                )
            incast_group += 1
            continue
        src = hosts[placement_rng.randrange(len(hosts))]
        cls, size = _sample_size()
        flows.append(
            FabricFlow(
                start_time_s=clock,
                size_bytes=size,
                src=src,
                dst=_pick_dst(src),
                flow_class=cls,
            )
        )

    return FabricWorkload(
        mix=mix,
        flows=flows,
        target_load=target_load,
        capacity_bps=host_capacity_bps * len(hosts),
        rack_of=dict(rack_of),
    )
