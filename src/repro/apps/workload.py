"""Production-datacenter workload generation.

§5: the paper's lab results need validation "with the sorts of workloads
used in production data centers". This module provides the two flow-size
distributions the datacenter transport literature standardized on (both
published with the DCTCP/pFabric measurement studies) plus Poisson flow
arrivals, so energy experiments can run against realistic traffic:

* **web-search** (DCTCP, Alizadeh et al. 2010): mice-heavy query traffic
  with a heavy tail to ~30 MB;
* **data-mining** (VL2/pFabric): extremely heavy-tailed — most flows
  under 10 KB, most *bytes* in multi-MB flows.

Sizes are expressed at simulation scale (bytes); the empirical CDFs are
the published ones with the tails capped at the simulator-friendly sizes
noted per distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.errors import ExperimentError
from repro.sim.rng import RngRegistry
from repro.units import gbps

if TYPE_CHECKING:
    import random

#: (size_bytes, cumulative probability) knots — web search (DCTCP Fig. 4)
WEB_SEARCH_CDF: Sequence[Tuple[int, float]] = (
    (6_000, 0.15),
    (13_000, 0.30),
    (19_000, 0.40),
    (33_000, 0.53),
    (53_000, 0.60),
    (133_000, 0.70),
    (667_000, 0.80),
    (1_333_000, 0.90),
    (3_333_000, 0.95),
    (6_667_000, 0.98),
    (20_000_000, 1.00),
)

#: data mining (VL2 / pFabric): most flows tiny, most bytes huge
DATA_MINING_CDF: Sequence[Tuple[int, float]] = (
    (180, 0.10),
    (1_000, 0.40),
    (10_000, 0.70),
    (100_000, 0.80),
    (1_000_000, 0.90),
    (10_000_000, 0.96),
    (30_000_000, 1.00),
)

DISTRIBUTIONS = {
    "web-search": WEB_SEARCH_CDF,
    "data-mining": DATA_MINING_CDF,
}


def sample_flow_size(
    cdf: Sequence[Tuple[int, float]], rng: random.Random
) -> int:
    """Draw one flow size from an empirical CDF (log-linear interpolation
    between knots, the standard treatment for these heavy tails)."""
    u = rng.random()
    prev_size, prev_p = 1, 0.0
    for size, p in cdf:
        if u <= p:
            if p == prev_p:
                return size
            frac = (u - prev_p) / (p - prev_p)
            log_size = (
                math.log(prev_size)
                + frac * (math.log(size) - math.log(prev_size))
            )
            return max(1, int(math.exp(log_size)))
        prev_size, prev_p = size, p
    return cdf[-1][0]


def mean_flow_size(cdf: Sequence[Tuple[int, float]], samples: int = 20_000,
                   seed: int = 0) -> float:
    """Monte-Carlo mean of the distribution (used to size arrival rates)."""
    rng = RngRegistry(seed).stream("flow-size-mean")
    return sum(sample_flow_size(cdf, rng) for _ in range(samples)) / samples


@dataclass
class FlowArrival:
    """One generated flow."""

    start_time_s: float
    size_bytes: int


@dataclass
class Workload:
    """A generated open-loop workload."""

    name: str
    flows: List[FlowArrival]
    target_load: float
    capacity_bps: float

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.flows)

    @property
    def span_s(self) -> float:
        return max(f.start_time_s for f in self.flows) if self.flows else 0.0

    @property
    def offered_load(self) -> float:
        """Actual offered load over the generation window."""
        if self.span_s <= 0:
            return 0.0
        return self.total_bytes * 8.0 / self.span_s / self.capacity_bps


def generate_workload(
    distribution: str = "web-search",
    target_load: float = 0.5,
    capacity_bps: float = gbps(10.0),
    duration_s: float = 0.05,
    seed: int = 0,
    max_flows: int = 2000,
) -> Workload:
    """Poisson arrivals at the rate that offers ``target_load`` of the
    bottleneck, with sizes drawn from the named distribution."""
    if distribution not in DISTRIBUTIONS:
        raise ExperimentError(
            f"unknown distribution {distribution!r}; "
            f"known: {sorted(DISTRIBUTIONS)}"
        )
    if not 0.0 < target_load < 1.0:
        raise ExperimentError(f"load must be in (0, 1), got {target_load}")
    cdf = DISTRIBUTIONS[distribution]
    rng = RngRegistry(seed).stream("workload-arrivals")
    mean_size = mean_flow_size(cdf, seed=seed)
    arrival_rate = target_load * capacity_bps / (mean_size * 8.0)
    flows: List[FlowArrival] = []
    clock = 0.0
    while clock < duration_s and len(flows) < max_flows:
        clock += rng.expovariate(arrival_rate)
        if clock >= duration_s:
            break
        flows.append(
            FlowArrival(
                start_time_s=clock,
                size_bytes=sample_flow_size(cdf, rng),
            )
        )
    if not flows:
        raise ExperimentError(
            "generated an empty workload; increase duration or load"
        )
    return Workload(
        name=distribution,
        flows=flows,
        target_load=target_load,
        capacity_bps=capacity_bps,
    )
