"""Traffic applications: iperf3-style sessions and throughput probes."""

from __future__ import annotations

from repro.apps.iperf import (
    ECN_ALGORITHMS,
    IntervalReport,
    IperfResult,
    IperfSession,
    run_until_complete,
)
from repro.apps.probe import ThroughputProbe
from repro.apps.workload import (
    DATA_MINING_CDF,
    ELEPHANT_CDF,
    MIXES,
    RPC_CDF,
    WEB_SEARCH_CDF,
    FabricFlow,
    FabricWorkload,
    FlowArrival,
    Workload,
    generate_fabric_workload,
    generate_workload,
    mean_mix_flow_size,
    mix_components,
    sample_flow_size,
)

__all__ = [
    "IperfSession",
    "IperfResult",
    "IntervalReport",
    "run_until_complete",
    "ThroughputProbe",
    "ECN_ALGORITHMS",
    "Workload",
    "FlowArrival",
    "generate_workload",
    "sample_flow_size",
    "WEB_SEARCH_CDF",
    "DATA_MINING_CDF",
    "RPC_CDF",
    "ELEPHANT_CDF",
    "MIXES",
    "mix_components",
    "mean_mix_flow_size",
    "FabricFlow",
    "FabricWorkload",
    "generate_fabric_workload",
]
