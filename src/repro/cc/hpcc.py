"""HPCC (Li et al., SIGCOMM 2019) — INT-driven high-precision CC.

Named in the paper's §5 as a production algorithm worth evaluating. HPCC
uses in-band network telemetry stamped by the switches (queue length,
cumulative transmitted bytes, timestamp, link rate) to compute each
link's *utilization*

    U = qlen / (B * T)  +  txRate / B

where B is the link bandwidth, T the base RTT and txRate is estimated
from consecutive INT samples. The window tracks a reference ``w_c``
scaled by how far U sits from the target eta (0.95):

    W = w_c / (U / eta) + w_ai

with ``w_c`` resynchronized to W once per RTT. Requires INT on the
bottleneck (``TestbedConfig(int_telemetry=True)``); without telemetry
it holds its window, making the dependency loud rather than silently
degrading.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import AckEvent, CongestionControl
from repro.units import BITS_PER_BYTE, usec

#: target utilization eta
HPCC_ETA = 0.95
#: additive increase, segments (keeps flows from starving at U ~ eta)
HPCC_WAI_SEGMENTS = 0.5
#: base RTT assumed by the utilization formula (the testbed's)
HPCC_BASE_RTT_S = usec(40)
#: bound on the per-ACK multiplicative adjustment
HPCC_MAX_STEP = 4.0


class Hpcc(CongestionControl):
    """HPCC: high-precision CC from in-band telemetry."""

    name = "hpcc"
    #: per-ACK INT parsing + utilization arithmetic (HPCC's host cost is
    #: higher than AIMD but the precision removes retransmission work)
    ack_cost_units = 1.28

    def __init__(self, ctx):
        super().__init__(ctx)
        self.w_c = float(self.cwnd)
        self._last_sync: Optional[float] = None
        self._prev_tx_bytes: Optional[float] = None
        self._prev_ts: Optional[float] = None
        self.last_utilization: Optional[float] = None

    # -- telemetry ----------------------------------------------------

    def _utilization(self, event: AckEvent) -> Optional[float]:
        """U for the bottleneck from this ACK's echoed INT record."""
        if (
            event.int_qlen_bytes is None
            or event.int_tx_bytes is None
            or event.int_timestamp is None
            or event.int_link_rate_bps is None
        ):
            return None
        bandwidth = event.int_link_rate_bps
        base_rtt = self.ctx.min_rtt or HPCC_BASE_RTT_S
        u_queue = (
            event.int_qlen_bytes * BITS_PER_BYTE / (bandwidth * base_rtt)
        )
        u_rate = 0.0
        if self._prev_tx_bytes is not None and self._prev_ts is not None:
            dt = event.int_timestamp - self._prev_ts
            if dt > 0:
                tx_rate = (
                    (event.int_tx_bytes - self._prev_tx_bytes)
                    * BITS_PER_BYTE
                    / dt
                )
                u_rate = tx_rate / bandwidth
        self._prev_tx_bytes = event.int_tx_bytes
        self._prev_ts = event.int_timestamp
        return u_queue + u_rate

    # -- CCA interface ---------------------------------------------------

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        utilization = self._utilization(event)
        if utilization is None:
            return  # no INT on this path: hold the window, loudly simple
        self.last_utilization = utilization
        ratio = max(utilization / HPCC_ETA, 1.0 / HPCC_MAX_STEP)
        ratio = min(ratio, HPCC_MAX_STEP)
        target = self.w_c / ratio + HPCC_WAI_SEGMENTS * self.ctx.mss
        self.cwnd = max(self.min_cwnd, int(target))
        self._clamp()
        # Resynchronize the reference window once per RTT.
        rtt = self.ctx.srtt or self.ctx.min_rtt or HPCC_BASE_RTT_S
        if self._last_sync is None or self.ctx.now - self._last_sync >= rtt:
            self._last_sync = self.ctx.now
            self.w_c = float(self.cwnd)

    def on_congestion_event(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        self.w_c = max(float(self.min_cwnd), self.w_c / 2.0)
        self.cwnd = max(self.min_cwnd, int(self.w_c))

    def pacing_rate_bps(self) -> Optional[float]:
        """Pace at W / base-RTT, per the HPCC paper."""
        rtt = self.ctx.min_rtt or HPCC_BASE_RTT_S
        return self.cwnd * BITS_PER_BYTE / rtt
