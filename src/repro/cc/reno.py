"""TCP Reno (RFC 5681).

Classic AIMD: slow start to ssthresh, then one MSS of cwnd growth per
RTT, halving on loss. The base class already implements exactly this —
Reno is the reference behaviour every other loss-based CCA perturbs —
so this subclass only pins the name and the calibrated per-ACK cost.
"""

from __future__ import annotations

from repro.cc.base import CongestionControl


class Reno(CongestionControl):  # simlint: ignore[cca-override-on-ack] -- the base-class AIMD *is* Reno
    """RFC 5681 NewReno-style AIMD congestion control."""

    name = "reno"
    #: Reno's cong_avoid is a handful of integer ops — the 1.0 reference.
    ack_cost_units = 1.10
