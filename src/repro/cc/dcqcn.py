"""DCQCN (Zhu et al., SIGCOMM 2015) — the RoCE deployments' rate-based CCA.

Named in the paper's §5 as a production algorithm worth evaluating.
DCQCN is rate-based: the sender maintains a current rate RC and a target
rate RT, reacts to ECN congestion notifications (CNPs) and recovers in
the QCN-style stages:

* on CNP:  RT <- RC;  RC <- RC * (1 - alpha/2);  alpha <- (1-g)alpha + g
* no CNP for an update period: alpha decays, and RC climbs back toward
  RT (fast recovery: RC <- (RT + RC)/2), with RT growing additively
  after enough quiet periods.

The simulated variant paces at RC and keeps cwnd permissive (rate-based
protocols don't window-limit), reacting to the ECN-echo feedback our
receiver already provides; the NIC-offloaded nature of real DCQCN is
reflected in a low per-ACK CPU cost.
"""

from __future__ import annotations

from repro.cc.base import AckEvent, CongestionControl
from repro.units import gbps, mbps, to_gbps, usec

#: alpha gain (DCQCN g)
DCQCN_G = 1.0 / 16.0
#: additive increase of the target rate, bits/s per update period
DCQCN_RAI_BPS = mbps(400)
#: update period: alpha decay / rate increase cadence, seconds
DCQCN_UPDATE_PERIOD_S = usec(100)
#: minimum sending rate
DCQCN_MIN_RATE_BPS = mbps(100)
#: line rate the sender starts at (RoCE NICs start at full rate)
DCQCN_START_RATE_BPS = gbps(10)


class Dcqcn(CongestionControl):
    """DCQCN: ECN-driven rate-based congestion control."""

    name = "dcqcn"
    #: rate updates run on the NIC in real deployments; host CPU sees
    #: little per-ACK work
    ack_cost_units = 0.90
    reacts_per_ack_to_ecn = True

    def __init__(self, ctx):
        super().__init__(ctx)
        self.alpha = 1.0
        self.rc_bps = DCQCN_START_RATE_BPS
        self.rt_bps = DCQCN_START_RATE_BPS
        self._last_cnp = -1.0
        self._last_update = 0.0
        self._quiet_periods = 0
        # rate-based: keep the window permissive, the pacer does the work
        self.cwnd = 400 * ctx.mss
        self.ssthresh = float("inf")

    def _cnp(self) -> None:
        """React to one congestion notification (rate cut)."""
        self.rt_bps = self.rc_bps
        self.rc_bps = max(
            DCQCN_MIN_RATE_BPS, self.rc_bps * (1.0 - self.alpha / 2.0)
        )
        self.alpha = (1.0 - DCQCN_G) * self.alpha + DCQCN_G
        self._quiet_periods = 0

    def _periodic_update(self) -> None:
        """Alpha decay + staged rate recovery, once per update period."""
        now = self.ctx.now
        if now - self._last_update < DCQCN_UPDATE_PERIOD_S:
            return
        self._last_update = now
        self.alpha *= 1.0 - DCQCN_G
        self._quiet_periods += 1
        # Fast recovery toward RT; after 5 quiet periods, additive
        # increase of the target (the QCN "active increase" stage).
        if self._quiet_periods > 5:
            self.rt_bps += DCQCN_RAI_BPS
        self.rc_bps = min((self.rt_bps + self.rc_bps) / 2.0, DCQCN_START_RATE_BPS)
        self.rt_bps = min(self.rt_bps, DCQCN_START_RATE_BPS)

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        # CNPs are rate-limited by the receiver; we rate-limit reactions
        # to one per update period, per the spec.
        if event.ecn_echo or event.ecn_marked_bytes > 0:
            if self.ctx.now - self._last_cnp >= DCQCN_UPDATE_PERIOD_S:
                self._last_cnp = self.ctx.now
                self._cnp()
        else:
            self._periodic_update()

    def on_ecn(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units * 0.25)
        # folded into on_ack's CNP handling

    def on_congestion_event(self, event: AckEvent) -> None:
        """RoCE fabrics are lossless; treat rare loss like a hard CNP."""
        self.ctx.charge(self.ack_cost_units)
        self._cnp()

    def on_rto(self) -> None:
        self.ctx.charge(self.ack_cost_units)
        self.rc_bps = max(DCQCN_MIN_RATE_BPS, self.rc_bps / 2.0)

    def on_recovery_exit(self) -> None:
        """Rate-based: the window is not the control variable."""

    def pacing_rate_bps(self) -> float:
        return self.rc_bps

    @property
    def current_rate_gbps(self) -> float:
        """RC in Gb/s (for tests and traces)."""
        return to_gbps(self.rc_bps)
