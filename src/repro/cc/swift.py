"""Swift (Kumar et al., SIGCOMM 2020) — Google's production delay-based CCA.

The paper's §5 names Swift as a production algorithm it could not
evaluate for lack of a public implementation; this module provides a
mechanistically faithful one so the energy benchmark the paper calls
for can include it.

Swift keeps the end-to-end delay near a *target*:

    target = base_target + fs_range * clamp((1/sqrt(w) - 1/sqrt(fs_max_w))
                                            / (1/sqrt(fs_min_w) - 1/sqrt(fs_max_w)))

(flow scaling: small windows tolerate more delay). Per ACK:

* delay < target  → additive increase ``ai`` per RTT,
* delay >= target → multiplicative decrease proportional to the excess,
  bounded by ``max_mdf`` and applied at most once per RTT.

On loss Swift halves like Reno (simplified from the paper's
retransmit-timeout handling).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cc.base import AckEvent, CongestionControl
from repro.units import usec

#: fabric base target delay, seconds (Swift uses ~25-50 us fabrics; our
#: testbed's base RTT is 40 us)
SWIFT_BASE_TARGET_S = usec(70)
#: flow-scaling range added to the target for small windows
SWIFT_FS_RANGE_S = usec(60)
SWIFT_FS_MIN_W = 0.1   # segments
SWIFT_FS_MAX_W = 400.0
#: additive increase, segments per RTT
SWIFT_AI = 1.0
#: maximum multiplicative decrease factor per RTT
SWIFT_MAX_MDF = 0.5
#: decrease gain (beta in the paper)
SWIFT_BETA = 0.8


class Swift(CongestionControl):
    """Swift: target-delay congestion control."""

    name = "swift"
    #: per-ACK delay arithmetic incl. two square roots (flow scaling)
    ack_cost_units = 1.18

    def __init__(self, ctx):
        super().__init__(ctx)
        self._last_decrease: Optional[float] = None

    def target_delay(self) -> float:
        """Current target delay, including flow scaling."""
        w = max(self.cwnd / self.ctx.mss, SWIFT_FS_MIN_W)
        inv_sqrt = 1.0 / math.sqrt(w)
        lo = 1.0 / math.sqrt(SWIFT_FS_MAX_W)
        hi = 1.0 / math.sqrt(SWIFT_FS_MIN_W)
        fraction = min(1.0, max(0.0, (inv_sqrt - lo) / (hi - lo)))
        return SWIFT_BASE_TARGET_S + SWIFT_FS_RANGE_S * fraction

    def _can_decrease(self) -> bool:
        rtt = self.ctx.srtt or self.ctx.min_rtt or 0.0
        last = self._last_decrease
        return last is None or self.ctx.now - last >= rtt

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        delay = event.rtt_sample
        if delay is None:
            return
        mss = self.ctx.mss
        target = self.target_delay()
        if delay < target:
            # Additive increase: ai segments per RTT, spread per ACK.
            self.cwnd += int(
                SWIFT_AI * mss * event.newly_acked_bytes / max(self.cwnd, 1)
            ) or 1
        elif self._can_decrease():
            self._last_decrease = self.ctx.now
            excess = (delay - target) / delay
            factor = max(1.0 - SWIFT_BETA * excess, 1.0 - SWIFT_MAX_MDF)
            self.cwnd = int(self.cwnd * factor)
        self._clamp()

    def on_congestion_event(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        if self._can_decrease():
            self._last_decrease = self.ctx.now
            self.ssthresh = max(self.min_cwnd, self.cwnd * (1.0 - SWIFT_MAX_MDF))
            self.cwnd = self.ssthresh
        self._clamp()
