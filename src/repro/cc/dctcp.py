"""DCTCP (Alizadeh et al., SIGCOMM 2010).

Uses the *extent* of ECN marking, not its presence: each observation
window (one RTT's worth of ACKed data), estimate the marked fraction F
and smooth it,

    alpha <- (1 - g) * alpha + g * F,   g = 1/16

then on windows that saw marks, cut cwnd by ``alpha / 2``. Growth between
marks is plain Reno. Requires an ECN-marking bottleneck queue
(:class:`~repro.net.queue.EcnQueue`); without marks it degenerates to
Reno, exactly like the kernel module on a non-ECN path.
"""

from __future__ import annotations

from repro.cc.base import AckEvent, CongestionControl

#: DCTCP gain g (RFC 8257 recommends 1/16).
DCTCP_GAIN = 1.0 / 16.0


class Dctcp(CongestionControl):
    """DCTCP: proportional ECN-based window reduction."""

    name = "dctcp"
    #: Reno growth + per-ACK marked-byte accounting + EWMA per window
    ack_cost_units = 1.22
    #: the sender must deliver every ACK's ECN feedback, not once per RTT
    reacts_per_ack_to_ecn = True

    def __init__(self, ctx):
        super().__init__(ctx)
        self.alpha = 1.0  # start conservative, as RFC 8257 suggests
        self._acked_bytes = 0
        self._marked_bytes = 0
        self._window_end = 0.0
        self._saw_mark = False

    def _roll_window(self, event: AckEvent) -> None:
        """Close the observation window once per RTT."""
        now = self.ctx.now
        rtt = self.ctx.srtt or self.ctx.min_rtt
        if rtt is None:
            return
        if now < self._window_end:
            return
        if self._acked_bytes > 0:
            fraction = min(1.0, self._marked_bytes / self._acked_bytes)
            self.alpha = (1 - DCTCP_GAIN) * self.alpha + DCTCP_GAIN * fraction
            if self._saw_mark:
                self.cwnd = max(
                    self.min_cwnd, int(self.cwnd * (1.0 - self.alpha / 2.0))
                )
                self.ssthresh = self.cwnd
        self._acked_bytes = 0
        self._marked_bytes = 0
        self._saw_mark = False
        self._window_end = now + rtt

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        self._acked_bytes += event.newly_acked_bytes
        self._marked_bytes += event.ecn_marked_bytes
        if event.ecn_marked_bytes > 0 or event.ecn_echo:
            self._saw_mark = True
        self._roll_window(event)
        # Reno-style growth between reductions.
        remainder = event.newly_acked_bytes
        if self.in_slow_start:
            remainder = self.slow_start(remainder)
        if remainder > 0:
            self.cwnd += max(
                1, self.ctx.mss * remainder // max(self.cwnd, 1)
            )
        self._clamp()

    def on_ecn(self, event: AckEvent) -> None:
        """Per-ACK feedback is folded into the windowed estimator."""
        self.ctx.charge(self.ack_cost_units * 0.25)
        self._marked_bytes += 0  # accounting happens in on_ack
        self._saw_mark = True

    def on_congestion_event(self, event: AckEvent) -> None:
        # Actual packet loss: react like Reno (RFC 8257 §3.5).
        super().on_congestion_event(event)
