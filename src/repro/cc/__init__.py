"""Congestion control algorithms: the paper's evaluation set, pluggable."""

from __future__ import annotations

from repro.cc.base import AckEvent, CcContext, CongestionControl
from repro.cc.bbr import Bbr
from repro.cc.bbr2 import Bbr2
from repro.cc.constant import ConstantCwnd
from repro.cc.cubic import Cubic
from repro.cc.dcqcn import Dcqcn
from repro.cc.dctcp import Dctcp
from repro.cc.filters import WindowedFilter
from repro.cc.highspeed import HighSpeed
from repro.cc.hpcc import Hpcc
from repro.cc.registry import (
    PAPER_ALGORITHMS,
    PRODUCTION_ALGORITHMS,
    algorithm_names,
    create,
    factory,
    get_class,
    register,
)
from repro.cc.reno import Reno
from repro.cc.scalable import Scalable
from repro.cc.swift import Swift
from repro.cc.vegas import Vegas
from repro.cc.westwood import Westwood

__all__ = [
    "AckEvent",
    "CcContext",
    "CongestionControl",
    "Reno",
    "Cubic",
    "Dctcp",
    "Bbr",
    "Bbr2",
    "Vegas",
    "Scalable",
    "Westwood",
    "HighSpeed",
    "ConstantCwnd",
    "Swift",
    "Dcqcn",
    "Hpcc",
    "WindowedFilter",
    "PAPER_ALGORITHMS",
    "PRODUCTION_ALGORITHMS",
    "algorithm_names",
    "create",
    "factory",
    "get_class",
    "register",
]
