"""TCP Westwood+ (Gerla et al. 2001).

Reno-style growth, but on loss the window is set from an end-to-end
bandwidth estimate instead of blind halving:

    ssthresh = BWE * RTT_min / MSS

The bandwidth estimate is an EWMA over per-ACK delivery samples
(bytes ACKed / inter-ACK time), as in the Linux ``tcp_westwood``
implementation's "+" variant.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import AckEvent, CongestionControl
from repro.units import BITS_PER_BYTE

#: EWMA smoothing for the bandwidth filter (Westwood+ uses 7/8 old).
BWE_GAIN = 1.0 / 8.0


class Westwood(CongestionControl):
    """TCP Westwood+: bandwidth-estimate-driven loss response."""

    name = "westwood"
    #: Reno growth + bandwidth filter update per ACK
    ack_cost_units = 0.95

    def __init__(self, ctx):
        super().__init__(ctx)
        self._bwe_bps: Optional[float] = None
        self._last_ack_time: Optional[float] = None

    @property
    def bandwidth_estimate_bps(self) -> Optional[float]:
        """Current end-to-end bandwidth estimate."""
        return self._bwe_bps

    def _update_bwe(self, event: AckEvent) -> None:
        now = self.ctx.now
        if self._last_ack_time is not None:
            dt = now - self._last_ack_time
            if dt > 0 and event.newly_acked_bytes > 0:
                sample = event.newly_acked_bytes * BITS_PER_BYTE / dt
                if self._bwe_bps is None:
                    self._bwe_bps = sample
                else:
                    self._bwe_bps += BWE_GAIN * (sample - self._bwe_bps)
        self._last_ack_time = now

    def on_ack(self, event: AckEvent) -> None:
        self._update_bwe(event)
        super().on_ack(event)  # Reno growth + base charge

    def on_dupack(self, event: AckEvent) -> None:
        self._update_bwe(event)
        super().on_dupack(event)

    def _bandwidth_window(self) -> Optional[float]:
        if self._bwe_bps is None or self.ctx.min_rtt is None:
            return None
        return self._bwe_bps * self.ctx.min_rtt / BITS_PER_BYTE

    def on_congestion_event(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        window = self._bandwidth_window()
        if window is None:
            super().on_congestion_event(event)
            return
        self.ssthresh = max(self.min_cwnd, window)
        self.cwnd = self.ssthresh
        self._clamp()

    def on_rto(self) -> None:
        self.ctx.charge(self.ack_cost_units)
        window = self._bandwidth_window()
        if window is not None:
            self.ssthresh = max(self.min_cwnd, window)
        else:
            self.ssthresh = max(self.min_cwnd, self.cwnd / 2.0)
        self.cwnd = self.min_cwnd
        self._clamp()
