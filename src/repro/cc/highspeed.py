"""HighSpeed TCP (RFC 3649).

Makes the AIMD increase a(w) grow and the decrease b(w) shrink as the
window grows, so large-BDP flows recover in reasonable time. We use the
RFC's analytic form rather than the lookup table:

    for w > W_low:  b(w) = (B_high - 0.5) * (ln w - ln W_low)
                            / (ln W_high - ln W_low) + 0.5
                    a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w))
    with p(w) = 0.078 / w^1.2   (the HSTCP response function)

below ``W_low`` (38 segments) it is plain Reno.
"""

from __future__ import annotations

import math

from repro.cc.base import AckEvent, CongestionControl

#: RFC 3649 parameters.
HS_W_LOW = 38.0
HS_W_HIGH = 83000.0
HS_B_HIGH = 0.1


def hstcp_b(w_segments: float) -> float:
    """Decrease factor b(w) per RFC 3649 §5."""
    if w_segments <= HS_W_LOW:
        return 0.5
    frac = (math.log(w_segments) - math.log(HS_W_LOW)) / (
        math.log(HS_W_HIGH) - math.log(HS_W_LOW)
    )
    return (HS_B_HIGH - 0.5) * frac + 0.5


def hstcp_a(w_segments: float) -> float:
    """Increase (segments per RTT) a(w) per RFC 3649 §5."""
    if w_segments <= HS_W_LOW:
        return 1.0
    b = hstcp_b(w_segments)
    p = 0.078 / (w_segments**1.2)
    return max(1.0, (w_segments**2) * p * 2.0 * b / (2.0 - b))


class HighSpeed(CongestionControl):
    """RFC 3649 HighSpeed TCP."""

    name = "highspeed"
    #: log/pow evaluation per ACK (the kernel uses a 70-entry table,
    #: still more lookups + state than Reno)
    ack_cost_units = 1.00

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        remainder = event.newly_acked_bytes
        if self.in_slow_start:
            remainder = self.slow_start(remainder)
        if remainder > 0:
            mss = self.ctx.mss
            w = max(1.0, self.cwnd / mss)
            a = hstcp_a(w)
            # a(w) segments per RTT => a*mss*mss/cwnd bytes per ACKed MSS.
            self.cwnd += max(1, int(a * mss * remainder / max(self.cwnd, 1)))
        self._clamp()

    def on_congestion_event(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        w = max(1.0, self.cwnd / self.ctx.mss)
        b = hstcp_b(w)
        self.ssthresh = max(self.min_cwnd, self.cwnd * (1.0 - b))
        self.cwnd = self.ssthresh
        self._clamp()
