"""Windowed max/min filters used by BBR's model estimators."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class WindowedFilter:
    """Track the max (or min) of a stream over a sliding time window.

    Samples older than ``window`` seconds are evicted lazily on update
    and query. This is a simplified (deque-scan) version of the
    three-slot estimator in the Linux BBR code — fine at simulation ACK
    rates.
    """

    def __init__(self, window_s: float, mode: str = "max"):
        if window_s <= 0:
            raise ValueError(f"window must be > 0, got {window_s}")
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.window_s = window_s
        self.mode = mode
        self._samples: Deque[Tuple[float, float]] = deque()

    def _better(self, a: float, b: float) -> bool:
        return a >= b if self.mode == "max" else a <= b

    def update(self, now: float, value: float) -> None:
        """Insert a sample taken at virtual time ``now``."""
        # Remove samples the new one dominates (monotonic deque).
        samples = self._samples
        while samples and self._better(value, samples[-1][1]):
            samples.pop()
        samples.append((now, value))
        self._evict(now)

    def _evict(self, now: float) -> None:
        samples = self._samples
        while samples and now - samples[0][0] > self.window_s:
            samples.popleft()

    def get(self, now: Optional[float] = None) -> Optional[float]:
        """Current filtered value, or None if no recent samples."""
        if now is not None:
            self._evict(now)
        return self._samples[0][1] if self._samples else None

    def reset(self) -> None:
        """Drop all samples."""
        self._samples.clear()
