"""BBR v1 (Cardwell et al. 2017), simplified but state-machine-complete.

BBR builds an explicit model of the path — bottleneck bandwidth (max
filter over delivery-rate samples) and round-trip propagation delay (min
filter over RTT samples) — and paces at ``gain * bw`` while capping
inflight at ``cwnd_gain * BDP``:

* STARTUP: 2/ln(2) gains until measured bw stops growing (3 rounds
  without +25 %),
* DRAIN: inverse gain until inflight <= BDP,
* PROBE_BW: the 8-phase gain cycle [1.25, 0.75, 1, 1, 1, 1, 1, 1],
* PROBE_RTT: cwnd of 4 segments for 200 ms when min_rtt is stale (10 s).

v1 famously ignores packet loss — :meth:`on_congestion_event` leaves the
model untouched, which is faithful and matters for the paper's Fig. 8
(BBR sustains throughput through losses instead of stalling).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import AckEvent, CongestionControl
from repro.cc.filters import WindowedFilter
from repro.units import BITS_PER_BYTE, msec

#: RTT assumed before the first sample (also the bw-filter window floor)
FALLBACK_RTT_S = msec(1.0)

#: 2/ln(2), the STARTUP gain that doubles delivery rate each round.
STARTUP_GAIN = 2.885
#: PROBE_BW pacing-gain cycle.
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: cwnd gain outside STARTUP/PROBE_RTT.
CWND_GAIN = 2.0
#: bandwidth filter window (seconds of virtual time; ~10 datacenter RTTs
#: would be far too short to ride out PROBE_RTT, so BBR uses 10 rounds —
#: we approximate with a time window refreshed from srtt).
MIN_RTT_WINDOW_S = 10.0
PROBE_RTT_DURATION_S = 0.2


class Bbr(CongestionControl):
    """BBR v1 model-based congestion control."""

    name = "bbr"
    #: rate-sample bookkeeping + two filters + state machine per ACK
    ack_cost_units = 0.85

    #: subclass knobs (BBR2-alpha overrides these)
    startup_gain = STARTUP_GAIN
    pacing_margin = 1.0
    bw_window_rounds = 10

    def __init__(self, ctx):
        super().__init__(ctx)
        self.state = "STARTUP"
        self._bw_filter = WindowedFilter(window_s=1.0, mode="max")
        self._min_rtt: Optional[float] = None
        self._min_rtt_stamp = 0.0
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._probe_rtt_done_stamp: Optional[float] = None
        self._round_start_time = 0.0

    # -- model updates ------------------------------------------------

    def _update_model(self, event: AckEvent) -> None:
        now = self.ctx.now
        srtt = self.ctx.srtt or FALLBACK_RTT_S
        # Keep the bw window ~bw_window_rounds RTTs wide.
        self._bw_filter.window_s = max(self.bw_window_rounds * srtt, FALLBACK_RTT_S)
        if event.delivery_rate_bps is not None and not event.is_app_limited:
            self._bw_filter.update(now, event.delivery_rate_bps)
        if event.rtt_sample is not None and event.rtt_sample > 0:
            if (
                self._min_rtt is None
                or event.rtt_sample <= self._min_rtt
                or now - self._min_rtt_stamp > MIN_RTT_WINDOW_S
            ):
                self._min_rtt = event.rtt_sample
                self._min_rtt_stamp = now

    @property
    def bw_bps(self) -> float:
        """Modelled bottleneck bandwidth (bits/s)."""
        bw = self._bw_filter.get(self.ctx.now)
        if bw is None or bw <= 0:
            # Before any sample: derive from the initial window.
            rtt = self._min_rtt or self.ctx.min_rtt or FALLBACK_RTT_S
            return self.cwnd * BITS_PER_BYTE / rtt
        return bw

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product from the model."""
        rtt = self._min_rtt or self.ctx.min_rtt or FALLBACK_RTT_S
        return self.bw_bps * rtt / BITS_PER_BYTE

    # -- state machine --------------------------------------------------

    def _check_full_pipe(self) -> None:
        bw = self.bw_bps
        if bw >= self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        now = self.ctx.now
        srtt = self.ctx.srtt or FALLBACK_RTT_S
        if now - self._round_start_time >= srtt:
            self._round_start_time = now
            self._full_bw_count += 1

    def _advance_state(self, event: AckEvent) -> None:
        now = self.ctx.now
        if self.state == "STARTUP":
            self._check_full_pipe()
            if self._full_bw_count >= 3:
                self.state = "DRAIN"
        elif self.state == "DRAIN":
            if event.flight_bytes <= self.bdp_bytes:
                self._enter_probe_bw()
        elif self.state == "PROBE_BW":
            rtt = self._min_rtt or FALLBACK_RTT_S
            if now - self._cycle_stamp > rtt:
                self._cycle_stamp = now
                self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
            if (
                self._min_rtt is not None
                and now - self._min_rtt_stamp > MIN_RTT_WINDOW_S
            ):
                self.state = "PROBE_RTT"
                self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION_S
        elif self.state == "PROBE_RTT":
            assert self._probe_rtt_done_stamp is not None
            if now >= self._probe_rtt_done_stamp:
                self._min_rtt_stamp = now
                self._enter_probe_bw()

    def _enter_probe_bw(self) -> None:
        self.state = "PROBE_BW"
        self._cycle_index = 2  # start in a cruise phase, like the kernel
        self._cycle_stamp = self.ctx.now

    # -- gains ----------------------------------------------------------

    def _pacing_gain(self) -> float:
        if self.state == "STARTUP":
            return self.startup_gain
        if self.state == "DRAIN":
            return 1.0 / self.startup_gain
        if self.state == "PROBE_RTT":
            return 1.0
        return PROBE_BW_GAINS[self._cycle_index]

    def _cwnd_gain(self) -> float:
        if self.state == "STARTUP":
            return self.startup_gain
        return CWND_GAIN

    # -- CCA interface -----------------------------------------------------

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        self._update_model(event)
        self._advance_state(event)
        if self.state == "PROBE_RTT":
            self.cwnd = 4 * self.ctx.mss
        else:
            target = self._cwnd_gain() * self.bdp_bytes
            self.cwnd = max(self.min_cwnd, int(target))

    def on_congestion_event(self, event: AckEvent) -> None:
        # BBR v1 deliberately does not reduce on loss.
        self.ctx.charge(self.ack_cost_units * 0.5)

    def on_recovery_exit(self) -> None:
        """BBR restores its model-driven cwnd rather than ssthresh."""
        self.cwnd = max(self.min_cwnd, int(self._cwnd_gain() * self.bdp_bytes))

    def on_rto(self) -> None:
        self.ctx.charge(self.ack_cost_units)
        self.cwnd = self.min_cwnd

    def pacing_rate_bps(self) -> Optional[float]:
        return self._pacing_gain() * self.bw_bps * self.pacing_margin
