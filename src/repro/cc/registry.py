"""CCA registry: name -> class, mirroring the kernel's pluggable CC table.

The paper's experiment scripts select algorithms by their
``net.ipv4.tcp_congestion_control`` names; experiments here do the same
through :func:`create`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.cc.base import CongestionControl
from repro.cc.bbr import Bbr
from repro.cc.bbr2 import Bbr2
from repro.cc.constant import ConstantCwnd
from repro.cc.cubic import Cubic
from repro.cc.dcqcn import Dcqcn
from repro.cc.dctcp import Dctcp
from repro.cc.highspeed import HighSpeed
from repro.cc.hpcc import Hpcc
from repro.cc.reno import Reno
from repro.cc.scalable import Scalable
from repro.cc.swift import Swift
from repro.cc.vegas import Vegas
from repro.cc.westwood import Westwood
from repro.errors import ReproError

_REGISTRY: Dict[str, Type[CongestionControl]] = {}


def register(cls: Type[CongestionControl]) -> Type[CongestionControl]:
    """Add a CCA class to the registry under its ``name``."""
    if not cls.name or cls.name == "base":
        raise ReproError(f"{cls.__name__} has no usable registry name")
    if cls.name in _REGISTRY:
        raise ReproError(f"duplicate CCA name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (
    Reno,
    Cubic,
    Dctcp,
    Bbr,
    Bbr2,
    Vegas,
    Scalable,
    Westwood,
    HighSpeed,
    ConstantCwnd,
    Swift,
    Dcqcn,
    Hpcc,
):
    register(_cls)


def algorithm_names() -> List[str]:
    """All registered CCA names, sorted."""
    return sorted(_REGISTRY)


#: the paper's evaluation set, in Fig. 5's MTU-1500 energy order
PAPER_ALGORITHMS = (
    "bbr",
    "westwood",
    "highspeed",
    "scalable",
    "reno",
    "vegas",
    "dctcp",
    "cubic",
    "baseline",
    "bbr2",
)

#: the production algorithms the paper's §5 wished it could evaluate —
#: implemented here so its proposed standardized benchmark can include
#: them (hpcc requires TestbedConfig(int_telemetry=True))
PRODUCTION_ALGORITHMS = ("swift", "dcqcn", "hpcc")


def get_class(name: str) -> Type[CongestionControl]:
    """Look up a CCA class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown congestion control {name!r}; "
            f"known: {', '.join(algorithm_names())}"
        ) from None


def create(name: str, ctx, **kwargs) -> CongestionControl:
    """Instantiate a CCA by name for the given sender context."""
    return get_class(name)(ctx, **kwargs)


def factory(name: str, **kwargs) -> Callable:
    """A ``cca_factory`` suitable for :class:`~repro.tcp.sender.TcpSender`."""

    def make(ctx) -> CongestionControl:
        return get_class(name)(ctx, **kwargs)

    return make
