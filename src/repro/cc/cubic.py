"""CUBIC (RFC 8312), the Linux default.

Window growth is a cubic function of time since the last congestion
event, anchored at the pre-loss window ``w_max``:

    W(t) = C (t - K)^3 + w_max,   K = cbrt(w_max * beta / C)

with the standard constants C = 0.4 (segments/s^3) and beta = 0.7. The
TCP-friendly region ensures CUBIC never does worse than an equivalent
AIMD flow at low bandwidth-delay products.
"""

from __future__ import annotations

from repro.cc.base import AckEvent, CongestionControl

#: RFC 8312 constants.
CUBIC_C = 0.4
CUBIC_BETA = 0.7

#: HyStart delay-increase detection: leave slow start once the RTT has
#: grown by this factor over the propagation floor (Linux's HyStart uses
#: an absolute 4-16 ms eta, which never fires on a 40 us datacenter
#: fabric; a relative threshold captures the same intent at any scale).
HYSTART_RTT_GROWTH = 2.0
#: HyStart only engages above this window (segments), per the kernel.
HYSTART_LOW_WINDOW = 16


class Cubic(CongestionControl):
    """RFC 8312 CUBIC congestion control."""

    name = "cubic"
    #: cube-root arithmetic + epoch bookkeeping per ACK — measurably more
    #: work than Reno's increment (Linux uses a table-driven cbrt).
    ack_cost_units = 1.30

    def __init__(self, ctx):
        super().__init__(ctx)
        self._w_max = 0.0  # segments
        self._epoch_start: float = -1.0
        self._k = 0.0
        self._tcp_cwnd = 0.0  # friendly-region estimate, segments

    def _reset_epoch(self) -> None:
        self._epoch_start = -1.0

    def _hystart(self, event: AckEvent) -> None:
        """Delay-increase slow-start exit (the kernel's HyStart)."""
        min_rtt = self.ctx.min_rtt
        if (
            event.rtt_sample is not None
            and min_rtt is not None
            and self.cwnd >= HYSTART_LOW_WINDOW * self.ctx.mss
            and event.rtt_sample >= min_rtt * HYSTART_RTT_GROWTH
        ):
            self.ssthresh = self.cwnd

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        remainder = event.newly_acked_bytes
        if self.in_slow_start:
            self._hystart(event)
        if self.in_slow_start:
            remainder = self.slow_start(remainder)
            if remainder <= 0:
                self._clamp()
                return
        mss = self.ctx.mss
        cwnd_seg = self.cwnd / mss
        now = self.ctx.now
        if self._epoch_start < 0:
            self._epoch_start = now
            if cwnd_seg < self._w_max:
                self._k = ((self._w_max - cwnd_seg) / CUBIC_C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
                self._w_max = cwnd_seg
            self._tcp_cwnd = cwnd_seg
        t = now - self._epoch_start
        target = CUBIC_C * (t - self._k) ** 3 + self._w_max

        # TCP-friendly region (average Reno window over the epoch).
        rtt = self.ctx.srtt or self.ctx.min_rtt or 0.0
        if rtt > 0:
            self._tcp_cwnd += (
                3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
                * (remainder / mss) / cwnd_seg
            )
        target = max(target, self._tcp_cwnd)

        if target > cwnd_seg:
            # Spread the growth over the next RTT like the kernel does:
            # grow by (target - cwnd)/cwnd per ACKed cwnd of data.
            increment = (target - cwnd_seg) / cwnd_seg
            self.cwnd += max(1, int(increment * (remainder / mss) * mss))
        else:
            # In the concave plateau, grow very slowly (1 seg / 100 ACKs).
            self.cwnd += max(1, mss // 100)
        self._clamp()

    def on_congestion_event(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        cwnd_seg = self.cwnd / self.ctx.mss
        # Fast convergence (RFC 8312 §4.6).
        if cwnd_seg < self._w_max:
            self._w_max = cwnd_seg * (1.0 + CUBIC_BETA) / 2.0
        else:
            self._w_max = cwnd_seg
        self.ssthresh = max(self.min_cwnd, self.cwnd * CUBIC_BETA)
        self.cwnd = self.ssthresh
        self._reset_epoch()
        self._clamp()

    def on_rto(self) -> None:
        super().on_rto()
        self._w_max = max(self._w_max, self.cwnd / self.ctx.mss)
        self._reset_epoch()
