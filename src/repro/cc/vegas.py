"""TCP Vegas (Brakmo et al. 1994).

Delay-based avoidance: compare expected throughput (cwnd / base_rtt)
with actual throughput (cwnd / rtt). The difference, in segments,

    diff = cwnd * (rtt - base_rtt) / rtt

estimates how many segments sit in queues. Keep it between alpha and
beta by adjusting cwnd one segment per RTT; fall back to Reno during
slow start and loss recovery, as the kernel module does.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import AckEvent, CongestionControl

#: Vegas target queue occupancy bounds, in segments.
VEGAS_ALPHA = 2.0
VEGAS_BETA = 4.0


class Vegas(CongestionControl):
    """TCP Vegas: delay-based congestion avoidance."""

    name = "vegas"
    #: two RTT comparisons + min tracking per ACK
    ack_cost_units = 1.15

    def __init__(self, ctx):
        super().__init__(ctx)
        self._rtt_window: list = []
        self._last_adjust: Optional[float] = None

    def on_ack(self, event: AckEvent) -> None:
        self.ctx.charge(self.ack_cost_units)
        remainder = event.newly_acked_bytes
        if self.in_slow_start:
            remainder = self.slow_start(remainder)
            self._clamp()
            if remainder <= 0:
                return
        base_rtt = self.ctx.min_rtt
        rtt = event.rtt_sample or self.ctx.srtt
        if base_rtt is None or rtt is None or rtt <= 0:
            return
        # Adjust at most once per RTT.
        now = self.ctx.now
        if self._last_adjust is not None and now - self._last_adjust < rtt:
            return
        self._last_adjust = now
        mss = self.ctx.mss
        cwnd_seg = self.cwnd / mss
        diff = cwnd_seg * (rtt - base_rtt) / rtt
        if diff < VEGAS_ALPHA:
            self.cwnd += mss
        elif diff > VEGAS_BETA:
            self.cwnd -= mss
        self._clamp()

    def on_congestion_event(self, event: AckEvent) -> None:
        # Vegas halves like Reno on actual loss.
        super().on_congestion_event(event)
